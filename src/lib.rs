//! # boon60-lab — workspace umbrella
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) at the workspace root; it
//! re-exports every member crate so one `use boon60_lab::…` reaches the
//! whole stack. Library users should depend on the individual crates
//! (`mmwave-core` pulls in everything below it).

pub use mmwave_capture as capture;
pub use mmwave_channel as channel;
pub use mmwave_core as core;
pub use mmwave_geom as geom;
pub use mmwave_mac as mac;
pub use mmwave_phy as phy;
pub use mmwave_sim as sim;
pub use mmwave_transport as transport;
