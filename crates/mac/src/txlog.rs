//! The transmission log — the simulation's "air interface tap".
//!
//! Every frame put on the air is appended here. The capture pipeline
//! replays the log through the channel model to synthesize what a Vubiq
//! placed anywhere in the room would have recorded; the frame-level
//! analyses (Figs. 3, 8, 9, 15, 21 and Table 1) all consume this log.
//!
//! Long campaigns (the 7-minute utilization traces) would accumulate tens
//! of millions of entries, so the log supports a retention window —
//! utilization over long runs is tracked by the cheaper monitors in
//! [`crate::net`].

use crate::device::PatKey;
use crate::frame::FrameClass;
use mmwave_geom::{Angle, Point};
use mmwave_sim::time::SimTime;

/// One logged transmission.
#[derive(Clone, Copy, Debug)]
pub struct TxLogEntry {
    /// Transmission start.
    pub start: SimTime,
    /// Transmission end.
    pub end: SimTime,
    /// Transmitting device.
    pub src: usize,
    /// Where the transmitter stood when the frame went out. Devices move
    /// mid-run (scripted mobility), so replaying a capture must use the
    /// pose at transmission time, not whatever the device ended up at.
    pub src_position: Point,
    /// The transmitter's orientation at transmission time.
    pub src_orientation: Angle,
    /// Destination device, if addressed.
    pub dst: Option<usize>,
    /// Frame class.
    pub class: FrameClass,
    /// Antenna configuration used.
    pub pattern: PatKey,
    /// MCS index for data frames.
    pub mcs: Option<u8>,
    /// Network-wide frame sequence number.
    pub seq: u64,
    /// Whether the addressed receiver decoded it (None for broadcast or
    /// not-yet-finished).
    pub delivered: Option<bool>,
}

/// Append-only transmission log with an optional retention window.
#[derive(Clone, Debug, Default)]
pub struct TxLog {
    entries: Vec<TxLogEntry>,
    window: Option<(SimTime, SimTime)>,
    enabled: bool,
}

impl TxLog {
    /// A new, enabled log with no retention window.
    pub fn new() -> TxLog {
        TxLog {
            entries: Vec::new(),
            window: None,
            enabled: true,
        }
    }

    /// Enable or disable logging entirely.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Retain only entries overlapping `[from, to)`; future appends outside
    /// the window are discarded.
    pub fn set_window(&mut self, from: SimTime, to: SimTime) {
        self.window = Some((from, to));
        self.entries.retain(|e| e.end > from && e.start < to);
    }

    /// Append an entry (subject to enablement and window). Returns the
    /// entry's index if kept.
    pub fn push(&mut self, entry: TxLogEntry) -> Option<usize> {
        if !self.enabled {
            return None;
        }
        if let Some((from, to)) = self.window {
            if entry.end <= from || entry.start >= to {
                return None;
            }
        }
        self.entries.push(entry);
        Some(self.entries.len() - 1)
    }

    /// Record the delivery outcome of the entry with sequence `seq`
    /// (scans backwards — the entry is always near the tail).
    pub fn mark_delivered(&mut self, seq: u64, delivered: bool) {
        for e in self.entries.iter_mut().rev() {
            if e.seq == seq {
                e.delivered = Some(delivered);
                return;
            }
        }
    }

    /// All retained entries in append (time) order.
    pub fn entries(&self) -> &[TxLogEntry] {
        &self.entries
    }

    /// Entries overlapping `[from, to)`.
    pub fn in_window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &TxLogEntry> {
        self.entries
            .iter()
            .filter(move |e| e.end > from && e.start < to)
    }

    /// Entries of one class from one source.
    pub fn of(&self, src: usize, class: FrameClass) -> impl Iterator<Item = &TxLogEntry> {
        self.entries
            .iter()
            .filter(move |e| e.src == src && e.class == class)
    }

    /// Drop everything (keep settings).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(start_us: u64, end_us: u64, seq: u64) -> TxLogEntry {
        TxLogEntry {
            start: SimTime::from_micros(start_us),
            end: SimTime::from_micros(end_us),
            src: 0,
            src_position: Point::new(0.0, 0.0),
            src_orientation: Angle::ZERO,
            dst: Some(1),
            class: FrameClass::Data,
            pattern: PatKey::Dir(0),
            mcs: Some(11),
            seq,
            delivered: None,
        }
    }

    #[test]
    fn push_and_query() {
        let mut log = TxLog::new();
        log.push(entry(0, 10, 1));
        log.push(entry(20, 30, 2));
        assert_eq!(log.len(), 2);
        assert_eq!(
            log.in_window(SimTime::from_micros(5), SimTime::from_micros(25))
                .count(),
            2
        );
        assert_eq!(
            log.in_window(SimTime::from_micros(11), SimTime::from_micros(19))
                .count(),
            0
        );
        assert_eq!(log.of(0, FrameClass::Data).count(), 2);
        assert_eq!(log.of(1, FrameClass::Data).count(), 0);
    }

    #[test]
    fn disabled_log_keeps_nothing() {
        let mut log = TxLog::new();
        log.set_enabled(false);
        assert!(log.push(entry(0, 10, 1)).is_none());
        assert!(log.is_empty());
    }

    #[test]
    fn window_filters_appends_and_prunes() {
        let mut log = TxLog::new();
        log.push(entry(0, 10, 1));
        log.push(entry(100, 110, 2));
        log.set_window(SimTime::from_micros(50), SimTime::from_micros(200));
        assert_eq!(log.len(), 1, "old out-of-window entry pruned");
        assert!(
            log.push(entry(300, 310, 3)).is_none(),
            "future out-of-window discarded"
        );
        assert!(log.push(entry(150, 160, 4)).is_some());
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn mark_delivered_finds_entry() {
        let mut log = TxLog::new();
        log.push(entry(0, 10, 7));
        log.push(entry(20, 30, 8));
        log.mark_delivered(7, true);
        log.mark_delivered(8, false);
        assert_eq!(log.entries()[0].delivered, Some(true));
        assert_eq!(log.entries()[1].delivered, Some(false));
        // Unknown seq is a no-op.
        log.mark_delivered(99, true);
    }
}
