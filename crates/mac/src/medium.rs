//! The shared medium: concurrent transmissions, receive powers,
//! interference accumulation and carrier sensing.
//!
//! Whenever a frame starts, its receive power at *every* device is
//! computed through the channel model (with the transmitter's actual
//! pattern and each receiver's current listening pattern) and remembered
//! for the frame's lifetime. That one vector powers everything the paper
//! measures: SINR-based frame loss, carrier-sense deferral, and — through
//! the monitors — the busy-time traces.

use crate::device::{Device, PatKey};
use crate::frame::Frame;
use mmwave_channel::spatial::{self, PruneMode, SpatialConfig, SpatialIndex};
use mmwave_channel::{link_state, Environment, LinkGainCache};
use mmwave_geom::Point;
use mmwave_phy::{db_to_lin, lin_to_db};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::SimTime;

/// A transmission currently on the air.
#[derive(Debug)]
pub struct ActiveTx {
    /// Medium-assigned id.
    pub id: u64,
    /// The frame.
    pub frame: Frame,
    /// The transmit pattern used.
    pub pattern: PatKey,
    /// Start time.
    pub start: SimTime,
    /// Scheduled end time.
    pub end: SimTime,
    /// Receive power at every device index, dBm (−300 at the source).
    pub power_at: Vec<f64>,
    /// Accumulated interference power at the destination, linear mW.
    pub interference_lin: f64,
    /// The destination itself transmitted while this frame was on the air
    /// (half-duplex violation → certain loss).
    pub dst_was_busy: bool,
}

/// Spatial interference-graph state: the position grid, per-device opaque
/// zones and the prune semantics derived from the environment's coupling
/// bound.
#[derive(Debug)]
struct SpatialState {
    index: SpatialIndex,
    /// Opaque-zone membership per device (`Room::zone_of` at the tracked
    /// position). Devices in *different* zones are radio-isolated by the
    /// zones' closed-walls contract; a device outside every zone couples
    /// with everyone in range.
    zone: Vec<Option<usize>>,
    mode: PruneMode,
    floor_dbm: f64,
    /// Reused neighbor-candidate buffer for the `begin_tx` grid walk.
    scratch: Vec<usize>,
    /// Directed pairs already verified in audit mode. A pruned pair's
    /// coupling is position-determined, so one verification per position
    /// epoch suffices; entries involving a device are dropped when it
    /// moves (and on full flushes). Membership-only use — iteration order
    /// never observed.
    audited: std::collections::HashSet<(usize, usize)>,
}

impl SpatialState {
    /// The prune decision: a pair is coupled unless it is separated by a
    /// closed-zone boundary or by more than the distance cutoff. Both the
    /// per-call path and the `begin_tx` grid walk go through this exact
    /// predicate, so their prune counts and powers agree bit-for-bit.
    fn coupled_pair(&self, a: usize, b: usize) -> bool {
        if let (Some(za), Some(zb)) = (self.zone[a], self.zone[b]) {
            if za != zb {
                return false;
            }
        }
        self.index
            .coupled(self.index.position(a), self.index.position(b))
    }
}

/// The medium arbiter.
#[derive(Debug, Default)]
pub struct Medium {
    active: Vec<ActiveTx>,
    next_id: u64,
    /// Memoized radiometric link gains (paths interned per pair, pattern
    /// weighting folded in the linear domain, generation invalidation).
    cache: LinkGainCache,
    /// Per device: when the channel was last heard busy (above the
    /// carrier-sense threshold) — the basis for AIFS-long idle checks.
    last_heard_end: Vec<SimTime>,
    /// Spent `power_at` buffers awaiting reuse. A bulk transfer turns over
    /// thousands of transmissions; recycling the per-frame vector keeps the
    /// steady-state frame path allocation-free.
    power_pool: Vec<Vec<f64>>,
    /// When present, device pairs beyond the coupling cutoff contribute
    /// exactly −300 dBm without touching the radiometric chain.
    spatial: Option<Box<SpatialState>>,
}

impl Medium {
    /// An idle medium reporting into a fresh private context.
    pub fn new() -> Medium {
        Medium::default()
    }

    /// An idle medium whose link-gain cache adopts `ctx`'s cache mode and
    /// streams its counters into `ctx`.
    pub fn with_ctx(ctx: &SimCtx) -> Medium {
        Medium {
            cache: LinkGainCache::with_ctx(ctx),
            ..Medium::default()
        }
    }

    /// An idle medium with an explicit link-gain cache mode (differential
    /// tests compare Cached vs Bypass on a private context).
    pub fn with_cache_mode(mode: mmwave_channel::CacheMode) -> Medium {
        Medium::with_ctx(&SimCtx::with_cache_mode(mode))
    }

    /// Enable spatial pruning: pairs separated by a closed-zone boundary
    /// (see [`mmwave_geom::Room::add_zone`]) or by more than the coupling
    /// cutoff (derived from `env`'s budget, geometry and `cfg`'s floor)
    /// contribute exactly −300 dBm. `positions[i]` must be device `i`'s
    /// current position; callers must keep the grid in sync through
    /// [`Medium::note_device_position`] — a stale entry or a zone that is
    /// not actually radio-closed can prune a pair that couples, which
    /// [`PruneMode::Audit`] detects by recomputing every pruned pair and
    /// panicking at a floor violation.
    pub fn enable_spatial(
        &mut self,
        env: &Environment,
        cfg: &SpatialConfig,
        mode: PruneMode,
        positions: &[Point],
    ) {
        let cutoff = spatial::cutoff_distance_m(env, cfg);
        let mut index = SpatialIndex::new(cutoff);
        let mut zone = Vec::with_capacity(positions.len());
        for (i, &p) in positions.iter().enumerate() {
            index.set_position(i, p);
            zone.push(env.room.zone_of(p));
        }
        self.spatial = Some(Box::new(SpatialState {
            index,
            zone,
            mode,
            floor_dbm: cfg.floor_dbm,
            scratch: Vec::new(),
            audited: std::collections::HashSet::new(),
        }));
    }

    /// Record a device's (new) position in the spatial index, re-deriving
    /// its zone membership. No-op while spatial pruning is disabled.
    pub fn note_device_position(&mut self, env: &Environment, idx: usize, p: Point) {
        if let Some(sp) = self.spatial.as_mut() {
            sp.index.set_position(idx, p);
            if idx == sp.zone.len() {
                sp.zone.push(env.room.zone_of(p));
            } else {
                sp.zone[idx] = env.room.zone_of(p);
            }
            sp.audited.retain(|&(a, b)| a != idx && b != idx);
        }
    }

    /// The active coupling cutoff distance, if spatial pruning is enabled.
    pub fn spatial_cutoff_m(&self) -> Option<f64> {
        self.spatial.as_ref().map(|sp| sp.index.cutoff_m())
    }

    /// The active prune mode, if spatial pruning is enabled.
    pub fn spatial_mode(&self) -> Option<PruneMode> {
        self.spatial.as_ref().map(|sp| sp.mode)
    }

    /// Flush all cached geometry and gains (call after bulk scene edits;
    /// for a single device prefer the granular bumps on
    /// [`Medium::link_cache_mut`]).
    pub fn invalidate_paths(&mut self) {
        self.cache.invalidate_all();
        if let Some(sp) = self.spatial.as_mut() {
            sp.audited.clear();
        }
    }

    /// The radiometric cache (counters, inspection).
    pub fn link_cache(&self) -> &LinkGainCache {
        &self.cache
    }

    /// Mutable access to the radiometric cache (granular invalidation
    /// bumps, shared sector-sweep tables).
    pub fn link_cache_mut(&mut self) -> &mut LinkGainCache {
        &mut self.cache
    }

    /// Pattern-weighted received power from `src` (radiating `src_pat`) at
    /// `dst` (listening with its current pattern), dBm, before fading.
    ///
    /// One memoized table lookup plus additive dB offsets: the cache keeps
    /// `Σ_paths 10^(−loss/10)·g_src·g_dst` per (device, pattern) pair, and
    /// everything direction- and path-independent (conducted power,
    /// implementation loss, per-device offset, atmospheric loss) is applied
    /// here after the single `lin_to_db`.
    pub fn rx_power_dbm(
        &mut self,
        env: &Environment,
        devices: &[Device],
        src: usize,
        src_pat: PatKey,
        dst: usize,
        extra_power_db: f64,
    ) -> f64 {
        if let Some(sp) = self.spatial.as_mut() {
            let tracked = sp.index.tracked();
            if src < tracked && dst < tracked && !sp.coupled_pair(src, dst) {
                let (mode, floor) = (sp.mode, sp.floor_dbm);
                let audit = mode == PruneMode::Audit && sp.audited.insert((src, dst));
                self.cache.ctx().record_spatial_pruned(1);
                if audit {
                    // Counter-free recomputation from the devices' *actual*
                    // node state: a stale grid or an unsound bound panics
                    // here instead of silently zeroing real interference.
                    let dst_key = devices[dst].listen_key();
                    let (sd, dd) = (&devices[src], &devices[dst]);
                    let true_dbm = link_state(
                        env,
                        &sd.node,
                        sd.pattern(src_pat),
                        &dd.node,
                        dd.pattern(dst_key),
                    )
                    .total_dbm
                        + sd.tx_power_offset_db
                        + extra_power_db;
                    assert!(
                        true_dbm < floor,
                        "spatial prune unsound: {src}->{dst} couples at \
                         {true_dbm:.1} dBm (floor {floor} dBm)"
                    );
                }
                return -300.0;
            }
        }
        let dst_key = devices[dst].listen_key();
        let (sd, dd) = (&devices[src], &devices[dst]);
        let (lin, db) = self.cache.link_gain_lin_db(
            env,
            &sd.node,
            src,
            sd.pat_id(src_pat),
            sd.pattern(src_pat),
            &dd.node,
            dst,
            dd.pat_id(dst_key),
            dd.pattern(dst_key),
        );
        if lin <= 0.0 {
            return -300.0;
        }
        db + env.budget.tx_power_dbm - env.budget.implementation_loss_db
            + sd.tx_power_offset_db
            + extra_power_db
            - env.extra_loss_db
    }

    /// Put a frame on the air. `link_offsets[d]` is the fading offset (dB)
    /// applied to the path from the source to device `d`. Returns the
    /// transmission id.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_tx(
        &mut self,
        env: &Environment,
        devices: &[Device],
        frame: Frame,
        pattern: PatKey,
        extra_power_db: f64,
        start: SimTime,
        end: SimTime,
        link_offsets: &[f64],
    ) -> u64 {
        debug_assert_eq!(link_offsets.len(), devices.len());
        let src = frame.src;
        let mut power_at = self.power_pool.pop().unwrap_or_default();
        power_at.clear();

        // Enforce-mode fast path: enumerate only the source's grid
        // neighborhood instead of probing every device. The coupled set —
        // `{d ≠ src : distance ≤ cutoff}` — is exactly the set the
        // per-device loop below would compute through, so both paths yield
        // bit-identical powers and identical prune counts.
        let coupled = match self.spatial.as_mut() {
            Some(sp) if sp.mode == PruneMode::Enforce && sp.index.tracked() == devices.len() => {
                let mut scratch = std::mem::take(&mut sp.scratch);
                sp.index
                    .neighbors_into(sp.index.position(src), &mut scratch);
                scratch.retain(|&d| d != src && sp.coupled_pair(src, d));
                Some(scratch)
            }
            _ => None,
        };
        if let Some(coupled) = coupled {
            for d in 0..devices.len() {
                power_at.push(if d == src {
                    -300.0
                } else {
                    -300.0 + link_offsets[d]
                });
            }
            for &d in &coupled {
                power_at[d] = self.rx_power_dbm(env, devices, src, pattern, d, extra_power_db)
                    + link_offsets[d];
            }
            let pruned = (devices.len() as u64 - 1) - coupled.len() as u64;
            self.cache.ctx().record_spatial_pruned(pruned);
            self.spatial.as_mut().expect("spatial state").scratch = coupled;
        } else {
            power_at.extend((0..devices.len()).map(|d| {
                if d == src {
                    -300.0
                } else {
                    self.rx_power_dbm(env, devices, src, pattern, d, extra_power_db)
                        + link_offsets[d]
                }
            }));
        }

        // Interference bookkeeping, both directions.
        let mut interference_lin = 0.0;
        let mut dst_was_busy = false;
        for other in &mut self.active {
            // The new frame interferes with every ongoing addressed frame.
            if let Some(odst) = other.frame.dst {
                if odst != src {
                    other.interference_lin += db_to_lin(power_at[odst]);
                } else {
                    // Their receiver just started transmitting.
                    other.dst_was_busy = true;
                }
            }
            // Ongoing frames interfere with the new one.
            if let Some(dst) = frame.dst {
                if other.frame.src == dst {
                    dst_was_busy = true;
                } else {
                    interference_lin += db_to_lin(other.power_at[dst]);
                }
            }
        }

        let id = self.next_id;
        self.next_id += 1;
        self.active.push(ActiveTx {
            id,
            frame,
            pattern,
            start,
            end,
            power_at,
            interference_lin,
            dst_was_busy,
        });
        id
    }

    /// Remove a finished transmission and return it. `cs_threshold_dbm`
    /// decides which devices "heard" it (for AIFS idle tracking).
    pub fn finish_tx(&mut self, id: u64, cs_threshold_dbm: f64) -> Option<ActiveTx> {
        let idx = self.active.iter().position(|t| t.id == id)?;
        let tx = self.active.swap_remove(idx);
        if self.last_heard_end.len() < tx.power_at.len() {
            self.last_heard_end.resize(tx.power_at.len(), SimTime::ZERO);
        }
        for (d, &p) in tx.power_at.iter().enumerate() {
            if p > cs_threshold_dbm || d == tx.frame.src {
                self.last_heard_end[d] = self.last_heard_end[d].max(tx.end);
            }
        }
        Some(tx)
    }

    /// True if `dev` has seen the channel idle (no energy above
    /// `threshold_dbm`) continuously for `idle_needed` ending at `now`.
    pub fn idle_for(
        &self,
        dev: usize,
        threshold_dbm: f64,
        now: SimTime,
        idle_needed: mmwave_sim::time::SimDuration,
    ) -> bool {
        if self.is_busy_for(dev, threshold_dbm) {
            return false;
        }
        let last = self
            .last_heard_end
            .get(dev)
            .copied()
            .unwrap_or(SimTime::ZERO);
        now.saturating_since(last) >= idle_needed
    }

    /// Total received energy at device `dev` from all ongoing
    /// transmissions, dBm (−300 when quiet).
    pub fn energy_at(&self, dev: usize) -> f64 {
        lin_to_db(self.active.iter().map(|t| db_to_lin(t.power_at[dev])).sum())
    }

    /// Carrier-sense verdict for `dev` at the given threshold.
    pub fn is_busy_for(&self, dev: usize, threshold_dbm: f64) -> bool {
        self.energy_at(dev) > threshold_dbm
    }

    /// Return a spent `power_at` buffer to the reuse pool. The MAC calls
    /// this after consuming a finished transmission; external drivers of
    /// `begin_tx`/`finish_tx` (tests, benches) can do the same to keep the
    /// steady-state frame path allocation-free.
    pub fn recycle_power(&mut self, v: Vec<f64>) {
        if self.power_pool.len() < 16 {
            self.power_pool.push(v);
        }
    }

    /// Is this device currently transmitting?
    pub fn is_transmitting(&self, dev: usize) -> bool {
        self.active.iter().any(|t| t.frame.src == dev)
    }

    /// Number of concurrent transmissions.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameKind, Mpdu};
    use mmwave_geom::{Angle, Point, Room};

    fn setup() -> (Environment, Vec<Device>) {
        let env = Environment::new(Room::open_space());
        let mut dock = Device::wigig_dock(
            &SimCtx::new(),
            "dock",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            13,
        );
        let mut laptop = Device::wigig_laptop(
            &SimCtx::new(),
            "laptop",
            Point::new(2.0, 0.0),
            Angle::from_degrees(180.0),
            11,
        );
        // Associate both directly for the test.
        for (d, sector) in [(&mut dock, 16), (&mut laptop, 16)] {
            let w = d.wigig_mut().expect("wigig");
            w.state = crate::device::WigigState::Associated;
            w.tx_sector = sector;
        }
        (env, vec![dock, laptop])
    }

    fn data_frame(src: usize, dst: usize, seq: u64) -> Frame {
        Frame {
            src,
            dst: Some(dst),
            kind: FrameKind::Data {
                mpdus: vec![Mpdu {
                    bytes: 1500,
                    tag: 0,
                }],
                mcs: 11,
                retry: 0,
            },
            seq,
        }
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn begin_tx_computes_strong_trained_power() {
        let (env, devices) = setup();
        let mut m = Medium::new();
        let offs = vec![0.0; devices.len()];
        let id = m.begin_tx(
            &env,
            &devices,
            data_frame(0, 1, 1),
            PatKey::Dir(16),
            0.0,
            t(0),
            t(5),
            &offs,
        );
        let tx = m.finish_tx(id, -68.0).expect("tx exists");
        // Trained 2 m link: roughly 7 + 2·16 − 74 − 14 ≈ −49 dBm.
        assert!(tx.power_at[1] > -60.0, "power {}", tx.power_at[1]);
        assert_eq!(tx.power_at[0], -300.0, "no self-reception");
        assert!(!tx.dst_was_busy);
        assert_eq!(tx.interference_lin, 0.0);
    }

    #[test]
    fn energy_and_carrier_sense() {
        let (env, devices) = setup();
        let mut m = Medium::new();
        let offs = vec![0.0; devices.len()];
        assert!(!m.is_busy_for(1, -68.0));
        let id = m.begin_tx(
            &env,
            &devices,
            data_frame(0, 1, 1),
            PatKey::Dir(16),
            0.0,
            t(0),
            t(5),
            &offs,
        );
        assert!(m.is_busy_for(1, -68.0), "laptop must sense the dock");
        assert!(m.is_transmitting(0));
        assert!(!m.is_transmitting(1));
        m.finish_tx(id, -68.0);
        assert!(!m.is_busy_for(1, -68.0));
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn overlapping_tx_accumulates_interference() {
        let (env, mut devices) = setup();
        // Add a second pair further away.
        let mut dock_b = Device::wigig_dock(
            &SimCtx::new(),
            "dock B",
            Point::new(0.0, 3.0),
            Angle::ZERO,
            7,
        );
        let mut laptop_b = Device::wigig_laptop(
            &SimCtx::new(),
            "laptop B",
            Point::new(2.0, 3.0),
            Angle::from_degrees(180.0),
            5,
        );
        for d in [&mut dock_b, &mut laptop_b] {
            let w = d.wigig_mut().expect("wigig");
            w.state = crate::device::WigigState::Associated;
            w.tx_sector = 16;
        }
        devices.push(dock_b);
        devices.push(laptop_b);
        let mut m = Medium::new();
        let offs = vec![0.0; devices.len()];
        let a = m.begin_tx(
            &env,
            &devices,
            data_frame(0, 1, 1),
            PatKey::Dir(16),
            0.0,
            t(0),
            t(5),
            &offs,
        );
        let _b = m.begin_tx(
            &env,
            &devices,
            data_frame(2, 3, 2),
            PatKey::Dir(16),
            0.0,
            t(1),
            t(6),
            &offs,
        );
        let tx_a = m.finish_tx(a, -68.0).expect("tx a");
        // Frame A suffered interference from B (side lobes), recorded in mW.
        assert!(tx_a.interference_lin > 0.0);
        assert!(!tx_a.dst_was_busy);
    }

    #[test]
    fn half_duplex_violation_detected() {
        let (env, devices) = setup();
        let mut m = Medium::new();
        let offs = vec![0.0; devices.len()];
        // Dock sends to laptop; laptop starts sending back mid-frame.
        let a = m.begin_tx(
            &env,
            &devices,
            data_frame(0, 1, 1),
            PatKey::Dir(16),
            0.0,
            t(0),
            t(5),
            &offs,
        );
        let b = m.begin_tx(
            &env,
            &devices,
            data_frame(1, 0, 2),
            PatKey::Dir(16),
            0.0,
            t(2),
            t(7),
            &offs,
        );
        let tx_a = m.finish_tx(a, -68.0).expect("a");
        assert!(
            tx_a.dst_was_busy,
            "laptop was transmitting during reception"
        );
        let tx_b = m.finish_tx(b, -68.0).expect("b");
        assert!(tx_b.dst_was_busy, "dock was transmitting when b started");
    }

    #[test]
    fn extra_power_shifts_rx() {
        let (env, devices) = setup();
        let mut m = Medium::new();
        let base = m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 1, 0.0);
        let boosted = m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 1, 6.0);
        assert!((boosted - base - 6.0).abs() < 1e-9);
    }

    #[test]
    fn path_cache_invalidation_changes_power_after_move() {
        let (env, mut devices) = setup();
        let mut m = Medium::new();
        let near = m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 1, 0.0);
        devices[1].node.position = Point::new(8.0, 0.0);
        // Without invalidation the cache returns stale geometry.
        let stale = m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 1, 0.0);
        assert!((stale - near).abs() < 3.0, "cache should still be warm");
        m.invalidate_paths();
        let far = m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 1, 0.0);
        assert!(near - far > 8.0, "8 m vs 2 m ≈ 12 dB: {near} vs {far}");
    }

    /// Two closed brick boxes with a zone declared over each, plus helper
    /// devices: dock+laptop in box A, a second dock alone in box B.
    fn two_room_setup() -> (Environment, Vec<Device>) {
        use mmwave_geom::{Material, Segment};
        let mut room = Room::open_space();
        for (x0, tag) in [(0.0, "a"), (10.0, "b")] {
            let (x1, y0, y1) = (x0 + 4.0, 0.0, 3.0);
            let corners = [
                (Point::new(x0, y0), Point::new(x1, y0)),
                (Point::new(x1, y0), Point::new(x1, y1)),
                (Point::new(x1, y1), Point::new(x0, y1)),
                (Point::new(x0, y1), Point::new(x0, y0)),
            ];
            for (i, (a, b)) in corners.into_iter().enumerate() {
                room.add_obstacle(Segment::new(a, b), Material::Brick, format!("{tag}-{i}"));
            }
            room.add_zone(Point::new(x0, y0), Point::new(x1, y1));
        }
        let env = Environment::new(room);
        let ctx = SimCtx::new();
        let mut devices = vec![
            Device::wigig_dock(&ctx, "dock A", Point::new(1.0, 1.5), Angle::ZERO, 13),
            Device::wigig_laptop(
                &ctx,
                "laptop A",
                Point::new(3.0, 1.5),
                Angle::from_degrees(180.0),
                11,
            ),
            Device::wigig_dock(&ctx, "dock B", Point::new(12.0, 1.5), Angle::ZERO, 7),
        ];
        for d in &mut devices {
            let w = d.wigig_mut().expect("wigig");
            w.state = crate::device::WigigState::Associated;
            w.tx_sector = 16;
        }
        (env, devices)
    }

    fn positions(devices: &[Device]) -> Vec<Point> {
        devices.iter().map(|d| d.node.position).collect()
    }

    #[test]
    fn cross_zone_pairs_are_pruned_in_both_modes() {
        let (env, devices) = two_room_setup();
        let cfg = mmwave_channel::SpatialConfig::default();
        for mode in [
            mmwave_channel::PruneMode::Enforce,
            mmwave_channel::PruneMode::Audit,
        ] {
            let ctx = SimCtx::new();
            let mut m = Medium::with_ctx(&ctx);
            m.enable_spatial(&env, &cfg, mode, &positions(&devices));
            // Cross-zone: pruned to the sentinel in both modes (and audit
            // verifies the true coupling is below the floor — the closed
            // boxes block every path, so it is exactly −300).
            let cross = m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 2, 0.0);
            assert_eq!(cross, -300.0, "{mode:?}");
            assert_eq!(ctx.counters().spatial_pruned_pairs, 1, "{mode:?}");
            // Same-zone: never pruned, matches an unpruned medium to the bit.
            let in_room = m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 1, 0.0);
            let mut plain = Medium::new();
            let reference = plain.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 1, 0.0);
            assert_eq!(in_room.to_bits(), reference.to_bits(), "{mode:?}");
            assert_eq!(ctx.counters().spatial_pruned_pairs, 1, "{mode:?}");
        }
    }

    #[test]
    fn distance_cutoff_prunes_far_open_space_pairs() {
        let (env, devices) = setup();
        // A deliberately high floor shrinks the cutoff below the 2 m link.
        let cfg = mmwave_channel::SpatialConfig {
            floor_dbm: -20.0,
            ..Default::default()
        };
        let ctx = SimCtx::new();
        let mut m = Medium::with_ctx(&ctx);
        m.enable_spatial(
            &env,
            &cfg,
            mmwave_channel::PruneMode::Audit,
            &positions(&devices),
        );
        let cut = m.spatial_cutoff_m().expect("enabled");
        assert!(cut < 2.0, "cutoff {cut} must undercut the 2 m pair");
        // Audit recomputes the pruned pair and confirms it under the floor.
        let p = m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 1, 0.0);
        assert_eq!(p, -300.0);
        assert_eq!(ctx.counters().spatial_pruned_pairs, 1);
    }

    #[test]
    fn begin_tx_grid_walk_matches_per_device_loop() {
        let (env, devices) = two_room_setup();
        let cfg = mmwave_channel::SpatialConfig::default();
        let offs: Vec<f64> = (0..devices.len()).map(|d| d as f64 * 0.25).collect();
        let mut runs = Vec::new();
        // Enforce takes the grid fast path; Audit takes the per-device
        // loop. Powers and prune counts must agree bit-for-bit.
        for mode in [
            mmwave_channel::PruneMode::Enforce,
            mmwave_channel::PruneMode::Audit,
        ] {
            let ctx = SimCtx::new();
            let mut m = Medium::with_ctx(&ctx);
            m.enable_spatial(&env, &cfg, mode, &positions(&devices));
            let id = m.begin_tx(
                &env,
                &devices,
                data_frame(0, 1, 1),
                PatKey::Dir(16),
                0.0,
                t(0),
                t(5),
                &offs,
            );
            let tx = m.finish_tx(id, -68.0).expect("tx");
            runs.push((tx.power_at.clone(), ctx.counters().spatial_pruned_pairs));
        }
        let (enforce, audit) = (&runs[0], &runs[1]);
        assert_eq!(enforce.1, audit.1, "prune counts diverge");
        assert!(enforce.1 >= 1, "cross-zone dock B must be pruned");
        for (d, (a, b)) in enforce.0.iter().zip(&audit.0).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "power_at[{d}] diverges");
        }
        // The pruned device sees the sentinel plus its fading offset.
        assert_eq!(enforce.0[2], -300.0 + offs[2]);
    }

    #[test]
    fn moving_a_device_across_zones_updates_the_prune() {
        let (env, mut devices) = two_room_setup();
        let cfg = mmwave_channel::SpatialConfig::default();
        let ctx = SimCtx::new();
        let mut m = Medium::with_ctx(&ctx);
        m.enable_spatial(
            &env,
            &cfg,
            mmwave_channel::PruneMode::Enforce,
            &positions(&devices),
        );
        assert_eq!(
            m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 2, 0.0),
            -300.0
        );
        // Dock B walks into room A: no longer pruned.
        devices[2].node.position = Point::new(2.0, 1.0);
        m.link_cache_mut().bump_position(2);
        m.note_device_position(&env, 2, Point::new(2.0, 1.0));
        let p = m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 2, 0.0);
        assert!(p > -100.0, "co-located pair must couple, got {p}");
        assert_eq!(ctx.counters().spatial_pruned_pairs, 1);
    }

    #[test]
    fn granular_position_bump_refreshes_only_that_device() {
        let (env, mut devices) = setup();
        let mut m = Medium::new();
        let near = m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 1, 0.0);
        devices[1].node.position = Point::new(8.0, 0.0);
        m.link_cache_mut().bump_position(1);
        let far = m.rx_power_dbm(&env, &devices, 0, PatKey::Dir(16), 1, 0.0);
        assert!(
            near - far > 8.0,
            "bump must refresh the moved link: {near} vs {far}"
        );
        let s = m.link_cache().stats();
        assert_eq!(s.path_traces, 2, "exactly the stale pair re-traced");
        assert_eq!(s.invalidations, 1);
    }
}
