//! Devices: a radio node plus its personality.

use crate::frame::Mpdu;
use crate::params::{WigigConfig, WihdConfig};
use crate::stats::DevStats;
use mmwave_channel::RadioNode;
use mmwave_geom::{Angle, Point};
use mmwave_phy::{
    AntennaPattern, ArrayConfig, Codebook, PhasedArray, RateAdapter, RateAdapterConfig,
};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::queue::EventId;
use mmwave_sim::time::SimTime;
use std::collections::VecDeque;

/// Device index within a [`crate::net::Net`].
pub type DeviceId = usize;

/// Which antenna configuration a transmission or listener uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PatKey {
    /// Directional codebook sector.
    Dir(usize),
    /// Quasi-omni codebook entry.
    Qo(usize),
}

/// WiGig device role.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WigigRole {
    /// Docking station (drives discovery and beacons).
    Dock,
    /// Remote station (laptop).
    Station,
}

/// WiGig association state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WigigState {
    /// Sweeping discovery frames / listening for them.
    Unassociated,
    /// Handshake in progress.
    Associating,
    /// Link trained; data phase.
    Associated,
}

/// An in-flight data frame awaiting its acknowledgement.
#[derive(Clone, Debug)]
pub struct AwaitingAck {
    /// The MPDUs that were on board (requeued on loss).
    pub mpdus: Vec<Mpdu>,
    /// Sequence number of the data frame.
    pub seq: u64,
    /// The pending ACK-timeout event.
    pub timeout: EventId,
}

/// State of a WiGig (D5000 / laptop) device.
#[derive(Debug)]
pub struct WigigDev {
    /// Policy knobs.
    pub cfg: WigigConfig,
    /// Dock or station.
    pub role: WigigRole,
    /// Directional data codebook.
    pub codebook: Codebook,
    /// Quasi-omni discovery codebook (32 entries).
    pub qo: Codebook,
    /// The peer this device will pair with (pre-wired by the scenario).
    pub peer: Option<DeviceId>,
    /// Association state.
    pub state: WigigState,
    /// Trained directional sector towards the peer.
    pub tx_sector: usize,
    /// Outbound MPDU queue.
    pub queue: VecDeque<Mpdu>,
    /// When the current head of the queue started waiting (batch timer).
    pub oldest_wait_start: SimTime,
    /// Joint rate adaptation state.
    pub adapter: RateAdapter,
    /// Current contention window (slots).
    pub cw: u32,
    /// Retry count of the frame in flight.
    pub retry: u8,
    /// Currently inside a TXOP burst.
    pub in_txop: bool,
    /// When the current TXOP began.
    pub txop_start: SimTime,
    /// Data frame awaiting acknowledgement.
    pub awaiting_ack: Option<AwaitingAck>,
    /// A TxopAttempt event is already pending.
    pub contending: bool,
    /// CTS-timeout event pending after an RTS.
    pub pending_cts: Option<EventId>,
    /// Consecutive RTS attempts that produced no CTS (deferral streak —
    /// only a very long streak, i.e. a dead link, drops traffic).
    pub cts_fail_streak: u8,
    /// Consecutive ACK timeouts (loss-triggered recovery trigger).
    pub ack_fail_streak: u8,
    /// Consecutive undelivered beacons sent towards the peer.
    pub beacon_fail_streak: u8,
    /// Loss-recovery retrains attempted since the link last carried a
    /// frame successfully; bounded by the recovery budget, after which
    /// the link is declared down.
    pub loss_recovery_attempts: u8,
}

impl WigigDev {
    fn new(ctx: &SimCtx, cfg: WigigConfig, role: WigigRole, array_seed: u64) -> WigigDev {
        let array = PhasedArray::new(ArrayConfig::wigig_2x8(array_seed));
        WigigDev {
            cfg,
            role,
            codebook: Codebook::directional_default(ctx, &array),
            qo: Codebook::quasi_omni_32(ctx, &array),
            peer: None,
            state: WigigState::Unassociated,
            tx_sector: 0,
            queue: VecDeque::new(),
            oldest_wait_start: SimTime::ZERO,
            adapter: RateAdapter::new(RateAdapterConfig::default()),
            cw: 16,
            retry: 0,
            in_txop: false,
            txop_start: SimTime::ZERO,
            awaiting_ack: None,
            contending: false,
            pending_cts: None,
            cts_fail_streak: 0,
            ack_fail_streak: 0,
            beacon_fail_streak: 0,
            loss_recovery_attempts: 0,
        }
    }
}

/// WiHD device role.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WihdRole {
    /// Video source (HDMI TX).
    Source,
    /// Video sink (HDMI RX; drives beacons).
    Sink,
}

/// State of a WiHD (DVDO Air-3c) device.
#[derive(Debug)]
pub struct WihdDev {
    /// Policy knobs.
    pub cfg: WihdConfig,
    /// Source or sink.
    pub role: WihdRole,
    /// Beam codebook (notably wide patterns).
    pub codebook: Codebook,
    /// The peer this device pairs with.
    pub peer: Option<DeviceId>,
    /// Paired and streaming.
    pub paired: bool,
    /// Trained sector towards the peer.
    pub tx_sector: usize,
    /// Pending video bytes (source only).
    pub queue_bytes: u64,
    /// A data burst is in progress (source only).
    pub bursting: bool,
    /// Video streaming enabled (powering the system on/off — Fig. 23).
    pub video_on: bool,
    /// When the next beacon will fire (sink only; sources read their
    /// peer's value to respect the TDD grid).
    pub next_beacon_at: SimTime,
}

impl WihdDev {
    fn new(ctx: &SimCtx, cfg: WihdConfig, role: WihdRole, array_seed: u64) -> WihdDev {
        let array = PhasedArray::new(ArrayConfig::wihd_24(array_seed));
        WihdDev {
            cfg,
            role,
            codebook: Codebook::directional_default(ctx, &array),
            peer: None,
            paired: false,
            tx_sector: 0,
            queue_bytes: 0,
            bursting: false,
            video_on: true,
            next_beacon_at: SimTime::ZERO,
        }
    }
}

/// Personality of a device. The WiGig state is boxed: it carries two full
/// codebooks (~hundreds of KB of sampled patterns) and would bloat every
/// `Device` otherwise.
#[derive(Debug)]
pub enum DevKind {
    /// WiGig (D5000 dock or laptop station).
    Wigig(Box<WigigDev>),
    /// WiHD (DVDO source or sink).
    Wihd(Box<WihdDev>),
}

/// A device in the network.
#[derive(Debug)]
pub struct Device {
    /// Position and orientation.
    pub node: RadioNode,
    /// Conducted-power offset relative to the environment budget, dB.
    pub tx_power_offset_db: f64,
    /// Per-device carrier-sense threshold override (dBm). `None` uses the
    /// network-wide `MacParams::cs_threshold_dbm`. The §5 MAC-behaviour
    /// switching prototype sets this per device.
    pub cs_threshold_override_dbm: Option<f64>,
    /// Personality and protocol state.
    pub kind: DevKind,
    /// Counters.
    pub stats: DevStats,
}

impl Device {
    /// A docking station (canonical array seed `mmwave_phy::calib::DOCK_SEED`
    /// unless varied). Codebooks come from `ctx`'s per-context cache.
    pub fn wigig_dock(
        ctx: &SimCtx,
        label: &str,
        pos: Point,
        facing: Angle,
        array_seed: u64,
    ) -> Device {
        Device {
            node: RadioNode::new(0, label, pos, facing),
            tx_power_offset_db: WigigConfig::dock().tx_power_offset_db,
            cs_threshold_override_dbm: None,
            kind: DevKind::Wigig(Box::new(WigigDev::new(
                ctx,
                WigigConfig::dock(),
                WigigRole::Dock,
                array_seed,
            ))),
            stats: DevStats::default(),
        }
    }

    /// A laptop station (canonical array seed
    /// `mmwave_phy::calib::LAPTOP_SEED` unless varied).
    pub fn wigig_laptop(
        ctx: &SimCtx,
        label: &str,
        pos: Point,
        facing: Angle,
        array_seed: u64,
    ) -> Device {
        Device {
            node: RadioNode::new(0, label, pos, facing),
            tx_power_offset_db: WigigConfig::laptop().tx_power_offset_db,
            cs_threshold_override_dbm: None,
            kind: DevKind::Wigig(Box::new(WigigDev::new(
                ctx,
                WigigConfig::laptop(),
                WigigRole::Station,
                array_seed,
            ))),
            stats: DevStats::default(),
        }
    }

    /// A WiHD video source (canonical seed `mmwave_phy::calib::WIHD_TX_SEED`).
    pub fn wihd_source(
        ctx: &SimCtx,
        label: &str,
        pos: Point,
        facing: Angle,
        array_seed: u64,
    ) -> Device {
        let cfg = WihdConfig::default();
        Device {
            node: RadioNode::new(0, label, pos, facing),
            tx_power_offset_db: cfg.tx_power_offset_db,
            cs_threshold_override_dbm: None,
            kind: DevKind::Wihd(Box::new(WihdDev::new(
                ctx,
                cfg,
                WihdRole::Source,
                array_seed,
            ))),
            stats: DevStats::default(),
        }
    }

    /// A WiHD video sink (canonical seed `mmwave_phy::calib::WIHD_RX_SEED`).
    pub fn wihd_sink(
        ctx: &SimCtx,
        label: &str,
        pos: Point,
        facing: Angle,
        array_seed: u64,
    ) -> Device {
        let cfg = WihdConfig::default();
        Device {
            node: RadioNode::new(0, label, pos, facing),
            tx_power_offset_db: cfg.tx_power_offset_db,
            cs_threshold_override_dbm: None,
            kind: DevKind::Wihd(Box::new(WihdDev::new(ctx, cfg, WihdRole::Sink, array_seed))),
            stats: DevStats::default(),
        }
    }

    /// Resolve a pattern key against this device's codebooks.
    pub fn pattern(&self, key: PatKey) -> &AntennaPattern {
        match (&self.kind, key) {
            (DevKind::Wigig(w), PatKey::Dir(i)) => &w.codebook.sector(i).pattern,
            (DevKind::Wigig(w), PatKey::Qo(i)) => &w.qo.sector(i).pattern,
            (DevKind::Wihd(w), PatKey::Dir(i)) => &w.codebook.sector(i).pattern,
            // WiHD has no dedicated quasi-omni set; discovery reuses its
            // (already wide) sectors in shuffled order.
            (DevKind::Wihd(w), PatKey::Qo(i)) => &w.codebook.sector(i % w.codebook.len()).pattern,
        }
    }

    /// Stable cache identity of the pattern `key` resolves to — equal ids
    /// on one device always denote identical pattern samples. Directional
    /// sectors map to their index; WiGig quasi-omni entries carry a
    /// high-bit flag (they live in a separate codebook); the WiHD
    /// quasi-omni alias folds onto the directional sector that
    /// [`Device::pattern`] resolves it to, so the cache sees through the
    /// aliasing.
    pub fn pat_id(&self, key: PatKey) -> mmwave_channel::PatId {
        const QO_BIT: u32 = 1 << 31;
        mmwave_channel::PatId(match (&self.kind, key) {
            (DevKind::Wigig(_), PatKey::Dir(i)) => i as u32,
            (DevKind::Wigig(_), PatKey::Qo(i)) => QO_BIT | i as u32,
            (DevKind::Wihd(_), PatKey::Dir(i)) => i as u32,
            (DevKind::Wihd(w), PatKey::Qo(i)) => (i % w.codebook.len()) as u32,
        })
    }

    /// The pattern this device currently listens with: its trained sector
    /// when associated/paired, a quasi-omni otherwise.
    pub fn listen_key(&self) -> PatKey {
        match &self.kind {
            DevKind::Wigig(w) => {
                if w.state == WigigState::Associated {
                    PatKey::Dir(w.tx_sector)
                } else {
                    PatKey::Qo(0)
                }
            }
            DevKind::Wihd(w) => PatKey::Dir(w.tx_sector),
        }
    }

    /// Shorthand accessors.
    pub fn wigig(&self) -> Option<&WigigDev> {
        match &self.kind {
            DevKind::Wigig(w) => Some(w),
            _ => None,
        }
    }

    /// Mutable WiGig state, if this is a WiGig device.
    pub fn wigig_mut(&mut self) -> Option<&mut WigigDev> {
        match &mut self.kind {
            DevKind::Wigig(w) => Some(w),
            _ => None,
        }
    }

    /// WiHD state, if this is a WiHD device.
    pub fn wihd(&self) -> Option<&WihdDev> {
        match &self.kind {
            DevKind::Wihd(w) => Some(w),
            _ => None,
        }
    }

    /// Mutable WiHD state, if this is a WiHD device.
    pub fn wihd_mut(&mut self) -> Option<&mut WihdDev> {
        match &mut self.kind {
            DevKind::Wihd(w) => Some(w),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let d = Device::wigig_dock(
            &SimCtx::new(),
            "dock",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            13,
        );
        assert!(d.wigig().is_some());
        assert!(d.wihd().is_none());
        assert_eq!(d.wigig().expect("wigig").role, WigigRole::Dock);
        let s = Device::wihd_source(&SimCtx::new(), "tx", Point::new(1.0, 0.0), Angle::ZERO, 21);
        assert!(s.wihd().is_some());
        assert_eq!(s.wihd().expect("wihd").role, WihdRole::Source);
        assert!(s.tx_power_offset_db > 0.0, "WiHD runs hotter");
    }

    #[test]
    fn pattern_resolution() {
        let d = Device::wigig_dock(
            &SimCtx::new(),
            "dock",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            13,
        );
        let dir = d.pattern(PatKey::Dir(16));
        let qo = d.pattern(PatKey::Qo(3));
        assert!(dir.peak().gain_dbi > qo.peak().gain_dbi);
    }

    #[test]
    fn listen_key_follows_state() {
        let mut d = Device::wigig_laptop(
            &SimCtx::new(),
            "laptop",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            11,
        );
        assert_eq!(d.listen_key(), PatKey::Qo(0));
        {
            let w = d.wigig_mut().expect("wigig");
            w.state = WigigState::Associated;
            w.tx_sector = 7;
        }
        assert_eq!(d.listen_key(), PatKey::Dir(7));
    }

    #[test]
    fn wihd_qo_key_wraps() {
        let d = Device::wihd_sink(&SimCtx::new(), "rx", Point::new(0.0, 0.0), Angle::ZERO, 22);
        // Out-of-range quasi-omni index wraps instead of panicking.
        let _ = d.pattern(PatKey::Qo(1000));
    }

    #[test]
    fn pat_ids_alias_exactly_when_patterns_do() {
        // WiGig: quasi-omni 0 and sector 0 are different patterns and must
        // get different ids.
        let w = Device::wigig_laptop(
            &SimCtx::new(),
            "laptop",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            11,
        );
        assert_ne!(w.pat_id(PatKey::Qo(0)), w.pat_id(PatKey::Dir(0)));
        assert_ne!(w.pat_id(PatKey::Dir(1)), w.pat_id(PatKey::Dir(2)));
        // WiHD: Qo(i) resolves to the directional sector i % len, so the
        // ids must collapse the same way the patterns do.
        let h = Device::wihd_sink(&SimCtx::new(), "rx", Point::new(0.0, 0.0), Angle::ZERO, 22);
        let n = h.wihd().expect("wihd").codebook.len();
        assert_eq!(h.pat_id(PatKey::Qo(n + 2)), h.pat_id(PatKey::Dir(2)));
        assert!(std::ptr::eq(
            h.pattern(PatKey::Qo(n + 2)),
            h.pattern(PatKey::Dir(2))
        ));
    }
}
