//! The network: devices + medium + event loop.
//!
//! [`Net`] is a self-contained discrete-event simulation of one radio
//! scenario. It is deliberately *not* generic over a world type: the
//! transport crate drives it through a narrow interface — push MPDUs in,
//! step time forward, take deliveries out — so TCP and the MAC advance in
//! lock-step without either crate knowing the other's internals.

use crate::device::{DevKind, Device, PatKey, WigigState};
use crate::frame::{airtime, Frame, FrameClass, FrameKind, Mpdu};
use crate::medium::Medium;
use crate::params::MacParams;
use crate::scenario::{FaultKind, Scenario, ScenarioEvent, WorldMutation};
use crate::txlog::{TxLog, TxLogEntry};
use crate::{wigig, wihd};
use mmwave_channel::{Ar1Fading, CacheMode, Environment, PerturbationProcess, RadioNode};
use mmwave_geom::{Angle, Point, PropPath, Segment};
use mmwave_phy::{AntennaPattern, McsTable};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::hash::FastMap;
use mmwave_sim::queue::EventQueue;
use mmwave_sim::rng::SimRng;
use mmwave_sim::stats::BusyTracker;
use mmwave_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Network events.
#[derive(Debug)]
pub(crate) enum NetEv {
    /// A transmission finished.
    TxEnd { tx_id: u64 },
    /// Put a prepared frame on the air now.
    SendFrame {
        frame: Frame,
        pattern: PatKey,
        extra_power_db: f64,
    },
    /// Unassociated dock: emit a discovery sweep.
    DiscoveryTick { dev: usize },
    /// Association handshake finished; train and go to data phase.
    AssocComplete { dock: usize, station: usize },
    /// Periodic beacon exchange (dock side drives it).
    BeaconTick { dev: usize },
    /// CSMA attempt to begin a TXOP.
    TxopAttempt { dev: usize },
    /// Send the next data PPDU inside the current TXOP.
    TxopData { dev: usize },
    /// No CTS arrived after our RTS.
    CtsTimeout { dev: usize },
    /// No ACK arrived after our data frame.
    AckTimeout { dev: usize },
    /// WiHD sink beacon.
    WihdBeaconTick { dev: usize },
    /// WiHD source: new video frame enters the queue.
    WihdVideoTick { dev: usize },
    /// WiHD source: transmit the next queued data frame.
    WihdSendNext { dev: usize },
    /// Unpaired WiHD source: emit a discovery sweep.
    WihdDiscoveryTick { dev: usize },
    /// WiHD pairing completes.
    WihdPairComplete { source: usize, sink: usize },
    /// Apply the `idx`-th installed scenario mutation.
    Scenario { idx: usize },
}

/// Something the MAC hands up to the transport layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// An MPDU arrived at `dev`.
    Mpdu {
        /// Receiving device.
        dev: usize,
        /// Sending device.
        src: usize,
        /// Payload bytes.
        bytes: u32,
        /// Transport cookie from [`Net::push_mpdu`].
        tag: u64,
    },
    /// The sender gave up on these MPDUs after the retry limit.
    Dropped {
        /// Sending device.
        dev: usize,
        /// Transport cookies of the dropped MPDUs.
        tags: Vec<u64>,
    },
}

/// Network-level configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Root seed for all stochastic processes.
    pub seed: u64,
    /// Shared MAC timing.
    pub params: MacParams,
    /// Power boost of control/beacon/discovery frames over data frames,
    /// dB (§3.2: control frames are "transmitted with higher power").
    pub control_power_offset_db: f64,
    /// Enable the slow AR(1) fading process on every link.
    pub enable_fading: bool,
    /// Enable the sparse perturbation process (beam-realignment trigger).
    pub enable_perturbations: bool,
    /// Minimum SNR (dB) a WiGig link must sustain; below this the devices
    /// drop the association instead of riding low MCS levels. The value is
    /// the MCS-3 selection point (threshold + rate-adapter margin): the
    /// dock's wireless-bus tunneling needs ≈ 1 Gb/s of PHY rate, so links
    /// that cannot hold MCS 3 disconnect — reproducing §4.1's "links …
    /// often break before the transmitter switches to rates below 1 gbps"
    /// and the abrupt per-run throughput fall of Fig. 13.
    pub min_link_snr_db: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            seed: 1,
            params: MacParams::default(),
            control_power_offset_db: 6.0,
            enable_fading: true,
            enable_perturbations: false,
            min_link_snr_db: 8.5,
        }
    }
}

/// A passive utilization monitor: a position + antenna + threshold whose
/// busy time accumulates for the whole run (the cheap equivalent of
/// parking a Vubiq for seven minutes — Fig. 22's methodology).
#[derive(Debug)]
pub struct UtilizationMonitor {
    node: RadioNode,
    pattern: AntennaPattern,
    threshold_dbm: f64,
    busy: BusyTracker,
    started: SimTime,
    paths: HashMap<usize, Vec<PropPath>>,
}

/// A radio scenario under simulation.
pub struct Net {
    /// The propagation environment.
    pub env: Environment,
    /// The simulation context: counter sink, cache-mode policy, and the
    /// per-context codebook cache every device construction draws from.
    ctx: SimCtx,
    pub(crate) cfg: NetConfig,
    pub(crate) devices: Vec<Device>,
    pub(crate) medium: Medium,
    pub(crate) queue: EventQueue<NetEv>,
    now: SimTime,
    pub(crate) rng: SimRng,
    pub(crate) txlog: TxLog,
    pub(crate) delivered: Vec<Delivery>,
    fading: FastMap<(usize, usize), Ar1Fading>,
    pub(crate) perturb: FastMap<(usize, usize), PerturbationProcess>,
    pub(crate) seq: u64,
    monitors: Vec<UtilizationMonitor>,
    pub(crate) mcs_table: McsTable,
    /// Installed scenario mutations, indexed by `NetEv::Scenario { idx }`.
    scenario_events: Vec<ScenarioEvent>,
    /// Open fault windows: (target device, kind, end time).
    active_faults: Vec<(usize, FaultKind, SimTime)>,
    /// Scenario mutations applied so far.
    n_scenario_mutations: u64,
    /// Frames forced to fail by fault windows so far.
    n_faults_injected: u64,
    /// Reusable fading-offset buffer for [`Net::start_tx`] (one entry per
    /// device, rebuilt per frame without reallocating).
    offsets_scratch: Vec<f64>,
    /// Memoized `Mcs::per` evaluations keyed bit-exactly on
    /// `(mcs, sinr, bits, noise floor)`. On a static link every data frame
    /// evaluates the waterfall at identical inputs, so this trades two
    /// libm calls per frame for a short linear scan. Exact keys mean the
    /// cached value is exactly what a fresh evaluation would return.
    per_memo: Vec<((u8, u64, u64, u64), f64)>,
    /// Memoized noise terms keyed on the bits of the environment's noise
    /// floor: `(dbm_bits, noise_lin, lin_to_db(noise_lin))`. The
    /// interference-free SINR path (the overwhelmingly common case on a
    /// single link) then needs no libm calls at all; `x + 0.0 == x`
    /// bitwise for the positive `noise_lin`, so reusing the converted
    /// value is exact.
    noise_memo: Option<(u64, f64, f64)>,
}

impl Net {
    /// Build an empty network in `env`, reporting into a fresh private
    /// context.
    pub fn new(env: Environment, cfg: NetConfig) -> Net {
        Net::with_ctx(env, cfg, &SimCtx::new())
    }

    /// Build an empty network wired to `ctx`: the event queue, the
    /// link-gain cache, the codebook cache of every device added later,
    /// and the scenario/fault counters all report into (and read policy
    /// from) that context.
    pub fn with_ctx(env: Environment, cfg: NetConfig, ctx: &SimCtx) -> Net {
        let rng = SimRng::root(cfg.seed).stream("mac-net");
        Net {
            env,
            ctx: ctx.clone(),
            cfg,
            devices: Vec::new(),
            medium: Medium::with_ctx(ctx),
            queue: EventQueue::with_ctx(ctx),
            now: SimTime::ZERO,
            rng,
            txlog: TxLog::new(),
            delivered: Vec::new(),
            fading: FastMap::default(),
            perturb: FastMap::default(),
            seq: 0,
            monitors: Vec::new(),
            mcs_table: McsTable::ieee_802_11ad(),
            scenario_events: Vec::new(),
            active_faults: Vec::new(),
            n_scenario_mutations: 0,
            n_faults_injected: 0,
            offsets_scratch: Vec::new(),
            per_memo: Vec::new(),
            noise_memo: None,
        }
    }

    /// Build an empty network with an explicit link-gain cache mode on a
    /// private context — the constructor differential tests use so
    /// Cached-vs-Bypass comparisons need no shared state.
    pub fn with_cache_mode(env: Environment, cfg: NetConfig, mode: CacheMode) -> Net {
        Net::with_ctx(env, cfg, &SimCtx::with_cache_mode(mode))
    }

    /// The simulation context this network reports into.
    pub fn ctx(&self) -> &SimCtx {
        &self.ctx
    }

    // ------------------------------------------------------------------
    // Scenario construction
    // ------------------------------------------------------------------

    /// Add a device; returns its index.
    pub fn add_device(&mut self, mut dev: Device) -> usize {
        let id = self.devices.len();
        dev.node.id = mmwave_channel::NodeId(id);
        let position = dev.node.position;
        self.devices.push(dev);
        // A new device cannot have cached state yet — register it with the
        // radiometric cache without flushing existing pairs.
        self.medium.link_cache_mut().ensure_device(id);
        self.medium.note_device_position(&self.env, id, position);
        id
    }

    /// Enable spatial interference pruning on the medium over the devices
    /// added so far (see [`Medium::enable_spatial`]). The prune mode comes
    /// from the context override when installed
    /// ([`mmwave_channel::spatial::install_override`]), defaulting to
    /// enforcement.
    pub fn enable_spatial(&mut self, cfg: &mmwave_channel::SpatialConfig) {
        let mode = mmwave_channel::spatial::override_of(&self.ctx).unwrap_or_default();
        let positions: Vec<Point> = self.devices.iter().map(|d| d.node.position).collect();
        self.medium.enable_spatial(&self.env, cfg, mode, &positions);
    }

    /// Pre-wire two devices as a link (peer assignment only; association
    /// still happens through discovery unless
    /// [`Net::associate_instantly`] is used).
    pub fn pair(&mut self, a: usize, b: usize) {
        match &mut self.devices[a].kind {
            DevKind::Wigig(w) => w.peer = Some(b),
            DevKind::Wihd(w) => w.peer = Some(b),
        }
        match &mut self.devices[b].kind {
            DevKind::Wigig(w) => w.peer = Some(a),
            DevKind::Wihd(w) => w.peer = Some(a),
        }
    }

    /// Register a passive utilization monitor. `threshold_dbm` mirrors the
    /// paper's detection threshold.
    pub fn add_monitor(
        &mut self,
        position: Point,
        orientation: Angle,
        pattern: AntennaPattern,
        threshold_dbm: f64,
    ) -> usize {
        self.monitors.push(UtilizationMonitor {
            node: RadioNode::new(
                usize::MAX - self.monitors.len(),
                "monitor",
                position,
                orientation,
            ),
            pattern,
            threshold_dbm,
            busy: BusyTracker::new(),
            started: self.now,
            paths: HashMap::new(),
        });
        self.monitors.len() - 1
    }

    /// The measured utilization of a monitor since it was added (or since
    /// `from`, if later).
    pub fn monitor_utilization(&self, idx: usize, from: SimTime) -> f64 {
        let m = &self.monitors[idx];
        let start = m.started.max(from);
        m.busy.utilization(start, self.now)
    }

    /// Kick off the protocol machinery: discovery ticks for unassociated
    /// docks and unpaired WiHD sources. Call once after adding devices.
    pub fn start(&mut self) {
        for i in 0..self.devices.len() {
            match &self.devices[i].kind {
                DevKind::Wigig(w)
                    if w.role == crate::device::WigigRole::Dock
                        && w.state == WigigState::Unassociated =>
                {
                    // First sweep after a short stagger so co-located docks
                    // don't sweep in lockstep.
                    let stagger = SimDuration::from_micros(137 * (i as u64 + 1));
                    self.queue
                        .schedule(self.now + stagger, NetEv::DiscoveryTick { dev: i });
                }
                DevKind::Wihd(w) if w.role == crate::device::WihdRole::Source && !w.paired => {
                    let stagger = SimDuration::from_micros(211 * (i as u64 + 1));
                    self.queue
                        .schedule(self.now + stagger, NetEv::WihdDiscoveryTick { dev: i });
                }
                _ => {}
            }
        }
    }

    /// Skip discovery: train the pair and enter the data phase right away.
    /// Most experiments use this; the discovery path itself is exercised by
    /// Table 1 / Fig. 3.
    pub fn associate_instantly(&mut self, dock: usize, station: usize) {
        self.pair(dock, station);
        wigig::complete_association(self, dock, station);
    }

    /// Skip WiHD pairing: train and start beacon/video timers right away.
    pub fn pair_wihd_instantly(&mut self, source: usize, sink: usize) {
        self.pair(source, sink);
        wihd::complete_pairing(self, source, sink);
    }

    /// Install a scripted [`Scenario`]: every mutation is scheduled into
    /// the simulation event queue at its scripted time, so world changes
    /// interleave with MAC events in deterministic timestamp order. May be
    /// called more than once; later installs append.
    pub fn install_scenario(&mut self, scenario: Scenario) {
        for ev in scenario.into_sorted_events() {
            let idx = self.scenario_events.len();
            debug_assert!(ev.at >= self.now, "scenario event in the past");
            self.queue
                .schedule(ev.at.max(self.now), NetEv::Scenario { idx });
            self.scenario_events.push(ev);
        }
    }

    /// Scenario mutations applied so far.
    pub fn scenario_mutations(&self) -> u64 {
        self.n_scenario_mutations
    }

    /// Frames forced to fail by injected fault windows so far.
    pub fn faults_injected(&self) -> u64 {
        self.n_faults_injected
    }

    /// Apply one installed scenario mutation (from the event queue).
    fn apply_scenario(&mut self, idx: usize) {
        let mutation = self.scenario_events[idx].mutation.clone();
        self.n_scenario_mutations += 1;
        self.ctx.record_scenario_mutation();
        match mutation {
            WorldMutation::MoveDevice {
                dev,
                position,
                orientation,
            } => {
                self.move_device(dev, position, orientation);
            }
            WorldMutation::MoveObstacle { wall, seg } => {
                let old = self.env.room.walls()[wall].seg;
                self.env.room.set_wall_segment(wall, seg);
                self.invalidate_wall_mutation(&[old, seg]);
            }
            WorldMutation::SetObstacleEnabled { wall, enabled } => {
                let seg = self.env.room.walls()[wall].seg;
                self.env.room.set_wall_enabled(wall, enabled);
                self.invalidate_wall_mutation(&[seg]);
            }
            WorldMutation::SetVideo { dev, on } => self.set_video(dev, on),
            WorldMutation::InjectFaults { dev, kind, until } => {
                let now = self.now;
                // Drop closed windows while installing the new one.
                self.active_faults.retain(|&(_, _, end)| end > now);
                self.active_faults.push((dev, kind, until));
            }
        }
    }

    /// Is an injected fault window forcing frames of `class` addressed to
    /// `dst` to fail right now?
    fn fault_active(&self, dst: usize, class: FrameClass) -> bool {
        self.active_faults.iter().any(|&(dev, kind, until)| {
            dev == dst
                && self.now < until
                && match kind {
                    FaultKind::AllFrames => true,
                    FaultKind::BeaconsOnly => {
                        matches!(class, FrameClass::Beacon | FrameClass::WihdBeacon)
                    }
                }
        })
    }

    /// Turn a WiHD source's video stream on or off (Fig. 23's power
    /// switch).
    pub fn set_video(&mut self, dev: usize, on: bool) {
        if let Some(w) = self.devices[dev].wihd_mut() {
            w.video_on = on;
            if !on {
                w.queue_bytes = 0;
            }
        }
    }

    // ------------------------------------------------------------------
    // Transport interface
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Enqueue an MPDU on `dev` towards its peer. Returns false (and
    /// drops) if the device has no associated peer.
    pub fn push_mpdu(&mut self, dev: usize, bytes: u32, tag: u64) -> bool {
        let now = self.now;
        let batch_ready = {
            let Some(w) = self.devices[dev].wigig_mut() else {
                return false;
            };
            if w.state != WigigState::Associated {
                return false;
            }
            if w.queue.is_empty() {
                w.oldest_wait_start = now;
            }
            w.queue.push_back(Mpdu { bytes, tag });
            // Crossing the batch threshold wakes a sender waiting out its
            // batch timer.
            w.queue.len() == w.cfg.min_aggregation
        };
        wigig::maybe_contend(self, dev, SimDuration::ZERO);
        if batch_ready {
            let aifs = self.cfg.params.aifs();
            self.queue.schedule(now + aifs, NetEv::TxopAttempt { dev });
        }
        true
    }

    /// Outbound queue length of a device (MPDUs).
    pub fn queue_len(&self, dev: usize) -> usize {
        self.devices[dev]
            .wigig()
            .map(|w| w.queue.len())
            .unwrap_or(0)
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Process one event. Returns false if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now);
        self.now = at;
        self.dispatch(ev);
        true
    }

    /// Process every event up to `horizon` and advance the clock to it.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
        if horizon > self.now {
            self.now = horizon;
        }
    }

    /// Drain the MPDUs (and drop notices) delivered since the last call.
    pub fn take_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.delivered)
    }

    /// [`Self::take_deliveries`] into a caller-owned buffer: `out` is
    /// cleared, receives the pending deliveries, and donates its
    /// allocation back to the net — so a driver polling every step never
    /// allocates in steady state.
    pub fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery>) {
        out.clear();
        std::mem::swap(&mut self.delivered, out);
    }

    /// Snapshot the MAC-level measurement of `dev` the transport layer's
    /// congestion plane consumes: airtime share since run start, the
    /// current ACK-loss streak, and whether the link is trained. Pure
    /// read — touches no RNG stream and schedules nothing.
    pub fn mac_measurement(&self, dev: usize) -> crate::stats::MacMeasurement {
        let elapsed_ns = self.now.as_nanos();
        let airtime_share = if elapsed_ns == 0 {
            0.0
        } else {
            self.devices[dev].stats.tx_airtime_ns as f64 / elapsed_ns as f64
        };
        match self.devices[dev].wigig() {
            Some(w) => crate::stats::MacMeasurement {
                airtime_share,
                ack_loss_streak: w.ack_fail_streak,
                associated: w.state == WigigState::Associated,
            },
            None => crate::stats::MacMeasurement {
                airtime_share,
                ack_loss_streak: 0,
                associated: false,
            },
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Device accessor.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// Mutable device accessor. Invalidate the medium path cache yourself
    /// if you move a device (see [`Net::move_device`]).
    pub fn device_mut(&mut self, i: usize) -> &mut Device {
        &mut self.devices[i]
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The shared medium (cache statistics, spatial-prune introspection).
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// Pattern-weighted received power from `src` (radiating `pattern`)
    /// at `dst`, dBm, before fading — the radiometric primitive exposed
    /// for analyses that need link budgets of a live scenario.
    pub fn medium_rx_power_dbm(&mut self, src: usize, pattern: PatKey, dst: usize) -> f64 {
        self.medium
            .rx_power_dbm(&self.env, &self.devices, src, pattern, dst, 0.0)
    }

    /// Move/rotate a device, invalidating exactly the cached state the
    /// change affects: a position change bumps the device's path+gain
    /// generation, a pure rotation bumps gains only (interned geometry
    /// stays valid). Unrelated device pairs keep their cached entries.
    pub fn move_device(&mut self, i: usize, position: Point, orientation: Angle) {
        let node = &mut self.devices[i].node;
        let moved = node.position != position;
        let rotated = node.orientation != orientation;
        node.position = position;
        node.orientation = orientation;
        if moved {
            self.medium.link_cache_mut().bump_position(i);
            self.medium.note_device_position(&self.env, i, position);
            // Monitors trace their own paths per transmitter; only those
            // from the moved device are stale.
            for m in &mut self.monitors {
                m.paths.remove(&i);
            }
        } else if rotated {
            self.medium.link_cache_mut().bump_orientation(i);
        }
    }

    /// Drop every cached propagation path. Call after mutating the
    /// environment's room (e.g. a person walking into the line of sight).
    pub fn invalidate_geometry(&mut self) {
        self.medium.invalidate_paths();
        for m in &mut self.monitors {
            m.paths.clear();
        }
    }

    /// Invalidate cached state after a wall mutation, scoped to the opaque
    /// zones the wall lies in when that is provably sufficient.
    ///
    /// Under the closed-zone contract ([`mmwave_geom::Room::add_zone`]) no
    /// propagation path enters a foreign zone, so a wall wholly inside
    /// zone Z can only perturb pairs with an endpoint in Z: bumping the
    /// position generation of Z's devices re-traces exactly those pairs
    /// while every cross-zone entry survives. Falls back to the global
    /// flush whenever the scoping argument does not hold — no zones
    /// declared, the wall not contained in any zone, or any device or
    /// monitor outside every zone. Toggling a zone's *boundary* wall
    /// breaches the contract itself and is the caller's responsibility
    /// (audit-mode spatial pruning panics on the resulting leakage).
    fn invalidate_wall_mutation(&mut self, segs: &[Segment]) {
        let affected: Option<Vec<usize>> = (|| {
            let room = &self.env.room;
            if room.zones().is_empty() {
                return None;
            }
            let mut affected: Vec<usize> = Vec::new();
            for &seg in segs {
                let zs = room.zones_of_segment(seg);
                if zs.is_empty() {
                    return None; // influence not bounded by any zone
                }
                for z in zs {
                    if !affected.contains(&z) {
                        affected.push(z);
                    }
                }
            }
            for d in &self.devices {
                if room.zone_of(d.node.position).is_none() {
                    return None;
                }
            }
            for m in &self.monitors {
                if room.zone_of(m.node.position).is_none() {
                    return None;
                }
            }
            Some(affected)
        })();
        let Some(affected) = affected else {
            self.invalidate_geometry();
            return;
        };
        for i in 0..self.devices.len() {
            let z = self.env.room.zone_of(self.devices[i].node.position);
            if z.is_some_and(|z| affected.contains(&z)) {
                self.medium.link_cache_mut().bump_position(i);
                for m in &mut self.monitors {
                    m.paths.remove(&i);
                }
            }
        }
        for m in &mut self.monitors {
            if self
                .env
                .room
                .zone_of(m.node.position)
                .is_some_and(|z| affected.contains(&z))
            {
                m.paths.clear();
            }
        }
        self.ctx.record_spatial_zone_invalidation();
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The transmission log.
    pub fn txlog(&self) -> &TxLog {
        &self.txlog
    }

    /// Mutable transmission log (to set windows / clear).
    pub fn txlog_mut(&mut self) -> &mut TxLog {
        &mut self.txlog
    }

    /// The shared RNG (labelled substreams derive from the net seed).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    // ------------------------------------------------------------------
    // Internals shared with the protocol modules
    // ------------------------------------------------------------------

    /// Fading offset for the directed link `a → b` at the current time.
    pub(crate) fn link_offset_db(&mut self, a: usize, b: usize) -> f64 {
        if !self.cfg.enable_fading {
            return 0.0;
        }
        let key = (a.min(b), a.max(b));
        let now = self.now;
        let seed_rng = SimRng::root(self.cfg.seed);
        self.fading
            .entry(key)
            .or_insert_with(|| {
                Ar1Fading::indoor_default(
                    seed_rng.stream_n("link-fading", (key.0 as u64) << 32 | key.1 as u64),
                )
            })
            .level_at(now)
    }

    /// Put a frame on the air now; returns `(tx id, end time)`.
    pub(crate) fn start_tx(
        &mut self,
        frame: Frame,
        pattern: PatKey,
        extra_power_db: f64,
    ) -> (u64, SimTime) {
        let src = frame.src;
        let sub_dur = match &self.devices[src].kind {
            DevKind::Wigig(w) => w.cfg.discovery_sub_duration,
            DevKind::Wihd(w) => w.cfg.discovery_sub_duration,
        };
        let dur = airtime(&self.cfg.params, &frame.kind, sub_dur);
        let start = self.now;
        let end = start + dur;

        let mut offsets = std::mem::take(&mut self.offsets_scratch);
        offsets.clear();
        for d in 0..self.devices.len() {
            offsets.push(if d == src {
                0.0
            } else {
                self.link_offset_db(src, d)
            });
        }

        let class = frame.kind.class();
        let dst = frame.dst;
        let seq = frame.seq;
        let mcs = match &frame.kind {
            FrameKind::Data { mcs, .. } => Some(*mcs),
            _ => None,
        };
        let tx_id = self.medium.begin_tx(
            &self.env,
            &self.devices,
            frame,
            pattern,
            extra_power_db,
            start,
            end,
            &offsets,
        );
        let src_node = &self.devices[src].node;
        self.txlog.push(TxLogEntry {
            start,
            end,
            src,
            src_position: src_node.position,
            src_orientation: src_node.orientation,
            dst,
            class,
            pattern,
            mcs,
            seq,
            delivered: None,
        });
        self.devices[src].stats.frames_tx += 1;
        self.devices[src].stats.tx_airtime_ns += dur.as_nanos();
        self.record_monitors(src, pattern, extra_power_db, start, end);
        self.offsets_scratch = offsets;
        self.queue.schedule(end, NetEv::TxEnd { tx_id });
        (tx_id, end)
    }

    /// Allocate the next frame sequence number.
    pub(crate) fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn record_monitors(
        &mut self,
        src: usize,
        pattern: PatKey,
        extra_power_db: f64,
        start: SimTime,
        end: SimTime,
    ) {
        if self.monitors.is_empty() {
            return;
        }
        let dev = &self.devices[src];
        let tx_pattern = dev.pattern(pattern);
        for m in &mut self.monitors {
            let paths = m
                .paths
                .entry(src)
                .or_insert_with(|| self.env.paths(dev.node.position, m.node.position));
            let lin: f64 = paths
                .iter()
                .map(|p| {
                    let ga = dev.node.gain_toward(tx_pattern, p.departure);
                    let gb = m.node.gain_toward(&m.pattern, p.arrival);
                    mmwave_phy::db_to_lin(
                        self.env.budget.rx_power_dbm(ga, gb, p)
                            + dev.tx_power_offset_db
                            + extra_power_db
                            - self.env.extra_loss_db,
                    )
                })
                .sum();
            if mmwave_phy::lin_to_db(lin) > m.threshold_dbm {
                m.busy.add(start, end);
            }
        }
    }

    fn dispatch(&mut self, ev: NetEv) {
        match ev {
            NetEv::TxEnd { tx_id } => self.on_tx_end(tx_id),
            NetEv::SendFrame {
                frame,
                pattern,
                extra_power_db,
            } => {
                self.start_tx(frame, pattern, extra_power_db);
            }
            NetEv::DiscoveryTick { dev } => wigig::on_discovery_tick(self, dev),
            NetEv::AssocComplete { dock, station } => {
                wigig::complete_association(self, dock, station)
            }
            NetEv::BeaconTick { dev } => wigig::on_beacon_tick(self, dev),
            NetEv::TxopAttempt { dev } => wigig::on_txop_attempt(self, dev),
            NetEv::TxopData { dev } => wigig::send_next_data(self, dev),
            NetEv::CtsTimeout { dev } => wigig::on_cts_timeout(self, dev),
            NetEv::AckTimeout { dev } => wigig::on_ack_timeout(self, dev),
            NetEv::WihdBeaconTick { dev } => wihd::on_beacon_tick(self, dev),
            NetEv::WihdVideoTick { dev } => wihd::on_video_tick(self, dev),
            NetEv::WihdSendNext { dev } => wihd::send_next(self, dev),
            NetEv::WihdDiscoveryTick { dev } => wihd::on_discovery_tick(self, dev),
            NetEv::WihdPairComplete { source, sink } => wihd::complete_pairing(self, source, sink),
            NetEv::Scenario { idx } => self.apply_scenario(idx),
        }
    }

    fn on_tx_end(&mut self, tx_id: u64) {
        let cs_thr = self.cfg.params.cs_threshold_dbm;
        let Some(tx) = self.medium.finish_tx(tx_id, cs_thr) else {
            return;
        };
        // Decide delivery for addressed frames.
        let delivered = tx.frame.dst.map(|dst| {
            if self.fault_active(dst, tx.frame.kind.class()) {
                // Injected fault window: the frame fails outright, without
                // consuming a PER draw (with no windows installed the RNG
                // stream is untouched and runs reproduce exactly).
                self.n_faults_injected += 1;
                self.ctx.record_fault_injected();
                self.devices[dst].stats.rx_corrupted += 1;
                false
            } else if tx.dst_was_busy {
                false
            } else {
                let (noise_lin, noise_db) = self.noise_terms();
                let sinr = if tx.interference_lin == 0.0 {
                    tx.power_at[dst] - noise_db
                } else {
                    tx.power_at[dst] - mmwave_phy::lin_to_db(noise_lin + tx.interference_lin)
                };
                let (mcs_idx, bits) = match &tx.frame.kind {
                    FrameKind::Data { mcs, mpdus, .. } => {
                        (*mcs, crate::frame::data_bits(&self.cfg.params, mpdus))
                    }
                    FrameKind::Rts | FrameKind::Cts | FrameKind::Ack => (1, 200),
                    FrameKind::WihdData { bytes } => (7, *bytes as u64 * 8),
                    _ => (0, 300),
                };
                let per = self.cached_per(mcs_idx, sinr, bits);
                let ok = !self.rng.chance(per);
                if !ok {
                    self.devices[dst].stats.rx_corrupted += 1;
                }
                ok
            }
        });
        if let Some(ok) = delivered {
            self.txlog.mark_delivered(tx.frame.seq, ok);
        }
        match tx.frame.kind.class() {
            FrameClass::Beacon
            | FrameClass::Control
            | FrameClass::Data
            | FrameClass::Ack
            | FrameClass::Training
            | FrameClass::DiscoverySub => wigig::on_frame_end(self, &tx, delivered),
            FrameClass::WihdBeacon | FrameClass::WihdData => {
                wihd::on_frame_end(self, &tx, delivered)
            }
        }
        self.medium.recycle_power(tx.power_at);
    }

    /// Noise floor as `(linear mW, dB)` via the `noise_memo` field.
    fn noise_terms(&mut self) -> (f64, f64) {
        let dbm = self.env.noise_floor_dbm();
        if let Some((bits, lin, db)) = self.noise_memo {
            if bits == dbm.to_bits() {
                return (lin, db);
            }
        }
        let lin = mmwave_phy::db_to_lin(dbm);
        let db = mmwave_phy::lin_to_db(lin);
        self.noise_memo = Some((dbm.to_bits(), lin, db));
        (lin, db)
    }

    /// `Mcs::per` behind a bit-exact memo (see the `per_memo` field).
    fn cached_per(&mut self, mcs_idx: u8, sinr_db: f64, bits: u64) -> f64 {
        let noise = self.env.noise_floor_dbm();
        let key = (mcs_idx, sinr_db.to_bits(), bits, noise.to_bits());
        if let Some(&(_, p)) = self.per_memo.iter().find(|(k, _)| *k == key) {
            return p;
        }
        let p = self.mcs_table.get(mcs_idx).per(sinr_db, bits, noise);
        // A handful of live keys (one per frame shape per link); evict the
        // oldest once a changing scene pushes past that.
        if self.per_memo.len() >= 8 {
            self.per_memo.remove(0);
        }
        self.per_memo.push((key, p));
        p
    }
}
