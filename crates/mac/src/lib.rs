//! # mmwave-mac — the devices under test, as state machines
//!
//! This crate models the two consumer 60 GHz systems the paper measures,
//! at the granularity the paper observes them: frames on a shared medium.
//!
//! * **WiGig (Dell D5000 dock + Latitude laptop)** — §4.1's protocol
//!   anatomy: device-discovery sweeps of 32 quasi-omni sub-elements every
//!   102.4 ms, an association/beam-training handshake, then a data phase of
//!   CSMA/CA TXOP bursts (≤ 2 ms) opened by an RTS/CTS exchange and filled
//!   with A-MPDU data / ACK pairs, plus a 1.1 ms beacon exchange that
//!   doubles as the SNR-measurement and beam-realignment hook.
//! * **WiHD (DVDO Air-3c)** — sink-driven TDD: beacons every 0.224 ms,
//!   variable-length video data frames, **no carrier sensing whatsoever**
//!   (§4.1: "The WiHD system does not seem to perform channel sensing"),
//!   which is precisely why it interferes (§4.4).
//!
//! The [`medium`] arbiter tracks every concurrent transmission, computes
//! pattern-weighted receive powers through the channel crate, accumulates
//! interference per reception and draws frame errors from the PER model.
//! Every transmission is also appended to a [`txlog`] that the capture
//! pipeline replays into oscilloscope traces — the simulation equivalent
//! of parking a Vubiq next to the devices.
//!
//! ## Example
//!
//! ```
//! use mmwave_channel::Environment;
//! use mmwave_geom::{Angle, Point, Room};
//! use mmwave_mac::{Device, Net, NetConfig};
//! use mmwave_sim::time::SimTime;
//!
//! let mut net = Net::new(Environment::new(Room::open_space()), NetConfig::default());
//! let dock = net.add_device(Device::wigig_dock(
//!     net.ctx(), "dock", Point::new(0.0, 0.0), Angle::ZERO, 13));
//! let laptop = net.add_device(Device::wigig_laptop(
//!     net.ctx(), "laptop", Point::new(2.0, 0.0), Angle::from_degrees(180.0), 11));
//! net.associate_instantly(dock, laptop);
//! net.push_mpdu(dock, 1500, 42);
//! net.run_until(SimTime::from_millis(1));
//! let delivered = net.take_deliveries();
//! assert!(matches!(delivered[0], mmwave_mac::Delivery::Mpdu { tag: 42, .. }));
//! ```

pub mod device;
pub mod frame;
pub mod medium;
pub mod net;
pub mod params;
pub mod scenario;
pub mod stats;
pub mod training;
pub mod txlog;
pub mod wigig;
pub mod wihd;

pub use device::{DevKind, Device, DeviceId, PatKey};
pub use frame::{Frame, FrameClass, FrameKind};
pub use net::{Delivery, Net, NetConfig};
pub use params::{MacParams, WigigConfig, WihdConfig};
pub use scenario::{FaultKind, Scenario, ScenarioEvent, WorldMutation};
pub use stats::{DevStats, MacMeasurement};
pub use txlog::{TxLog, TxLogEntry};
