//! Per-device counters.

/// Counters a device accumulates over a run. These are the MAC-level
//  ground truth the capture-based analyses are validated against.
#[derive(Clone, Copy, Debug, Default)]
pub struct DevStats {
    /// Frames transmitted (all classes).
    pub frames_tx: u64,
    /// Data PPDUs transmitted (including retransmissions).
    pub data_tx: u64,
    /// Data PPDUs that were retransmissions.
    pub data_retx: u64,
    /// MPDUs delivered to this device.
    pub mpdus_rx: u64,
    /// Payload bytes delivered to this device.
    pub bytes_rx: u64,
    /// ACKs received (as transmitter).
    pub acks_rx: u64,
    /// ACK timeouts experienced (frame presumed lost).
    pub ack_timeouts: u64,
    /// MPDU batches dropped after the retry limit.
    pub drops: u64,
    /// TXOP attempts deferred because the medium was sensed busy.
    pub cs_defers: u64,
    /// Frames that arrived with a failed PER draw (corrupted).
    pub rx_corrupted: u64,
    /// Beacons transmitted.
    pub beacons_tx: u64,
    /// Discovery sweeps transmitted.
    pub discovery_sweeps: u64,
    /// Beam retrainings performed (association + realignments).
    pub retrains: u64,
    /// Cumulative airtime of transmitted frames (all classes), ns.
    pub tx_airtime_ns: u64,
}

impl DevStats {
    /// Frame loss ratio among transmitted data PPDUs.
    pub fn data_loss_ratio(&self) -> f64 {
        if self.data_tx == 0 {
            0.0
        } else {
            self.ack_timeouts as f64 / self.data_tx as f64
        }
    }

    /// Retransmission ratio among transmitted data PPDUs.
    pub fn retx_ratio(&self) -> f64 {
        if self.data_tx == 0 {
            0.0
        } else {
            self.data_retx as f64 / self.data_tx as f64
        }
    }
}

/// A folded MAC-level measurement the transport layer reads per flow —
/// the off-datapath congestion plane's view of the link (airtime burned,
/// loss streak, association state). Snapshotted by
/// [`crate::Net::mac_measurement`]; the transport stack folds it into the
/// flow's next congestion report.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MacMeasurement {
    /// Fraction of elapsed run time this device spent transmitting.
    pub airtime_share: f64,
    /// Consecutive ACK timeouts at the MAC (loss-streak; resets on any
    /// delivered frame).
    pub ack_loss_streak: u8,
    /// True while the device holds a trained association.
    pub associated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let s = DevStats::default();
        assert_eq!(s.data_loss_ratio(), 0.0);
        assert_eq!(s.retx_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = DevStats {
            data_tx: 10,
            ack_timeouts: 2,
            data_retx: 3,
            ..Default::default()
        };
        assert!((s.data_loss_ratio() - 0.2).abs() < 1e-12);
        assert!((s.retx_ratio() - 0.3).abs() < 1e-12);
    }
}
