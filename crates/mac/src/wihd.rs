//! The WiHD (DVDO Air-3c) protocol model.
//!
//! Sink-driven TDD, as observed in §4.1 / Fig. 15: the sink emits beacons
//! every 224 µs; after a beacon, the source transmits queued video data as
//! a train of variable-length frames with no acknowledgements — and,
//! crucially, **without any carrier sensing**, which is what makes this
//! system the interferer of §4.4.

use crate::device::PatKey;
use crate::frame::{Frame, FrameKind};
use crate::medium::ActiveTx;
use crate::net::{Net, NetEv};
use crate::training;
use mmwave_sim::time::SimDuration;

/// Margin over control sensitivity for pairing reachability.
const PAIRING_MARGIN_DB: f64 = 3.0;

/// Unpaired source: sweep discovery sub-elements in shuffled order
/// (§4.2: "their order changes with every transmitted device discovery
/// frame"), then check whether the sink responded.
pub(crate) fn on_discovery_tick(net: &mut Net, dev: usize) {
    let (paired, n_subs, sub_dur, interval) = {
        let Some(w) = net.devices[dev].wihd() else {
            return;
        };
        (
            w.paired,
            w.cfg.discovery_sub_elements,
            w.cfg.discovery_sub_duration,
            w.cfg.discovery_interval,
        )
    };
    if paired {
        return;
    }
    // Shuffled pattern order, fresh each frame.
    let mut order: Vec<usize> = (0..n_subs).collect();
    for i in (1..order.len()).rev() {
        let j = (net.rng.next_u64() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let now = net.now();
    net.devices[dev].stats.discovery_sweeps += 1;
    for (slot, &pattern_idx) in order.iter().enumerate() {
        let seq = net.next_seq();
        let frame = Frame {
            src: dev,
            dst: None,
            kind: FrameKind::DiscoverySub { pattern_idx },
            seq,
        };
        let pattern = PatKey::Qo(pattern_idx);
        let extra = net.cfg.control_power_offset_db;
        if slot == 0 {
            net.start_tx(frame, pattern, extra);
        } else {
            net.queue.schedule(
                now + sub_dur * slot as u32,
                NetEv::SendFrame {
                    frame,
                    pattern,
                    extra_power_db: extra,
                },
            );
        }
    }
    // Pairing check shortly after the sweep completes.
    let sweep_end = now + sub_dur * n_subs as u32;
    let peer = net.devices[dev].wihd().expect("wihd").peer;
    let reachable = match peer {
        Some(p) => {
            let r = training::best_pair_with(
                net.medium.link_cache_mut(),
                &net.env,
                &net.devices[dev],
                dev,
                &net.devices[p],
                p,
            );
            let sens = net.mcs_table.control().sensitivity_dbm;
            r.rx_dbm >= sens + PAIRING_MARGIN_DB
        }
        None => false,
    };
    if let (Some(sink), true) = (peer, reachable) {
        net.queue.schedule(
            sweep_end + SimDuration::from_millis(2),
            NetEv::WihdPairComplete { source: dev, sink },
        );
    } else {
        net.queue
            .schedule(now + interval, NetEv::WihdDiscoveryTick { dev });
    }
}

/// Train the pair, mark both paired, start beacon and video timers.
pub(crate) fn complete_pairing(net: &mut Net, source: usize, sink: usize) {
    if net.devices[source].wihd().map(|w| w.paired).unwrap_or(true) {
        return;
    }
    let result = training::best_pair_with(
        net.medium.link_cache_mut(),
        &net.env,
        &net.devices[source],
        source,
        &net.devices[sink],
        sink,
    );
    let (beacon_interval, video_interval) = {
        let w = net.devices[source].wihd_mut().expect("source is wihd");
        w.paired = true;
        w.tx_sector = result.a_sector;
        w.peer = Some(sink);
        (w.cfg.beacon_interval, w.cfg.video_frame_interval)
    };
    {
        let w = net.devices[sink].wihd_mut().expect("sink is wihd");
        w.paired = true;
        w.tx_sector = result.b_sector;
        w.peer = Some(source);
    }
    net.devices[source].stats.retrains += 1;
    net.devices[sink].stats.retrains += 1;
    let now = net.now();
    net.queue
        .schedule(now + beacon_interval, NetEv::WihdBeaconTick { dev: sink });
    net.queue
        .schedule(now + video_interval, NetEv::WihdVideoTick { dev: source });
}

/// Sink beacon: emitted blindly on the fixed 224 µs grid.
pub(crate) fn on_beacon_tick(net: &mut Net, dev: usize) {
    let (paired, peer, sector, interval) = {
        let Some(w) = net.devices[dev].wihd() else {
            return;
        };
        (w.paired, w.peer, w.tx_sector, w.cfg.beacon_interval)
    };
    if !paired {
        return;
    }
    let now = net.now();
    // Record the grid so the source knows when to stop a burst.
    if let Some(w) = net.devices[dev].wihd_mut() {
        w.next_beacon_at = now + interval;
    }
    if let Some(peer) = peer {
        let seq = net.next_seq();
        let frame = Frame {
            src: dev,
            dst: Some(peer),
            kind: FrameKind::WihdBeacon,
            seq,
        };
        let extra = net.cfg.control_power_offset_db;
        net.devices[dev].stats.beacons_tx += 1;
        net.start_tx(frame, PatKey::Dir(sector), extra);
    }
    net.queue
        .schedule(now + interval, NetEv::WihdBeaconTick { dev });
}

/// A new video frame enters the source queue (VBR around the mean rate).
pub(crate) fn on_video_tick(net: &mut Net, dev: usize) {
    let (paired, video_on, interval, rate) = {
        let Some(w) = net.devices[dev].wihd() else {
            return;
        };
        (
            w.paired,
            w.video_on,
            w.cfg.video_frame_interval,
            w.cfg.video_rate_bps,
        )
    };
    if !paired {
        return;
    }
    if video_on {
        let mean_bytes = rate as f64 * interval.as_secs_f64() / 8.0;
        let bytes = net.rng.normal(mean_bytes, 0.15 * mean_bytes).max(0.0) as u64;
        if let Some(w) = net.devices[dev].wihd_mut() {
            // Bound the backlog: a real encoder drops frames rather than
            // buffering unboundedly.
            w.queue_bytes = (w.queue_bytes + bytes).min(4 * mean_bytes as u64);
        }
    }
    let now = net.now();
    net.queue
        .schedule(now + interval, NetEv::WihdVideoTick { dev });
}

/// Transmit the next queued data frame (no carrier sense, no ACKs).
pub(crate) fn send_next(net: &mut Net, dev: usize) {
    let params_overhead = net.cfg.params.data_phy_overhead;
    let (queue, peer, sector, max_dur, phy_rate, guard, video_on) = {
        let Some(w) = net.devices[dev].wihd() else {
            return;
        };
        (
            w.queue_bytes,
            w.peer,
            w.tx_sector,
            w.cfg.max_data_duration,
            w.cfg.phy_rate_bps,
            w.cfg.beacon_guard,
            w.video_on,
        )
    };
    let Some(peer) = peer else { return };
    if queue == 0 || !video_on {
        if let Some(w) = net.devices[dev].wihd_mut() {
            w.bursting = false;
        }
        return;
    }
    let max_bytes = (max_dur.saturating_sub(params_overhead)).bits_at(phy_rate) / 8;
    let bytes = queue.min(max_bytes) as u32;
    // Respect the beacon grid: stop the burst if this frame would overrun.
    let next_beacon = net.devices[peer]
        .wihd()
        .map(|w| w.next_beacon_at)
        .unwrap_or_default();
    let frame_dur = params_overhead + SimDuration::for_bits(bytes as u64 * 8, phy_rate);
    let now = net.now();
    if next_beacon > now && now + frame_dur + guard > next_beacon {
        if let Some(w) = net.devices[dev].wihd_mut() {
            w.bursting = false;
        }
        return;
    }
    if let Some(w) = net.devices[dev].wihd_mut() {
        w.queue_bytes -= bytes as u64;
        w.bursting = true;
    }
    let seq = net.next_seq();
    let frame = Frame {
        src: dev,
        dst: Some(peer),
        kind: FrameKind::WihdData { bytes },
        seq,
    };
    net.devices[dev].stats.data_tx += 1;
    net.start_tx(frame, PatKey::Dir(sector), 0.0);
}

/// WiHD frame completions.
pub(crate) fn on_frame_end(net: &mut Net, tx: &ActiveTx, delivered: Option<bool>) {
    match &tx.frame.kind {
        FrameKind::WihdBeacon => {
            // A beacon prompts the source to burst if it has data. The
            // source reacts even if the beacon decoding failed: the grid
            // timing is known after pairing (and real WiHD sources keep
            // streaming through corrupted beacons).
            let source = tx.frame.dst.expect("beacon addressed to source");
            let has_data = net.devices[source]
                .wihd()
                .map(|w| w.paired && w.queue_bytes > 0 && w.video_on)
                .unwrap_or(false);
            if has_data {
                let at = net.now() + net.cfg.params.sifs;
                net.queue.schedule(at, NetEv::WihdSendNext { dev: source });
            }
        }
        FrameKind::WihdData { bytes } => {
            if delivered == Some(true) {
                let sink = tx.frame.dst.expect("data addressed");
                net.devices[sink].stats.bytes_rx += *bytes as u64;
                net.devices[sink].stats.mpdus_rx += 1;
            }
            // Continue the burst back-to-back.
            let src = tx.frame.src;
            let bursting = net.devices[src].wihd().map(|w| w.bursting).unwrap_or(false);
            if bursting {
                let sbifs = net.devices[src].wihd().expect("wihd").cfg.sbifs;
                let at = net.now() + sbifs;
                net.queue.schedule(at, NetEv::WihdSendNext { dev: src });
            }
        }
        _ => {}
    }
}
