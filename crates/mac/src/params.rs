//! Protocol timing and policy constants.
//!
//! Everything the paper measures directly — Table 1's frame periodicities,
//! the 2 ms TXOP cap, the ~5 µs single-MPDU and ≤ 25 µs aggregated frame
//! durations — is pinned here, alongside the policy knobs (aggregation
//! limits, carrier-sense threshold) the experiments calibrate.

use mmwave_sim::time::SimDuration;

/// Timing shared by all 802.11ad-style devices.
#[derive(Clone, Copy, Debug)]
pub struct MacParams {
    /// Short interframe space.
    pub sifs: SimDuration,
    /// Backoff slot time.
    pub slot: SimDuration,
    /// PHY preamble + header of a data-PHY frame.
    pub data_phy_overhead: SimDuration,
    /// PHY preamble + header of a control-PHY frame.
    pub control_phy_overhead: SimDuration,
    /// MAC framing overhead per MPDU, bytes (header + FCS + delimiter).
    pub mpdu_overhead_bytes: u32,
    /// ACK wait after a data frame before declaring loss.
    pub ack_timeout: SimDuration,
    /// Maximum retransmissions per MPDU batch before dropping.
    pub retry_limit: u8,
    /// Initial contention window, slots.
    pub cw_min: u32,
    /// Maximum contention window, slots.
    pub cw_max: u32,
    /// Energy threshold above which a WiGig device defers, dBm.
    pub cs_threshold_dbm: f64,
    /// Receiver-side clear-channel threshold for granting a CTS, dBm.
    /// A receiver that senses strong foreign energy refuses the CTS; this
    /// is how two mutually-hidden D5000 links share the medium through
    /// their laptops (§3.2: "The Dell D5000 systems do not interfere with
    /// each other since they use CSMA/CA"), and how WiHD bursts carve the
    /// enlarged transmission gaps of Fig. 21. Weak foreign energy below
    /// this level is *tolerated* — those overlaps are what produce the
    /// paper's collision/retransmission regime.
    pub cts_grant_threshold_dbm: f64,
}

impl Default for MacParams {
    fn default() -> Self {
        MacParams {
            sifs: SimDuration::from_micros(3),
            slot: SimDuration::from_micros(5),
            data_phy_overhead: SimDuration::from_nanos(1_900),
            control_phy_overhead: SimDuration::from_micros(3),
            mpdu_overhead_bytes: 42,
            ack_timeout: SimDuration::from_micros(12),
            retry_limit: 7,
            cw_min: 16,
            cw_max: 128,
            cs_threshold_dbm: -68.0,
            cts_grant_threshold_dbm: -70.0,
        }
    }
}

impl MacParams {
    /// AIFS: the idle period required before contending (SIFS + 2 slots).
    pub fn aifs(&self) -> SimDuration {
        self.sifs + self.slot * 2
    }
}

/// WiGig (D5000 / laptop) device policy.
#[derive(Clone, Copy, Debug)]
pub struct WigigConfig {
    /// Device-discovery sweep period (Table 1: 102.4 ms).
    pub discovery_interval: SimDuration,
    /// Sub-elements per discovery frame (Fig. 3: 32).
    pub discovery_sub_elements: usize,
    /// Duration of one discovery sub-element (frame ≈ 1 ms total).
    pub discovery_sub_duration: SimDuration,
    /// Beacon exchange period when associated (Table 1: 1.1 ms).
    pub beacon_interval: SimDuration,
    /// Maximum burst (TXOP) duration (§4.1: 2 ms).
    pub txop_max: SimDuration,
    /// Hard PHY ceiling on one data PPDU's airtime (a safety net; the
    /// operative limit is `max_aggregation`). The paper's observed 25 µs
    /// maximum is the 7-MPDU count limit *at MCS 11*; at lower MCS the
    /// same 7 MPDUs take longer, which is what keeps an 8 m link at full
    /// GigE throughput in Fig. 13.
    pub max_ppdu_duration: SimDuration,
    /// Maximum MPDUs aggregated into one PPDU. The dock aggregates
    /// aggressively (7 × 1500 B ≈ 25 µs at MCS 11 — Fig. 9's ceiling); the
    /// laptop's WBE tunnel minimizes delay and caps at 2 (§4.4: "instead
    /// of aggregating data …, the transmitter sends a larger number of
    /// packets").
    pub max_aggregation: usize,
    /// Batch service: a data PPDU is launched only once this many MPDUs
    /// are queued *or* the head of the queue has waited `max_queue_wait`.
    /// This is what produces the paper's load-dependent aggregation
    /// (§4.1): at kb/s rates every frame is a lone MPDU; near the GigE cap
    /// almost every frame is full. The laptop sets 1 (no batching — §4.4's
    /// delay-minimizing WBE behaviour).
    pub min_aggregation: usize,
    /// Longest a queued MPDU may wait for its batch to fill.
    pub max_queue_wait: SimDuration,
    /// Extra conducted power relative to the shared link budget, dB.
    pub tx_power_offset_db: f64,
}

impl WigigConfig {
    /// The docking-station personality.
    pub fn dock() -> WigigConfig {
        WigigConfig {
            discovery_interval: SimDuration::from_micros(102_400),
            discovery_sub_elements: 32,
            discovery_sub_duration: SimDuration::from_micros(30),
            beacon_interval: SimDuration::from_micros(1_100),
            txop_max: SimDuration::from_millis(2),
            max_ppdu_duration: SimDuration::from_micros(160),
            max_aggregation: 7,
            min_aggregation: 5,
            max_queue_wait: SimDuration::from_micros(45),
            tx_power_offset_db: 0.0,
        }
    }

    /// The laptop personality: delay-minimizing (no batching, low
    /// aggregation, short service bursts). §4.4: "instead of aggregating
    /// data to reduce the medium usage, the transmitter sends a larger
    /// number of packets" — each short burst re-arbitrates the channel,
    /// which is what exposes the laptop-to-dock flow to interference.
    pub fn laptop() -> WigigConfig {
        WigigConfig {
            max_aggregation: 2,
            min_aggregation: 1,
            txop_max: SimDuration::from_micros(300),
            ..WigigConfig::dock()
        }
    }
}

/// WiHD (DVDO Air-3c) device policy.
#[derive(Clone, Copy, Debug)]
pub struct WihdConfig {
    /// Device-discovery period when unpaired (Table 1: 20 ms).
    pub discovery_interval: SimDuration,
    /// Sub-elements per WiHD discovery frame (order shuffled every frame).
    pub discovery_sub_elements: usize,
    /// Duration of one discovery sub-element.
    pub discovery_sub_duration: SimDuration,
    /// Sink beacon period (Table 1: 0.224 ms).
    pub beacon_interval: SimDuration,
    /// Longest single video data frame on air.
    pub max_data_duration: SimDuration,
    /// Gap between consecutive data frames in a burst.
    pub sbifs: SimDuration,
    /// Guard left free before the next sink beacon.
    pub beacon_guard: SimDuration,
    /// Fixed PHY rate of the video stream, bits/s.
    pub phy_rate_bps: u64,
    /// Mean video bitrate, bits/s (VBR around this).
    pub video_rate_bps: u64,
    /// Video frame cadence.
    pub video_frame_interval: SimDuration,
    /// Extra conducted power relative to the shared budget, dB — WiHD
    /// modules run notably hotter than WiGig docks.
    pub tx_power_offset_db: f64,
}

impl Default for WihdConfig {
    fn default() -> Self {
        WihdConfig {
            discovery_interval: SimDuration::from_millis(20),
            discovery_sub_elements: 16,
            discovery_sub_duration: SimDuration::from_micros(25),
            beacon_interval: SimDuration::from_micros(224),
            max_data_duration: SimDuration::from_micros(60),
            sbifs: SimDuration::from_micros(1),
            beacon_guard: SimDuration::from_micros(12),
            phy_rate_bps: 1_925_000_000,
            video_rate_bps: 800_000_000,
            video_frame_interval: SimDuration::from_micros(16_667),
            tx_power_offset_db: 8.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_periodicities() {
        let dock = WigigConfig::dock();
        assert_eq!(dock.discovery_interval, SimDuration::from_micros(102_400));
        assert_eq!(dock.beacon_interval, SimDuration::from_micros(1_100));
        let wihd = WihdConfig::default();
        assert_eq!(wihd.discovery_interval, SimDuration::from_millis(20));
        assert_eq!(wihd.beacon_interval, SimDuration::from_micros(224));
    }

    #[test]
    fn discovery_frame_is_about_a_millisecond() {
        let dock = WigigConfig::dock();
        let total = dock.discovery_sub_duration * dock.discovery_sub_elements as u32;
        assert_eq!(total, SimDuration::from_micros(960));
    }

    #[test]
    fn aifs_value() {
        let p = MacParams::default();
        assert_eq!(p.aifs(), SimDuration::from_micros(13));
    }

    #[test]
    fn laptop_aggregates_less_than_dock() {
        assert!(WigigConfig::laptop().max_aggregation < WigigConfig::dock().max_aggregation);
    }

    #[test]
    fn wihd_duty_cycle_target() {
        // Video airtime + beacons must land near the measured 46 %
        // standalone utilization (§4.4).
        let w = WihdConfig::default();
        let video_duty = w.video_rate_bps as f64 / w.phy_rate_bps as f64;
        let beacon_air = 10e-6; // ≈ beacon duration in seconds
        let beacon_duty = beacon_air / w.beacon_interval.as_secs_f64();
        let duty = video_duty + beacon_duty;
        assert!((0.40..=0.52).contains(&duty), "duty {duty}");
    }
}
