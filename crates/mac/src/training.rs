//! Beam training: exhaustive sector-sweep selection.
//!
//! 802.11ad-style devices train by sweeping their codebooks and picking the
//! sector pair with the best feedback. We compute the result of that sweep
//! directly (the sweep frames themselves are modelled in the association
//! handshake; re-running 32×32 probe transmissions through the event loop
//! would only add noise-free repetitions of the same arithmetic).

use crate::device::Device;
use mmwave_channel::Environment;
use mmwave_phy::Codebook;

/// Result of training a device pair.
#[derive(Clone, Copy, Debug)]
pub struct TrainingResult {
    /// Selected sector index at `a`.
    pub a_sector: usize,
    /// Selected sector index at `b`.
    pub b_sector: usize,
    /// Received power at `b` with the selected pair, dBm (before fading).
    pub rx_dbm: f64,
}

fn codebook(dev: &Device) -> &Codebook {
    match &dev.kind {
        crate::device::DevKind::Wigig(w) => &w.codebook,
        crate::device::DevKind::Wihd(w) => &w.codebook,
    }
}

/// Exhaustively search both directional codebooks for the sector pair that
/// maximizes received power from `a` to `b` (reciprocity makes the same
/// pair optimal in reverse, which is how real sector sweeps use it).
pub fn best_pair(env: &Environment, a: &Device, b: &Device) -> TrainingResult {
    let paths = env.paths(a.node.position, b.node.position);
    let cb_a = codebook(a);
    let cb_b = codebook(b);
    let mut best = TrainingResult { a_sector: 0, b_sector: 0, rx_dbm: f64::MIN };
    for (ia, sa) in cb_a.sectors().iter().enumerate() {
        // Precompute a's gain along each path departure for this sector.
        let a_gains: Vec<f64> = paths
            .iter()
            .map(|p| a.node.gain_toward(&sa.pattern, p.departure))
            .collect();
        for (ib, sb) in cb_b.sectors().iter().enumerate() {
            let mut lin_sum = 0.0;
            for (p, &ga) in paths.iter().zip(&a_gains) {
                let gb = b.node.gain_toward(&sb.pattern, p.arrival);
                let dbm = env.budget.rx_power_dbm(ga, gb, p) + a.tx_power_offset_db
                    - env.extra_loss_db;
                lin_sum += mmwave_phy::db_to_lin(dbm);
            }
            let total = mmwave_phy::lin_to_db(lin_sum);
            if total > best.rx_dbm {
                best = TrainingResult { a_sector: ia, b_sector: ib, rx_dbm: total };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_geom::{Angle, Material, Point, Room, Segment};

    #[test]
    fn training_picks_sectors_facing_each_other() {
        let env = Environment::new(Room::open_space());
        let a = Device::wigig_dock("dock", Point::new(0.0, 0.0), Angle::ZERO, 13);
        let b = Device::wigig_laptop(
            "laptop",
            Point::new(3.0, 0.0),
            Angle::from_degrees(180.0),
            11,
        );
        let r = best_pair(&env, &a, &b);
        // Both devices face each other, so the chosen sectors must steer
        // near their boresights (sector 15/16 of 32 spanning ±77.5°).
        let steer_a = a.wigig().expect("wigig").codebook.sector(r.a_sector).steer;
        let steer_b = b.wigig().expect("wigig").codebook.sector(r.b_sector).steer;
        assert!(steer_a.degrees().abs() < 15.0, "a steer {steer_a}");
        assert!(steer_b.degrees().abs() < 15.0, "b steer {steer_b}");
        assert!(r.rx_dbm > -60.0, "trained link should be strong: {}", r.rx_dbm);
    }

    #[test]
    fn training_beats_untrained_average() {
        let env = Environment::new(Room::open_space());
        let a = Device::wigig_dock("dock", Point::new(0.0, 0.0), Angle::ZERO, 13);
        let b = Device::wigig_laptop(
            "laptop",
            Point::new(5.0, 2.0),
            Angle::from_degrees(-150.0),
            11,
        );
        let r = best_pair(&env, &a, &b);
        // Compare against the mid-codebook default pair.
        let paths = env.paths(a.node.position, b.node.position);
        let cb_a = &a.wigig().expect("wigig").codebook;
        let cb_b = &b.wigig().expect("wigig").codebook;
        let default_dbm: f64 = paths
            .iter()
            .map(|p| {
                let ga = a.node.gain_toward(&cb_a.sector(0).pattern, p.departure);
                let gb = b.node.gain_toward(&cb_b.sector(0).pattern, p.arrival);
                mmwave_phy::db_to_lin(env.budget.rx_power_dbm(ga, gb, p))
            })
            .sum();
        assert!(r.rx_dbm > mmwave_phy::lin_to_db(default_dbm) + 5.0);
    }

    #[test]
    fn training_routes_around_blockage() {
        // LoS blocked, metal wall available: training must find sectors
        // pointing at the reflection, not at the (dead) direct path.
        let mut room = Room::open_space();
        room.add_wall(mmwave_geom::Wall::new(
            Segment::new(Point::new(-2.0, 1.5), Point::new(6.0, 1.5)),
            Material::Metal,
            "wall",
        ));
        room.add_obstacle(
            Segment::new(Point::new(2.0, -0.7), Point::new(2.0, 0.7)),
            Material::Absorber,
            "screen",
        );
        let env = Environment::new(room);
        let a = Device::wigig_dock("dock", Point::new(0.0, 0.0), Angle::ZERO, 13);
        let b = Device::wigig_laptop(
            "laptop",
            Point::new(4.0, 0.0),
            Angle::from_degrees(180.0),
            11,
        );
        let r = best_pair(&env, &a, &b);
        // The chosen sector at `a` steers up towards the wall (positive
        // azimuth), not straight ahead.
        let steer_a = a.wigig().expect("wigig").codebook.sector(r.a_sector).steer;
        assert!(steer_a.degrees() > 10.0, "steer {steer_a} should aim at the reflector");
        assert!(r.rx_dbm > -85.0, "reflected link usable: {}", r.rx_dbm);
    }

    #[test]
    fn training_accounts_for_tx_power_offset() {
        let env = Environment::new(Room::open_space());
        let mut a = Device::wihd_source("tx", Point::new(0.0, 0.0), Angle::ZERO, 21);
        let b = Device::wihd_sink("rx", Point::new(8.0, 0.0), Angle::from_degrees(180.0), 22);
        let hot = best_pair(&env, &a, &b).rx_dbm;
        a.tx_power_offset_db = 0.0;
        let cold = best_pair(&env, &a, &b).rx_dbm;
        assert!((hot - cold - 8.0).abs() < 0.5, "hot {hot} cold {cold}");
    }
}
