//! Beam training: exhaustive sector-sweep selection.
//!
//! 802.11ad-style devices train by sweeping their codebooks and picking the
//! sector pair with the best feedback. We compute the result of that sweep
//! directly (the sweep frames themselves are modelled in the association
//! handshake; re-running 32×32 probe transmissions through the event loop
//! would only add noise-free repetitions of the same arithmetic).

use crate::device::Device;
use mmwave_channel::{CacheMode, Environment, LinkGainCache};
use mmwave_phy::{lin_to_db, Codebook};

/// Result of training a device pair.
#[derive(Clone, Copy, Debug)]
pub struct TrainingResult {
    /// Selected sector index at `a`.
    pub a_sector: usize,
    /// Selected sector index at `b`.
    pub b_sector: usize,
    /// Received power at `b` with the selected pair, dBm (before fading).
    pub rx_dbm: f64,
}

fn codebook(dev: &Device) -> &Codebook {
    match &dev.kind {
        crate::device::DevKind::Wigig(w) => &w.codebook,
        crate::device::DevKind::Wihd(w) => &w.codebook,
    }
}

/// Exhaustively search both directional codebooks for the sector pair that
/// maximizes received power from `a` to `b` (reciprocity makes the same
/// pair optimal in reverse, which is how real sector sweeps use it).
///
/// Standalone entry point for callers without a long-lived [`Medium`]: it
/// sweeps through a throwaway bypass-mode cache, so every call recomputes.
/// Simulations retrain through [`best_pair_with`] and the medium's shared
/// cache, where a repeat sweep over an unchanged pair is one table lookup.
///
/// [`Medium`]: crate::medium::Medium
pub fn best_pair(env: &Environment, a: &Device, b: &Device) -> TrainingResult {
    let mut scratch = LinkGainCache::with_mode(CacheMode::Bypass);
    best_pair_with(&mut scratch, env, a, 0, b, 1)
}

/// [`best_pair`] over a shared [`LinkGainCache`]: the full sector-pair gain
/// table is memoized per device pair (keyed by the explicit device indices),
/// so retraining an unmoved, unrotated pair — and the reverse-direction
/// sweep — costs one lookup. The maximum is taken over the cached table.
pub fn best_pair_with(
    cache: &mut LinkGainCache,
    env: &Environment,
    a: &Device,
    a_idx: usize,
    b: &Device,
    b_idx: usize,
) -> TrainingResult {
    let (a_sector, b_sector, lin) = cache.best_sector_pair(
        env,
        &a.node,
        a_idx,
        codebook(a),
        &b.node,
        b_idx,
        codebook(b),
    );
    let rx_dbm = if lin <= 0.0 {
        // No propagation path at any sector pair: the quiet-channel floor.
        -300.0
    } else {
        lin_to_db(lin) + env.budget.tx_power_dbm - env.budget.implementation_loss_db
            + a.tx_power_offset_db
            - env.extra_loss_db
    };
    TrainingResult {
        a_sector,
        b_sector,
        rx_dbm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_geom::{Angle, Material, Point, Room, Segment};
    use mmwave_sim::ctx::SimCtx;

    #[test]
    fn training_picks_sectors_facing_each_other() {
        let env = Environment::new(Room::open_space());
        let a = Device::wigig_dock(
            &SimCtx::new(),
            "dock",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            13,
        );
        let b = Device::wigig_laptop(
            &SimCtx::new(),
            "laptop",
            Point::new(3.0, 0.0),
            Angle::from_degrees(180.0),
            11,
        );
        let r = best_pair(&env, &a, &b);
        // Both devices face each other, so the chosen sectors must steer
        // near their boresights (sector 15/16 of 32 spanning ±77.5°).
        let steer_a = a.wigig().expect("wigig").codebook.sector(r.a_sector).steer;
        let steer_b = b.wigig().expect("wigig").codebook.sector(r.b_sector).steer;
        assert!(steer_a.degrees().abs() < 15.0, "a steer {steer_a}");
        assert!(steer_b.degrees().abs() < 15.0, "b steer {steer_b}");
        assert!(
            r.rx_dbm > -60.0,
            "trained link should be strong: {}",
            r.rx_dbm
        );
    }

    #[test]
    fn training_beats_untrained_average() {
        let env = Environment::new(Room::open_space());
        let a = Device::wigig_dock(
            &SimCtx::new(),
            "dock",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            13,
        );
        let b = Device::wigig_laptop(
            &SimCtx::new(),
            "laptop",
            Point::new(5.0, 2.0),
            Angle::from_degrees(-150.0),
            11,
        );
        let r = best_pair(&env, &a, &b);
        // Compare against the mid-codebook default pair.
        let paths = env.paths(a.node.position, b.node.position);
        let cb_a = &a.wigig().expect("wigig").codebook;
        let cb_b = &b.wigig().expect("wigig").codebook;
        let default_dbm: f64 = paths
            .iter()
            .map(|p| {
                let ga = a.node.gain_toward(&cb_a.sector(0).pattern, p.departure);
                let gb = b.node.gain_toward(&cb_b.sector(0).pattern, p.arrival);
                mmwave_phy::db_to_lin(env.budget.rx_power_dbm(ga, gb, p))
            })
            .sum();
        assert!(r.rx_dbm > mmwave_phy::lin_to_db(default_dbm) + 5.0);
    }

    #[test]
    fn training_routes_around_blockage() {
        // LoS blocked, metal wall available: training must find sectors
        // pointing at the reflection, not at the (dead) direct path.
        let mut room = Room::open_space();
        room.add_wall(mmwave_geom::Wall::new(
            Segment::new(Point::new(-2.0, 1.5), Point::new(6.0, 1.5)),
            Material::Metal,
            "wall",
        ));
        room.add_obstacle(
            Segment::new(Point::new(2.0, -0.7), Point::new(2.0, 0.7)),
            Material::Absorber,
            "screen",
        );
        let env = Environment::new(room);
        let a = Device::wigig_dock(
            &SimCtx::new(),
            "dock",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            13,
        );
        let b = Device::wigig_laptop(
            &SimCtx::new(),
            "laptop",
            Point::new(4.0, 0.0),
            Angle::from_degrees(180.0),
            11,
        );
        let r = best_pair(&env, &a, &b);
        // The chosen sector at `a` steers up towards the wall (positive
        // azimuth), not straight ahead.
        let steer_a = a.wigig().expect("wigig").codebook.sector(r.a_sector).steer;
        assert!(
            steer_a.degrees() > 10.0,
            "steer {steer_a} should aim at the reflector"
        );
        assert!(r.rx_dbm > -85.0, "reflected link usable: {}", r.rx_dbm);
    }

    #[test]
    fn shared_cache_retrain_is_a_table_lookup() {
        let env = Environment::new(Room::open_space());
        let a = Device::wigig_dock(
            &SimCtx::new(),
            "dock",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            13,
        );
        let b = Device::wigig_laptop(
            &SimCtx::new(),
            "laptop",
            Point::new(3.0, 0.0),
            Angle::from_degrees(180.0),
            11,
        );
        let mut cache = mmwave_channel::LinkGainCache::with_mode(CacheMode::Cached);
        let first = best_pair_with(&mut cache, &env, &a, 0, &b, 1);
        let again = best_pair_with(&mut cache, &env, &a, 0, &b, 1);
        // The reverse sweep reuses the same table with swapped sectors.
        let rev = best_pair_with(&mut cache, &env, &b, 1, &a, 0);
        assert_eq!(
            (first.a_sector, first.b_sector),
            (again.a_sector, again.b_sector)
        );
        assert_eq!(
            (rev.a_sector, rev.b_sector),
            (first.b_sector, first.a_sector)
        );
        let s = cache.stats();
        assert_eq!(s.table_builds, 1, "one build serves all three sweeps");
        assert_eq!(s.table_hits, 2);
        // Same selection as the standalone (uncached) sweep.
        let standalone = best_pair(&env, &a, &b);
        assert_eq!(
            (first.a_sector, first.b_sector),
            (standalone.a_sector, standalone.b_sector)
        );
        assert!((first.rx_dbm - standalone.rx_dbm).abs() < 1e-12);
    }

    #[test]
    fn training_accounts_for_tx_power_offset() {
        let env = Environment::new(Room::open_space());
        let mut a =
            Device::wihd_source(&SimCtx::new(), "tx", Point::new(0.0, 0.0), Angle::ZERO, 21);
        let b = Device::wihd_sink(
            &SimCtx::new(),
            "rx",
            Point::new(8.0, 0.0),
            Angle::from_degrees(180.0),
            22,
        );
        let hot = best_pair(&env, &a, &b).rx_dbm;
        a.tx_power_offset_db = 0.0;
        let cold = best_pair(&env, &a, &b).rx_dbm;
        assert!((hot - cold - 8.0).abs() < 0.5, "hot {hot} cold {cold}");
    }
}
