//! Deterministic scenario scripts: time-scheduled world mutations.
//!
//! The paper's "bane" findings are all *transient* — a human crossing the
//! line of sight collapses the link until realignment (Fig. 20), and over
//! 80 minutes the D5000 link repeatedly degrades and re-trains (Fig. 14).
//! A [`Scenario`] scripts exactly those dynamics: a list of
//! `(time, WorldMutation)` pairs that [`crate::Net::install_scenario`]
//! schedules into the simulation's own event queue. Mutations therefore
//! execute interleaved with MAC events in deterministic timestamp order,
//! so a scripted run stays bitwise reproducible per seed.
//!
//! The invalidation contract: every mutation that changes radiometric
//! geometry routes through the exact cache bump it requires — device
//! moves/rotations bump that device's position/orientation generation in
//! the [`LinkGainCache`], obstacle moves and enable-toggles flush all
//! interned paths (a wall affects every pair). Fault injections and video
//! toggles change no geometry and bump nothing.
//!
//! [`LinkGainCache`]: mmwave_channel::LinkGainCache

use mmwave_geom::{Angle, Point, Segment, Vec2};
use mmwave_sim::time::{SimDuration, SimTime};

/// Which frames an injected fault window corrupts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Every addressed frame arriving at the target device.
    AllFrames,
    /// Only beacon frames (a beacon-loss burst; data still flows).
    BeaconsOnly,
}

/// One scripted change of the world.
#[derive(Clone, Debug)]
pub enum WorldMutation {
    /// Teleport/rotate a device (granular per-device cache bumps).
    MoveDevice {
        /// Device index.
        dev: usize,
        /// New position.
        position: Point,
        /// New orientation.
        orientation: Angle,
    },
    /// Move/reshape a wall or obstacle (by wall index, see
    /// [`mmwave_geom::Room::find_wall`]). Flushes all cached paths.
    MoveObstacle {
        /// Wall index within the room.
        wall: usize,
        /// The wall's new footprint.
        seg: Segment,
    },
    /// Enable or disable a wall or obstacle. A disabled wall neither
    /// blocks nor reflects — the blocker is "off stage".
    SetObstacleEnabled {
        /// Wall index within the room.
        wall: usize,
        /// New enabled state.
        enabled: bool,
    },
    /// Toggle a WiHD source's video stream (interferer on/off — the
    /// Fig. 23 power switch, scripted).
    SetVideo {
        /// WiHD source device index.
        dev: usize,
        /// Stream on?
        on: bool,
    },
    /// Force frames addressed to `dev` to fail until `until` (injected
    /// frame-error / beacon-loss burst, bypassing the PER model).
    InjectFaults {
        /// Target (receiving) device index.
        dev: usize,
        /// Which frame classes the window corrupts.
        kind: FaultKind,
        /// Window end (exclusive).
        until: SimTime,
    },
}

/// A mutation with its fire time.
#[derive(Clone, Debug)]
pub struct ScenarioEvent {
    /// When the mutation applies.
    pub at: SimTime,
    /// What changes.
    pub mutation: WorldMutation,
}

/// One waypoint of a mobility trace: at `t` seconds the device stands at
/// `(x, y)` metres facing `theta_deg` degrees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Waypoint {
    /// Time, seconds from run start.
    pub t: f64,
    /// X position, metres.
    pub x: f64,
    /// Y position, metres.
    pub y: f64,
    /// Orientation, degrees.
    pub theta_deg: f64,
}

/// Parse a waypoint trace: one `t x y theta` line per waypoint
/// (whitespace-separated), blank lines and `#` comments ignored.
/// Times must be non-negative, finite, and non-decreasing.
pub fn parse_waypoints(text: &str) -> Result<Vec<Waypoint>, String> {
    parse_waypoints_inner(text).map_err(|(line, msg)| format!("waypoint line {line}: {msg}"))
}

/// [`parse_waypoints`] with a source label (typically a file name):
/// errors render compiler-style as `source:line: message`, with 1-based
/// line numbers counted in the raw text (comments and blanks included),
/// so the reported location is the one an editor jumps to.
pub fn parse_waypoints_from(source: &str, text: &str) -> Result<Vec<Waypoint>, String> {
    parse_waypoints_inner(text).map_err(|(line, msg)| format!("{source}:{line}: {msg}"))
}

/// The actual parser; errors are `(1-based line, message)` so the public
/// wrappers above decide the location prefix exactly once.
fn parse_waypoints_inner(text: &str) -> Result<Vec<Waypoint>, (usize, String)> {
    let mut out: Vec<Waypoint> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let err = |msg: String| (lineno + 1, msg);
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(err(format!(
                "expected `t x y theta`, got {} field(s)",
                fields.len()
            )));
        }
        let mut vals = [0.0f64; 4];
        for (v, f) in vals.iter_mut().zip(&fields) {
            *v = f.parse().map_err(|e| err(format!("`{f}`: {e}")))?;
            if !v.is_finite() {
                return Err(err(format!("`{f}` is not finite")));
            }
        }
        let [t, x, y, theta_deg] = vals;
        if t < 0.0 {
            return Err(err(format!("negative time {t}")));
        }
        if let Some(prev) = out.last() {
            if t < prev.t {
                return Err(err(format!(
                    "time {t} goes backwards (previous {})",
                    prev.t
                )));
            }
        }
        out.push(Waypoint { t, x, y, theta_deg });
    }
    Ok(out)
}

/// Serialize waypoints back to the `t x y theta` text form
/// [`parse_waypoints`] reads. Round-trips exactly: Rust's shortest-digits
/// float formatting re-parses to the same f64 bits.
pub fn format_waypoints(waypoints: &[Waypoint]) -> String {
    let mut s = String::new();
    for w in waypoints {
        s.push_str(&format!("{} {} {} {}\n", w.t, w.x, w.y, w.theta_deg));
    }
    s
}

/// A scripted scenario: world mutations with their fire times.
///
/// Build with the chainable [`Scenario::at`] /
/// [`Scenario::walking_blocker`]; install with
/// [`crate::Net::install_scenario`]. Events may be added in any order —
/// installation sorts them (stably) by time.
#[derive(Clone, Debug, Default)]
pub struct Scenario {
    events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// An empty scenario.
    pub fn new() -> Scenario {
        Scenario::default()
    }

    /// Schedule one mutation.
    pub fn at(mut self, at: SimTime, mutation: WorldMutation) -> Scenario {
        self.events.push(ScenarioEvent { at, mutation });
        self
    }

    /// Script a human blocker sweeping across the scene: wall `wall` is
    /// moved through `steps + 1` positions, translating `shape` by
    /// `sweep · k/steps` at time `t0 + duration · k/steps`. The caller
    /// typically parks the blocker out of the link corridor beforehand
    /// (its initial segment) and lets the sweep carry it through the LOS.
    pub fn walking_blocker(
        mut self,
        wall: usize,
        shape: Segment,
        sweep: Vec2,
        t0: SimTime,
        duration: SimDuration,
        steps: usize,
    ) -> Scenario {
        assert!(steps >= 1, "a walk needs at least one step");
        for k in 0..=steps {
            let frac = k as f64 / steps as f64;
            let offset = Vec2::new(sweep.x * frac, sweep.y * frac);
            let seg = Segment::new(shape.a + offset, shape.b + offset);
            self.events.push(ScenarioEvent {
                at: t0 + duration * frac,
                mutation: WorldMutation::MoveObstacle { wall, seg },
            });
        }
        self
    }

    /// Script device `dev` along a waypoint trace (the `t x y theta` text
    /// format of [`parse_waypoints`]): each waypoint becomes a
    /// [`WorldMutation::MoveDevice`] at its timestamp. Errors on malformed
    /// text; appends to any events already scripted.
    pub fn from_waypoints(self, dev: usize, text: &str) -> Result<Scenario, String> {
        Ok(self.script_waypoints(dev, parse_waypoints(text)?))
    }

    /// [`Scenario::from_waypoints`], but reading the trace from a file —
    /// recorded-trace ingestion for mobility logs captured outside the
    /// simulator. I/O failures carry the path; malformed waypoints report
    /// compiler-style `path:line: message` locations (1-based lines), so
    /// a bad trace is jumpable straight from the error text.
    pub fn from_waypoints_file(
        self,
        dev: usize,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Scenario, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("waypoint file {}: {e}", path.display()))?;
        let waypoints = parse_waypoints_from(&path.display().to_string(), &text)?;
        Ok(self.script_waypoints(dev, waypoints))
    }

    /// Append one [`WorldMutation::MoveDevice`] per waypoint.
    fn script_waypoints(self, dev: usize, waypoints: Vec<Waypoint>) -> Scenario {
        let mut s = self;
        for w in waypoints {
            s = s.at(
                SimTime::from_secs_f64(w.t),
                WorldMutation::MoveDevice {
                    dev,
                    position: Point::new(w.x, w.y),
                    orientation: Angle::from_degrees(w.theta_deg),
                },
            );
        }
        s
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events sorted (stably) by fire time — the install order.
    pub(crate) fn into_sorted_events(self) -> Vec<ScenarioEvent> {
        let mut events = self.events;
        events.sort_by_key(|e| e.at);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_events_and_sorts_on_install() {
        let s = Scenario::new()
            .at(
                SimTime::from_millis(5),
                WorldMutation::SetVideo { dev: 2, on: false },
            )
            .at(
                SimTime::from_millis(1),
                WorldMutation::SetObstacleEnabled {
                    wall: 0,
                    enabled: true,
                },
            );
        assert_eq!(s.len(), 2);
        let sorted = s.into_sorted_events();
        assert_eq!(sorted[0].at, SimTime::from_millis(1));
        assert_eq!(sorted[1].at, SimTime::from_millis(5));
    }

    #[test]
    fn waypoints_round_trip_through_text() {
        let text = "\
# a walk across the room
0 1.0 2.0 90
0.5   1.25 2.0 90   # trailing comment
2.125 3.5 -0.75 -180

10 3.5 -0.75 270.5
";
        let parsed = parse_waypoints(text).expect("parses");
        assert_eq!(parsed.len(), 4);
        assert_eq!(
            parsed[0],
            Waypoint {
                t: 0.0,
                x: 1.0,
                y: 2.0,
                theta_deg: 90.0
            }
        );
        assert_eq!(parsed[2].y, -0.75);
        // Exact round-trip: format → parse reproduces the same values.
        let reparsed = parse_waypoints(&format_waypoints(&parsed)).expect("reparses");
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn waypoint_parser_rejects_malformed_lines() {
        assert!(parse_waypoints("1 2 3").is_err(), "too few fields");
        assert!(parse_waypoints("1 2 3 4 5").is_err(), "too many fields");
        assert!(parse_waypoints("1 2 three 4").is_err(), "non-numeric");
        assert!(parse_waypoints("-1 0 0 0").is_err(), "negative time");
        assert!(parse_waypoints("nan 0 0 0").is_err(), "non-finite");
        assert!(
            parse_waypoints("5 0 0 0\n2 0 0 0").is_err(),
            "time goes backwards"
        );
    }

    #[test]
    fn from_waypoints_scripts_device_moves() {
        let s = Scenario::new()
            .from_waypoints(3, "0 1 2 90\n1.5 4 2 45\n")
            .expect("valid trace");
        assert_eq!(s.len(), 2);
        let WorldMutation::MoveDevice {
            dev,
            position,
            orientation,
        } = &s.events()[1].mutation
        else {
            panic!("waypoints must become MoveDevice mutations");
        };
        assert_eq!(*dev, 3);
        assert_eq!(s.events()[1].at, SimTime::from_secs_f64(1.5));
        assert_eq!(position.x, 4.0);
        assert!((orientation.degrees() - 45.0).abs() < 1e-12);
    }

    #[test]
    fn waypoint_file_round_trips_through_disk() {
        let parsed =
            parse_waypoints("0 1 2 90\n0.25 1.5 2 90\n3.5 -0.125 2.75 -45\n").expect("parses");
        let path = std::env::temp_dir().join(format!(
            "mmwave-waypoints-{}-{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, format_waypoints(&parsed)).expect("write trace");
        let from_file = Scenario::new()
            .from_waypoints_file(5, &path)
            .expect("file trace parses");
        let from_text = Scenario::new()
            .from_waypoints(5, &format_waypoints(&parsed))
            .expect("text trace parses");
        std::fs::remove_file(&path).ok();
        assert_eq!(from_file.len(), parsed.len());
        for (a, b) in from_file.events().iter().zip(from_text.events()) {
            assert_eq!(a.at, b.at);
            let (
                WorldMutation::MoveDevice {
                    dev: da,
                    position: pa,
                    orientation: oa,
                },
                WorldMutation::MoveDevice {
                    dev: db,
                    position: pb,
                    orientation: ob,
                },
            ) = (&a.mutation, &b.mutation)
            else {
                panic!("waypoints must become MoveDevice mutations");
            };
            assert_eq!(da, db);
            assert_eq!((pa.x, pa.y), (pb.x, pb.y));
            assert_eq!(oa.degrees(), ob.degrees());
        }
    }

    #[test]
    fn waypoint_file_errors_carry_the_path() {
        let missing = std::env::temp_dir().join("mmwave-waypoints-definitely-missing.txt");
        let err = Scenario::new()
            .from_waypoints_file(0, &missing)
            .expect_err("missing file must error");
        assert!(
            err.contains("mmwave-waypoints-definitely-missing.txt"),
            "{err}"
        );
    }

    #[test]
    fn labelled_parse_errors_are_compiler_style() {
        // The bad line is the 4th raw line: comments and blanks above it
        // still count, so the reported location is editor-jumpable.
        let text = "# recorded trace\n\n0 1 2 90\n1 2 three 4\n";
        let err = parse_waypoints_from("trace.txt", text).expect_err("malformed");
        assert!(err.starts_with("trace.txt:4: "), "{err}");
        assert!(err.contains("`three`"), "{err}");
        // Same text through the unlabelled path keeps the legacy prefix.
        let err = parse_waypoints(text).expect_err("malformed");
        assert!(err.starts_with("waypoint line 4: "), "{err}");
    }

    #[test]
    fn waypoint_file_parse_errors_carry_path_and_line() {
        let path = std::env::temp_dir().join(format!(
            "mmwave-waypoints-badline-{}-{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, "0 1 2 90\n# hold\n5 0 0 0\n2 0 0 0\n").expect("write trace");
        let err = Scenario::new()
            .from_waypoints_file(0, &path)
            .expect_err("backwards time must error");
        std::fs::remove_file(&path).ok();
        let loc = format!("{}:4: ", path.display());
        assert!(err.starts_with(&loc), "{err}");
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn walking_blocker_generates_evenly_spaced_steps() {
        let shape = Segment::new(Point::new(2.0, -2.0), Point::new(2.0, -1.0));
        let s = Scenario::new().walking_blocker(
            3,
            shape,
            Vec2::new(0.0, 3.0),
            SimTime::from_millis(10),
            SimDuration::from_millis(100),
            10,
        );
        assert_eq!(s.len(), 11);
        let first = &s.events()[0];
        let last = &s.events()[10];
        assert_eq!(first.at, SimTime::from_millis(10));
        assert_eq!(last.at, SimTime::from_millis(110));
        let (
            WorldMutation::MoveObstacle { seg: s0, wall: w0 },
            WorldMutation::MoveObstacle { seg: s1, .. },
        ) = (&first.mutation, &last.mutation)
        else {
            panic!("walking blocker must emit MoveObstacle events");
        };
        assert_eq!(*w0, 3);
        assert!((s0.a.y - -2.0).abs() < 1e-12);
        assert!((s1.a.y - 1.0).abs() < 1e-12, "swept by the full vector");
        assert!((s1.b.y - 2.0).abs() < 1e-12);
    }
}
