//! Deterministic scenario scripts: time-scheduled world mutations.
//!
//! The paper's "bane" findings are all *transient* — a human crossing the
//! line of sight collapses the link until realignment (Fig. 20), and over
//! 80 minutes the D5000 link repeatedly degrades and re-trains (Fig. 14).
//! A [`Scenario`] scripts exactly those dynamics: a list of
//! `(time, WorldMutation)` pairs that [`crate::Net::install_scenario`]
//! schedules into the simulation's own event queue. Mutations therefore
//! execute interleaved with MAC events in deterministic timestamp order,
//! so a scripted run stays bitwise reproducible per seed.
//!
//! The invalidation contract: every mutation that changes radiometric
//! geometry routes through the exact cache bump it requires — device
//! moves/rotations bump that device's position/orientation generation in
//! the [`LinkGainCache`], obstacle moves and enable-toggles flush all
//! interned paths (a wall affects every pair). Fault injections and video
//! toggles change no geometry and bump nothing.
//!
//! [`LinkGainCache`]: mmwave_channel::LinkGainCache

use mmwave_geom::{Angle, Point, Segment, Vec2};
use mmwave_sim::time::{SimDuration, SimTime};

/// Which frames an injected fault window corrupts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Every addressed frame arriving at the target device.
    AllFrames,
    /// Only beacon frames (a beacon-loss burst; data still flows).
    BeaconsOnly,
}

/// One scripted change of the world.
#[derive(Clone, Debug)]
pub enum WorldMutation {
    /// Teleport/rotate a device (granular per-device cache bumps).
    MoveDevice {
        /// Device index.
        dev: usize,
        /// New position.
        position: Point,
        /// New orientation.
        orientation: Angle,
    },
    /// Move/reshape a wall or obstacle (by wall index, see
    /// [`mmwave_geom::Room::find_wall`]). Flushes all cached paths.
    MoveObstacle {
        /// Wall index within the room.
        wall: usize,
        /// The wall's new footprint.
        seg: Segment,
    },
    /// Enable or disable a wall or obstacle. A disabled wall neither
    /// blocks nor reflects — the blocker is "off stage".
    SetObstacleEnabled {
        /// Wall index within the room.
        wall: usize,
        /// New enabled state.
        enabled: bool,
    },
    /// Toggle a WiHD source's video stream (interferer on/off — the
    /// Fig. 23 power switch, scripted).
    SetVideo {
        /// WiHD source device index.
        dev: usize,
        /// Stream on?
        on: bool,
    },
    /// Force frames addressed to `dev` to fail until `until` (injected
    /// frame-error / beacon-loss burst, bypassing the PER model).
    InjectFaults {
        /// Target (receiving) device index.
        dev: usize,
        /// Which frame classes the window corrupts.
        kind: FaultKind,
        /// Window end (exclusive).
        until: SimTime,
    },
}

/// A mutation with its fire time.
#[derive(Clone, Debug)]
pub struct ScenarioEvent {
    /// When the mutation applies.
    pub at: SimTime,
    /// What changes.
    pub mutation: WorldMutation,
}

/// A scripted scenario: world mutations with their fire times.
///
/// Build with the chainable [`Scenario::at`] /
/// [`Scenario::walking_blocker`]; install with
/// [`crate::Net::install_scenario`]. Events may be added in any order —
/// installation sorts them (stably) by time.
#[derive(Clone, Debug, Default)]
pub struct Scenario {
    events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// An empty scenario.
    pub fn new() -> Scenario {
        Scenario::default()
    }

    /// Schedule one mutation.
    pub fn at(mut self, at: SimTime, mutation: WorldMutation) -> Scenario {
        self.events.push(ScenarioEvent { at, mutation });
        self
    }

    /// Script a human blocker sweeping across the scene: wall `wall` is
    /// moved through `steps + 1` positions, translating `shape` by
    /// `sweep · k/steps` at time `t0 + duration · k/steps`. The caller
    /// typically parks the blocker out of the link corridor beforehand
    /// (its initial segment) and lets the sweep carry it through the LOS.
    pub fn walking_blocker(
        mut self,
        wall: usize,
        shape: Segment,
        sweep: Vec2,
        t0: SimTime,
        duration: SimDuration,
        steps: usize,
    ) -> Scenario {
        assert!(steps >= 1, "a walk needs at least one step");
        for k in 0..=steps {
            let frac = k as f64 / steps as f64;
            let offset = Vec2::new(sweep.x * frac, sweep.y * frac);
            let seg = Segment::new(shape.a + offset, shape.b + offset);
            self.events.push(ScenarioEvent {
                at: t0 + duration * frac,
                mutation: WorldMutation::MoveObstacle { wall, seg },
            });
        }
        self
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events sorted (stably) by fire time — the install order.
    pub(crate) fn into_sorted_events(self) -> Vec<ScenarioEvent> {
        let mut events = self.events;
        events.sort_by_key(|e| e.at);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_events_and_sorts_on_install() {
        let s = Scenario::new()
            .at(
                SimTime::from_millis(5),
                WorldMutation::SetVideo { dev: 2, on: false },
            )
            .at(
                SimTime::from_millis(1),
                WorldMutation::SetObstacleEnabled {
                    wall: 0,
                    enabled: true,
                },
            );
        assert_eq!(s.len(), 2);
        let sorted = s.into_sorted_events();
        assert_eq!(sorted[0].at, SimTime::from_millis(1));
        assert_eq!(sorted[1].at, SimTime::from_millis(5));
    }

    #[test]
    fn walking_blocker_generates_evenly_spaced_steps() {
        let shape = Segment::new(Point::new(2.0, -2.0), Point::new(2.0, -1.0));
        let s = Scenario::new().walking_blocker(
            3,
            shape,
            Vec2::new(0.0, 3.0),
            SimTime::from_millis(10),
            SimDuration::from_millis(100),
            10,
        );
        assert_eq!(s.len(), 11);
        let first = &s.events()[0];
        let last = &s.events()[10];
        assert_eq!(first.at, SimTime::from_millis(10));
        assert_eq!(last.at, SimTime::from_millis(110));
        let (
            WorldMutation::MoveObstacle { seg: s0, wall: w0 },
            WorldMutation::MoveObstacle { seg: s1, .. },
        ) = (&first.mutation, &last.mutation)
        else {
            panic!("walking blocker must emit MoveObstacle events");
        };
        assert_eq!(*w0, 3);
        assert!((s0.a.y - -2.0).abs() < 1e-12);
        assert!((s1.a.y - 1.0).abs() < 1e-12, "swept by the full vector");
        assert!((s1.b.y - 2.0).abs() < 1e-12);
    }
}
