//! Frames and their airtime.
//!
//! The paper never decodes a frame — it sees durations and amplitudes. The
//! model therefore keeps payloads abstract (byte counts and transport
//! tags) but computes airtime exactly: PHY overhead plus payload bits at
//! the frame's rate, which is what makes the ~5 µs single-MPDU /
//! 15–25 µs aggregated split of Fig. 9 fall out of MCS arithmetic.

use crate::params::MacParams;
use mmwave_sim::time::SimDuration;

/// One MPDU queued for transmission: an opaque payload with a transport
/// cookie that rides along to the receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mpdu {
    /// Payload bytes (e.g. one TCP segment).
    pub bytes: u32,
    /// Transport-layer cookie, returned on delivery.
    pub tag: u64,
}

/// Coarse frame class recorded in the transmission log; this is the
/// ground-truth analogue of what the paper distinguishes by eye and by
/// amplitude in its traces.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FrameClass {
    /// WiGig beacon (control PHY, quasi-omni).
    Beacon,
    /// One sub-element of a discovery sweep.
    DiscoverySub,
    /// RTS or CTS.
    Control,
    /// Data PPDU (possibly aggregated).
    Data,
    /// Acknowledgement.
    Ack,
    /// WiHD sink beacon.
    WihdBeacon,
    /// WiHD video data frame.
    WihdData,
    /// Association / sector-sweep handshake frames.
    Training,
}

impl FrameClass {
    /// Stable numeric tag for capture-trace ground truth.
    pub fn as_u8(self) -> u8 {
        match self {
            FrameClass::Beacon => 0,
            FrameClass::DiscoverySub => 1,
            FrameClass::Control => 2,
            FrameClass::Data => 3,
            FrameClass::Ack => 4,
            FrameClass::WihdBeacon => 5,
            FrameClass::WihdData => 6,
            FrameClass::Training => 7,
        }
    }
}

/// What is being transmitted.
#[derive(Clone, Debug)]
pub enum FrameKind {
    /// WiGig beacon.
    Beacon,
    /// One sub-element of a discovery sweep, with its codebook index.
    DiscoverySub {
        /// Quasi-omni codebook entry used for this sub-element.
        pattern_idx: usize,
    },
    /// Request to send.
    Rts,
    /// Clear to send.
    Cts,
    /// Aggregated data PPDU.
    Data {
        /// The MPDUs on board.
        mpdus: Vec<Mpdu>,
        /// MCS index used.
        mcs: u8,
        /// Retry round (0 = first attempt).
        retry: u8,
    },
    /// Block acknowledgement.
    Ack,
    /// WiHD sink beacon.
    WihdBeacon,
    /// WiHD video data frame.
    WihdData {
        /// Payload bytes.
        bytes: u32,
    },
    /// Association handshake frame.
    Training,
}

impl FrameKind {
    /// The coarse class for logging.
    pub fn class(&self) -> FrameClass {
        match self {
            FrameKind::Beacon => FrameClass::Beacon,
            FrameKind::DiscoverySub { .. } => FrameClass::DiscoverySub,
            FrameKind::Rts | FrameKind::Cts => FrameClass::Control,
            FrameKind::Data { .. } => FrameClass::Data,
            FrameKind::Ack => FrameClass::Ack,
            FrameKind::WihdBeacon => FrameClass::WihdBeacon,
            FrameKind::WihdData { .. } => FrameClass::WihdData,
            FrameKind::Training => FrameClass::Training,
        }
    }
}

/// A frame on the air.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Transmitting device index.
    pub src: usize,
    /// Destination device index (None = broadcast-style).
    pub dst: Option<usize>,
    /// Content.
    pub kind: FrameKind,
    /// Monotonic sequence number (per network).
    pub seq: u64,
}

/// Control-PHY bit rate (27.5 Mb/s) used by beacons.
pub const CONTROL_PHY_BPS: u64 = 27_500_000;
/// MCS-1 rate used for RTS/CTS/ACK (robust short frames).
pub const BASE_RATE_BPS: u64 = 385_000_000;

/// Airtime of a data PPDU with `mpdus` aggregated MPDUs at `rate_bps`.
pub fn data_airtime(params: &MacParams, mpdus: &[Mpdu], rate_bps: u64) -> SimDuration {
    let bits: u64 = mpdus
        .iter()
        .map(|m| (m.bytes + params.mpdu_overhead_bytes) as u64 * 8)
        .sum();
    params.data_phy_overhead + SimDuration::for_bits(bits, rate_bps)
}

/// Airtime of each frame kind.
pub fn airtime(params: &MacParams, kind: &FrameKind, wigig_sub_dur: SimDuration) -> SimDuration {
    match kind {
        FrameKind::Beacon => {
            params.control_phy_overhead + SimDuration::for_bits(30 * 8, CONTROL_PHY_BPS)
        }
        FrameKind::DiscoverySub { .. } => wigig_sub_dur,
        FrameKind::Rts => params.data_phy_overhead + SimDuration::for_bits(20 * 8, BASE_RATE_BPS),
        FrameKind::Cts => params.data_phy_overhead + SimDuration::for_bits(16 * 8, BASE_RATE_BPS),
        FrameKind::Data { mpdus, mcs, .. } => {
            let rate = mmwave_phy::McsTable::ieee_802_11ad().get(*mcs).rate_bps;
            data_airtime(params, mpdus, rate)
        }
        FrameKind::Ack => params.data_phy_overhead + SimDuration::for_bits(14 * 8, BASE_RATE_BPS),
        FrameKind::WihdBeacon => {
            params.control_phy_overhead + SimDuration::for_bits(24 * 8, CONTROL_PHY_BPS)
        }
        FrameKind::WihdData { bytes } => {
            params.data_phy_overhead + SimDuration::for_bits(*bytes as u64 * 8, 1_925_000_000)
        }
        FrameKind::Training => {
            params.control_phy_overhead + SimDuration::for_bits(25 * 8, CONTROL_PHY_BPS)
        }
    }
}

/// Total bits a data frame carries (for PER length scaling).
pub fn data_bits(params: &MacParams, mpdus: &[Mpdu]) -> u64 {
    mpdus
        .iter()
        .map(|m| (m.bytes + params.mpdu_overhead_bytes) as u64 * 8)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> MacParams {
        MacParams::default()
    }

    fn mpdu_1500() -> Mpdu {
        Mpdu {
            bytes: 1500,
            tag: 0,
        }
    }

    #[test]
    fn single_mpdu_at_mcs11_is_about_5us() {
        // 1542 B = 12336 bits at 3.85 Gb/s ≈ 3.2 µs + 1.9 µs overhead ≈
        // 5.1 µs — the paper's "short" frame population.
        let kind = FrameKind::Data {
            mpdus: vec![mpdu_1500()],
            mcs: 11,
            retry: 0,
        };
        let d = airtime(&p(), &kind, SimDuration::from_micros(30));
        assert!((d.as_micros_f64() - 5.1).abs() < 0.3, "{d}");
    }

    #[test]
    fn max_aggregation_stays_within_25us() {
        // 7 MPDUs at MCS 11 ≈ 24.3 µs ≤ the observed 25 µs ceiling.
        let kind = FrameKind::Data {
            mpdus: vec![mpdu_1500(); 7],
            mcs: 11,
            retry: 0,
        };
        let d = airtime(&p(), &kind, SimDuration::from_micros(30));
        assert!(d <= SimDuration::from_micros(25), "{d}");
        assert!(d > SimDuration::from_micros(20), "{d}");
    }

    #[test]
    fn airtime_scales_with_mcs() {
        let hi = FrameKind::Data {
            mpdus: vec![mpdu_1500(); 2],
            mcs: 11,
            retry: 0,
        };
        let lo = FrameKind::Data {
            mpdus: vec![mpdu_1500(); 2],
            mcs: 6,
            retry: 0,
        };
        let sub = SimDuration::from_micros(30);
        assert!(airtime(&p(), &lo, sub) > airtime(&p(), &hi, sub) * 2);
    }

    #[test]
    fn control_frames_are_short() {
        let sub = SimDuration::from_micros(30);
        for kind in [FrameKind::Rts, FrameKind::Cts, FrameKind::Ack] {
            let d = airtime(&p(), &kind, sub);
            assert!(d < SimDuration::from_micros(3), "{d}");
            assert!(d > SimDuration::from_micros(1));
        }
    }

    #[test]
    fn beacon_duration() {
        // 30 B at 27.5 Mb/s + 3 µs ≈ 11.7 µs — prominent in the traces.
        let d = airtime(&p(), &FrameKind::Beacon, SimDuration::from_micros(30));
        assert!((d.as_micros_f64() - 11.7).abs() < 0.5, "{d}");
    }

    #[test]
    fn discovery_sub_uses_configured_duration() {
        let d = airtime(
            &p(),
            &FrameKind::DiscoverySub { pattern_idx: 5 },
            SimDuration::from_micros(30),
        );
        assert_eq!(d, SimDuration::from_micros(30));
    }

    #[test]
    fn wihd_data_at_fixed_phy_rate() {
        // 12 kB at 1.925 Gb/s ≈ 49.9 µs + 1.9 ≈ 51.8 µs.
        let d = airtime(
            &p(),
            &FrameKind::WihdData { bytes: 12_000 },
            SimDuration::from_micros(30),
        );
        assert!((d.as_micros_f64() - 51.8).abs() < 1.0, "{d}");
    }

    #[test]
    fn frame_classes_are_distinct() {
        use std::collections::HashSet;
        let kinds = [
            FrameKind::Beacon,
            FrameKind::DiscoverySub { pattern_idx: 0 },
            FrameKind::Rts,
            FrameKind::Data {
                mpdus: vec![],
                mcs: 1,
                retry: 0,
            },
            FrameKind::Ack,
            FrameKind::WihdBeacon,
            FrameKind::WihdData { bytes: 1 },
            FrameKind::Training,
        ];
        let tags: HashSet<u8> = kinds.iter().map(|k| k.class().as_u8()).collect();
        assert_eq!(tags.len(), 8);
    }

    #[test]
    fn data_bits_counts_overhead() {
        let bits = data_bits(&p(), &[mpdu_1500(), mpdu_1500()]);
        assert_eq!(bits, 2 * (1500 + 42) * 8);
    }
}
