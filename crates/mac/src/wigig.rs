//! The WiGig (Dell D5000 + laptop) protocol state machine.
//!
//! Implements the three phases §4.1 identifies: device discovery
//! (32-sub-element quasi-omni sweeps every 102.4 ms), association with
//! beam training, and the data phase — CSMA/CA TXOP bursts capped at 2 ms,
//! opened by RTS/CTS, carrying A-MPDU data/ACK exchanges, with a 1.1 ms
//! beacon exchange that doubles as the SNR probe and beam-realignment
//! hook (the joint rate/beam process inferred from Fig. 14).

use crate::device::{PatKey, WigigState};
use crate::frame::{airtime, Frame, FrameKind, Mpdu};
use crate::net::{Delivery, Net, NetEv};
use crate::{medium::ActiveTx, training};
use mmwave_geom::Angle;
use mmwave_sim::time::SimDuration;

/// Sensitivity margin (dB over the control-PHY sensitivity) required for a
/// discovery frame to be considered heard.
const DISCOVERY_MARGIN_DB: f64 = 3.0;

/// Consecutive ACK timeouts before a loss-triggered recovery probe. The
/// required streak doubles with every recovery attempt already spent
/// (bounded retry backoff), so a link that keeps collapsing probes less
/// and less eagerly before the budget runs out.
const LOSS_RETRAIN_STREAK: u8 = 3;

/// Consecutive undelivered beacons before a loss-triggered recovery probe
/// (idle links have no ACK stream; beacon loss is their only loss signal).
const BEACON_LOSS_STREAK: u8 = 4;

/// Recovery probes that actually found the beam collapsed (SNR below the
/// sustain threshold) before the link is declared down instead of retrained
/// again.
const LOSS_RECOVERY_BUDGET: u8 = 3;

/// The carrier-sense threshold this device operates with (per-device
/// override, else the network default).
pub(crate) fn cs_threshold(net: &Net, dev: usize) -> f64 {
    net.devices[dev]
        .cs_threshold_override_dbm
        .unwrap_or(net.cfg.params.cs_threshold_dbm)
}

// ---------------------------------------------------------------------
// Discovery and association
// ---------------------------------------------------------------------

/// Emit one 32-sub-element discovery sweep and schedule the next tick.
pub(crate) fn on_discovery_tick(net: &mut Net, dev: usize) {
    let (state, n_subs, sub_dur, interval) = {
        let Some(w) = net.devices[dev].wigig() else {
            return;
        };
        (
            w.state,
            w.cfg.discovery_sub_elements,
            w.cfg.discovery_sub_duration,
            w.cfg.discovery_interval,
        )
    };
    if state != WigigState::Unassociated {
        return; // associated meanwhile; sweeps stop
    }
    net.devices[dev].stats.discovery_sweeps += 1;
    let now = net.now();
    for i in 0..n_subs {
        let seq = net.next_seq();
        let frame = Frame {
            src: dev,
            dst: None,
            kind: FrameKind::DiscoverySub { pattern_idx: i },
            seq,
        };
        let pattern = PatKey::Qo(i);
        let extra = net.cfg.control_power_offset_db;
        if i == 0 {
            net.start_tx(frame, pattern, extra);
        } else {
            net.queue.schedule(
                now + sub_dur * i as u32,
                NetEv::SendFrame {
                    frame,
                    pattern,
                    extra_power_db: extra,
                },
            );
        }
    }
    net.queue
        .schedule(now + interval, NetEv::DiscoveryTick { dev });
}

/// After the last sub-element: did the pre-wired peer hear the sweep?
fn check_discovery_response(net: &mut Net, dock: usize) {
    let Some(w) = net.devices[dock].wigig() else {
        return;
    };
    if w.state != WigigState::Unassociated {
        return;
    }
    let Some(station) = w.peer else { return };
    if net.devices[station]
        .wigig()
        .map(|s| s.state != WigigState::Unassociated)
        .unwrap_or(true)
    {
        return;
    }
    // Reachability check: the best trained pair must promise a
    // *sustainable* link (the same criterion that breaks links — otherwise
    // a just-broken link would instantly re-associate and flap).
    let result = training::best_pair_with(
        net.medium.link_cache_mut(),
        &net.env,
        &net.devices[dock],
        dock,
        &net.devices[station],
        station,
    );
    let snr = result.rx_dbm - net.env.noise_floor_dbm();
    if snr < net.cfg.min_link_snr_db + DISCOVERY_MARGIN_DB {
        return; // out of range; keep sweeping
    }
    // Handshake: a short exchange of training frames, then association.
    for (i, (src, dst)) in [
        (station, dock),
        (dock, station),
        (station, dock),
        (dock, station),
    ]
    .into_iter()
    .enumerate()
    {
        let seq = net.next_seq();
        let frame = Frame {
            src,
            dst: Some(dst),
            kind: FrameKind::Training,
            seq,
        };
        let extra = net.cfg.control_power_offset_db;
        let at = net.now() + SimDuration::from_micros(120 * (i as u64 + 1));
        net.queue.schedule(
            at,
            NetEv::SendFrame {
                frame,
                pattern: PatKey::Qo(0),
                extra_power_db: extra,
            },
        );
    }
    for d in [dock, station] {
        if let Some(w) = net.devices[d].wigig_mut() {
            w.state = WigigState::Associating;
        }
    }
    let at = net.now() + SimDuration::from_millis(1);
    net.queue
        .schedule(at, NetEv::AssocComplete { dock, station });
}

/// Train the sector pair and enter the data phase.
pub(crate) fn complete_association(net: &mut Net, dock: usize, station: usize) {
    let result = training::best_pair_with(
        net.medium.link_cache_mut(),
        &net.env,
        &net.devices[dock],
        dock,
        &net.devices[station],
        station,
    );
    let beacon_interval = {
        let w = net.devices[dock].wigig_mut().expect("dock is wigig");
        w.state = WigigState::Associated;
        w.tx_sector = result.a_sector;
        w.peer = Some(station);
        net.devices[dock].stats.retrains += 1;
        net.devices[dock].wigig().expect("dock").cfg.beacon_interval
    };
    {
        let w = net.devices[station].wigig_mut().expect("station is wigig");
        w.state = WigigState::Associated;
        w.tx_sector = result.b_sector;
        w.peer = Some(dock);
        net.devices[station].stats.retrains += 1;
    }
    update_link_snr(net, dock, station);
    update_link_snr(net, station, dock);
    let at = net.now() + beacon_interval;
    net.queue.schedule(at, NetEv::BeaconTick { dev: dock });
    // Data may already be queued.
    for d in [dock, station] {
        maybe_contend(net, d, SimDuration::ZERO);
    }
}

/// Measure the trained-link SNR at `me` (signal from `peer`) and feed the
/// rate adapter.
fn update_link_snr(net: &mut Net, me: usize, peer: usize) {
    update_link_snr_inner(net, me, peer, true);
}

fn update_link_snr_inner(net: &mut Net, me: usize, peer: usize, allow_retrain: bool) {
    let peer_sector = net.devices[peer].wigig().map(|w| w.tx_sector).unwrap_or(0);
    let rx = net.medium.rx_power_dbm(
        &net.env,
        &net.devices,
        peer,
        PatKey::Dir(peer_sector),
        me,
        0.0,
    ) + net.link_offset_db(peer, me);
    let noise = net.env.noise_floor_dbm();
    let snr = rx - noise;
    if let Some(w) = net.devices[me].wigig_mut() {
        w.adapter.on_snr(snr, noise);
    }
    if snr < net.cfg.min_link_snr_db {
        // The current beam pair is no longer sustainable. Before giving
        // the link up, retrain once — the channel may have changed (e.g.
        // blockage) while a usable reflection path exists.
        if allow_retrain {
            let best = training::best_pair_with(
                net.medium.link_cache_mut(),
                &net.env,
                &net.devices[me],
                me,
                &net.devices[peer],
                peer,
            );
            if best.rx_dbm - noise >= net.cfg.min_link_snr_db {
                retrain(net, me, peer);
                return;
            }
        }
        break_link(net, me, peer);
    }
}

/// Tear an association down: both sides return to the discovery phase.
/// The dock's next sweep may re-associate if conditions recover.
pub(crate) fn break_link(net: &mut Net, a: usize, b: usize) {
    use crate::device::WigigRole;
    for d in [a, b] {
        let (pending, lost_tags): (Vec<_>, Vec<u64>) = {
            let Some(w) = net.devices[d].wigig_mut() else {
                continue;
            };
            if w.state != WigigState::Associated {
                continue;
            }
            w.state = WigigState::Unassociated;
            w.in_txop = false;
            w.contending = false;
            w.retry = 0;
            w.cw = 8;
            w.ack_fail_streak = 0;
            w.beacon_fail_streak = 0;
            w.loss_recovery_attempts = 0;
            let mut lost: Vec<u64> = w.queue.drain(..).map(|m| m.tag).collect();
            let mut ids = Vec::new();
            if let Some(aa) = w.awaiting_ack.take() {
                ids.push(aa.timeout);
                lost.extend(aa.mpdus.iter().map(|m| m.tag));
            }
            if let Some(id) = w.pending_cts.take() {
                ids.push(id);
            }
            (ids, lost)
        };
        for id in pending {
            net.queue.cancel(id);
        }
        if !lost_tags.is_empty() {
            net.devices[d].stats.drops += 1;
            net.delivered.push(Delivery::Dropped {
                dev: d,
                tags: lost_tags,
            });
        }
        let is_dock = net.devices[d]
            .wigig()
            .map(|w| w.role == WigigRole::Dock)
            .unwrap_or(false);
        if is_dock {
            let interval = net.devices[d]
                .wigig()
                .expect("wigig")
                .cfg
                .discovery_interval;
            let at = net.now() + interval;
            net.queue.schedule(at, NetEv::DiscoveryTick { dev: d });
        }
    }
}

// ---------------------------------------------------------------------
// Beacons and realignment
// ---------------------------------------------------------------------

/// The dock-driven 1.1 ms beacon exchange.
pub(crate) fn on_beacon_tick(net: &mut Net, dev: usize) {
    let (state, peer, interval) = {
        let Some(w) = net.devices[dev].wigig() else {
            return;
        };
        (w.state, w.peer, w.cfg.beacon_interval)
    };
    if state != WigigState::Associated {
        return;
    }
    let Some(peer) = peer else { return };

    // Perturbation poll: sparse events jitter the peer's orientation and
    // trigger a retrain — the Fig. 14 realignment mechanism.
    if net.cfg.enable_perturbations {
        let key = (dev.min(peer), dev.max(peer));
        let now = net.now();
        let seed = net.cfg.seed;
        let process = net.perturb.entry(key).or_insert_with(|| {
            mmwave_channel::PerturbationProcess::fig14_default(
                mmwave_sim::rng::SimRng::root(seed)
                    .stream_n("perturb", (key.0 as u64) << 32 | key.1 as u64),
            )
        });
        let events = process.poll(now);
        if !events.is_empty() {
            let jitter = net.rng.normal(0.0, 2.0);
            let station = peer;
            let new_orientation =
                net.devices[station].node.orientation + Angle::from_degrees(jitter);
            let pos = net.devices[station].node.position;
            net.move_device(station, pos, new_orientation);
            retrain(net, dev, station);
        }
    }

    // Beacons go out *between* bursts ("outside the bursts, the channel
    // is idle except for a regular beacon exchange") — defer while this
    // device is mid-exchange or the medium is not AIFS-idle.
    let mid_exchange = {
        let w = net.devices[dev].wigig().expect("wigig");
        w.in_txop || w.awaiting_ack.is_some() || w.pending_cts.is_some()
    };
    let idle = net
        .medium
        .idle_for(dev, cs_threshold(net, dev), net.now(), net.cfg.params.sifs);
    if net.medium.is_transmitting(dev) || mid_exchange || !idle {
        let at = net.now() + SimDuration::from_micros(53);
        net.queue.schedule(at, NetEv::BeaconTick { dev });
        return;
    }
    let seq = net.next_seq();
    let beacon_idx = (seq % 32) as usize;
    let frame = Frame {
        src: dev,
        dst: Some(peer),
        kind: FrameKind::Beacon,
        seq,
    };
    let extra = net.cfg.control_power_offset_db;
    net.devices[dev].stats.beacons_tx += 1;
    net.start_tx(frame, PatKey::Qo(beacon_idx), extra);
    let at = net.now() + interval;
    net.queue.schedule(at, NetEv::BeaconTick { dev });
}

/// Re-run beam training on an established link (realignment).
fn retrain(net: &mut Net, a: usize, b: usize) {
    let result = training::best_pair_with(
        net.medium.link_cache_mut(),
        &net.env,
        &net.devices[a],
        a,
        &net.devices[b],
        b,
    );
    if let Some(w) = net.devices[a].wigig_mut() {
        w.tx_sector = result.a_sector;
    }
    if let Some(w) = net.devices[b].wigig_mut() {
        w.tx_sector = result.b_sector;
    }
    net.devices[a].stats.retrains += 1;
    net.devices[b].stats.retrains += 1;
    update_link_snr_inner(net, a, b, false);
    update_link_snr_inner(net, b, a, false);
}

// ---------------------------------------------------------------------
// Loss-triggered recovery
// ---------------------------------------------------------------------

/// A frame-loss streak crossed its threshold: probe the trained link.
///
/// If the trained-pair SNR still clears the sustain threshold, the losses
/// were collisions or interference, not beam failure — reset the streaks
/// and spend no recovery budget (CSMA backoff already handles contention).
/// If the beam really collapsed (blockage, misalignment), burn one budget
/// unit and retrain; [`update_link_snr_inner`] switches to the best
/// surviving pair (e.g. a wall reflection) or, if nothing sustains the
/// link, tears it down. Budget exhaustion forces the teardown directly:
/// explicit link-down → rediscovery instead of a silent retrain loop.
fn loss_recovery(net: &mut Net, me: usize, peer: usize) {
    let state_ok = net.devices[me]
        .wigig()
        .map(|w| w.state == WigigState::Associated)
        .unwrap_or(false);
    if !state_ok {
        return;
    }
    let peer_sector = net.devices[peer].wigig().map(|w| w.tx_sector).unwrap_or(0);
    let rx = net.medium.rx_power_dbm(
        &net.env,
        &net.devices,
        peer,
        PatKey::Dir(peer_sector),
        me,
        0.0,
    ) + net.link_offset_db(peer, me);
    let snr = rx - net.env.noise_floor_dbm();
    if snr >= net.cfg.min_link_snr_db {
        if let Some(w) = net.devices[me].wigig_mut() {
            w.ack_fail_streak = 0;
            w.beacon_fail_streak = 0;
        }
        return;
    }
    let attempts = {
        let Some(w) = net.devices[me].wigig_mut() else {
            return;
        };
        w.ack_fail_streak = 0;
        w.beacon_fail_streak = 0;
        w.loss_recovery_attempts = w.loss_recovery_attempts.saturating_add(1);
        w.loss_recovery_attempts
    };
    if attempts > LOSS_RECOVERY_BUDGET {
        break_link(net, me, peer);
    } else {
        update_link_snr_inner(net, me, peer, true);
    }
}

/// Loss streaks trigger recovery at a threshold that doubles with every
/// recovery attempt already spent — the bounded retry backoff.
fn streak_threshold(base: u8, attempts: u8) -> u8 {
    base.saturating_mul(1 << attempts.min(4))
}

/// Count one ACK timeout towards the loss streak; probe when it crosses
/// the (backoff-scaled) threshold.
fn note_ack_loss(net: &mut Net, dev: usize) {
    let trigger = {
        let Some(w) = net.devices[dev].wigig_mut() else {
            return;
        };
        if w.state != WigigState::Associated {
            return;
        }
        w.ack_fail_streak = w.ack_fail_streak.saturating_add(1);
        (w.ack_fail_streak >= streak_threshold(LOSS_RETRAIN_STREAK, w.loss_recovery_attempts))
            .then_some(w.peer)
            .flatten()
    };
    if let Some(peer) = trigger {
        loss_recovery(net, dev, peer);
    }
}

/// Count one undelivered beacon towards the sender's loss streak.
fn note_beacon_loss(net: &mut Net, dev: usize) {
    let trigger = {
        let Some(w) = net.devices[dev].wigig_mut() else {
            return;
        };
        if w.state != WigigState::Associated {
            return;
        }
        w.beacon_fail_streak = w.beacon_fail_streak.saturating_add(1);
        (w.beacon_fail_streak >= streak_threshold(BEACON_LOSS_STREAK, w.loss_recovery_attempts))
            .then_some(w.peer)
            .flatten()
    };
    if let Some(peer) = trigger {
        loss_recovery(net, dev, peer);
    }
}

// ---------------------------------------------------------------------
// TXOP bursts
// ---------------------------------------------------------------------

/// Schedule a contention attempt after `extra` delay if the device is idle
/// and has queued data.
pub(crate) fn maybe_contend(net: &mut Net, dev: usize, extra: SimDuration) {
    let aifs = net.cfg.params.aifs();
    let now = net.now();
    let Some(w) = net.devices[dev].wigig_mut() else {
        return;
    };
    if w.state == WigigState::Associated
        && !w.queue.is_empty()
        && !w.in_txop
        && !w.contending
        && w.awaiting_ack.is_none()
        && w.pending_cts.is_none()
    {
        w.contending = true;
        net.queue
            .schedule(now + aifs + extra, NetEv::TxopAttempt { dev });
    }
}

/// CSMA attempt to open a TXOP.
pub(crate) fn on_txop_attempt(net: &mut Net, dev: usize) {
    let now = net.now();
    let (ready, batch_wait_until, peer, sector, cw) = {
        let Some(w) = net.devices[dev].wigig_mut() else {
            return;
        };
        w.contending = false;
        let ready = w.state == WigigState::Associated
            && !w.queue.is_empty()
            && !w.in_txop
            && w.awaiting_ack.is_none()
            && w.pending_cts.is_none();
        // Batch service: hold back until the batch fills or the head of
        // the queue has waited long enough.
        let batch_wait_until = if ready
            && w.queue.len() < w.cfg.min_aggregation
            && now < w.oldest_wait_start + w.cfg.max_queue_wait
        {
            Some(w.oldest_wait_start + w.cfg.max_queue_wait)
        } else {
            None
        };
        (ready, batch_wait_until, w.peer, w.tx_sector, w.cw)
    };
    if !ready {
        return;
    }
    if let Some(at) = batch_wait_until {
        if let Some(w) = net.devices[dev].wigig_mut() {
            w.contending = true;
        }
        net.queue.schedule(at, NetEv::TxopAttempt { dev });
        return;
    }
    let Some(peer) = peer else { return };

    // Proper CSMA: the channel must have been idle for a full AIFS, not
    // merely at this instant (otherwise attempts landing inside the SIFS
    // gaps of a peer's burst collide with the next burst frame).
    let busy = !net.medium.idle_for(
        dev,
        cs_threshold(net, dev),
        net.now(),
        net.cfg.params.aifs(),
    ) || net.medium.is_transmitting(dev);
    if busy {
        // Defer: retry after AIFS + random backoff.
        net.devices[dev].stats.cs_defers += 1;
        let slots = 1 + (net.rng.next_u64() % cw as u64) as u32;
        let delay = net.cfg.params.aifs() + net.cfg.params.slot * slots;
        let now = net.now();
        if let Some(w) = net.devices[dev].wigig_mut() {
            w.contending = true;
        }
        net.queue.schedule(now + delay, NetEv::TxopAttempt { dev });
        return;
    }

    // Open the TXOP with an RTS.
    {
        let now = net.now();
        let w = net.devices[dev].wigig_mut().expect("wigig");
        w.in_txop = true;
        w.txop_start = now;
    }
    let seq = net.next_seq();
    let frame = Frame {
        src: dev,
        dst: Some(peer),
        kind: FrameKind::Rts,
        seq,
    };
    let (_, end) = net.start_tx(frame, PatKey::Dir(sector), 0.0);
    let sifs = net.cfg.params.sifs;
    let cts_dur = airtime(
        &net.cfg.params,
        &FrameKind::Cts,
        SimDuration::from_micros(30),
    );
    let timeout_at = end + sifs + cts_dur + SimDuration::from_micros(3);
    let id = net.queue.schedule(timeout_at, NetEv::CtsTimeout { dev });
    if let Some(w) = net.devices[dev].wigig_mut() {
        w.pending_cts = Some(id);
    }
}

/// The RTS produced no CTS. This is *deferral*, not loss: the receiver
/// refuses the CTS while its medium is busy, so the sender backs off with
/// a bounded window and retries. Only a very long streak (a dead link)
/// drops the head-of-queue batch.
pub(crate) fn on_cts_timeout(net: &mut Net, dev: usize) {
    const CTS_CW_CAP: u32 = 64;
    const CTS_DEAD_STREAK: u8 = 25;
    let dropped: Option<Vec<u64>> = {
        let Some(w) = net.devices[dev].wigig_mut() else {
            return;
        };
        if w.pending_cts.is_none() {
            return;
        }
        w.pending_cts = None;
        w.in_txop = false;
        w.cw = (w.cw * 2).min(CTS_CW_CAP);
        w.cts_fail_streak = w.cts_fail_streak.saturating_add(1);
        if w.cts_fail_streak > CTS_DEAD_STREAK {
            w.cts_fail_streak = 0;
            let n = w.cfg.max_aggregation.min(w.queue.len());
            Some(w.queue.drain(..n).map(|m| m.tag).collect())
        } else {
            None
        }
    };
    net.devices[dev].stats.cs_defers += 1;
    if let Some(tags) = dropped {
        if !tags.is_empty() {
            net.devices[dev].stats.drops += 1;
            net.delivered.push(Delivery::Dropped { dev, tags });
        }
    }
    backoff_and_contend(net, dev);
}

fn backoff_and_contend(net: &mut Net, dev: usize) {
    let cw = net.devices[dev].wigig().map(|w| w.cw).unwrap_or(8);
    let slots = 1 + (net.rng.next_u64() % cw as u64) as u32;
    let extra = net.cfg.params.slot * slots;
    maybe_contend(net, dev, extra);
}

/// Send the next aggregated data PPDU of the current TXOP.
pub(crate) fn send_next_data(net: &mut Net, dev: usize) {
    let params = net.cfg.params;
    let now = net.now();
    let (peer, sector, mcs, mpdus) = {
        let Some(w) = net.devices[dev].wigig_mut() else {
            return;
        };
        if !w.in_txop || w.awaiting_ack.is_some() {
            return;
        }
        if w.queue.is_empty() {
            w.in_txop = false;
            return;
        }
        if w.queue.len() < w.cfg.min_aggregation && now < w.oldest_wait_start + w.cfg.max_queue_wait
        {
            // Not enough for a batch: close the TXOP and let the batch
            // timer (or the threshold crossing) re-open one.
            w.in_txop = false;
            w.contending = true;
            let at = w.oldest_wait_start + w.cfg.max_queue_wait;
            net.queue.schedule(at.max(now), NetEv::TxopAttempt { dev });
            return;
        }
        let mcs = w.adapter.current().index;
        let rate = w.adapter.current().rate_bps;
        // Aggregate as long as the PPDU stays under the duration cap and
        // the aggregation limit.
        let mut mpdus: Vec<Mpdu> = Vec::new();
        // Running bit total keeps the duration check O(1) per candidate;
        // it matches `data_airtime`'s sum over the same MPDUs exactly.
        let mut bits: u64 = 0;
        while mpdus.len() < w.cfg.max_aggregation {
            let Some(&next) = w.queue.front() else { break };
            bits += (next.bytes + params.mpdu_overhead_bytes) as u64 * 8;
            mpdus.push(next);
            if params.data_phy_overhead + mmwave_sim::time::SimDuration::for_bits(bits, rate)
                > w.cfg.max_ppdu_duration
                && mpdus.len() > 1
            {
                // Over the duration cap and not the sole MPDU: the next
                // segment starts the following PPDU instead.
                mpdus.pop();
                break;
            }
            w.queue.pop_front();
        }
        // The remaining queue head starts a fresh batch-wait window.
        w.oldest_wait_start = now;
        (w.peer.expect("associated"), w.tx_sector, mcs, mpdus)
    };
    if mpdus.is_empty() {
        return;
    }
    let retry = net.devices[dev].wigig().map(|w| w.retry).unwrap_or(0);
    net.devices[dev].stats.data_tx += 1;
    if retry > 0 {
        net.devices[dev].stats.data_retx += 1;
    }
    let seq = net.next_seq();
    let frame = Frame {
        src: dev,
        dst: Some(peer),
        kind: FrameKind::Data {
            mpdus: mpdus.clone(),
            mcs,
            retry,
        },
        seq,
    };
    let (_, end) = net.start_tx(frame, PatKey::Dir(sector), 0.0);
    let timeout_at = end + params.ack_timeout;
    let id = net.queue.schedule(timeout_at, NetEv::AckTimeout { dev });
    if let Some(w) = net.devices[dev].wigig_mut() {
        w.awaiting_ack = Some(crate::device::AwaitingAck {
            mpdus,
            seq,
            timeout: id,
        });
    }
}

/// ACK never arrived: count the loss, requeue or drop, back off.
pub(crate) fn on_ack_timeout(net: &mut Net, dev: usize) {
    let retry_limit = net.cfg.params.retry_limit;
    let cw_max = net.cfg.params.cw_max;
    let dropped: Option<Vec<u64>> = {
        let Some(w) = net.devices[dev].wigig_mut() else {
            return;
        };
        let Some(aa) = w.awaiting_ack.take() else {
            return;
        };
        w.adapter.on_frame_result(false);
        w.retry += 1;
        w.cw = (w.cw * 2).min(cw_max);
        w.in_txop = false;
        if w.retry > retry_limit {
            w.retry = 0;
            Some(aa.mpdus.iter().map(|m| m.tag).collect())
        } else {
            // Requeue at the front, preserving order.
            for m in aa.mpdus.into_iter().rev() {
                w.queue.push_front(m);
            }
            None
        }
    };
    net.devices[dev].stats.ack_timeouts += 1;
    if let Some(tags) = dropped {
        net.devices[dev].stats.drops += 1;
        net.delivered.push(Delivery::Dropped { dev, tags });
    }
    // Loss-triggered recovery: a streak of ACK timeouts probes the beam
    // (and may retrain or tear the link down — in which case the
    // contention attempt below finds the device unassociated and no-ops).
    note_ack_loss(net, dev);
    backoff_and_contend(net, dev);
}

// ---------------------------------------------------------------------
// Frame-end dispatch
// ---------------------------------------------------------------------

/// Handle the end of any WiGig-class frame.
pub(crate) fn on_frame_end(net: &mut Net, tx: &ActiveTx, delivered: Option<bool>) {
    let sifs = net.cfg.params.sifs;
    match &tx.frame.kind {
        FrameKind::DiscoverySub { pattern_idx } => {
            let n_subs = net.devices[tx.frame.src]
                .wigig()
                .map(|w| w.cfg.discovery_sub_elements)
                .unwrap_or(32);
            if *pattern_idx + 1 == n_subs {
                check_discovery_response(net, tx.frame.src);
            }
        }
        FrameKind::Training => {}
        FrameKind::Beacon => match delivered {
            Some(true) => {
                let me = tx.frame.dst.expect("beacons are addressed");
                let peer = tx.frame.src;
                // A delivered beacon proves the link carries frames: clear
                // the sender's loss streak and recovery budget.
                if let Some(w) = net.devices[peer].wigig_mut() {
                    w.beacon_fail_streak = 0;
                    w.loss_recovery_attempts = 0;
                }
                update_link_snr(net, me, peer);
                // The station replies to the dock's beacon (not recursively).
                let reply_is_due = net.devices[me]
                    .wigig()
                    .map(|w| w.role == crate::device::WigigRole::Station)
                    .unwrap_or(false);
                if reply_is_due && !net.medium.is_transmitting(me) {
                    let seq = net.next_seq();
                    let frame = Frame {
                        src: me,
                        dst: Some(peer),
                        kind: FrameKind::Beacon,
                        seq,
                    };
                    let extra = net.cfg.control_power_offset_db;
                    let at = net.now() + sifs;
                    net.devices[me].stats.beacons_tx += 1;
                    net.queue.schedule(
                        at,
                        NetEv::SendFrame {
                            frame,
                            pattern: PatKey::Qo((seq % 32) as usize),
                            extra_power_db: extra,
                        },
                    );
                }
            }
            Some(false) => note_beacon_loss(net, tx.frame.src),
            None => {}
        },
        FrameKind::Rts if delivered == Some(true) => {
            let responder = tx.frame.dst.expect("rts addressed");
            // Virtual carrier sense: grant the CTS only if the
            // responder's own medium is clear — this is what protects
            // the receiver from transmitters the RTS sender cannot
            // hear (the hidden-interferer case of §4.4).
            let clear = !net
                .medium
                .is_busy_for(responder, net.cfg.params.cts_grant_threshold_dbm)
                && !net.medium.is_transmitting(responder);
            if clear {
                let sector = net.devices[responder]
                    .wigig()
                    .map(|w| w.tx_sector)
                    .unwrap_or(0);
                let seq = net.next_seq();
                let frame = Frame {
                    src: responder,
                    dst: Some(tx.frame.src),
                    kind: FrameKind::Cts,
                    seq,
                };
                let at = net.now() + sifs;
                net.queue.schedule(
                    at,
                    NetEv::SendFrame {
                        frame,
                        pattern: PatKey::Dir(sector),
                        extra_power_db: 0.0,
                    },
                );
            } else {
                net.devices[responder].stats.cs_defers += 1;
            }
        }
        FrameKind::Cts if delivered == Some(true) => {
            let owner = tx.frame.dst.expect("cts addressed");
            let pending = net.devices[owner].wigig_mut().and_then(|w| {
                w.cts_fail_streak = 0;
                w.pending_cts.take()
            });
            if let Some(id) = pending {
                net.queue.cancel(id);
                let at = net.now() + sifs;
                net.queue.schedule(at, NetEv::TxopData { dev: owner });
            }
        }
        FrameKind::Data { mpdus, .. } if delivered == Some(true) => {
            let receiver = tx.frame.dst.expect("data addressed");
            for m in mpdus {
                net.devices[receiver].stats.mpdus_rx += 1;
                net.devices[receiver].stats.bytes_rx += m.bytes as u64;
                net.delivered.push(Delivery::Mpdu {
                    dev: receiver,
                    src: tx.frame.src,
                    bytes: m.bytes,
                    tag: m.tag,
                });
            }
            let sector = net.devices[receiver]
                .wigig()
                .map(|w| w.tx_sector)
                .unwrap_or(0);
            let seq = net.next_seq();
            let frame = Frame {
                src: receiver,
                dst: Some(tx.frame.src),
                kind: FrameKind::Ack,
                seq,
            };
            let at = net.now() + sifs;
            net.queue.schedule(
                at,
                NetEv::SendFrame {
                    frame,
                    pattern: PatKey::Dir(sector),
                    extra_power_db: 0.0,
                },
            );
        }
        FrameKind::Ack if delivered == Some(true) => {
            let owner = tx.frame.dst.expect("ack addressed");
            let txop_max;
            let proceed = {
                let Some(w) = net.devices[owner].wigig_mut() else {
                    return;
                };
                txop_max = w.cfg.txop_max;
                if let Some(aa) = w.awaiting_ack.take() {
                    w.adapter.on_frame_result(true);
                    w.retry = 0;
                    w.cw = 16;
                    w.ack_fail_streak = 0;
                    w.loss_recovery_attempts = 0;
                    Some(aa.timeout)
                } else {
                    None
                }
            };
            if let Some(timeout) = proceed {
                net.queue.cancel(timeout);
                net.devices[owner].stats.acks_rx += 1;
                let now = net.now();
                let (more, in_budget) = {
                    let w = net.devices[owner].wigig().expect("wigig");
                    (!w.queue.is_empty(), now.since(w.txop_start) < txop_max)
                };
                if more && in_budget {
                    let at = now + sifs;
                    net.queue.schedule(at, NetEv::TxopData { dev: owner });
                } else {
                    if let Some(w) = net.devices[owner].wigig_mut() {
                        w.in_txop = false;
                    }
                    if more {
                        backoff_and_contend(net, owner);
                    }
                }
            }
        }
        _ => {}
    }
}
