//! Regression: wall mutations inside one opaque zone must not flush the
//! link-gain cache of pairs living in *other* zones.
//!
//! Before the zone-scoped invalidation, every `MoveObstacle` /
//! `SetObstacleEnabled` scenario mutation called the global
//! `invalidate_geometry`, so a screen wiggling in room A forced every
//! pair in room B to re-trace its (unchanged) paths. With zones declared
//! over closed rooms, the mutation bumps only the affected room's
//! devices.

use mmwave_channel::Environment;
use mmwave_geom::{Angle, Material, Point, Room, Segment};
use mmwave_mac::device::{Device, PatKey};
use mmwave_mac::net::{Net, NetConfig};
use mmwave_mac::scenario::{Scenario, WorldMutation};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::SimTime;

/// Two closed brick boxes. Each gets a declared zone; room A additionally
/// holds a movable absorber screen between its pair.
fn build_room(with_zones: bool) -> Room {
    let mut room = Room::open_space();
    for (x0, tag) in [(0.0, "a"), (10.0, "b")] {
        let (x1, y0, y1) = (x0 + 4.0, 0.0, 3.0);
        let corners = [
            (Point::new(x0, y0), Point::new(x1, y0)),
            (Point::new(x1, y0), Point::new(x1, y1)),
            (Point::new(x1, y1), Point::new(x0, y1)),
            (Point::new(x0, y1), Point::new(x0, y0)),
        ];
        for (i, (a, b)) in corners.into_iter().enumerate() {
            room.add_obstacle(Segment::new(a, b), Material::Brick, format!("{tag}-{i}"));
        }
        if with_zones {
            room.add_zone(Point::new(x0, y0), Point::new(x1, y1));
        }
    }
    room.add_obstacle(
        Segment::new(Point::new(2.0, 0.3), Point::new(2.0, 1.2)),
        Material::Absorber,
        "screen",
    );
    room
}

fn build_net(with_zones: bool, ctx: &SimCtx) -> Net {
    let mut net = Net::with_ctx(
        Environment::new(build_room(with_zones)),
        NetConfig::default(),
        ctx,
    );
    let d0 = net.add_device(Device::wigig_dock(
        ctx,
        "dock A",
        Point::new(1.0, 1.5),
        Angle::ZERO,
        13,
    ));
    let d1 = net.add_device(Device::wigig_laptop(
        ctx,
        "laptop A",
        Point::new(3.0, 1.5),
        Angle::from_degrees(180.0),
        11,
    ));
    let d2 = net.add_device(Device::wigig_dock(
        ctx,
        "dock B",
        Point::new(11.0, 1.5),
        Angle::ZERO,
        7,
    ));
    let _ = net.add_device(Device::wigig_laptop(
        ctx,
        "laptop B",
        Point::new(13.0, 1.5),
        Angle::from_degrees(180.0),
        5,
    ));
    let _ = (d0, d1, d2);
    net
}

/// Warm both pairs, toggle the screen in room A, then re-query both pairs
/// and report `(path_traces_after_requery, zone_invalidations)`.
fn run(with_zones: bool) -> (u64, u64) {
    let ctx = SimCtx::new();
    let mut net = build_net(with_zones, &ctx);
    net.install_scenario(Scenario::new().at(
        SimTime::from_micros(500),
        WorldMutation::SetObstacleEnabled {
            wall: 8, // the screen (two 4-wall boxes precede it)
            enabled: false,
        },
    ));
    // Warm every within-room pair. The devices stay unassociated so the
    // event queue holds nothing but the scripted mutation — the trace
    // counts below measure invalidation, not MAC traffic.
    for (s, d) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
        net.medium_rx_power_dbm(s, PatKey::Qo(0), d);
    }
    let warm = net.medium().link_cache().stats().path_traces;
    net.run_until(SimTime::from_micros(1_000));
    for (s, d) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
        net.medium_rx_power_dbm(s, PatKey::Qo(0), d);
    }
    let after = net.medium().link_cache().stats().path_traces;
    (after - warm, ctx.counters().spatial_zone_invalidations)
}

#[test]
fn cross_zone_pairs_survive_a_wall_toggle() {
    let (retraced, zone_invals) = run(true);
    // Only room A's pair re-traces; room B's cached geometry survives the
    // screen toggle.
    assert_eq!(retraced, 1, "exactly the affected room re-traces");
    assert_eq!(zone_invals, 1, "the mutation must be zone-scoped");
}

#[test]
fn without_zones_the_toggle_flushes_everything() {
    let (retraced, zone_invals) = run(false);
    assert_eq!(retraced, 2, "global flush re-traces both rooms");
    assert_eq!(zone_invals, 0);
}
