//! Differential property test: the link-gain cache must be invisible
//! under *dynamic* scenarios.
//!
//! A seeded generator scripts randomized interleavings of device moves,
//! rotations, blocker moves/toggles and fault bursts; the same scenario
//! runs once with [`CacheMode::Cached`] and once with
//! [`CacheMode::Bypass`] (identical interning and bookkeeping, values
//! recomputed every time). Every observable — per-millisecond rx power
//! (bitwise), retrain counts, device stats, deliveries, scenario/fault
//! counters — must match exactly. A stale cache entry surviving a missed
//! invalidation diverges the rx-power series here first.

use mmwave_channel::{CacheMode, Environment};
use mmwave_geom::{Angle, Material, Point, Room, Segment, Vec2, Wall};
use mmwave_mac::{Device, FaultKind, Net, NetConfig, PatKey, Scenario, WorldMutation};
use mmwave_phy::calib;
use mmwave_sim::rng::SimRng;
use mmwave_sim::time::{SimDuration, SimTime};

fn build(mode: CacheMode, seed: u64) -> (Net, usize, usize, usize) {
    let mut room = Room::open_space();
    room.add_wall(Wall::new(
        Segment::new(Point::new(-1.0, 1.5), Point::new(6.3, 1.5)),
        Material::Brick,
        "reflecting wall",
    ));
    let walker = room.add_obstacle(
        Segment::new(Point::new(2.4, -0.6), Point::new(2.4, 0.95)),
        Material::Human,
        "walker",
    );
    room.set_wall_enabled(walker, false);
    let cfg = NetConfig {
        seed,
        enable_fading: false,
        ..NetConfig::default()
    };
    let mut net = Net::with_cache_mode(Environment::new(room), cfg, mode);
    let dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        calib::DOCK_SEED,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop",
        Point::new(4.8, 0.0),
        Angle::from_degrees(180.0),
        calib::LAPTOP_SEED,
    ));
    net.associate_instantly(dock, laptop);
    (net, dock, laptop, walker)
}

/// A randomized (but seed-deterministic) interleaving of every mutation
/// kind, plus one scripted walk through the corridor.
fn fuzz_scenario(seed: u64, laptop: usize, walker: usize) -> Scenario {
    let mut rng = SimRng::root(seed).stream("scenario-fuzz");
    let mut sc = Scenario::new().walking_blocker(
        walker,
        Segment::new(Point::new(1.7, -0.6), Point::new(1.7, 0.95)),
        Vec2::new(1.4, 0.0),
        SimTime::from_millis(37),
        SimDuration::from_millis(60),
        12,
    );
    for k in 0..36u64 {
        let at_us = k * 4_300 + rng.next_u64() % 3_000;
        let at = SimTime::from_micros(at_us);
        let mutation = match rng.next_u32() % 5 {
            0 => WorldMutation::MoveDevice {
                dev: laptop,
                position: Point::new(4.8 + rng.uniform(-0.25, 0.25), rng.uniform(-0.2, 0.2)),
                orientation: Angle::from_degrees(180.0 + rng.uniform(-8.0, 8.0)),
            },
            1 => WorldMutation::MoveDevice {
                dev: laptop,
                position: Point::new(4.8, 0.0),
                orientation: Angle::from_degrees(180.0 + rng.uniform(-10.0, 10.0)),
            },
            2 => WorldMutation::MoveObstacle {
                wall: walker,
                seg: Segment::new(
                    Point::new(rng.uniform(1.6, 3.2), -0.6),
                    Point::new(rng.uniform(1.6, 3.2), 0.95),
                ),
            },
            3 => WorldMutation::SetObstacleEnabled {
                wall: walker,
                enabled: rng.chance(0.5),
            },
            _ => WorldMutation::InjectFaults {
                dev: laptop,
                kind: if rng.chance(0.5) {
                    FaultKind::AllFrames
                } else {
                    FaultKind::BeaconsOnly
                },
                until: at + SimDuration::from_micros(2_000),
            },
        };
        sc = sc.at(at, mutation);
    }
    sc
}

/// Run one net against the scripted scenario and log every observable.
fn observe(mode: CacheMode, seed: u64) -> String {
    let (mut net, dock, laptop, walker) = build(mode, seed);
    net.install_scenario(fuzz_scenario(seed, laptop, walker));
    let mut log = String::new();
    let mut tag = 0u64;
    for k in 0..180u64 {
        for _ in 0..4 {
            net.push_mpdu(dock, 1500, tag);
            tag += 1;
        }
        net.run_until(SimTime::from_millis(k));
        let sector = net.device(dock).wigig().expect("wigig").tx_sector;
        let rx = net.medium_rx_power_dbm(dock, PatKey::Dir(sector), laptop);
        log.push_str(&format!("t={k} sector={sector} rx={:016x}\n", rx.to_bits()));
        for d in net.take_deliveries() {
            log.push_str(&format!("  {d:?}\n"));
        }
    }
    log.push_str(&format!(
        "mutations={} faults={}\n",
        net.scenario_mutations(),
        net.faults_injected()
    ));
    for d in [dock, laptop] {
        log.push_str(&format!("stats[{d}]={:?}\n", net.device(d).stats));
    }
    log
}

#[test]
fn cached_and_bypass_runs_are_bitwise_identical_under_dynamic_scenarios() {
    for seed in [1u64, 2, 3] {
        let cached = observe(CacheMode::Cached, seed);
        let bypass = observe(CacheMode::Bypass, seed);
        if cached != bypass {
            let diff = cached
                .lines()
                .zip(bypass.lines())
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("cached: {a}\nbypass: {b}"))
                .unwrap_or_else(|| "logs differ in length".into());
            panic!("seed {seed}: cached/bypass observables diverge —\n{diff}");
        }
    }
}

#[test]
fn repeated_cached_runs_are_reproducible() {
    // The scenario path itself must be deterministic: two identical
    // cached runs produce the same log byte for byte.
    let a = observe(CacheMode::Cached, 11);
    let b = observe(CacheMode::Cached, 11);
    assert_eq!(a, b, "identical seeds must replay identically");
}
