//! Context isolation: two networks stepped interleaved on one thread must
//! accumulate counters into their own [`SimCtx`] and fill their own
//! codebook caches. This is the property the explicit-context refactor
//! bought — before it, engine counters and the codebook cache were
//! thread-local, so two nets on one thread shared (and corrupted) both.

use mmwave_channel::Environment;
use mmwave_geom::{Angle, Point, Room};
use mmwave_mac::{Device, Net, NetConfig};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::SimTime;

fn build(ctx: &SimCtx, seed: u64) -> Net {
    let cfg = NetConfig {
        seed,
        ..NetConfig::default()
    };
    let mut net = Net::with_ctx(Environment::new(Room::open_space()), cfg, ctx);
    let dock = net.add_device(Device::wigig_dock(
        ctx,
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        13,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        ctx,
        "laptop",
        Point::new(2.0, 0.0),
        Angle::from_degrees(180.0),
        11,
    ));
    net.associate_instantly(dock, laptop);
    for tag in 0..20 {
        net.push_mpdu(dock, 1500, tag);
    }
    net
}

#[test]
fn interleaved_nets_keep_independent_counters_and_caches() {
    let ctx_a = SimCtx::new();
    let ctx_b = SimCtx::new();
    assert!(!ctx_a.shares_state_with(&ctx_b));

    let mut a = build(&ctx_a, 1);
    let mut b = build(&ctx_b, 2);

    // Each context's codebook cache was filled by its own device pair:
    // dock {directional, quasi-omni} + laptop {directional, quasi-omni}.
    // Were the cache shared (the old thread-local design), the second net
    // would have scored hits instead of misses.
    assert_eq!(mmwave_phy::codebook::cache_len(&ctx_a), 4);
    assert_eq!(mmwave_phy::codebook::cache_len(&ctx_b), 4);
    assert_eq!(ctx_a.counters().codebook_misses, 4);
    assert_eq!(ctx_b.counters().codebook_misses, 4);
    assert_eq!(ctx_b.counters().codebook_hits, 0);

    // Step the two simulations interleaved on this one thread.
    for k in 1..=5u64 {
        a.run_until(SimTime::from_millis(k));
        b.run_until(SimTime::from_millis(k));
    }
    let a_mid = ctx_a.counters();
    let b_mid = ctx_b.counters();
    assert!(a_mid.events_popped > 0, "net A processed events");
    assert!(b_mid.events_popped > 0, "net B processed events");
    assert!(a_mid.link_gain_misses > 0, "net A exercised the link cache");

    // Advancing only A must leave B's counters untouched (and vice versa).
    a.run_until(SimTime::from_millis(20));
    assert_eq!(ctx_b.counters(), b_mid, "B's context unchanged by A");
    assert!(ctx_a.counters().events_popped > a_mid.events_popped);
    let a_now = ctx_a.counters();
    b.run_until(SimTime::from_millis(20));
    assert_eq!(ctx_a.counters(), a_now, "A's context unchanged by B");
}
