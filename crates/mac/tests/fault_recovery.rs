//! MAC recovery under dynamic blockage and injected faults.
//!
//! The scripted-scenario subsystem lets these tests drop a human into the
//! line of sight at a precise instant and watch the WiGig state machines
//! dig themselves out: loss-triggered retraining onto a reflection,
//! deferred association while a sweep is shadowed, a clean link-down when
//! no recovery path exists, the SNR gate absorbing fault bursts on a
//! healthy channel, and recovery-budget exhaustion. Every test ends by
//! checking that no TXOP state is left dangling.

use mmwave_channel::Environment;
use mmwave_geom::{Angle, Material, Point, Room, Segment, Wall};
use mmwave_mac::device::WigigState;
use mmwave_mac::{Delivery, Device, FaultKind, Net, NetConfig, Scenario, WorldMutation};
use mmwave_phy::calib;
use mmwave_sim::time::SimTime;

fn cfg(seed: u64) -> NetConfig {
    NetConfig {
        seed,
        enable_fading: false,
        ..NetConfig::default()
    }
}

/// Assert that the TXOP machinery is idle: no half-open burst, no ACK
/// wait, no pending CTS timeout.
fn assert_clean(net: &Net, devs: &[usize]) {
    for &d in devs {
        let w = net.device(d).wigig().expect("wigig");
        assert!(!w.in_txop, "device {d} stuck in TXOP");
        assert!(w.awaiting_ack.is_none(), "device {d} stuck awaiting ACK");
        assert!(w.pending_cts.is_none(), "device {d} stuck awaiting CTS");
    }
}

/// The Fig. 5 rig with the blocker off stage: dock↔laptop at 4.8 m, a
/// brick wall 1.5 m to the side (the recovery path), and a disabled human
/// obstacle at the given x. Returns `(net, dock, laptop, walker)`.
fn blocked_los_rig(seed: u64, walker_x: f64) -> (Net, usize, usize, usize) {
    let mut room = Room::open_space();
    room.add_wall(Wall::new(
        Segment::new(Point::new(-1.0, 1.5), Point::new(6.3, 1.5)),
        Material::Brick,
        "reflecting wall",
    ));
    let walker = room.add_obstacle(
        Segment::new(Point::new(walker_x, -0.6), Point::new(walker_x, 0.95)),
        Material::Human,
        "walker",
    );
    room.set_wall_enabled(walker, false);
    let mut net = Net::new(Environment::new(room), cfg(seed));
    let dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        calib::DOCK_SEED,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop",
        Point::new(4.8, 0.0),
        Angle::from_degrees(180.0),
        calib::LAPTOP_SEED,
    ));
    (net, dock, laptop, walker)
}

#[test]
fn blocker_mid_txop_retrains_to_reflection_and_recovers() {
    let (mut net, dock, laptop, walker) = blocked_los_rig(5, 2.4);
    net.associate_instantly(dock, laptop);
    net.install_scenario(
        Scenario::new()
            .at(
                SimTime::from_millis(25),
                WorldMutation::SetObstacleEnabled {
                    wall: walker,
                    enabled: true,
                },
            )
            .at(
                SimTime::from_millis(125),
                WorldMutation::SetObstacleEnabled {
                    wall: walker,
                    enabled: false,
                },
            ),
    );
    // Saturating download traffic so the blocker lands inside the burst
    // phase, then recovery is measured on the same stream.
    let mut tag = 0u64;
    let mut after_recovery = 0u64;
    for k in 0..200u64 {
        for _ in 0..6 {
            net.push_mpdu(dock, 1500, tag);
            tag += 1;
        }
        net.run_until(SimTime::from_millis(k));
        let mpdus = net
            .take_deliveries()
            .iter()
            .filter(|d| matches!(d, Delivery::Mpdu { .. }))
            .count() as u64;
        if k > 125 {
            after_recovery += mpdus;
        }
    }
    let retrains = net.device(dock).stats.retrains + net.device(laptop).stats.retrains;
    assert!(
        retrains > 2,
        "blockage must force a realignment (got {retrains})"
    );
    assert_eq!(
        net.device(dock).wigig().expect("wigig").state,
        WigigState::Associated,
        "link must survive the transit via the wall reflection"
    );
    assert!(
        after_recovery > 0,
        "no MPDUs delivered after the blocker left"
    );
    net.run_until(SimTime::from_millis(260)); // drain the backlog
    assert_clean(&net, &[dock, laptop]);
}

#[test]
fn blocker_during_discovery_sweep_defers_association() {
    // Open space, no recovery reflection: the human shadows the discovery
    // sweep itself. The dock must keep sweeping, not wedge.
    let mut room = Room::open_space();
    let walker = room.add_obstacle(
        Segment::new(Point::new(2.4, -0.6), Point::new(2.4, 0.95)),
        Material::Human,
        "walker",
    );
    let mut net = Net::new(Environment::new(room), cfg(6));
    let dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        calib::DOCK_SEED,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop",
        Point::new(4.8, 0.0),
        Angle::from_degrees(180.0),
        calib::LAPTOP_SEED,
    ));
    net.pair(dock, laptop);
    net.install_scenario(Scenario::new().at(
        SimTime::from_millis(310),
        WorldMutation::SetObstacleEnabled {
            wall: walker,
            enabled: false,
        },
    ));
    net.start();
    net.run_until(SimTime::from_millis(300));
    assert_eq!(
        net.device(dock).wigig().expect("wigig").state,
        WigigState::Unassociated,
        "association must not form through the blocker"
    );
    assert!(
        net.device(dock).stats.discovery_sweeps >= 2,
        "the dock must keep sweeping while shadowed"
    );
    net.run_until(SimTime::from_millis(800));
    assert_eq!(
        net.device(dock).wigig().expect("wigig").state,
        WigigState::Associated,
        "association must complete once the blocker leaves"
    );
    assert_clean(&net, &[dock, laptop]);
}

#[test]
fn full_blockage_without_reflection_breaks_link_cleanly() {
    // No wall to fall back on: the only correct outcome is an explicit
    // link-down with the queue drained as Dropped.
    let mut room = Room::open_space();
    let walker = room.add_obstacle(
        Segment::new(Point::new(1.5, -0.6), Point::new(1.5, 0.95)),
        Material::Human,
        "walker",
    );
    room.set_wall_enabled(walker, false);
    let mut net = Net::new(Environment::new(room), cfg(7));
    let dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        calib::DOCK_SEED,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop",
        Point::new(3.0, 0.0),
        Angle::from_degrees(180.0),
        calib::LAPTOP_SEED,
    ));
    net.associate_instantly(dock, laptop);
    net.install_scenario(Scenario::new().at(
        SimTime::from_millis(45),
        WorldMutation::SetObstacleEnabled {
            wall: walker,
            enabled: true,
        },
    ));
    let mut tag = 0u64;
    let mut dropped = false;
    for k in 0..110u64 {
        for _ in 0..6 {
            net.push_mpdu(dock, 1500, tag);
            tag += 1;
        }
        net.run_until(SimTime::from_millis(k));
        dropped |= net
            .take_deliveries()
            .iter()
            .any(|d| matches!(d, Delivery::Dropped { .. }));
    }
    assert_eq!(
        net.device(dock).wigig().expect("wigig").state,
        WigigState::Unassociated,
        "total blockage must tear the link down"
    );
    assert!(dropped, "queued MPDUs must surface as Dropped deliveries");
    assert_eq!(
        net.queue_len(dock),
        0,
        "no MPDUs may linger after link-down"
    );
    assert!(net.device(dock).stats.drops > 0);
    assert_clean(&net, &[dock, laptop]);
}

#[test]
fn fault_burst_on_healthy_channel_does_not_break_link() {
    // An injected frame-error burst with the channel physically fine: the
    // SNR gate must absorb the loss streaks (MCS fallback only) instead of
    // spending recovery budget or dropping the association.
    let mut net = Net::new(Environment::new(Room::open_space()), cfg(8));
    let dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        calib::DOCK_SEED,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop",
        Point::new(2.0, 0.0),
        Angle::from_degrees(180.0),
        calib::LAPTOP_SEED,
    ));
    net.associate_instantly(dock, laptop);
    net.install_scenario(Scenario::new().at(
        SimTime::from_millis(20),
        WorldMutation::InjectFaults {
            dev: laptop,
            kind: FaultKind::AllFrames,
            until: SimTime::from_millis(26),
        },
    ));
    let mut tag = 0u64;
    let mut after_burst = 0u64;
    for k in 0..80u64 {
        for _ in 0..6 {
            net.push_mpdu(dock, 1500, tag);
            tag += 1;
        }
        net.run_until(SimTime::from_millis(k));
        let mpdus = net
            .take_deliveries()
            .iter()
            .filter(|d| matches!(d, Delivery::Mpdu { .. }))
            .count() as u64;
        if k > 26 {
            after_burst += mpdus;
        }
    }
    assert!(net.faults_injected() > 0, "the burst must corrupt frames");
    assert!(net.device(laptop).stats.rx_corrupted > 0);
    assert_eq!(
        net.device(dock).wigig().expect("wigig").state,
        WigigState::Associated,
        "a fault burst on a healthy channel must not break the link"
    );
    assert!(after_burst > 0, "traffic must resume after the burst");
    net.run_until(SimTime::from_millis(140));
    assert_clean(&net, &[dock, laptop]);
}

#[test]
fn recovery_budget_exhaustion_breaks_link_cleanly() {
    // Force the escalating-retry path to its end: with the recovery budget
    // already spent, the next loss-triggered recovery must give the link
    // up instead of retraining forever. No data traffic, so the beacon
    // path is the only loss detector in play.
    let (mut net, dock, laptop, walker) = blocked_los_rig(9, 2.4);
    net.associate_instantly(dock, laptop);
    net.install_scenario(Scenario::new().at(
        SimTime::from_millis(10),
        WorldMutation::SetObstacleEnabled {
            wall: walker,
            enabled: true,
        },
    ));
    // Let the blockage start, then exhaust the budget by hand.
    net.run_until(SimTime::from_millis(12));
    {
        let w = net.device_mut(dock).wigig_mut().expect("wigig");
        w.loss_recovery_attempts = u8::MAX - 1;
        w.beacon_fail_streak = u8::MAX - 1;
    }
    net.run_until(SimTime::from_millis(50));
    assert_eq!(
        net.device(dock).wigig().expect("wigig").state,
        WigigState::Unassociated,
        "an exhausted recovery budget must end in an explicit link-down"
    );
    assert_eq!(
        net.device(dock)
            .wigig()
            .expect("wigig")
            .loss_recovery_attempts,
        0,
        "break_link must reset the recovery counters"
    );
    assert_clean(&net, &[dock, laptop]);
}
