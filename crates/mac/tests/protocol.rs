//! End-to-end protocol tests: the MAC state machines driven through the
//! event loop, validated against the paper's §4.1 observations.

use mmwave_channel::Environment;
use mmwave_geom::{Angle, Point, Room};
use mmwave_mac::{Delivery, Device, FrameClass, Net, NetConfig};
use mmwave_sim::time::SimTime;

fn quiet_cfg(seed: u64) -> NetConfig {
    NetConfig {
        seed,
        enable_fading: false,
        ..NetConfig::default()
    }
}

/// A dock at the origin facing +x and a laptop 2 m away facing back.
fn two_m_link(cfg: NetConfig) -> (Net, usize, usize) {
    let mut net = Net::new(Environment::new(Room::open_space()), cfg);
    let dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        13,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop",
        Point::new(2.0, 0.0),
        Angle::from_degrees(180.0),
        11,
    ));
    (net, dock, laptop)
}

#[test]
fn discovery_leads_to_association() {
    let (mut net, dock, laptop) = two_m_link(quiet_cfg(42));
    net.pair(dock, laptop);
    net.start();
    net.run_until(SimTime::from_millis(20));
    let w = net.device(dock).wigig().expect("wigig");
    assert_eq!(w.state, mmwave_mac::device::WigigState::Associated);
    let s = net.device(laptop).wigig().expect("wigig");
    assert_eq!(s.state, mmwave_mac::device::WigigState::Associated);
    // Exactly one sweep was needed at 2 m.
    assert!(net.device(dock).stats.discovery_sweeps >= 1);
    // The discovery frame hit the log with 32 sub-elements.
    let subs = net.txlog().of(dock, FrameClass::DiscoverySub).count();
    assert_eq!(subs % 32, 0);
    assert!(subs >= 32);
}

#[test]
fn discovery_sweep_repeats_at_102_4_ms_when_alone() {
    // No peer in range: the dock keeps sweeping at the Table 1 period.
    let mut net = Net::new(Environment::new(Room::open_space()), quiet_cfg(1));
    let dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        13,
    ));
    net.start();
    net.run_until(SimTime::from_millis(600));
    let starts: Vec<SimTime> = {
        let mut s: Vec<SimTime> = net
            .txlog()
            .of(dock, FrameClass::DiscoverySub)
            .filter(|e| matches!(e.pattern, mmwave_mac::PatKey::Qo(0)))
            .map(|e| e.start)
            .collect();
        s.sort();
        s
    };
    assert!(starts.len() >= 5, "{} sweeps", starts.len());
    for w in starts.windows(2) {
        let gap = (w[1] - w[0]).as_micros_f64();
        assert!((gap - 102_400.0).abs() < 1.0, "sweep gap {gap} µs");
    }
}

#[test]
fn beacons_run_at_1_1_ms_when_associated() {
    let (mut net, dock, laptop) = two_m_link(quiet_cfg(2));
    net.associate_instantly(dock, laptop);
    net.run_until(SimTime::from_millis(50));
    let starts: Vec<SimTime> = net
        .txlog()
        .of(dock, FrameClass::Beacon)
        .map(|e| e.start)
        .collect();
    assert!(starts.len() >= 40, "{} beacons", starts.len());
    let mut gaps: Vec<f64> = starts
        .windows(2)
        .map(|w| (w[1] - w[0]).as_micros_f64())
        .collect();
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = gaps[gaps.len() / 2];
    assert!(
        (median - 1_100.0).abs() < 5.0,
        "median beacon gap {median} µs"
    );
    // The laptop answers most dock beacons.
    let replies = net.txlog().of(laptop, FrameClass::Beacon).count();
    assert!(
        replies as f64 > 0.8 * starts.len() as f64,
        "{replies} replies"
    );
}

#[test]
fn data_flows_and_is_delivered_in_order() {
    let (mut net, dock, laptop) = two_m_link(quiet_cfg(3));
    net.associate_instantly(dock, laptop);
    for i in 0..50u64 {
        assert!(net.push_mpdu(dock, 1500, i));
    }
    net.run_until(SimTime::from_millis(10));
    let deliveries = net.take_deliveries();
    let tags: Vec<u64> = deliveries
        .iter()
        .filter_map(|d| match d {
            Delivery::Mpdu { dev, tag, .. } if *dev == laptop => Some(*tag),
            _ => None,
        })
        .collect();
    assert_eq!(tags.len(), 50, "all MPDUs delivered");
    let mut sorted = tags.clone();
    sorted.sort();
    assert_eq!(tags, sorted, "in order");
    assert_eq!(net.queue_len(dock), 0);
}

#[test]
fn txop_structure_matches_fig8() {
    // A burst must start with RTS/CTS and then alternate data/ACK.
    let (mut net, dock, laptop) = two_m_link(quiet_cfg(4));
    net.associate_instantly(dock, laptop);
    for i in 0..20u64 {
        net.push_mpdu(dock, 1500, i);
    }
    net.run_until(SimTime::from_millis(5));
    let classes: Vec<(FrameClass, usize)> = net
        .txlog()
        .entries()
        .iter()
        .filter(|e| e.class != FrameClass::Beacon)
        .map(|e| (e.class, e.src))
        .collect();
    // First two non-beacon frames: RTS from dock, CTS from laptop.
    assert_eq!(classes[0], (FrameClass::Control, dock), "{classes:?}");
    assert_eq!(classes[1], (FrameClass::Control, laptop));
    // Then data/ack alternation.
    assert_eq!(classes[2].0, FrameClass::Data);
    assert_eq!(classes[3].0, FrameClass::Ack);
    assert_eq!(classes[4].0, FrameClass::Data);
}

#[test]
fn high_load_aggregates_low_load_does_not() {
    // Shove a large batch in at once: frames aggregate to the 25 µs cap.
    let (mut net, dock, laptop) = two_m_link(quiet_cfg(5));
    net.associate_instantly(dock, laptop);
    for i in 0..200u64 {
        net.push_mpdu(dock, 1500, i);
    }
    net.run_until(SimTime::from_millis(20));
    let max_dur = net
        .txlog()
        .of(dock, FrameClass::Data)
        .map(|e| (e.end - e.start).as_micros_f64())
        .fold(0.0, f64::max);
    assert!(
        max_dur > 15.0,
        "aggregation should produce long frames: {max_dur}"
    );
    assert!(max_dur <= 25.5, "25 µs cap violated: {max_dur}");

    // Sparse arrivals: one MPDU at a time → only short frames.
    let (mut net2, dock2, laptop2) = two_m_link(quiet_cfg(6));
    net2.associate_instantly(dock2, laptop2);
    for i in 0..20u64 {
        net2.run_until(SimTime::from_micros(500 * (i + 1)));
        net2.push_mpdu(dock2, 1500, i);
    }
    net2.run_until(SimTime::from_millis(15));
    let durs: Vec<f64> = net2
        .txlog()
        .of(dock2, FrameClass::Data)
        .map(|e| (e.end - e.start).as_micros_f64())
        .collect();
    assert!(!durs.is_empty());
    let long = durs.iter().filter(|&&d| d > 6.0).count();
    assert!(
        (long as f64) < 0.2 * durs.len() as f64,
        "sparse traffic should stay single-MPDU: {durs:?}"
    );
    let _ = laptop2;
    let _ = laptop;
}

#[test]
fn short_link_uses_mcs11() {
    let (mut net, dock, laptop) = two_m_link(quiet_cfg(7));
    net.associate_instantly(dock, laptop);
    for i in 0..10u64 {
        net.push_mpdu(dock, 1500, i);
    }
    net.run_until(SimTime::from_millis(5));
    let mcs: Vec<u8> = net
        .txlog()
        .of(dock, FrameClass::Data)
        .filter_map(|e| e.mcs)
        .collect();
    assert!(!mcs.is_empty());
    assert!(
        mcs.iter().all(|&m| m == 11),
        "2 m link must run 16-QAM 5/8: {mcs:?}"
    );
}

#[test]
fn long_link_uses_lower_mcs() {
    let mut net = Net::new(Environment::new(Room::open_space()), quiet_cfg(8));
    let dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        13,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop",
        Point::new(8.0, 0.0),
        Angle::from_degrees(180.0),
        11,
    ));
    net.associate_instantly(dock, laptop);
    for i in 0..10u64 {
        net.push_mpdu(dock, 1500, i);
    }
    net.run_until(SimTime::from_millis(5));
    let mcs: Vec<u8> = net
        .txlog()
        .of(dock, FrameClass::Data)
        .filter_map(|e| e.mcs)
        .collect();
    assert!(!mcs.is_empty());
    assert!(
        mcs.iter().all(|&m| (5..=9).contains(&m)),
        "8 m link should run QPSK-class MCS: {mcs:?}"
    );
}

#[test]
fn out_of_range_link_never_associates() {
    let mut net = Net::new(Environment::new(Room::open_space()), quiet_cfg(9));
    let dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        13,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop",
        Point::new(60.0, 0.0),
        Angle::from_degrees(180.0),
        11,
    ));
    net.pair(dock, laptop);
    net.start();
    net.run_until(SimTime::from_millis(400));
    let w = net.device(dock).wigig().expect("wigig");
    assert_eq!(w.state, mmwave_mac::device::WigigState::Unassociated);
    assert!(
        net.device(dock).stats.discovery_sweeps >= 3,
        "keeps sweeping"
    );
}

#[test]
fn wihd_beacons_every_224_us_and_video_flows() {
    let mut net = Net::new(Environment::new(Room::open_space()), quiet_cfg(10));
    let tx = net.add_device(Device::wihd_source(
        net.ctx(),
        "hdmi tx",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        21,
    ));
    let rx = net.add_device(Device::wihd_sink(
        net.ctx(),
        "hdmi rx",
        Point::new(8.0, 0.0),
        Angle::from_degrees(180.0),
        22,
    ));
    net.pair_wihd_instantly(tx, rx);
    net.run_until(SimTime::from_millis(100));
    let beacons: Vec<SimTime> = net
        .txlog()
        .of(rx, FrameClass::WihdBeacon)
        .map(|e| e.start)
        .collect();
    assert!(beacons.len() > 400, "{} beacons", beacons.len());
    for w in beacons.windows(2) {
        assert!(((w[1] - w[0]).as_micros_f64() - 224.0).abs() < 1.0);
    }
    // Video data flows source → sink at roughly the configured rate.
    let bytes = net.device(rx).stats.bytes_rx;
    let expect = 800e6 / 8.0 * 0.1; // 100 ms at 800 Mb/s
    assert!(
        (bytes as f64) > 0.6 * expect && (bytes as f64) < 1.4 * expect,
        "{bytes} bytes vs expected ≈ {expect}"
    );
}

#[test]
fn wihd_duty_cycle_near_46_percent() {
    let mut net = Net::new(Environment::new(Room::open_space()), quiet_cfg(11));
    let tx = net.add_device(Device::wihd_source(
        net.ctx(),
        "hdmi tx",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        21,
    ));
    let rx = net.add_device(Device::wihd_sink(
        net.ctx(),
        "hdmi rx",
        Point::new(8.0, 0.0),
        Angle::from_degrees(180.0),
        22,
    ));
    net.pair_wihd_instantly(tx, rx);
    // Monitor next to the link with a generous threshold.
    let mon = net.add_monitor(
        Point::new(4.0, 0.5),
        Angle::ZERO,
        mmwave_phy::AntennaPattern::isotropic(3.0),
        -80.0,
    );
    net.run_until(SimTime::from_millis(500));
    let util = net.monitor_utilization(mon, SimTime::ZERO);
    assert!(
        (0.35..=0.58).contains(&util),
        "WiHD standalone utilization {util}"
    );
}

#[test]
fn video_off_silences_data_but_not_beacons() {
    let mut net = Net::new(Environment::new(Room::open_space()), quiet_cfg(12));
    let tx = net.add_device(Device::wihd_source(
        net.ctx(),
        "hdmi tx",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        21,
    ));
    let rx = net.add_device(Device::wihd_sink(
        net.ctx(),
        "hdmi rx",
        Point::new(8.0, 0.0),
        Angle::from_degrees(180.0),
        22,
    ));
    net.pair_wihd_instantly(tx, rx);
    net.run_until(SimTime::from_millis(50));
    net.set_video(tx, false);
    net.txlog_mut().clear();
    net.run_until(SimTime::from_millis(100));
    assert_eq!(
        net.txlog().of(tx, FrameClass::WihdData).count(),
        0,
        "no data while off"
    );
    assert!(
        net.txlog().of(rx, FrameClass::WihdBeacon).count() > 100,
        "beacons continue"
    );
}

#[test]
fn two_wigig_links_coexist_via_carrier_sense() {
    // Two parallel dock links 3 m apart: CSMA shares the medium without
    // persistent loss (§3.2: "The Dell D5000 systems do not interfere with
    // each other since they use CSMA/CA").
    let mut net = Net::new(Environment::new(Room::open_space()), quiet_cfg(13));
    let dock_a = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock A",
        Point::new(0.0, 0.0),
        Angle::from_degrees(90.0),
        13,
    ));
    let lap_a = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop A",
        Point::new(0.0, 6.0),
        Angle::from_degrees(-90.0),
        11,
    ));
    let dock_b = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock B",
        Point::new(3.0, 0.0),
        Angle::from_degrees(90.0),
        7,
    ));
    let lap_b = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop B",
        Point::new(3.0, 6.0),
        Angle::from_degrees(-90.0),
        5,
    ));
    net.associate_instantly(dock_a, lap_a);
    net.associate_instantly(dock_b, lap_b);
    // Feed both links steadily for 400 ms: long enough that the transient
    // before loss-driven rate fallback settles amortizes away.
    for batch in 0..40u64 {
        net.run_until(SimTime::from_millis(10 * batch));
        for i in 0..50u64 {
            net.push_mpdu(dock_a, 1500, batch * 100 + i);
            net.push_mpdu(dock_b, 1500, 100_000 + batch * 100 + i);
        }
    }
    net.run_until(SimTime::from_millis(450));
    let delivered_a = net.device(lap_a).stats.mpdus_rx;
    let delivered_b = net.device(lap_b).stats.mpdus_rx;
    assert!(delivered_a >= 1990, "link A delivered {delivered_a}");
    assert!(delivered_b >= 1990, "link B delivered {delivered_b}");
    // Steady-state loss stays low: collisions back the rate off until the
    // links tolerate each other's side lobes (the Fig. 22 mechanism).
    let loss_a = net.device(dock_a).stats.data_loss_ratio();
    let loss_b = net.device(dock_b).stats.data_loss_ratio();
    assert!(loss_a < 0.12 && loss_b < 0.12, "loss {loss_a} / {loss_b}");
    assert_eq!(
        net.device(dock_a).stats.drops + net.device(dock_b).stats.drops,
        0
    );
}

#[test]
fn deterministic_given_seed() {
    // An 11.5 m link with fading on, sitting exactly at an MCS selection
    // boundary: the fading trajectory (seed-dependent) flips the selected
    // MCS, so different seeds produce different traces while equal seeds
    // reproduce exactly.
    let run = |seed: u64| {
        let mut net = Net::new(
            Environment::new(Room::open_space()),
            NetConfig {
                seed,
                ..NetConfig::default()
            },
        );
        let dock = net.add_device(Device::wigig_dock(
            net.ctx(),
            "dock",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            13,
        ));
        let laptop = net.add_device(Device::wigig_laptop(
            net.ctx(),
            "laptop",
            Point::new(11.5, 0.0),
            Angle::from_degrees(180.0),
            11,
        ));
        net.associate_instantly(dock, laptop);
        let mut mcs_trace: Vec<u8> = Vec::new();
        for i in 1..=200u64 {
            net.push_mpdu(dock, 1500, i);
            net.run_until(SimTime::from_millis(100 * i));
            mcs_trace.push(
                net.device(dock)
                    .wigig()
                    .expect("wigig")
                    .adapter
                    .current()
                    .index,
            );
        }
        (mcs_trace, net.device(laptop).stats.bytes_rx)
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77).0, run(78).0);
}

#[test]
fn bidirectional_traffic() {
    let (mut net, dock, laptop) = two_m_link(quiet_cfg(14));
    net.associate_instantly(dock, laptop);
    for i in 0..40u64 {
        net.push_mpdu(dock, 1500, i);
        net.push_mpdu(laptop, 60, 10_000 + i); // TCP-ACK-sized
    }
    net.run_until(SimTime::from_millis(20));
    assert_eq!(net.device(laptop).stats.mpdus_rx, 40);
    assert_eq!(net.device(dock).stats.mpdus_rx, 40);
}

#[test]
fn monitor_sees_nothing_when_idle() {
    let mut net = Net::new(Environment::new(Room::open_space()), quiet_cfg(15));
    let _dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        13,
    ));
    let mon = net.add_monitor(
        Point::new(1.0, 0.0),
        Angle::ZERO,
        mmwave_phy::AntennaPattern::isotropic(3.0),
        -80.0,
    );
    // No start(): nothing scheduled at all.
    net.run_until(SimTime::from_millis(10));
    assert_eq!(net.monitor_utilization(mon, SimTime::ZERO), 0.0);
}

#[test]
fn txlog_window_limits_memory() {
    let (mut net, dock, laptop) = two_m_link(quiet_cfg(16));
    net.associate_instantly(dock, laptop);
    net.txlog_mut()
        .set_window(SimTime::from_millis(5), SimTime::from_millis(6));
    for i in 0..100u64 {
        net.push_mpdu(dock, 1500, i);
    }
    net.run_until(SimTime::from_millis(20));
    for e in net.txlog().entries() {
        assert!(e.end > SimTime::from_millis(5) && e.start < SimTime::from_millis(6));
    }
}

#[test]
fn retry_limit_drops_and_reports() {
    // A link that dies after association: move the laptop out of range,
    // then push data — every frame times out and eventually drops.
    let (mut net, dock, laptop) = two_m_link(quiet_cfg(17));
    net.associate_instantly(dock, laptop);
    net.move_device(laptop, Point::new(80.0, 0.0), Angle::from_degrees(180.0));
    for i in 0..3u64 {
        net.push_mpdu(dock, 1500, i);
    }
    net.run_until(SimTime::from_millis(100));
    let deliveries = net.take_deliveries();
    let dropped_tags: Vec<u64> = deliveries
        .iter()
        .filter_map(|d| match d {
            Delivery::Dropped { dev, tags } if *dev == dock => Some(tags.clone()),
            _ => None,
        })
        .flatten()
        .collect();
    assert!(!dropped_tags.is_empty(), "drops must be reported");
    // The dead link shows up as deferrals (no CTS ever comes back) and/or
    // as the SNR-driven break; both paths must report the queued data.
    let st = net.device(dock).stats;
    assert!(st.cs_defers > 0 || st.ack_timeouts > 0);
    assert!(st.drops > 0);
}

#[test]
fn broken_link_reassociates_when_conditions_recover() {
    // Blockage (or rain fade) kills the link; when conditions recover the
    // dock's periodic discovery sweeps re-establish it.
    let (mut net, dock, laptop) = two_m_link(quiet_cfg(18));
    net.pair(dock, laptop);
    net.start();
    net.run_until(SimTime::from_millis(20));
    assert_eq!(
        net.device(dock).wigig().expect("wigig").state,
        mmwave_mac::device::WigigState::Associated
    );
    // Degrade: move the laptop far out of range; the next beacon breaks
    // the link.
    net.move_device(laptop, Point::new(60.0, 0.0), Angle::from_degrees(180.0));
    net.run_until(SimTime::from_millis(40));
    assert_eq!(
        net.device(dock).wigig().expect("wigig").state,
        mmwave_mac::device::WigigState::Unassociated
    );
    // Recover: bring it back; within two discovery periods it re-pairs.
    net.move_device(laptop, Point::new(2.0, 0.0), Angle::from_degrees(180.0));
    net.run_until(SimTime::from_millis(300));
    assert_eq!(
        net.device(dock).wigig().expect("wigig").state,
        mmwave_mac::device::WigigState::Associated,
        "link must re-associate after recovery"
    );
    // And it carries data again.
    for i in 0..10u64 {
        net.push_mpdu(dock, 1500, i);
    }
    net.run_until(SimTime::from_millis(310));
    assert_eq!(net.device(laptop).stats.mpdus_rx, 10);
}

#[test]
fn wihd_pairs_through_discovery() {
    // The WiHD source sweeps shuffled discovery frames every 20 ms until
    // its sink responds; after pairing the beacon grid starts.
    let mut net = Net::new(Environment::new(Room::open_space()), quiet_cfg(19));
    let tx = net.add_device(Device::wihd_source(
        net.ctx(),
        "hdmi tx",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        21,
    ));
    let rx = net.add_device(Device::wihd_sink(
        net.ctx(),
        "hdmi rx",
        Point::new(6.0, 0.0),
        Angle::from_degrees(180.0),
        22,
    ));
    net.pair(tx, rx);
    net.start();
    net.run_until(SimTime::from_millis(120));
    assert!(net.device(tx).wihd().expect("wihd").paired);
    assert!(net.device(rx).wihd().expect("wihd").paired);
    assert!(net.device(tx).stats.discovery_sweeps >= 1);
    // Beacons run after pairing; video data flows.
    assert!(net.txlog().of(rx, FrameClass::WihdBeacon).count() > 100);
    assert!(net.device(rx).stats.bytes_rx > 1_000_000);
}

#[test]
fn wihd_discovery_order_is_shuffled() {
    // §4.2: the WiHD sweep order "changes with every transmitted device
    // discovery frame" (which is why the paper could not measure its
    // quasi-omni patterns).
    let mut net = Net::new(Environment::new(Room::open_space()), quiet_cfg(20));
    let tx = net.add_device(Device::wihd_source(
        net.ctx(),
        "hdmi tx",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        21,
    ));
    net.start();
    net.run_until(SimTime::from_millis(90));
    // Collect the pattern order of each sweep.
    let mut subs: Vec<(SimTime, usize)> = net
        .txlog()
        .of(tx, FrameClass::DiscoverySub)
        .map(|e| {
            let idx = match e.pattern {
                mmwave_mac::PatKey::Qo(i) => i,
                other => panic!("discovery must use quasi-omni patterns, got {other:?}"),
            };
            (e.start, idx)
        })
        .collect();
    subs.sort_by_key(|(t, _)| *t);
    let per_sweep = 16;
    assert!(
        subs.len() >= 3 * per_sweep,
        "{} sub-elements captured",
        subs.len()
    );
    let orders: Vec<Vec<usize>> = subs
        .chunks(per_sweep)
        .take(3)
        .map(|c| c.iter().map(|(_, i)| *i).collect())
        .collect();
    assert_ne!(
        orders[0], orders[1],
        "sweep order must change between frames"
    );
    assert_ne!(orders[1], orders[2]);
    // Each sweep still covers all 16 patterns exactly once.
    for mut o in orders {
        o.sort();
        assert_eq!(o, (0..per_sweep).collect::<Vec<_>>());
    }
}
