//! TCP over the simulated 60 GHz link, end to end.

use mmwave_channel::Environment;
use mmwave_geom::{Angle, Point, Room};
use mmwave_mac::{Device, Net, NetConfig};
use mmwave_sim::time::{SimDuration, SimTime};
use mmwave_transport::{Stack, TcpConfig};

fn link_stack(seed: u64, distance_m: f64) -> (Stack, usize, usize) {
    let mut net = Net::new(
        Environment::new(Room::open_space()),
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        },
    );
    let dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        13,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop",
        Point::new(distance_m, 0.0),
        Angle::from_degrees(180.0),
        11,
    ));
    net.associate_instantly(dock, laptop);
    (Stack::new(net), dock, laptop)
}

#[test]
fn bulk_flow_reaches_gige_cap() {
    let (mut stack, dock, laptop) = link_stack(1, 2.0);
    let flow = stack.add_flow(TcpConfig::bulk(dock, laptop, 256 * 1024));
    stack.run_until(SimTime::from_secs(2));
    let g = stack
        .flow_stats(flow)
        .mean_goodput_mbps(SimTime::from_millis(500), SimTime::from_secs(2));
    // The paper's plateau: ≈ 930 Mb/s, limited by Gigabit Ethernet.
    assert!((850.0..=950.0).contains(&g), "goodput {g} Mb/s");
}

#[test]
fn window_clamp_scales_throughput() {
    // Small windows throttle throughput (the Fig. 9–11 knob); the ladder
    // must be strictly increasing until the GigE cap.
    let mut last = 0.0;
    for window in [8 * 1024u64, 16 * 1024, 32 * 1024, 64 * 1024] {
        let (mut stack, dock, laptop) = link_stack(2, 2.0);
        let flow = stack.add_flow(TcpConfig::bulk(dock, laptop, window));
        stack.run_until(SimTime::from_secs(1));
        let g = stack
            .flow_stats(flow)
            .mean_goodput_mbps(SimTime::from_millis(300), SimTime::from_secs(1));
        assert!(g > last, "window {window}: {g} ≤ {last}");
        last = g;
    }
    assert!(last > 200.0, "64 KiB window should exceed 200 Mb/s: {last}");
}

#[test]
fn paced_flow_matches_target() {
    let (mut stack, dock, laptop) = link_stack(3, 2.0);
    let flow = stack.add_flow(TcpConfig::paced(dock, laptop, 10_000_000)); // 10 Mb/s
    stack.run_until(SimTime::from_secs(2));
    let g = stack
        .flow_stats(flow)
        .mean_goodput_mbps(SimTime::from_millis(200), SimTime::from_secs(2));
    assert!((8.0..=11.0).contains(&g), "paced goodput {g}");
}

#[test]
fn file_transfer_completes() {
    let (mut stack, dock, laptop) = link_stack(4, 2.0);
    let cfg = TcpConfig {
        total_bytes: Some(10_000_000), // 10 MB
        ..TcpConfig::bulk(dock, laptop, 256 * 1024)
    };
    let flow = stack.add_flow(cfg);
    stack.run_until(SimTime::from_secs(2));
    assert!(
        stack.flow_finished(flow),
        "10 MB should finish in 2 s at ~900 Mb/s"
    );
    assert_eq!(stack.flow_stats(flow).bytes_acked, 10_000_500); // rounded to segments
}

#[test]
fn throughput_survives_distance_up_to_break() {
    // 8 m: lower MCS but still far above the GigE cap → full throughput.
    let (mut stack, dock, laptop) = link_stack(5, 8.0);
    let flow = stack.add_flow(TcpConfig::bulk(dock, laptop, 256 * 1024));
    stack.run_until(SimTime::from_secs(1));
    let g = stack
        .flow_stats(flow)
        .mean_goodput_mbps(SimTime::from_millis(300), SimTime::from_secs(1));
    assert!(g > 700.0, "8 m goodput {g}");
}

#[test]
fn broken_link_yields_zero_throughput() {
    // 30 m: below the sustainability threshold → the link breaks (or never
    // carries data), Fig. 13's abrupt fall.
    let (mut stack, dock, laptop) = link_stack(6, 30.0);
    let flow = stack.add_flow(TcpConfig::bulk(dock, laptop, 256 * 1024));
    stack.run_until(SimTime::from_secs(1));
    let g = stack
        .flow_stats(flow)
        .mean_goodput_mbps(SimTime::ZERO, SimTime::from_secs(1));
    assert!(g < 20.0, "goodput over a dead link: {g}");
}

#[test]
fn reverse_direction_flow_works() {
    // Laptop → dock (the Fig. 23 direction).
    let (mut stack, dock, laptop) = link_stack(7, 2.0);
    let flow = stack.add_flow(TcpConfig::bulk(laptop, dock, 256 * 1024));
    stack.run_until(SimTime::from_secs(1));
    let g = stack
        .flow_stats(flow)
        .mean_goodput_mbps(SimTime::from_millis(300), SimTime::from_secs(1));
    assert!(g > 700.0, "reverse goodput {g}");
}

#[test]
fn two_flows_share_two_links() {
    let mut net = Net::new(
        Environment::new(Room::open_space()),
        NetConfig {
            seed: 8,
            enable_fading: false,
            ..NetConfig::default()
        },
    );
    let dock_a = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock A",
        Point::new(0.0, 0.0),
        Angle::from_degrees(90.0),
        13,
    ));
    let lap_a = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop A",
        Point::new(0.0, 6.0),
        Angle::from_degrees(-90.0),
        11,
    ));
    let dock_b = net.add_device(Device::wigig_dock(
        net.ctx(),
        "dock B",
        Point::new(3.0, 0.0),
        Angle::from_degrees(90.0),
        7,
    ));
    let lap_b = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "laptop B",
        Point::new(3.0, 6.0),
        Angle::from_degrees(-90.0),
        5,
    ));
    net.associate_instantly(dock_a, lap_a);
    net.associate_instantly(dock_b, lap_b);
    let mut stack = Stack::new(net);
    let fa = stack.add_flow(TcpConfig::bulk(dock_a, lap_a, 128 * 1024));
    let fb = stack.add_flow(TcpConfig::bulk(dock_b, lap_b, 128 * 1024));
    stack.run_until(SimTime::from_secs(1));
    let ga = stack
        .flow_stats(fa)
        .mean_goodput_mbps(SimTime::from_millis(300), SimTime::from_secs(1));
    let gb = stack
        .flow_stats(fb)
        .mean_goodput_mbps(SimTime::from_millis(300), SimTime::from_secs(1));
    // Both links share the channel via CSMA; each still clears hundreds of
    // Mb/s (the medium is far from saturated, §4.4).
    assert!(ga > 300.0 && gb > 300.0, "shared goodputs {ga} / {gb}");
}

#[test]
fn goodput_series_has_reasonable_shape() {
    let (mut stack, dock, laptop) = link_stack(9, 2.0);
    let flow = stack.add_flow(TcpConfig::bulk(dock, laptop, 256 * 1024));
    stack.run_until(SimTime::from_secs(2));
    let series = stack.flow_stats(flow).goodput_series_mbps(
        SimTime::ZERO,
        SimTime::from_secs(2),
        SimDuration::from_millis(250),
    );
    assert_eq!(series.len(), 8);
    // After slow start, every interval sits near the cap.
    for (t, g) in &series[2..] {
        assert!(*g > 700.0, "interval at {t}: {g} Mb/s");
    }
}
