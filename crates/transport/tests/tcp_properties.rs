//! Property tests for the TCP model: sequence-number and congestion
//! invariants under arbitrary delivery/loss/reorder schedules.

use mmwave_sim::time::SimTime;
use mmwave_transport::tcp::TcpAction;
use mmwave_transport::{TcpConfig, TcpFlow};
use proptest::prelude::*;

/// A random interleaving script: each step either delivers a data segment
/// to the receiver (possibly out of order or duplicated), delivers the
/// latest ACK to the sender, or advances time to the next timer.
#[derive(Clone, Debug)]
enum Step {
    DeliverData { skip: u8, dup: bool },
    DeliverAck,
    AdvanceTimer,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..3, any::<bool>()).prop_map(|(skip, dup)| Step::DeliverData { skip, dup }),
            Just(Step::DeliverAck),
            Just(Step::AdvanceTimer),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn tcp_invariants_hold(script in steps(), window_kb in 2u64..128) {
        let cfg = TcpConfig { bottleneck: None, ..TcpConfig::bulk(0, 1, window_kb * 1024) };
        let mss = cfg.mss;
        let mut flow = TcpFlow::new(1, cfg, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        // Segments "in flight" between sender and receiver.
        let mut air: Vec<u64> = Vec::new();
        let mut last_ack: Option<u64> = None;
        let mut prev_una = 0u64;
        let mut prev_rcv_bytes = 0u64;

        let push_actions = |actions: Vec<TcpAction>, air: &mut Vec<u64>| {
            for a in actions {
                let TcpAction::Push { tag, bytes, .. } = a;
                // Decode: data segments have bytes == mss.
                if bytes == mss {
                    air.push(tag & ((1 << 48) - 1));
                }
            }
        };

        let actions = flow.pump(now, 0);
        push_actions(actions, &mut air);

        for step in script {
            now += mmwave_sim::time::SimDuration::from_micros(37);
            match step {
                Step::DeliverData { skip, dup } => {
                    if air.is_empty() { continue; }
                    let idx = (skip as usize).min(air.len() - 1);
                    let seq = if dup && idx > 0 { air[idx - 1] } else { air.remove(idx) };
                    if let Some(ack) = flow.on_data(seq, now) {
                        let TcpAction::Push { tag, .. } = ack;
                        last_ack = Some(tag & ((1 << 48) - 1));
                    }
                }
                Step::DeliverAck => {
                    if let Some(cum) = last_ack {
                        flow.on_ack(cum, now);
                        if let Some(r) = flow.take_fast_retransmit(now) {
                            push_actions(vec![r], &mut air);
                        }
                        let actions = flow.pump(now, 0);
                        push_actions(actions, &mut air);
                    }
                }
                Step::AdvanceTimer => {
                    if let Some(t) = flow.next_timer() {
                        now = now.max(t);
                        let actions = flow.pump(now, 0);
                        push_actions(actions, &mut air);
                    }
                }
            }

            // --- invariants ---
            let (una, nxt) = flow.sender_progress();
            prop_assert!(una <= nxt, "snd_una beyond snd_nxt");
            prop_assert!(una >= prev_una, "cumulative ack went backwards");
            prev_una = una;
            prop_assert_eq!(flow.stats.bytes_acked, una * mss as u64);
            prop_assert!(flow.stats.bytes_received >= prev_rcv_bytes);
            prev_rcv_bytes = flow.stats.bytes_received;
            prop_assert!(flow.cwnd_segments() >= 1.0, "cwnd collapsed below 1");
            // Window clamp respected at send time: in-flight never exceeds
            // clamp + 1 segment of slack (the retransmit).
            let clamp = (window_kb * 1024) / mss as u64 + 2;
            prop_assert!(nxt - una <= clamp.max(5), "flight {} > clamp {}", nxt - una, clamp);
        }
    }

    /// A lossless in-order channel delivers and acknowledges everything:
    /// eventually `finished()` with exact byte counts.
    #[test]
    fn lossless_channel_completes(total_segs in 1u64..200) {
        let cfg = TcpConfig {
            bottleneck: None,
            total_bytes: Some(total_segs * 1500),
            ..TcpConfig::bulk(0, 1, 1 << 20)
        };
        let mut flow = TcpFlow::new(1, cfg, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut air: std::collections::VecDeque<u64> = Default::default();
        for _ in 0..10_000 {
            if flow.finished() { break; }
            now += mmwave_sim::time::SimDuration::from_micros(50);
            for a in flow.pump(now, 0) {
                let TcpAction::Push { tag, bytes, .. } = a;
                if bytes == 1500 { air.push_back(tag & ((1 << 48) - 1)); }
            }
            let mut cum = None;
            while let Some(seq) = air.pop_front() {
                if let Some(TcpAction::Push { tag, .. }) = flow.on_data(seq, now) {
                    cum = Some(tag & ((1 << 48) - 1));
                }
            }
            // Flush any delayed ack via its timer.
            if cum.is_none() {
                if let Some(t) = flow.next_timer() {
                    now = now.max(t);
                    for a in flow.pump(now, 0) {
                        let TcpAction::Push { tag, bytes, .. } = a;
                        if bytes == 1500 {
                            air.push_back(tag & ((1 << 48) - 1));
                        } else {
                            cum = Some(tag & ((1 << 48) - 1));
                        }
                    }
                }
            }
            if let Some(c) = cum {
                flow.on_ack(c, now);
            }
        }
        prop_assert!(flow.finished(), "flow did not finish: {:?}", flow.sender_progress());
        prop_assert_eq!(flow.stats.bytes_acked, total_segs * 1500);
        prop_assert_eq!(flow.stats.retransmits, 0);
    }
}
