//! Property tests for the TCP model: sequence-number and congestion
//! invariants under arbitrary delivery/loss/reorder schedules.
//!
//! Std-only: the delivery scripts are drawn from deterministic `SimRng`
//! streams with fixed seeds (no proptest — the workspace builds offline).
//! Failures print the case number, which reproduces the exact script.

use mmwave_sim::rng::SimRng;
use mmwave_sim::time::SimTime;
use mmwave_transport::tcp::TcpAction;
use mmwave_transport::{TcpConfig, TcpFlow};

/// A random interleaving script: each step either delivers a data segment
/// to the receiver (possibly out of order or duplicated), delivers the
/// latest ACK to the sender, or advances time to the next timer.
#[derive(Clone, Debug)]
enum Step {
    DeliverData { skip: u8, dup: bool },
    DeliverAck,
    AdvanceTimer,
}

fn gen_script(r: &mut SimRng) -> Vec<Step> {
    let n = 1 + (r.next_u64() % 119) as usize;
    (0..n)
        .map(|_| match r.next_u64() % 3 {
            0 => Step::DeliverData {
                skip: (r.next_u64() % 3) as u8,
                dup: r.chance(0.5),
            },
            1 => Step::DeliverAck,
            _ => Step::AdvanceTimer,
        })
        .collect()
}

#[test]
fn tcp_invariants_hold() {
    for case in 0..96u64 {
        let mut r = SimRng::root(case).stream("tcp-script");
        let script = gen_script(&mut r);
        let window_kb = 2 + r.next_u64() % 126;
        let cfg = TcpConfig {
            bottleneck: None,
            ..TcpConfig::bulk(0, 1, window_kb * 1024)
        };
        let mss = cfg.mss;
        let mut flow = TcpFlow::new(1, cfg, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        // Segments "in flight" between sender and receiver.
        let mut air: Vec<u64> = Vec::new();
        let mut last_ack: Option<u64> = None;
        let mut prev_una = 0u64;
        let mut prev_rcv_bytes = 0u64;

        let push_actions = |actions: Vec<TcpAction>, air: &mut Vec<u64>| {
            for a in actions {
                let TcpAction::Push { tag, bytes, .. } = a;
                // Decode: data segments have bytes == mss.
                if bytes == mss {
                    air.push(tag & ((1 << 48) - 1));
                }
            }
        };

        let actions = flow.pump(now, 0);
        push_actions(actions, &mut air);

        for step in script {
            now += mmwave_sim::time::SimDuration::from_micros(37);
            match step {
                Step::DeliverData { skip, dup } => {
                    if air.is_empty() {
                        continue;
                    }
                    let idx = (skip as usize).min(air.len() - 1);
                    let seq = if dup && idx > 0 {
                        air[idx - 1]
                    } else {
                        air.remove(idx)
                    };
                    if let Some(ack) = flow.on_data(seq, now) {
                        let TcpAction::Push { tag, .. } = ack;
                        last_ack = Some(tag & ((1 << 48) - 1));
                    }
                }
                Step::DeliverAck => {
                    if let Some(cum) = last_ack {
                        flow.on_ack(cum, now);
                        if let Some(rt) = flow.take_fast_retransmit(now) {
                            push_actions(vec![rt], &mut air);
                        }
                        let actions = flow.pump(now, 0);
                        push_actions(actions, &mut air);
                    }
                }
                Step::AdvanceTimer => {
                    if let Some(t) = flow.next_timer() {
                        now = now.max(t);
                        let actions = flow.pump(now, 0);
                        push_actions(actions, &mut air);
                    }
                }
            }

            // --- invariants ---
            let (una, nxt) = flow.sender_progress();
            assert!(una <= nxt, "case {case}: snd_una beyond snd_nxt");
            assert!(
                una >= prev_una,
                "case {case}: cumulative ack went backwards"
            );
            prev_una = una;
            assert_eq!(flow.stats.bytes_acked, una * mss as u64, "case {case}");
            assert!(flow.stats.bytes_received >= prev_rcv_bytes, "case {case}");
            prev_rcv_bytes = flow.stats.bytes_received;
            assert!(
                flow.cwnd_segments() >= 1.0,
                "case {case}: cwnd collapsed below 1"
            );
            // Window clamp respected at send time: in-flight never exceeds
            // clamp + 1 segment of slack (the retransmit).
            let clamp = (window_kb * 1024) / mss as u64 + 2;
            assert!(
                nxt - una <= clamp.max(5),
                "case {case}: flight {} > clamp {}",
                nxt - una,
                clamp
            );
        }
    }
}

/// A lossless in-order channel delivers and acknowledges everything:
/// eventually `finished()` with exact byte counts.
#[test]
fn lossless_channel_completes() {
    for case in 0..48u64 {
        let mut r = SimRng::root(case).stream("tcp-lossless");
        let total_segs = 1 + r.next_u64() % 199;
        let cfg = TcpConfig {
            bottleneck: None,
            total_bytes: Some(total_segs * 1500),
            ..TcpConfig::bulk(0, 1, 1 << 20)
        };
        let mut flow = TcpFlow::new(1, cfg, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut air: std::collections::VecDeque<u64> = Default::default();
        for _ in 0..10_000 {
            if flow.finished() {
                break;
            }
            now += mmwave_sim::time::SimDuration::from_micros(50);
            for a in flow.pump(now, 0) {
                let TcpAction::Push { tag, bytes, .. } = a;
                if bytes == 1500 {
                    air.push_back(tag & ((1 << 48) - 1));
                }
            }
            let mut cum = None;
            while let Some(seq) = air.pop_front() {
                if let Some(TcpAction::Push { tag, .. }) = flow.on_data(seq, now) {
                    cum = Some(tag & ((1 << 48) - 1));
                }
            }
            // Flush any delayed ack via its timer.
            if cum.is_none() {
                if let Some(t) = flow.next_timer() {
                    now = now.max(t);
                    for a in flow.pump(now, 0) {
                        let TcpAction::Push { tag, bytes, .. } = a;
                        if bytes == 1500 {
                            air.push_back(tag & ((1 << 48) - 1));
                        } else {
                            cum = Some(tag & ((1 << 48) - 1));
                        }
                    }
                }
            }
            if let Some(c) = cum {
                flow.on_ack(c, now);
            }
        }
        assert!(
            flow.finished(),
            "case {case}: flow did not finish: {:?}",
            flow.sender_progress()
        );
        assert_eq!(flow.stats.bytes_acked, total_segs * 1500, "case {case}");
        assert_eq!(flow.stats.retransmits, 0, "case {case}");
    }
}
