//! The TCP *datapath* over the MAC's MPDU service.
//!
//! Sequence numbers are in *segments* (fixed MSS), which keeps the
//! arithmetic honest while avoiding byte-granularity bookkeeping the
//! experiments never observe. One [`TcpFlow`] owns both endpoints — the
//! sender runs at `src_dev`, the receiver at `dst_dev`, and segments/ACKs
//! ride the MAC as MPDUs with the flow id and sequence encoded in the
//! transport tag.
//!
//! The datapath detects loss (dup-ACK counting, RTO timers with backoff,
//! Karn's timed RTT sample) and enforces windows and pacing rates, but it
//! performs **no congestion arithmetic itself**: every ACK advance, fast
//! retransmit and timeout is folded into a [`cc::MeasurementReport`] and
//! handed to the flow's [`cc::CongestionAlg`]; the returned
//! [`cc::ControlPattern`] (window and/or pacing rate) is what the fill
//! loop obeys. See the [`crate::cc`] module docs for the plane split.

use crate::cc::{self, CongestionAlg, ControlPattern, MeasurementReport};
use crate::ethernet::RateLimiter;
use mmwave_mac::MacMeasurement;
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::series::TimeSeries;
use mmwave_sim::time::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// Size of an ACK segment on the air, bytes.
const ACK_BYTES: u32 = 60;
/// Initial retransmission timeout.
const INITIAL_RTO: SimDuration = SimDuration::from_millis(20);
/// Minimum RTO (RFC 6298 uses 1 s; consumer stacks and our ms-scale RTTs
/// justify a much tighter floor).
const MIN_RTO: SimDuration = SimDuration::from_millis(5);
/// MAC queue depth (MPDUs) above which the sender pauses pushing.
const MAC_QUEUE_CAP: usize = 96;
/// Retry delay when the MAC queue is full.
const QUEUE_POLL: SimDuration = SimDuration::from_micros(300);
/// Delayed-ACK timer: an in-order segment is acknowledged at the latest
/// this long after arrival (or immediately on every third segment — a
/// stretch-ACK policy matching the bulk-transfer regime the dock serves).
const DELACK: SimDuration = SimDuration::from_micros(500);

/// Tag encoding: `[flow:15][is_ack:1][seq:48]`.
pub(crate) fn encode_tag(flow: u16, is_ack: bool, seq: u64) -> u64 {
    debug_assert!(flow < (1 << 15));
    debug_assert!(seq < (1 << 48));
    ((flow as u64) << 49) | ((is_ack as u64) << 48) | seq
}

/// Decode a transport tag into `(flow, is_ack, seq)`.
pub(crate) fn decode_tag(tag: u64) -> (u16, bool, u64) {
    (
        (tag >> 49) as u16,
        (tag >> 48) & 1 == 1,
        tag & ((1 << 48) - 1),
    )
}

/// Flow configuration.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Sending device index.
    pub src_dev: usize,
    /// Receiving device index.
    pub dst_dev: usize,
    /// Segment size, bytes (payload per MPDU).
    pub mss: u32,
    /// Window clamp in bytes (the Iperf `-w` knob).
    pub window_bytes: u64,
    /// Optional application pacing in bits/s (for kb/s operating points).
    pub pace_bps: Option<u64>,
    /// Optional Ethernet bottleneck in front of the air interface.
    pub bottleneck: Option<RateLimiter>,
    /// Total bytes to transfer; `None` = unlimited (Iperf duration mode).
    pub total_bytes: Option<u64>,
    /// Throughput sampling interval for the stats series.
    pub sample_interval: SimDuration,
    /// Congestion-control algorithm. `None` inherits the context override
    /// (see [`cc::install_override`]) and defaults to Reno.
    pub cc: Option<cc::CcKind>,
}

impl TcpConfig {
    /// An Iperf-style bulk flow with a given window clamp.
    pub fn bulk(src_dev: usize, dst_dev: usize, window_bytes: u64) -> TcpConfig {
        TcpConfig {
            src_dev,
            dst_dev,
            mss: 1500,
            window_bytes,
            pace_bps: None,
            bottleneck: Some(RateLimiter::gige()),
            total_bytes: None,
            sample_interval: SimDuration::from_millis(100),
            cc: None,
        }
    }

    /// A paced flow: the application feeds segments at `pace_bps`. The
    /// window is sized to never be the constraint (pacing is), with a
    /// floor for trickle rates.
    pub fn paced(src_dev: usize, dst_dev: usize, pace_bps: u64) -> TcpConfig {
        let window = ((pace_bps as f64 * 2e-3 / 8.0) as u64).max(3_000);
        TcpConfig {
            pace_bps: Some(pace_bps),
            window_bytes: window,
            ..TcpConfig::bulk(src_dev, dst_dev, 64 * 1024)
        }
    }
}

/// Measured flow statistics.
#[derive(Clone, Debug, Default)]
pub struct FlowStats {
    /// Bytes cumulatively acknowledged at the sender.
    pub bytes_acked: u64,
    /// Bytes cumulatively received in order at the receiver.
    pub bytes_received: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
    /// Fast retransmits.
    pub fast_retransmits: u64,
    /// Distinct loss epochs: fast-recovery entries plus first RTOs
    /// (backed-off retransmissions of the same outage count once).
    pub loss_epochs: u64,
    /// Smoothed RTT estimate (last), seconds.
    pub srtt_s: f64,
    /// Cumulative received bytes over time (for interval throughput).
    pub received_series: TimeSeries,
}

impl FlowStats {
    /// Mean goodput over `[from, to)` in Mb/s, from the received series.
    pub fn mean_goodput_mbps(&self, from: SimTime, to: SimTime) -> f64 {
        let at = |t: SimTime| self.received_series.sample_hold(t).unwrap_or(0.0);
        let bytes = at(to) - at(from);
        let secs = (to - from).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            bytes * 8.0 / secs / 1e6
        }
    }

    /// Per-interval goodput series in Mb/s with the given bin width.
    pub fn goodput_series_mbps(
        &self,
        from: SimTime,
        to: SimTime,
        bin: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            let end = (t + bin).min(to);
            out.push((t, self.mean_goodput_mbps(t, end)));
            t = end;
        }
        out
    }
}

/// A pre-admitted run of back-to-back segment releases through the
/// Ethernet bottleneck.
///
/// A backlogged, unpaced, ACK-clocked flow behind a serializing
/// [`RateLimiter`] releases exactly one MSS segment every wire slot, at
/// instants known in advance (`next_free`, `next_free + slot`, …). The
/// fill loop recognises that state at the limiter-refusal point and
/// *commits* the whole in-window schedule at once: the wire is reserved
/// up front (`next_free ← t₁ + K·slot`) and the stack then drains the
/// run through the slim [`TcpFlow::release_run_segment`] path — one
/// MAC-cap check and one push per segment instead of a full pump and
/// fill-loop re-derivation per segment.
///
/// Determinism contract: any full [`TcpFlow::pump`] dissolves the run
/// (rolling the wire reservation back to the first unreleased slot), so
/// every ACK, RTO, window change or pacing-rate install re-derives the
/// schedule from scratch — release instants, MAC pushes, and artifact
/// bytes are identical to the unbatched per-segment path.
#[derive(Debug, Clone, Copy)]
struct ReleaseRun {
    /// Instant of the next release.
    next_at: SimTime,
    /// Wire slot of one MSS segment (uniform release spacing).
    interval: SimDuration,
    /// Segments left in the run (always ≥ 1 while the run exists).
    remaining: u32,
}

/// Sender + receiver state of one TCP flow.
#[derive(Debug)]
pub struct TcpFlow {
    /// Flow id (index in the stack).
    pub id: u16,
    /// Configuration.
    pub cfg: TcpConfig,
    // --- sender (datapath) ---
    snd_una: u64,
    snd_nxt: u64,
    /// Window installed by the congestion algorithm, segments.
    ctl_window: f64,
    /// Pacing rate installed by the congestion algorithm, bits/s.
    ctl_rate_bps: Option<u64>,
    /// Next release instant for algorithm-installed pacing.
    cc_pace_next: SimTime,
    dup_acks: u32,
    in_recovery: bool,
    recovery_end: u64,
    srtt: Option<f64>,
    rtt_min: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    rto_at: Option<SimTime>,
    rto_backoff: u32,
    /// (seq, sent_at) of one timed segment (Karn's algorithm: one sample
    /// at a time, never from retransmissions).
    timed: Option<(u64, SimTime)>,
    pending_fast_retransmit: bool,
    pace_next: SimTime,
    queue_poll_at: Option<SimTime>,
    /// Active batched release schedule, if any (see [`ReleaseRun`]).
    run: Option<ReleaseRun>,
    // --- receiver ---
    rcv_nxt: u64,
    out_of_order: BTreeSet<u64>,
    delack_pending: u32,
    delack_at: Option<SimTime>,
    // --- congestion plane ---
    alg: Box<dyn CongestionAlg>,
    ctx: SimCtx,
    /// Latest MAC-level measurement folded into reports.
    mac: MacMeasurement,
    // --- stats ---
    /// Measured statistics.
    pub stats: FlowStats,
    next_sample: SimTime,
    started: SimTime,
}

/// Actions the flow asks the stack to perform (decoupled from `Net` so the
/// flow logic is unit-testable in isolation).
#[derive(Debug, PartialEq, Eq)]
pub enum TcpAction {
    /// Push an MPDU on `dev` with the given size and tag.
    Push {
        /// Device whose MAC queue receives the MPDU.
        dev: usize,
        /// Payload bytes.
        bytes: u32,
        /// Encoded transport tag.
        tag: u64,
    },
}

impl TcpFlow {
    /// Create a flow with a private context (unit tests, benches);
    /// transmission begins on the first `on_timer` / `pump` call.
    pub fn new(id: u16, cfg: TcpConfig, now: SimTime) -> TcpFlow {
        let ctx = SimCtx::new();
        TcpFlow::with_ctx(id, cfg, now, &ctx)
    }

    /// Create a flow whose congestion plane reports into `ctx`. The
    /// algorithm resolves as: explicit [`TcpConfig::cc`], else the context
    /// override ([`cc::install_override`]), else Reno.
    pub fn with_ctx(id: u16, cfg: TcpConfig, now: SimTime, ctx: &SimCtx) -> TcpFlow {
        let kind = cfg
            .cc
            .or_else(|| cc::override_of(ctx))
            .unwrap_or(cc::CcKind::Reno);
        TcpFlow {
            id,
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            ctl_window: 4.0,
            ctl_rate_bps: None,
            cc_pace_next: now,
            dup_acks: 0,
            in_recovery: false,
            recovery_end: 0,
            srtt: None,
            rtt_min: None,
            rttvar: 0.0,
            rto: INITIAL_RTO,
            rto_at: None,
            rto_backoff: 0,
            timed: None,
            pending_fast_retransmit: false,
            pace_next: now,
            queue_poll_at: None,
            run: None,
            rcv_nxt: 0,
            out_of_order: BTreeSet::new(),
            delack_pending: 0,
            delack_at: None,
            alg: kind.build(),
            ctx: ctx.clone(),
            mac: MacMeasurement::default(),
            stats: FlowStats::default(),
            next_sample: now,
            started: now,
        }
    }

    /// Fold a measurement into the congestion algorithm and install the
    /// resulting control pattern.
    fn fold(&mut self, report: MeasurementReport) {
        self.ctx.record_cc_report();
        let pattern = self.alg.on_report(&report);
        self.apply(pattern);
    }

    /// Install a control pattern, counting only patterns that change the
    /// datapath state.
    fn apply(&mut self, pattern: ControlPattern) {
        let mut installed = false;
        if let Some(w) = pattern.cwnd {
            if w != self.ctl_window {
                installed = true;
            }
            self.ctl_window = w;
        }
        if let Some(rate) = pattern.rate_bps {
            if Some(rate) != self.ctl_rate_bps {
                installed = true;
            }
            self.ctl_rate_bps = Some(rate);
        }
        if installed {
            self.ctx.record_cc_pattern();
        }
    }

    /// A report template carrying the measurement fields every fold
    /// shares (clocks, RTT state, MAC-level link view).
    fn report_base(&self, now: SimTime) -> MeasurementReport {
        MeasurementReport {
            srtt_s: self.srtt,
            rtt_min_s: self.rtt_min,
            now_s: (now - self.started).as_secs_f64(),
            mss: self.cfg.mss,
            airtime_share: self.mac.airtime_share,
            ack_loss_streak: self.mac.ack_loss_streak,
            in_recovery: self.in_recovery,
            ..Default::default()
        }
    }

    /// Update the MAC-level measurement folded into subsequent reports
    /// (the stack snapshots [`mmwave_mac::Net::mac_measurement`] per ACK).
    pub fn note_mac(&mut self, m: MacMeasurement) {
        self.mac = m;
    }

    /// Total segments this flow will ever send (`None` = unbounded).
    fn total_segments(&self) -> Option<u64> {
        self.cfg
            .total_bytes
            .map(|b| b.div_ceil(self.cfg.mss as u64))
    }

    /// True if every byte has been acknowledged.
    pub fn finished(&self) -> bool {
        match self.total_segments() {
            Some(n) => self.snd_una >= n,
            None => false,
        }
    }

    /// Effective send window in segments.
    fn window_segments(&self) -> f64 {
        let clamp = (self.cfg.window_bytes as f64 / self.cfg.mss as f64).max(1.0);
        self.ctl_window.min(clamp)
    }

    /// The next instant this flow needs servicing (RTO, pacing release,
    /// MAC-queue poll, stats sample).
    pub fn next_timer(&self) -> Option<SimTime> {
        let mut t: Option<SimTime> = None;
        let mut consider = |x: Option<SimTime>| {
            if let Some(x) = x {
                t = Some(t.map_or(x, |c: SimTime| c.min(x)));
            }
        };
        consider(self.rto_at);
        consider(self.queue_poll_at);
        consider(self.delack_at);
        consider(self.run.as_ref().map(|r| r.next_at));
        // Pacing releases only matter for paced flows; unpaced flows are
        // purely ACK-clocked (and polled via queue_poll_at).
        if !self.finished() && (self.snd_nxt - self.snd_una) < self.window_segments() as u64 {
            // A release happens when every active pacer allows it, so the
            // next actionable instant is the *latest* pending release.
            match (self.cfg.pace_bps.is_some(), self.ctl_rate_bps.is_some()) {
                (true, true) => consider(Some(self.pace_next.max(self.cc_pace_next))),
                (true, false) => consider(Some(self.pace_next)),
                (false, true) => consider(Some(self.cc_pace_next)),
                (false, false) => {}
            }
        }
        consider(Some(self.next_sample));
        t
    }

    /// Service timers and fill the window. `mac_queue_len` is the current
    /// depth of the sender's MAC queue (backpressure).
    pub fn pump(&mut self, now: SimTime, mac_queue_len: usize) -> Vec<TcpAction> {
        let mut actions = Vec::new();
        self.pump_into(now, mac_queue_len, &mut actions);
        actions
    }

    /// [`Self::pump`] appending into a caller-owned buffer, so the stack's
    /// hot loop reuses one allocation across every pump.
    pub(crate) fn pump_into(
        &mut self,
        now: SimTime,
        mac_queue_len: usize,
        actions: &mut Vec<TcpAction>,
    ) {
        // A full pump dissolves any batched release run: the wire
        // reservation rolls back to the first unreleased slot, and the
        // fill loop below re-derives (and usually re-commits) the
        // schedule from the *current* window and ack state. This is the
        // rule that keeps batching byte-identical: every state change
        // (ACK advance, RTO, pattern install, fast retransmit) reaches
        // the datapath through a path that ends in a pump.
        if let Some(run) = self.run.take() {
            if let Some(l) = &mut self.cfg.bottleneck {
                l.set_next_free(run.next_at);
            }
        }
        // Stats sampling.
        while self.next_sample <= now {
            self.stats
                .received_series
                .push(self.next_sample, self.stats.bytes_received as f64);
            self.next_sample += self.cfg.sample_interval;
        }
        // Delayed ACK due?
        if let Some(at) = self.delack_at {
            if at <= now {
                actions.push(self.make_ack());
            }
        }
        // RTO?
        if let Some(at) = self.rto_at {
            if at <= now {
                self.on_rto(now);
                // Immediately retransmit the lost head segment.
                actions.push(self.push_segment(self.snd_una, now, true));
            }
        }
        self.queue_poll_at = None;
        // Fill the window.
        loop {
            if self.finished() {
                break;
            }
            let in_flight = self.snd_nxt.saturating_sub(self.snd_una);
            if (in_flight as f64) >= self.window_segments() {
                break;
            }
            if let Some(total) = self.total_segments() {
                if self.snd_nxt >= total {
                    break;
                }
            }
            if mac_queue_len + actions.len() >= MAC_QUEUE_CAP {
                self.queue_poll_at = Some(now + QUEUE_POLL);
                break;
            }
            // Pacing: the application pacer and the congestion
            // algorithm's pacer (Reno/CUBIC never install a rate, so the
            // latter is inert for loss-based control). Both must allow
            // the release before either credit is consumed — consuming
            // one while the other gates would strand its `*_next` in the
            // past and livelock the timer loop.
            if self.cfg.pace_bps.is_some() && self.pace_next > now {
                break;
            }
            if self.ctl_rate_bps.is_some() && self.cc_pace_next > now {
                break;
            }
            if let Some(pace) = self.cfg.pace_bps {
                self.pace_next = now + SimDuration::for_bits(self.cfg.mss as u64 * 8, pace);
            }
            if let Some(rate) = self.ctl_rate_bps {
                self.cc_pace_next =
                    now + SimDuration::for_bits(self.cfg.mss as u64 * 8, rate.max(1));
            }
            // Ethernet bottleneck.
            if let Some(limiter) = &mut self.cfg.bottleneck {
                if !limiter.admit(now, self.cfg.mss) {
                    self.stall_or_commit_run();
                    break;
                }
            }
            let seq = self.snd_nxt;
            self.snd_nxt += 1;
            actions.push(self.push_segment(seq, now, false));
        }
    }

    /// The fill loop hit the bottleneck's wire-busy refusal. For a pure
    /// ACK-clocked flow (no pacers), the future is deterministic until
    /// the next pump: one segment per wire slot while window headroom
    /// lasts — so commit the whole run and reserve the wire up front.
    /// Otherwise fall back to the ordinary queue poll at `next_free`.
    fn stall_or_commit_run(&mut self) {
        let eligible =
            self.cfg.pace_bps.is_none() && self.ctl_rate_bps.is_none() && !self.finished();
        // Window headroom at the refusal point: the count of extra
        // segments the `in_flight < window` gate would admit, given that
        // no ACK moves `snd_una` before the next pump (which re-derives).
        let in_flight = self.snd_nxt.saturating_sub(self.snd_una);
        let headroom = (self.window_segments() - in_flight as f64).ceil();
        let mut k = if headroom > 0.0 { headroom as u64 } else { 0 };
        if let Some(total) = self.total_segments() {
            k = k.min(total.saturating_sub(self.snd_nxt));
        }
        let mss = self.cfg.mss;
        let limiter = self
            .cfg
            .bottleneck
            .as_mut()
            .expect("wire refusal implies a bottleneck");
        if !eligible || k == 0 {
            self.queue_poll_at = Some(limiter.next_free());
            return;
        }
        let k = k.min(u32::MAX as u64) as u32;
        let next_at = limiter.next_free();
        let interval = limiter.slot(mss);
        limiter.set_next_free(next_at + interval * k);
        self.run = Some(ReleaseRun {
            next_at,
            interval,
            remaining: k,
        });
    }

    /// True if, at `at`, the *only* due servicing for this flow is the
    /// next batched release — the stack then takes the slim
    /// [`Self::release_run_segment`] path. Any coincident timer (RTO,
    /// delayed ACK, queue poll, stats sample) forces a full pump so the
    /// stage order matches the unbatched path exactly.
    pub(crate) fn run_only_due(&self, at: SimTime) -> bool {
        let Some(run) = &self.run else { return false };
        run.next_at <= at
            && self.rto_at.is_none_or(|t| t > at)
            && self.queue_poll_at.is_none_or(|t| t > at)
            && self.delack_at.is_none_or(|t| t > at)
            && self.next_sample > at
    }

    /// Release the next segment of an active run: one MAC-cap check and
    /// one push, skipping the full pump's stage scan and fill-loop
    /// re-derivation. `qlen` is the sender's current MAC queue depth.
    /// Returns `None` under MAC backpressure, in which case the run
    /// dissolves into the ordinary queue-poll retry (rebasing the wire
    /// schedule), exactly like the unbatched path.
    pub(crate) fn release_run_segment(&mut self, now: SimTime, qlen: usize) -> Option<TcpAction> {
        let mut run = self.run.take().expect("release without an active run");
        debug_assert_eq!(run.next_at, now, "release at the scheduled instant");
        if qlen >= MAC_QUEUE_CAP {
            // The unbatched path would break on the MAC-cap gate before
            // touching the limiter, leaving `next_free` at `now`; the
            // poll then re-admits and rebases at `now + QUEUE_POLL`.
            if let Some(l) = &mut self.cfg.bottleneck {
                l.set_next_free(now);
            }
            self.queue_poll_at = Some(now + QUEUE_POLL);
            return None;
        }
        let seq = self.snd_nxt;
        self.snd_nxt += 1;
        let action = self.push_segment(seq, now, false);
        run.remaining -= 1;
        if run.remaining > 0 {
            run.next_at = now + run.interval;
            self.run = Some(run);
        }
        // On exhaustion the window is full: like the unbatched fill loop
        // breaking on the window gate, no poll timer is armed — the next
        // wake is ACK- or RTO-driven, and the wire reservation already
        // equals the post-run per-segment admit state.
        Some(action)
    }

    fn push_segment(&mut self, seq: u64, now: SimTime, is_retransmit: bool) -> TcpAction {
        if is_retransmit {
            self.stats.retransmits += 1;
        } else if self.timed.is_none() {
            self.timed = Some((seq, now));
        }
        if self.rto_at.is_none() {
            self.rto_at = Some(now + self.rto);
        }
        TcpAction::Push {
            dev: self.cfg.src_dev,
            bytes: self.cfg.mss,
            tag: encode_tag(self.id, false, seq),
        }
    }

    fn make_ack(&mut self) -> TcpAction {
        self.delack_pending = 0;
        self.delack_at = None;
        TcpAction::Push {
            dev: self.cfg.dst_dev,
            bytes: ACK_BYTES,
            tag: encode_tag(self.id, true, self.rcv_nxt),
        }
    }

    /// A data segment arrived at the receiver. Returns the ACK to send, if
    /// one is due now (delayed-ACK policy: immediate on out-of-order or on
    /// every second in-order segment, otherwise within [`DELACK`]).
    pub fn on_data(&mut self, seq: u64, now: SimTime) -> Option<TcpAction> {
        if seq == self.rcv_nxt {
            self.rcv_nxt += 1;
            self.stats.bytes_received += self.cfg.mss as u64;
            while self.out_of_order.remove(&self.rcv_nxt) {
                self.rcv_nxt += 1;
                self.stats.bytes_received += self.cfg.mss as u64;
            }
            self.delack_pending += 1;
            if self.delack_pending >= 3 {
                Some(self.make_ack())
            } else {
                self.delack_at = Some(now + DELACK);
                None
            }
        } else {
            // Out of order or duplicate: ACK immediately (dup-ACK signal).
            if seq > self.rcv_nxt {
                self.out_of_order.insert(seq);
            }
            Some(self.make_ack())
        }
    }

    /// A (cumulative) ACK arrived at the sender.
    pub fn on_ack(&mut self, cum: u64, now: SimTime) {
        if cum > self.snd_una {
            let newly = cum - self.snd_una;
            self.snd_una = cum;
            self.stats.bytes_acked = self.snd_una * self.cfg.mss as u64;
            self.dup_acks = 0;
            self.rto_backoff = 0;
            // RTT sample (Karn: only if the timed segment is covered and
            // was never retransmitted — retransmission clears `timed`).
            if let Some((seq, at)) = self.timed {
                if cum > seq {
                    let sample = (now - at).as_secs_f64();
                    match self.srtt {
                        None => {
                            self.srtt = Some(sample);
                            self.rttvar = sample / 2.0;
                        }
                        Some(srtt) => {
                            self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample).abs();
                            self.srtt = Some(0.875 * srtt + 0.125 * sample);
                        }
                    }
                    let srtt = self.srtt.expect("just set");
                    self.stats.srtt_s = srtt;
                    self.rtt_min = Some(self.rtt_min.map_or(sample, |m: f64| m.min(sample)));
                    let rto = SimDuration::from_secs_f64(srtt + 4.0 * self.rttvar);
                    self.rto = rto.max(MIN_RTO);
                    self.timed = None;
                }
            }
            let recovery_exited = self.in_recovery && cum >= self.recovery_end;
            if recovery_exited {
                self.in_recovery = false;
            }
            self.fold(MeasurementReport {
                newly_acked: newly,
                recovery_exited,
                inflight: self.snd_nxt.saturating_sub(self.snd_una) as f64,
                ..self.report_base(now)
            });
            // Restart the RTO for remaining in-flight data.
            self.rto_at = if self.snd_nxt > self.snd_una {
                Some(now + self.rto)
            } else {
                None
            };
        } else if cum == self.snd_una && self.snd_nxt > self.snd_una {
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                // Fast retransmit / recovery.
                self.stats.fast_retransmits += 1;
                self.stats.loss_epochs += 1;
                self.ctx.record_cc_loss_epoch();
                let flight = (self.snd_nxt - self.snd_una) as f64;
                self.in_recovery = true;
                self.recovery_end = self.snd_nxt;
                self.timed = None;
                self.pending_fast_retransmit = true;
                self.fold(MeasurementReport {
                    loss: true,
                    inflight: flight,
                    ..self.report_base(now)
                });
            }
        }
    }

    fn on_rto(&mut self, now: SimTime) {
        self.stats.timeouts += 1;
        // A fresh RTO (no backoff yet) opens a loss epoch; the backed-off
        // re-fires during one outage — e.g. the MAC's 102.4 ms
        // rediscovery window — belong to the same epoch (the backoff only
        // resets when an ACK advances).
        if self.rto_backoff == 0 {
            self.stats.loss_epochs += 1;
            self.ctx.record_cc_loss_epoch();
        }
        let flight = (self.snd_nxt - self.snd_una).max(1) as f64;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.timed = None;
        self.fold(MeasurementReport {
            timeout: true,
            inflight: flight,
            ..self.report_base(now)
        });
        self.rto_backoff = (self.rto_backoff + 1).min(6);
        let backed =
            SimDuration::from_secs_f64(self.rto.as_secs_f64() * (1 << self.rto_backoff) as f64);
        self.rto_at = Some(now + backed);
    }

    /// Take the pending fast-retransmit request, if any (the stack turns
    /// it into a segment push).
    pub fn take_fast_retransmit(&mut self, now: SimTime) -> Option<TcpAction> {
        if self.pending_fast_retransmit {
            self.pending_fast_retransmit = false;
            Some(self.push_segment(self.snd_una, now, true))
        } else {
            None
        }
    }

    /// Current congestion window in segments (diagnostics) — the window
    /// installed by the congestion algorithm.
    pub fn cwnd_segments(&self) -> f64 {
        self.ctl_window
    }

    /// Which congestion-control algorithm this flow runs.
    pub fn cc_kind(&self) -> cc::CcKind {
        self.alg.kind()
    }

    /// Time the flow was created.
    pub fn started(&self) -> SimTime {
        self.started
    }

    /// Sender progress in segments `(snd_una, snd_nxt)`.
    pub fn sender_progress(&self) -> (u64, u64) {
        (self.snd_una, self.snd_nxt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn flow(window: u64) -> TcpFlow {
        let cfg = TcpConfig {
            bottleneck: None,
            ..TcpConfig::bulk(0, 1, window)
        };
        TcpFlow::new(1, cfg, SimTime::ZERO)
    }

    #[test]
    fn tag_roundtrip() {
        for (f, a, s) in [
            (0u16, false, 0u64),
            (7, true, 123456),
            (32_000, false, 1 << 47),
        ] {
            assert_eq!(decode_tag(encode_tag(f, a, s)), (f, a, s));
        }
    }

    #[test]
    fn initial_pump_respects_cwnd() {
        let mut f = flow(1 << 20);
        let actions = f.pump(SimTime::ZERO, 0);
        assert_eq!(actions.len(), 4, "initial window is 4 segments");
    }

    #[test]
    fn window_clamp_limits_flight() {
        let mut f = flow(3000); // 2 segments
        let actions = f.pump(SimTime::ZERO, 0);
        assert_eq!(actions.len(), 2);
        // ACK one: exactly one more may fly.
        f.on_ack(1, t(1));
        let actions = f.pump(t(1), 0);
        assert_eq!(actions.len(), 1);
    }

    #[test]
    fn slow_start_doubles() {
        let mut f = flow(1 << 24);
        let a0 = f.pump(SimTime::ZERO, 0).len() as u64;
        f.on_ack(a0, t(1));
        let a1 = f.pump(t(1), 0).len() as u64;
        // cwnd grew by the acked count: in flight 0, cwnd = 4 + 4 = 8.
        assert_eq!(a1, 2 * a0);
    }

    #[test]
    fn receiver_acks_cumulatively_and_reorders() {
        let mut f = flow(1 << 20);
        // First in-order segment: ACK is delayed.
        assert_eq!(f.on_data(0, t(0)), None);
        // Out of order: 2 arrives before 1 → immediate (duplicate) ACK of 1.
        let ack = f.on_data(2, t(0));
        assert_eq!(
            ack,
            Some(TcpAction::Push {
                dev: 1,
                bytes: 60,
                tag: encode_tag(1, true, 1)
            })
        );
        // 1 arrives → in-order, first pending → delayed again…
        assert_eq!(f.on_data(1, t(0)), None);
        // …and the third pending in-order segment acks immediately,
        // cumulative to 5.
        assert_eq!(f.on_data(3, t(0)), None);
        let ack = f.on_data(4, t(0));
        assert_eq!(
            ack,
            Some(TcpAction::Push {
                dev: 1,
                bytes: 60,
                tag: encode_tag(1, true, 5)
            })
        );
        assert_eq!(f.stats.bytes_received, 5 * 1500);
    }

    #[test]
    fn delayed_ack_fires_on_timer() {
        let mut f = flow(1 << 20);
        let _ = f.pump(SimTime::ZERO, MAC_QUEUE_CAP); // advance the sample timer
        assert_eq!(f.on_data(0, t(0)), None);
        // The delack deadline is among the pending timers (queue polls may
        // be earlier).
        let due = f.next_timer().expect("delack armed");
        assert!(due <= SimTime::ZERO + DELACK);
        let actions = f.pump(SimTime::ZERO + DELACK, MAC_QUEUE_CAP);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, TcpAction::Push { bytes: 60, .. })),
            "delayed ACK emitted: {actions:?}"
        );
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut f = flow(1 << 20);
        let sent = f.pump(SimTime::ZERO, 0).len() as u64;
        assert!(sent >= 4);
        f.on_ack(1, t(1));
        f.pump(t(1), 0);
        for _ in 0..3 {
            f.on_ack(1, t(2));
        }
        let r = f.take_fast_retransmit(t(2)).expect("fast retransmit");
        match r {
            TcpAction::Push { tag, .. } => {
                let (_, is_ack, seq) = decode_tag(tag);
                assert!(!is_ack);
                assert_eq!(seq, 1, "retransmit snd_una");
            }
        }
        assert_eq!(f.stats.fast_retransmits, 1);
        assert!(f.cwnd_segments() < 1e8, "cwnd halved-ish");
    }

    #[test]
    fn rto_fires_and_backs_off() {
        let mut f = flow(1 << 20);
        f.pump(SimTime::ZERO, 0);
        let first_rto = f.next_timer().expect("rto armed");
        assert_eq!(first_rto, SimTime::ZERO + INITIAL_RTO);
        let actions = f.pump(first_rto, 0);
        assert!(!actions.is_empty(), "head retransmitted");
        assert_eq!(f.stats.timeouts, 1);
        assert!((f.cwnd_segments() - 1.0).abs() < 1e-9, "cwnd collapsed");
        // Next RTO is further away (backoff).
        let second = f.rto_at.expect("rearmed");
        assert!(second - first_rto > INITIAL_RTO);
    }

    #[test]
    fn backed_off_rtos_share_one_loss_epoch() {
        // Regression: during a MAC outage (break_link → 102.4 ms
        // rediscovery), the retransmit timer re-fires with exponential
        // backoff several times before the link returns. Each re-fire is
        // a timeout, but the whole outage is ONE loss epoch — only the
        // first RTO (backoff 0) may open an epoch.
        let mut f = flow(1 << 20);
        f.pump(SimTime::ZERO, 0);
        let first = f.next_timer().expect("rto armed");
        f.pump(first, 0);
        assert_eq!(f.stats.timeouts, 1);
        assert_eq!(f.stats.loss_epochs, 1, "first RTO opens the epoch");
        // The timer keeps firing mid-outage; no ACK ever advances.
        for _ in 0..4 {
            let at = f.rto_at.expect("rearmed with backoff");
            f.pump(at, 0);
        }
        assert_eq!(f.stats.timeouts, 5);
        assert_eq!(
            f.stats.loss_epochs, 1,
            "backed-off re-fires don't double-count"
        );
        // An ACK advance ends the outage (resets the backoff); the next
        // fresh RTO is a new epoch.
        f.on_ack(1, f.rto_at.unwrap());
        let now = f.rto_at.expect("in-flight data re-arms the timer");
        f.pump(now, 0);
        assert_eq!(
            f.stats.loss_epochs, 2,
            "post-recovery RTO opens a new epoch"
        );
    }

    #[test]
    fn fast_retransmit_and_rto_epochs_are_distinct() {
        let mut f = flow(1 << 20);
        f.pump(SimTime::ZERO, 0);
        f.on_ack(1, t(1));
        f.pump(t(1), 0);
        for _ in 0..3 {
            f.on_ack(1, t(2));
        }
        assert_eq!(f.stats.loss_epochs, 1, "fast-recovery entry is an epoch");
        let at = f.rto_at.expect("rto still armed");
        f.pump(at, 0);
        assert_eq!(f.stats.loss_epochs, 2, "subsequent fresh RTO is another");
    }

    #[test]
    fn cc_override_resolves_per_flow_then_ctx_then_reno() {
        use mmwave_sim::ctx::SimCtx;
        let ctx = SimCtx::new();
        let cfg = TcpConfig {
            bottleneck: None,
            ..TcpConfig::bulk(0, 1, 1 << 20)
        };
        let f = TcpFlow::with_ctx(1, cfg.clone(), SimTime::ZERO, &ctx);
        assert_eq!(f.cc_kind(), crate::cc::CcKind::Reno, "default is Reno");
        crate::cc::install_override(&ctx, crate::cc::CcKind::Cubic);
        let f = TcpFlow::with_ctx(2, cfg.clone(), SimTime::ZERO, &ctx);
        assert_eq!(f.cc_kind(), crate::cc::CcKind::Cubic, "ctx override wins");
        let explicit = TcpConfig {
            cc: Some(crate::cc::CcKind::RateProbe),
            ..cfg
        };
        let f = TcpFlow::with_ctx(3, explicit, SimTime::ZERO, &ctx);
        assert_eq!(
            f.cc_kind(),
            crate::cc::CcKind::RateProbe,
            "per-flow config beats the override"
        );
    }

    #[test]
    fn datapath_reports_into_ctx_counters() {
        use mmwave_sim::ctx::SimCtx;
        let ctx = SimCtx::new();
        let cfg = TcpConfig {
            bottleneck: None,
            ..TcpConfig::bulk(0, 1, 1 << 20)
        };
        let mut f = TcpFlow::with_ctx(1, cfg, SimTime::ZERO, &ctx);
        f.pump(SimTime::ZERO, 0);
        f.on_ack(2, t(1));
        let at = f.rto_at.expect("armed");
        f.pump(at, 0);
        let c = ctx.counters();
        assert_eq!(c.cc_reports_folded, 2, "one ack fold + one timeout fold");
        assert!(c.cc_patterns_installed >= 2, "both folds moved the window");
        assert_eq!(c.cc_loss_epochs, 1);
    }

    #[test]
    fn rate_probe_flow_paces_from_installed_rate() {
        let cfg = TcpConfig {
            bottleneck: None,
            cc: Some(crate::cc::CcKind::RateProbe),
            total_bytes: None,
            ..TcpConfig::bulk(0, 1, 1 << 24)
        };
        let mut f = TcpFlow::new(7, cfg, SimTime::ZERO);
        let burst = f.pump(SimTime::ZERO, 0).len();
        assert_eq!(burst, 4, "initial window before any rate model");
        // Deliver an RTT sample: 4 segments over 1 ms → the algorithm
        // installs a pacing rate, so the very next window is released
        // one-segment-per-pace-tick instead of as a burst.
        f.on_ack(4, t(1));
        assert!(
            f.ctl_rate_bps.is_some(),
            "rate installed after first sample"
        );
        let next = f.pump(t(1), 0).len();
        assert_eq!(next, 1, "paced release, not a burst");
        assert!(
            f.next_timer().expect("pace timer armed") > t(1),
            "next release scheduled in the future"
        );
    }

    #[test]
    fn app_and_cc_pacers_compose_without_stranding_credits() {
        // Regression: an application-paced flow under a rate-installing
        // algorithm must not consume the app-pace credit while the cc
        // pacer gates (or vice versa) — a stranded `*_next` in the past
        // makes next_timer() report an instant pump() can't act on, and
        // the stack livelocks.
        let cfg = TcpConfig {
            bottleneck: None,
            cc: Some(crate::cc::CcKind::RateProbe),
            ..TcpConfig::paced(0, 1, 12_000_000)
        };
        let mut f = TcpFlow::new(3, cfg, SimTime::ZERO);
        f.pump(SimTime::ZERO, 0);
        // Install a cc rate far below the app pace: the cc pacer is now
        // the binding constraint.
        f.on_ack(1, t(1));
        assert!(f.ctl_rate_bps.is_some());
        let mut now = t(1);
        for _ in 0..200 {
            let due = match f.next_timer() {
                Some(d) => d.max(now),
                None => break,
            };
            let before = (f.pace_next, f.cc_pace_next);
            f.pump(due, 0);
            now = due;
            // Whenever a timer is reported due, pumping at it must make
            // progress: either a pacer advanced or the timer moved.
            assert!(
                (f.pace_next, f.cc_pace_next) != before || f.next_timer() != Some(due),
                "pump at {due:?} changed nothing — livelock"
            );
        }
    }

    #[test]
    fn rtt_estimation_updates_rto() {
        let mut f = flow(1 << 20);
        f.pump(SimTime::ZERO, 0);
        f.on_ack(1, SimTime::from_micros(800));
        assert!((f.stats.srtt_s - 800e-6).abs() < 1e-9);
        assert_eq!(f.rto, MIN_RTO, "tight RTT floors the RTO");
    }

    #[test]
    fn finished_when_total_acked() {
        let mut f = TcpFlow::new(
            1,
            TcpConfig {
                total_bytes: Some(4500),
                bottleneck: None,
                ..TcpConfig::bulk(0, 1, 1 << 20)
            },
            SimTime::ZERO,
        );
        let actions = f.pump(SimTime::ZERO, 0);
        assert_eq!(actions.len(), 3, "exactly ceil(4500/1500) segments");
        assert!(!f.finished());
        f.on_ack(3, t(1));
        assert!(f.finished());
        assert!(f.pump(t(2), 0).is_empty());
    }

    #[test]
    fn pacing_spaces_segments() {
        let cfg = TcpConfig {
            bottleneck: None,
            ..TcpConfig::paced(0, 1, 12_000_000)
        };
        // 12 Mb/s → one 1500 B segment per ms.
        let mut f = TcpFlow::new(2, cfg, SimTime::ZERO);
        let a0 = f.pump(SimTime::ZERO, 0);
        assert_eq!(a0.len(), 1, "pacing admits one segment");
        assert!(f.pump(SimTime::from_micros(500), 0).is_empty());
        let a1 = f.pump(t(1), 0);
        assert_eq!(a1.len(), 1);
    }

    #[test]
    fn mac_backpressure_pauses() {
        let mut f = flow(1 << 24);
        f.apply(ControlPattern {
            cwnd: Some(1000.0),
            rate_bps: None,
        });
        let actions = f.pump(SimTime::ZERO, MAC_QUEUE_CAP);
        assert!(actions.is_empty());
        assert!(f.next_timer().is_some(), "poll timer armed");
    }

    #[test]
    fn goodput_accounting() {
        // In a real run the stack pumps the flow at every sample boundary
        // (next_timer includes it); emulate that here.
        let mut f = flow(1 << 20);
        for seq in 0..100 {
            let _ = f.pump(t(seq), MAC_QUEUE_CAP);
            let _ = f.on_data(seq, t(seq));
        }
        let _ = f.pump(t(200), MAC_QUEUE_CAP); // flush trailing samples
        let g = f.stats.mean_goodput_mbps(SimTime::ZERO, t(100));
        // 100 × 1500 B over 100 ms = 12 Mb/s.
        assert!((g - 12.0).abs() < 1.5, "goodput {g}");
    }
}
