//! The Gigabit-Ethernet bottleneck.
//!
//! §4.1: "we do not observe results beyond roughly 900 mbps because the
//! Gigabit Ethernet interface at the docking station limits the achievable
//! throughput". The model is a token-paced serializer: each segment
//! occupies the wire for `bits/rate`, so the stream entering the air
//! interface can never exceed the wire rate.

use mmwave_sim::time::{SimDuration, SimTime};

/// Effective GigE payload rate: 1 Gb/s minus inter-frame gap, preamble,
/// Ethernet and IP/TCP header overhead on 1500-byte frames. The paper's
/// throughput plateau sits at 930–934 Mb/s; this end-to-end constant
/// reproduces it.
pub const GIGE_EFFECTIVE_BPS: u64 = 936_000_000;

/// A serializing rate limiter: admits a packet only when the previous one
/// has left the wire.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    rate_bps: u64,
    next_free: SimTime,
}

impl RateLimiter {
    /// A limiter at `rate_bps`.
    pub fn new(rate_bps: u64) -> RateLimiter {
        assert!(rate_bps > 0);
        RateLimiter {
            rate_bps,
            next_free: SimTime::ZERO,
        }
    }

    /// The standard GigE bottleneck.
    pub fn gige() -> RateLimiter {
        RateLimiter::new(GIGE_EFFECTIVE_BPS)
    }

    /// The configured rate.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Earliest time a new packet may start.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Try to admit `bytes` at `now`. On success the wire is busy for the
    /// serialization time and the call returns `true`; otherwise the caller
    /// should retry at [`RateLimiter::next_free`].
    pub fn admit(&mut self, now: SimTime, bytes: u32) -> bool {
        if now < self.next_free {
            return false;
        }
        self.next_free = now + SimDuration::for_bits(bytes as u64 * 8, self.rate_bps);
        true
    }

    /// Serialization time of one `bytes`-sized packet on this wire.
    pub fn slot(&self, bytes: u32) -> SimDuration {
        SimDuration::for_bits(bytes as u64 * 8, self.rate_bps)
    }

    /// Overwrite the wire-free instant. The batched release path in
    /// `tcp.rs` uses this to reserve a whole run of back-to-back segments
    /// up front (`next_free ← t₁ + K·slot`) and to roll the reservation
    /// back to the unreleased suffix when the run is truncated — in both
    /// cases restoring exactly the state the per-segment `admit` sequence
    /// would have produced.
    pub(crate) fn set_next_free(&mut self, at: SimTime) {
        self.next_free = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_spacing() {
        let mut l = RateLimiter::new(1_000_000_000);
        let t0 = SimTime::from_micros(100);
        assert!(l.admit(t0, 1500));
        // 12 µs on the wire at 1 Gb/s.
        assert_eq!(l.next_free(), t0 + SimDuration::from_micros(12));
        assert!(!l.admit(t0 + SimDuration::from_micros(5), 1500));
        assert!(l.admit(t0 + SimDuration::from_micros(12), 1500));
    }

    #[test]
    fn sustained_rate_is_the_configured_rate() {
        let mut l = RateLimiter::gige();
        let mut t = SimTime::ZERO;
        let mut sent = 0u64;
        let horizon = SimTime::from_millis(100);
        while t < horizon {
            if l.admit(t, 1500) {
                sent += 1500 * 8;
            }
            t = l.next_free();
        }
        let rate = sent as f64 / 0.1;
        assert!(
            (rate / GIGE_EFFECTIVE_BPS as f64 - 1.0).abs() < 0.01,
            "rate {rate}"
        );
    }

    #[test]
    fn idle_wire_admits_immediately() {
        let mut l = RateLimiter::gige();
        assert!(l.admit(SimTime::from_secs(5), 60));
    }
}
