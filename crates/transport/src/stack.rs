//! The MAC/transport co-simulation driver.
//!
//! [`Stack`] owns a [`Net`] plus any number of TCP flows and advances both
//! in timestamp order: whichever has the earlier next event (a MAC frame
//! boundary or a TCP timer) runs first, and every MAC delivery is handed
//! to its flow before the clock moves again. This is the place the
//! experiments drive; they never touch TCP or MAC internals directly.

use crate::tcp::{decode_tag, FlowStats, TcpAction, TcpConfig, TcpFlow};
use mmwave_mac::{Delivery, Net};
use mmwave_sim::time::SimTime;

/// Identifier of a flow within a [`Stack`].
pub type FlowId = u16;

/// A network plus its transport flows.
pub struct Stack {
    /// The underlying MAC/PHY simulation.
    pub net: Net,
    flows: Vec<TcpFlow>,
    /// Scratch buffers reused across the run loop (the loop services
    /// tens of thousands of pumps and deliveries per simulated second;
    /// steady state must not allocate).
    actions: Vec<TcpAction>,
    deliveries: Vec<Delivery>,
    /// Per-flow `next_timer()` memo plus dirty flags. Flows mutate only
    /// through this type, so a clean flow's next timer is still valid on
    /// the following loop iteration — the evaluation (a dozen field
    /// comparisons per flow per event) runs only after the flow was
    /// actually touched.
    timers: Vec<Option<SimTime>>,
    timer_dirty: Vec<bool>,
}

impl Stack {
    /// Wrap a network.
    pub fn new(net: Net) -> Stack {
        Stack {
            net,
            flows: Vec::new(),
            actions: Vec::new(),
            deliveries: Vec::new(),
            timers: Vec::new(),
            timer_dirty: Vec::new(),
        }
    }

    /// Add a TCP flow; it starts transmitting as the clock advances. The
    /// flow's congestion plane shares the network's [`SimCtx`], so a
    /// campaign-level algorithm override applies here.
    pub fn add_flow(&mut self, cfg: TcpConfig) -> FlowId {
        let id = self.flows.len() as u16;
        let now = self.net.now();
        let flow = TcpFlow::with_ctx(id, cfg, now, self.net.ctx());
        self.flows.push(flow);
        self.timers.push(None);
        self.timer_dirty.push(true);
        id
    }

    /// Statistics of a flow.
    pub fn flow_stats(&self, id: FlowId) -> &FlowStats {
        &self.flows[id as usize].stats
    }

    /// The flow itself (diagnostics).
    pub fn flow(&self, id: FlowId) -> &TcpFlow {
        &self.flows[id as usize]
    }

    /// True if the flow transferred (and had acknowledged) all its bytes.
    pub fn flow_finished(&self, id: FlowId) -> bool {
        self.flows[id as usize].finished()
    }

    fn apply_one(net: &mut Net, action: TcpAction) {
        match action {
            TcpAction::Push { dev, bytes, tag } => {
                net.push_mpdu(dev, bytes, tag);
            }
        }
    }

    fn pump_flow(net: &mut Net, flow: &mut TcpFlow, now: SimTime, scratch: &mut Vec<TcpAction>) {
        let qlen = net.queue_len(flow.cfg.src_dev);
        scratch.clear();
        flow.pump_into(now, qlen, scratch);
        for a in scratch.drain(..) {
            Self::apply_one(net, a);
        }
    }

    fn handle_deliveries(&mut self) {
        let now = self.net.now();
        // Buffer dance: take the scratch out of `self` so the loop can
        // borrow `net` and `flows` freely, then hand it back (with its
        // allocation) at the end.
        let mut pending = std::mem::take(&mut self.deliveries);
        self.net.drain_deliveries_into(&mut pending);
        for d in pending.drain(..) {
            match d {
                Delivery::Mpdu { dev, tag, .. } => {
                    let (flow_id, is_ack, seq) = decode_tag(tag);
                    let Some(flow) = self.flows.get_mut(flow_id as usize) else {
                        continue; // not transport traffic (e.g. raw pushes)
                    };
                    self.timer_dirty[flow_id as usize] = true;
                    if is_ack {
                        if dev != flow.cfg.src_dev {
                            continue;
                        }
                        // Refresh the congestion plane's MAC-level view
                        // before the ACK is folded into a report.
                        flow.note_mac(self.net.mac_measurement(flow.cfg.src_dev));
                        flow.on_ack(seq, now);
                        if let Some(r) = flow.take_fast_retransmit(now) {
                            Self::apply_one(&mut self.net, r);
                        }
                        Self::pump_flow(&mut self.net, flow, now, &mut self.actions);
                    } else {
                        if dev != flow.cfg.dst_dev {
                            continue;
                        }
                        if let Some(ack) = flow.on_data(seq, now) {
                            Self::apply_one(&mut self.net, ack);
                        }
                    }
                }
                Delivery::Dropped { .. } => {
                    // MAC gave up; TCP's own RTO recovers the loss.
                }
            }
        }
        self.deliveries = pending;
    }

    /// Advance the co-simulation to `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        // Initial pump so fresh flows start sending.
        let now = self.net.now();
        for (flow, dirty) in self.flows.iter_mut().zip(&mut self.timer_dirty) {
            Self::pump_flow(&mut self.net, flow, now, &mut self.actions);
            *dirty = true;
        }
        // Livelock guard: a healthy co-simulation never revisits the same
        // instant more than a handful of times (bounded fan-out per event).
        let mut last_next: Option<SimTime> = None;
        let mut same_count: u64 = 0;
        loop {
            let t_net = self.net.peek_time();
            for i in 0..self.flows.len() {
                if self.timer_dirty[i] {
                    self.timers[i] = self.flows[i].next_timer();
                    self.timer_dirty[i] = false;
                }
            }
            let t_tcp = self.timers.iter().flatten().copied().min();
            let next = match (t_net, t_tcp) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if next > horizon {
                break;
            }
            if last_next == Some(next) {
                same_count += 1;
            } else {
                same_count = 0;
                last_next = Some(next);
            }
            assert!(
                same_count <= 100_000,
                "transport/MAC livelock at {next:?} (t_net {t_net:?}, t_tcp {t_tcp:?})"
            );
            if t_tcp == Some(next) && t_net.is_none_or(|a| next <= a) {
                // TCP timer first (ties: TCP before MAC keeps pacing exact).
                self.net.run_until(next);
                for i in 0..self.flows.len() {
                    if self.timers[i] == Some(next) {
                        self.timer_dirty[i] = true;
                        if self.flows[i].run_only_due(next) {
                            // Slim path: the only due work is the next
                            // segment of a batched release run.
                            let qlen = self.net.queue_len(self.flows[i].cfg.src_dev);
                            if let Some(a) = self.flows[i].release_run_segment(next, qlen) {
                                Self::apply_one(&mut self.net, a);
                            }
                        } else {
                            let flow = &mut self.flows[i];
                            Self::pump_flow(&mut self.net, flow, next, &mut self.actions);
                        }
                    }
                }
            } else {
                self.net.step();
                self.handle_deliveries();
            }
        }
        self.net.run_until(horizon);
        // Final stats flush.
        let now = self.net.now();
        for flow in &mut self.flows {
            Self::pump_flow(&mut self.net, flow, now, &mut self.actions);
        }
    }
}
