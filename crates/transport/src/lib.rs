//! # mmwave-transport — Iperf over the 60 GHz link
//!
//! The paper's throughput numbers are all produced by Iperf over TCP, with
//! the TCP *window size* as the experiment knob (§4.1: "We control the TCP
//! throughput by adjusting its window size in Iperf") and a Gigabit
//! Ethernet interface capping everything near 934 Mb/s. This crate
//! provides exactly that measurement stack:
//!
//! * [`tcp`] — the TCP datapath: loss detection (triple duplicate ACKs,
//!   RTO with backoff, Karn's RTT sampling), a window clamp (the Iperf
//!   `-w` knob) and optional application pacing (for the kb/s operating
//!   points of Figs. 9–11, which the real setup reached through
//!   pathological small-window behaviour — see DESIGN.md).
//! * [`cc`] — the pluggable congestion-control plane behind the datapath:
//!   algorithms ([`cc::reno`], [`cc::cubic`], [`cc::rate_probe`]) fold
//!   [`MeasurementReport`]s and install [`ControlPattern`]s (window
//!   and/or pacing rate). Reno is the default and reproduces the
//!   pre-plane inline implementation byte-for-byte.
//! * [`ethernet`] — the 1 Gb/s store-and-forward bottleneck between the
//!   wired Iperf endpoint and the dock's air interface.
//! * [`stack`] — the co-simulation driver that interleaves TCP timers with
//!   the MAC event loop and collects per-interval throughput series
//!   (the Iperf report).

//! ## Example
//!
//! ```
//! use mmwave_channel::Environment;
//! use mmwave_geom::{Angle, Point, Room};
//! use mmwave_mac::{Device, Net, NetConfig};
//! use mmwave_sim::time::SimTime;
//! use mmwave_transport::{Stack, TcpConfig};
//!
//! let mut net = Net::new(Environment::new(Room::open_space()), NetConfig::default());
//! let dock = net.add_device(Device::wigig_dock(
//!     net.ctx(), "dock", Point::new(0.0, 0.0), Angle::ZERO, 13));
//! let laptop = net.add_device(Device::wigig_laptop(
//!     net.ctx(), "laptop", Point::new(2.0, 0.0), Angle::from_degrees(180.0), 11));
//! net.associate_instantly(dock, laptop);
//!
//! let mut stack = Stack::new(net);
//! let flow = stack.add_flow(TcpConfig::bulk(dock, laptop, 256 * 1024));
//! stack.run_until(SimTime::from_millis(200));
//! assert!(stack.flow_stats(flow).bytes_acked > 1_000_000);
//! ```

pub mod cc;
pub mod ethernet;
pub mod stack;
pub mod tcp;

pub use cc::{CcKind, CongestionAlg, ControlPattern, MeasurementReport};
pub use ethernet::RateLimiter;
pub use stack::{FlowId, Stack};
pub use tcp::{FlowStats, TcpConfig, TcpFlow};
