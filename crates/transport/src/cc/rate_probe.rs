//! A loss-blind, rate-based controller (BBR-flavoured).
//!
//! Instead of reacting to loss, `RateProbe` models the path: the
//! bottleneck bandwidth is the windowed maximum of recent delivery-rate
//! samples (`newly_acked / srtt`), the propagation delay is the minimum
//! RTT seen. It installs a pacing rate — the bandwidth estimate scaled by
//! a cycling gain that periodically probes for more (1.25) and then
//! drains the queue it built (0.75) — plus a 2·BDP congestion window as a
//! safety cap. Loss and timeout reports are deliberately ignored: over a
//! blockage transient the estimator's bandwidth filter ages out on its
//! own, and the window never collapses to 1 segment the way Reno/CUBIC
//! do. That asymmetry is the headline of the `cc_compare` experiment.

use super::{CcKind, CongestionAlg, ControlPattern, MeasurementReport};

/// Delivery-rate samples kept in the windowed-max filter. At one sample
/// per ACK this spans roughly the last half-dozen RTTs of bulk transfer.
const BW_WINDOW: usize = 10;
/// Pacing-gain cycle: one probe, one drain, six cruise phases (the BBR
/// ProbeBW shape). Advances once per `rtt_min`.
const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Window gain over the estimated BDP.
const CWND_GAIN: f64 = 2.0;
/// Floor for the installed window, segments (matches the initial window).
const MIN_CWND: f64 = 4.0;

/// Rate-based controller state.
#[derive(Debug)]
pub struct RateProbe {
    /// Recent delivery-rate samples, segments/s (ring buffer).
    bw_samples: [f64; BW_WINDOW],
    next_slot: usize,
    filled: usize,
    /// Minimum RTT observed, seconds.
    rtt_min: Option<f64>,
    /// Report time the gain phase last advanced.
    phase_start: f64,
    phase: usize,
    /// Last installed pattern (re-issued while starving for samples).
    last: ControlPattern,
}

impl RateProbe {
    /// Initial state: no path model yet; the datapath keeps its initial
    /// 4-segment window until the first RTT sample arrives.
    pub fn new() -> RateProbe {
        RateProbe {
            bw_samples: [0.0; BW_WINDOW],
            next_slot: 0,
            filled: 0,
            rtt_min: None,
            phase_start: 0.0,
            phase: 0,
            last: ControlPattern {
                cwnd: Some(MIN_CWND),
                rate_bps: None,
            },
        }
    }

    fn btl_bw(&self) -> f64 {
        self.bw_samples[..self.filled]
            .iter()
            .fold(0.0_f64, |m, &s| m.max(s))
    }
}

impl Default for RateProbe {
    fn default() -> RateProbe {
        RateProbe::new()
    }
}

impl CongestionAlg for RateProbe {
    fn kind(&self) -> CcKind {
        CcKind::RateProbe
    }

    fn on_report(&mut self, r: &MeasurementReport) -> ControlPattern {
        // Loss-blind: loss/timeout events neither shrink the window nor
        // slow the pacer. The model only moves on delivery evidence.
        if r.loss || r.timeout {
            return self.last;
        }
        if let Some(rtt) = r.rtt_min_s.or(r.srtt_s) {
            self.rtt_min = Some(self.rtt_min.map_or(rtt, |m: f64| m.min(rtt)));
        }
        if r.newly_acked > 0 {
            if let Some(srtt) = r.srtt_s {
                if srtt > 0.0 {
                    self.bw_samples[self.next_slot] = r.newly_acked as f64 / srtt;
                    self.next_slot = (self.next_slot + 1) % BW_WINDOW;
                    self.filled = (self.filled + 1).min(BW_WINDOW);
                }
            }
        }
        let (Some(rtt_min), bw) = (self.rtt_min, self.btl_bw()) else {
            return self.last;
        };
        if bw <= 0.0 || rtt_min <= 0.0 {
            return self.last;
        }
        // Advance the gain cycle once per rtt_min.
        if r.now_s - self.phase_start >= rtt_min {
            self.phase = (self.phase + 1) % GAIN_CYCLE.len();
            self.phase_start = r.now_s;
        }
        let rate_bps = (GAIN_CYCLE[self.phase] * bw * r.mss as f64 * 8.0).max(1.0) as u64;
        let cwnd = (CWND_GAIN * bw * rtt_min).max(MIN_CWND);
        self.last = ControlPattern {
            cwnd: Some(cwnd),
            rate_bps: Some(rate_bps.max(1)),
        };
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery(newly: u64, srtt: f64, now_s: f64) -> MeasurementReport {
        MeasurementReport {
            newly_acked: newly,
            srtt_s: Some(srtt),
            rtt_min_s: Some(srtt),
            mss: 1500,
            now_s,
            ..Default::default()
        }
    }

    #[test]
    fn no_pattern_change_before_first_sample() {
        let mut rp = RateProbe::new();
        let p = rp.on_report(&MeasurementReport::default());
        assert_eq!(p.cwnd, Some(MIN_CWND));
        assert_eq!(p.rate_bps, None);
    }

    #[test]
    fn models_bandwidth_and_installs_rate_and_bdp_window() {
        let mut rp = RateProbe::new();
        // 10 segments per 1 ms RTT = 10_000 segments/s = 120 Mb/s at
        // 1500 B MSS.
        let p = rp.on_report(&delivery(10, 1e-3, 0.0));
        let rate = p.rate_bps.expect("rate installed");
        assert!(
            (rate as f64 - 1.25 * 10_000.0 * 1500.0 * 8.0).abs() < 1.0,
            "probe-gain pacing, got {rate}"
        );
        // cwnd = 2 * bw * rtt_min = 2 * 10_000 * 1e-3 = 20 segments.
        assert!((p.cwnd.unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn loss_and_timeout_reports_change_nothing() {
        let mut rp = RateProbe::new();
        let before = rp.on_report(&delivery(10, 1e-3, 0.0));
        let on_loss = rp.on_report(&MeasurementReport {
            loss: true,
            inflight: 20.0,
            ..Default::default()
        });
        let on_rto = rp.on_report(&MeasurementReport {
            timeout: true,
            inflight: 20.0,
            ..Default::default()
        });
        assert_eq!(on_loss, before, "loss-blind");
        assert_eq!(on_rto, before, "timeout-blind");
    }

    #[test]
    fn gain_cycle_probes_then_drains() {
        let mut rp = RateProbe::new();
        let r0 = rp.on_report(&delivery(10, 1e-3, 0.0)).rate_bps.unwrap();
        // Same bandwidth one rtt_min later: the phase advances to drain.
        let r1 = rp.on_report(&delivery(10, 1e-3, 2e-3)).rate_bps.unwrap();
        assert!(r1 < r0, "drain phase after probe: {r1} < {r0}");
        let r2 = rp.on_report(&delivery(10, 1e-3, 4e-3)).rate_bps.unwrap();
        assert!(r2 > r1 && r2 < r0, "cruise between drain and probe");
    }

    #[test]
    fn bandwidth_filter_is_windowed_max() {
        let mut rp = RateProbe::new();
        rp.on_report(&delivery(20, 1e-3, 0.0)); // 20k seg/s spike
        for i in 0..BW_WINDOW {
            rp.on_report(&delivery(5, 1e-3, 0.01 + i as f64 * 1e-4));
        }
        // The spike has aged out of the window; the estimate follows the
        // sustained 5k seg/s rate.
        assert!((rp.btl_bw() - 5_000.0).abs() < 1e-9);
    }
}
