//! CUBIC-style congestion control.
//!
//! The window follows `W(t) = C·(t − K)³ + W_max` around the pre-loss
//! plateau `W_max`: concave while approaching it (fast early recovery of
//! most of the window, cautious near the old operating point), convex
//! beyond it (probing accelerates the longer the path stays clean). This
//! reproduces the qualitative CUBIC shape; it is not an RFC 8312
//! conformance implementation — the simulator cares about the recovery
//! *dynamics* relative to Reno's linear climb, not kernel parity.

use super::{CcKind, CongestionAlg, ControlPattern, MeasurementReport};

/// CUBIC scaling constant (windows per s³), the RFC 8312 default.
const C: f64 = 0.4;
/// Multiplicative-decrease factor on loss.
const BETA: f64 = 0.7;

/// CUBIC state.
#[derive(Debug)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window just before the last reduction (the plateau).
    w_max: f64,
    /// When the current congestion-avoidance epoch started (report time,
    /// seconds since flow start); `None` until the first CA ack.
    epoch_start: Option<f64>,
}

impl Cubic {
    /// Initial state mirrors Reno's: IW = 4, unbounded ssthresh.
    pub fn new() -> Cubic {
        Cubic {
            cwnd: 4.0,
            ssthresh: 1e9,
            w_max: 0.0,
            epoch_start: None,
        }
    }

    fn pattern(&self) -> ControlPattern {
        ControlPattern {
            cwnd: Some(self.cwnd),
            rate_bps: None,
        }
    }
}

impl Default for Cubic {
    fn default() -> Cubic {
        Cubic::new()
    }
}

impl CongestionAlg for Cubic {
    fn kind(&self) -> CcKind {
        CcKind::Cubic
    }

    fn on_report(&mut self, r: &MeasurementReport) -> ControlPattern {
        if r.timeout {
            self.w_max = self.cwnd.max(1.0);
            self.ssthresh = (self.cwnd * BETA).max(2.0);
            self.cwnd = 1.0;
            self.epoch_start = None;
            return self.pattern();
        }
        if r.loss {
            self.w_max = self.cwnd.max(1.0);
            self.cwnd = (self.cwnd * BETA).max(2.0);
            self.ssthresh = self.cwnd;
            self.epoch_start = None;
            return self.pattern();
        }
        if r.recovery_exited {
            self.cwnd = self.ssthresh.max(2.0);
        }
        if r.in_recovery || r.newly_acked == 0 {
            return self.pattern();
        }
        if self.cwnd < self.ssthresh {
            // Slow start, identical to Reno.
            self.cwnd += r.newly_acked as f64;
            return self.pattern();
        }
        // Congestion avoidance: chase the cubic target.
        let t0 = *self.epoch_start.get_or_insert(r.now_s);
        let t = (r.now_s - t0).max(0.0);
        let w_max = self.w_max.max(self.cwnd);
        let k = (w_max * (1.0 - BETA) / C).cbrt();
        let target = C * (t - k).powi(3) + w_max;
        // Per-segment growth toward the target, floored at Reno's
        // 1/cwnd-per-ack so the window never stalls on the plateau.
        let gap = (target - self.cwnd).max(0.0);
        let step = (gap / self.cwnd).max(1.0 / self.cwnd);
        self.cwnd += step * r.newly_acked as f64;
        self.pattern()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_at(newly: u64, now_s: f64) -> MeasurementReport {
        MeasurementReport {
            newly_acked: newly,
            now_s,
            ..Default::default()
        }
    }

    #[test]
    fn slow_start_matches_reno() {
        let mut c = Cubic::new();
        assert_eq!(c.on_report(&ack_at(4, 0.0)).cwnd, Some(8.0));
        assert_eq!(c.on_report(&ack_at(8, 0.001)).cwnd, Some(16.0));
    }

    #[test]
    fn loss_applies_beta_decrease() {
        let mut c = Cubic::new();
        c.on_report(&ack_at(36, 0.0)); // cwnd 40
        let p = c.on_report(&MeasurementReport {
            loss: true,
            inflight: 40.0,
            in_recovery: true,
            ..Default::default()
        });
        assert_eq!(p.cwnd, Some(40.0 * BETA));
        assert_eq!(c.w_max, 40.0);
    }

    #[test]
    fn growth_is_concave_then_convex_around_w_max() {
        let mut c = Cubic::new();
        c.on_report(&ack_at(96, 0.0)); // cwnd 100
        c.on_report(&MeasurementReport {
            loss: true,
            inflight: 100.0,
            in_recovery: true,
            ..Default::default()
        }); // cwnd 70, w_max 100
            // Drive CA acks at a steady clip for ~8 s of flow time — past the
            // K = cbrt(w_max·(1−β)/C) ≈ 4.2 s plateau-regrowth horizon — and
            // record per-step growth.
        let mut prev = 70.0;
        let mut steps = Vec::new();
        for i in 0..400 {
            let now = 0.01 + i as f64 * 0.02;
            let w = c.on_report(&ack_at(10, now)).cwnd.unwrap();
            steps.push(w - prev);
            prev = w;
        }
        let crossed = steps
            .iter()
            .scan(70.0, |w, d| {
                *w += d;
                Some(*w)
            })
            .position(|w| w > 100.0)
            .expect("window must regrow past w_max");
        // Concave before the plateau: early steps outpace the steps just
        // below w_max. Convex after: growth re-accelerates.
        assert!(
            steps[0] > steps[crossed.saturating_sub(1)],
            "concave approach: first step {} vs pre-plateau step {}",
            steps[0],
            steps[crossed - 1]
        );
        assert!(
            *steps.last().unwrap() > steps[crossed],
            "convex probing past the plateau"
        );
    }

    #[test]
    fn timeout_collapses_and_resets_epoch() {
        let mut c = Cubic::new();
        c.on_report(&ack_at(60, 0.0));
        c.on_report(&MeasurementReport {
            timeout: true,
            inflight: 64.0,
            ..Default::default()
        });
        assert_eq!(c.cwnd, 1.0);
        assert_eq!(c.epoch_start, None);
        assert!(c.ssthresh < 64.0);
    }
}
