//! Reno, extracted verbatim from the datapath.
//!
//! Every arithmetic step below is the exact float operation, in the exact
//! order, that `tcp.rs` used to perform inline. Default campaign runs are
//! validated byte-identical against pre-refactor golden artifacts, so any
//! change here — even a mathematically equivalent reordering — is a
//! behaviour change and will trip the golden-artifact test.

use super::{CcKind, CongestionAlg, ControlPattern, MeasurementReport};

/// Classic Reno state: one window, one threshold.
#[derive(Debug)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
}

impl Reno {
    /// Initial state: IW = 4 segments, ssthresh effectively infinite.
    pub fn new() -> Reno {
        Reno {
            cwnd: 4.0,
            ssthresh: 1e9,
        }
    }
}

impl Default for Reno {
    fn default() -> Reno {
        Reno::new()
    }
}

impl CongestionAlg for Reno {
    fn kind(&self) -> CcKind {
        CcKind::Reno
    }

    fn on_report(&mut self, r: &MeasurementReport) -> ControlPattern {
        if r.timeout {
            self.ssthresh = (r.inflight / 2.0).max(2.0);
            self.cwnd = 1.0;
        } else if r.loss {
            // Fast retransmit: halve, inflate by the three dup-ACKs.
            self.ssthresh = (r.inflight / 2.0).max(2.0);
            self.cwnd = self.ssthresh + 3.0;
        } else {
            if r.recovery_exited {
                self.cwnd = self.ssthresh;
            }
            if !r.in_recovery {
                if self.cwnd < self.ssthresh {
                    self.cwnd += r.newly_acked as f64; // slow start
                } else {
                    self.cwnd += r.newly_acked as f64 / self.cwnd; // congestion avoidance
                }
            }
        }
        ControlPattern {
            cwnd: Some(self.cwnd),
            rate_bps: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(newly: u64) -> MeasurementReport {
        MeasurementReport {
            newly_acked: newly,
            ..Default::default()
        }
    }

    #[test]
    fn slow_start_grows_by_acked_segments() {
        let mut reno = Reno::new();
        let p = reno.on_report(&ack(4));
        assert_eq!(p.cwnd, Some(8.0));
        assert_eq!(p.rate_bps, None);
        assert_eq!(reno.on_report(&ack(8)).cwnd, Some(16.0));
    }

    #[test]
    fn fast_retransmit_halves_flight_and_inflates() {
        let mut reno = Reno::new();
        reno.on_report(&ack(28)); // cwnd 32
        let p = reno.on_report(&MeasurementReport {
            loss: true,
            inflight: 32.0,
            in_recovery: true,
            ..Default::default()
        });
        assert_eq!(p.cwnd, Some(19.0), "ssthresh 16 + 3 dup-ACK inflation");
        // Recovery exit deflates to ssthresh; growth is now linear-ish.
        let p = reno.on_report(&MeasurementReport {
            newly_acked: 32,
            recovery_exited: true,
            ..Default::default()
        });
        assert_eq!(p.cwnd, Some(16.0 + 32.0 / 16.0));
    }

    #[test]
    fn timeout_collapses_to_one_segment() {
        let mut reno = Reno::new();
        reno.on_report(&ack(12)); // cwnd 16
        let p = reno.on_report(&MeasurementReport {
            timeout: true,
            inflight: 16.0,
            ..Default::default()
        });
        assert_eq!(p.cwnd, Some(1.0));
        // ssthresh floor of 2 segments.
        let p = reno.on_report(&MeasurementReport {
            timeout: true,
            inflight: 1.0,
            ..Default::default()
        });
        assert_eq!(p.cwnd, Some(1.0));
        assert_eq!(reno.ssthresh, 2.0);
    }

    /// The trait-folded sequence reproduces the historical inline math on
    /// a representative event trace, step for step.
    #[test]
    fn matches_inline_reference_sequence() {
        // Reference: the pre-refactor inline implementation.
        let mut cwnd = 4.0_f64;
        let mut ssthresh = 1e9_f64;
        let mut reno = Reno::new();
        let events: &[MeasurementReport] = &[
            ack(4),
            ack(8),
            ack(16),
            MeasurementReport {
                loss: true,
                inflight: 29.0,
                in_recovery: true,
                ..Default::default()
            },
            MeasurementReport {
                newly_acked: 2,
                in_recovery: true,
                ..Default::default()
            },
            MeasurementReport {
                newly_acked: 27,
                recovery_exited: true,
                ..Default::default()
            },
            ack(14),
            MeasurementReport {
                timeout: true,
                inflight: 15.0,
                ..Default::default()
            },
            ack(1),
            ack(2),
        ];
        for r in events {
            if r.timeout {
                ssthresh = (r.inflight / 2.0).max(2.0);
                cwnd = 1.0;
            } else if r.loss {
                ssthresh = (r.inflight / 2.0).max(2.0);
                cwnd = ssthresh + 3.0;
            } else {
                if r.recovery_exited {
                    cwnd = ssthresh;
                }
                if !r.in_recovery {
                    if cwnd < ssthresh {
                        cwnd += r.newly_acked as f64;
                    } else {
                        cwnd += r.newly_acked as f64 / cwnd;
                    }
                }
            }
            let p = reno.on_report(r);
            assert_eq!(p.cwnd, Some(cwnd), "bit-exact at event {r:?}");
        }
    }
}
