//! # Pluggable congestion control — the off-datapath plane
//!
//! The datapath ([`crate::tcp`]) owns loss *detection* (dup-ACK counting,
//! RTO timers and backoff, Karn's timed sample) and window *enforcement*;
//! everything in between — how the window reacts to what was measured —
//! lives behind the [`CongestionAlg`] trait here. The split mirrors the
//! CCP architecture: the datapath folds each ACK/loss/timeout into a
//! [`MeasurementReport`], hands it to the algorithm, and installs whatever
//! [`ControlPattern`] comes back (a congestion window, a pacing rate, or
//! both). Loss-based and rate-based algorithms then differ only in which
//! half of the pattern they drive.
//!
//! Three algorithms ship:
//!
//! * [`reno::Reno`] — the exact arithmetic that used to be inlined in
//!   `tcp.rs`, preserved float-op for float-op so default runs stay
//!   byte-identical with pre-refactor artifacts.
//! * [`cubic::Cubic`] — CUBIC-style concave/convex window growth around
//!   the pre-loss plateau, with β = 0.7 multiplicative decrease.
//! * [`rate_probe::RateProbe`] — a BBR-flavoured, loss-blind controller
//!   that models the bottleneck from delivery-rate and RTT-floor samples
//!   and installs a pacing rate plus a 2·BDP window. During a blockage
//!   transient it never collapses the window on loss — which is exactly
//!   the behavioural contrast the `cc_compare` experiment measures.
//!
//! A campaign can force an algorithm for every flow of a task through the
//! [`SimCtx`] extension slot ([`install_override`] / [`override_of`]),
//! without threading a parameter through every experiment constructor.

pub mod cubic;
pub mod rate_probe;
pub mod reno;

use mmwave_sim::ctx::SimCtx;
use std::cell::Cell;

/// Which congestion-control algorithm a flow runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CcKind {
    /// Classic Reno: slow start, AIMD congestion avoidance, halving on
    /// loss. The default — and byte-identical with the pre-plane inline
    /// implementation.
    #[default]
    Reno,
    /// CUBIC-style window growth (concave toward the pre-loss plateau,
    /// convex beyond it).
    Cubic,
    /// Loss-blind rate-based control: pace at the estimated bottleneck
    /// bandwidth, window at 2·BDP.
    RateProbe,
}

impl CcKind {
    /// Every algorithm, in comparison order.
    pub const ALL: [CcKind; 3] = [CcKind::Reno, CcKind::Cubic, CcKind::RateProbe];

    /// Stable identifier (CLI flag value, artifact key).
    pub fn as_str(self) -> &'static str {
        match self {
            CcKind::Reno => "reno",
            CcKind::Cubic => "cubic",
            CcKind::RateProbe => "rate_probe",
        }
    }

    /// Parse a CLI/artifact identifier.
    pub fn from_str(s: &str) -> Option<CcKind> {
        CcKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Instantiate the algorithm in its initial state.
    pub fn build(self) -> Box<dyn CongestionAlg> {
        match self {
            CcKind::Reno => Box::new(reno::Reno::new()),
            CcKind::Cubic => Box::new(cubic::Cubic::new()),
            CcKind::RateProbe => Box::new(rate_probe::RateProbe::new()),
        }
    }
}

/// One folded measurement, covering everything the datapath learned from a
/// single ACK, loss detection or timeout event. Exactly one of
/// `timeout` / `loss` / "ack advance" (`newly_acked > 0`) holds per report.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeasurementReport {
    /// Segments newly acknowledged by this ACK (0 for loss/timeout folds).
    pub newly_acked: u64,
    /// Smoothed RTT, seconds, if at least one sample exists.
    pub srtt_s: Option<f64>,
    /// Minimum RTT sample observed so far, seconds.
    pub rtt_min_s: Option<f64>,
    /// Segments in flight when the event was observed.
    pub inflight: f64,
    /// Three duplicate ACKs: the datapath is entering fast recovery.
    pub loss: bool,
    /// The retransmission timer fired.
    pub timeout: bool,
    /// This ACK took the flow out of fast recovery.
    pub recovery_exited: bool,
    /// The flow is (still) in fast recovery after this event.
    pub in_recovery: bool,
    /// Seconds since the flow started.
    pub now_s: f64,
    /// Segment size, bytes (to convert windows to rates).
    pub mss: u32,
    /// Fraction of run time the sending device spent transmitting
    /// (from [`mmwave_mac::MacMeasurement`]).
    pub airtime_share: f64,
    /// Consecutive MAC-level ACK timeouts at the sending device.
    pub ack_loss_streak: u8,
}

/// What the algorithm wants installed on the datapath. `None` fields leave
/// the previous value in place, so loss-based algorithms can drive only
/// the window while rate-based ones drive both.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ControlPattern {
    /// Congestion window, segments.
    pub cwnd: Option<f64>,
    /// Pacing rate, bits/s.
    pub rate_bps: Option<u64>,
}

/// A congestion-control algorithm: folds measurement reports, returns
/// control patterns. Implementations keep all their state internal — the
/// datapath never reads it back except through the returned pattern.
pub trait CongestionAlg: std::fmt::Debug {
    /// Which algorithm this is (for stats/labels).
    fn kind(&self) -> CcKind;
    /// Fold one measurement; return the pattern to install.
    fn on_report(&mut self, r: &MeasurementReport) -> ControlPattern;
}

/// Context extension slot carrying a campaign-level algorithm override.
#[derive(Default)]
struct CcOverride(Cell<Option<CcKind>>);

/// Force every flow subsequently created on `ctx` (without an explicit
/// per-flow `TcpConfig::cc`) to run `kind`.
pub fn install_override(ctx: &SimCtx, kind: CcKind) {
    ctx.ext_or_insert_with(CcOverride::default)
        .0
        .set(Some(kind));
}

/// The override installed on `ctx`, if any.
pub fn override_of(ctx: &SimCtx) -> Option<CcKind> {
    ctx.ext_or_insert_with(CcOverride::default).0.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_strings_round_trip() {
        for kind in CcKind::ALL {
            assert_eq!(CcKind::from_str(kind.as_str()), Some(kind));
        }
        assert_eq!(CcKind::from_str("vegas"), None);
    }

    #[test]
    fn build_reports_its_kind() {
        for kind in CcKind::ALL {
            assert_eq!(kind.build().kind(), kind);
        }
    }

    #[test]
    fn ctx_override_round_trips() {
        let ctx = SimCtx::new();
        assert_eq!(override_of(&ctx), None);
        install_override(&ctx, CcKind::Cubic);
        assert_eq!(override_of(&ctx), Some(CcKind::Cubic));
        install_override(&ctx, CcKind::RateProbe);
        assert_eq!(override_of(&ctx), Some(CcKind::RateProbe));
        // A fresh context is unaffected.
        assert_eq!(override_of(&SimCtx::new()), None);
    }
}
