//! Plain-text rendering of tables, series and polar profiles.
//!
//! Every experiment prints through these helpers so the `experiments`
//! binary's output reads like the paper's tables and figure data.

use mmwave_geom::Angle;

/// Render an aligned two-column-plus table. `header` and every row must
/// have the same arity.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    if cols == 0 {
        // No columns: just the title. Guards the rule width below, which
        // would otherwise underflow on `cols - 1`.
        return out;
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Render an (x, y) series as aligned columns.
pub fn series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(x, y)| vec![format!("{x:.3}"), format!("{y:.3}")])
        .collect();
    table(title, &[x_label, y_label], &rows)
}

/// A crude ASCII bar chart (one row per point), handy for eyeballing CDFs
/// and sweeps in the terminal.
pub fn bars(title: &str, points: &[(String, f64)], max_width: usize) -> String {
    let peak = points
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let label_w = points.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("== {title} ==\n");
    for (label, v) in points {
        let n = ((v / peak) * max_width as f64).round().max(0.0) as usize;
        out.push_str(&format!("{label:<label_w$} |{} {v:.2}\n", "#".repeat(n)));
    }
    out
}

/// Render a polar profile (angle → dB) as rows of 15° bins, the text
/// analogue of the paper's polar plots. Values are normalized to peak 0 dB.
pub fn polar(title: &str, points: &[(Angle, f64)]) -> String {
    let peak = points.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let mut bins: Vec<(i32, Vec<f64>)> = (0..24).map(|i| (i * 15 - 180, Vec::new())).collect();
    for (a, v) in points {
        let deg = a.degrees();
        let idx = (((deg + 180.0) / 15.0).floor() as i32).clamp(0, 23) as usize;
        bins[idx].1.push(v - peak);
    }
    let mut out = format!("== {title} (dB rel. peak) ==\n");
    for (start, vals) in &bins {
        if vals.is_empty() {
            continue;
        }
        let avg = vals.iter().sum::<f64>() / vals.len() as f64;
        let bar_len = ((avg + 30.0).max(0.0) / 30.0 * 30.0).round() as usize;
        out.push_str(&format!(
            "{:>4}°..{:>4}°  {:>6.1}  |{}\n",
            start,
            start + 15,
            avg,
            "#".repeat(bar_len)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            "T",
            &["name", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "12345".into()],
            ],
        );
        assert!(t.contains("== T =="));
        let lines: Vec<&str> = t.lines().collect();
        // Title, header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("name"));
        assert!(lines[4].starts_with("b    "));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_checks_arity() {
        table("T", &["a", "b"], &[vec!["only one".into()]]);
    }

    #[test]
    fn empty_header_renders_title_only() {
        // Regression: `cols == 0` used to underflow the rule width
        // (`2 * (cols - 1)`) and panic.
        let t = table("empty", &[], &[]);
        assert_eq!(t, "== empty ==\n");
    }

    #[test]
    fn series_renders_points() {
        let s = series("S", "x", "y", &[(1.0, 2.0), (3.0, 4.5)]);
        assert!(s.contains("1.000"));
        assert!(s.contains("4.500"));
    }

    #[test]
    fn bars_scale_to_peak() {
        let b = bars("B", &[("a".into(), 10.0), ("bb".into(), 5.0)], 20);
        let lines: Vec<&str> = b.lines().collect();
        let hashes = |s: &str| s.matches('#').count();
        assert_eq!(hashes(lines[1]), 20);
        assert_eq!(hashes(lines[2]), 10);
    }

    #[test]
    fn polar_normalizes() {
        let pts: Vec<(Angle, f64)> = (0..360)
            .map(|d| {
                (
                    Angle::from_degrees(d as f64),
                    -60.0 - (d % 90) as f64 / 10.0,
                )
            })
            .collect();
        let p = polar("P", &pts);
        assert!(p.contains("dB rel. peak"));
        // The peak bin's bar is (nearly) full width.
        let longest = p
            .lines()
            .map(|l| l.matches('#').count())
            .max()
            .expect("lines");
        assert!(longest >= 29, "longest bar {longest}");
    }
}
