//! Dynamic blockage — a scripted human walks through the line of sight.
//!
//! Reproduces the Fig. 20 "bane" as a *transient*: the link trains on the
//! direct path, a human blocker sweeps through it (scripted with
//! [`Scenario::walking_blocker`], so the run is bitwise reproducible per
//! seed), receive power at the originally trained beam pair collapses by
//! tens of dB, and the MAC recovers by retraining onto the wall
//! reflection. When the walker leaves, data keeps flowing and no TXOP
//! state is left dangling.

use super::RunReport;
use crate::report;
use crate::scenarios::seeds;
use mmwave_channel::Environment;
use mmwave_geom::{Angle, Material, Point, Room, Segment, Vec2, Wall};
use mmwave_mac::device::WigigState;
use mmwave_mac::{Delivery, Device, Net, NetConfig, PatKey, Scenario, WorldMutation};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::{SimDuration, SimTime};

/// Run the dynamic-blockage transient.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let cfg = NetConfig {
        seed,
        enable_fading: false,
        ..NetConfig::default()
    };

    // The Fig. 5 blocked-LoS rig, but with the blocker off stage: a brick
    // wall parallel to the link provides the recovery path.
    let mut room = Room::open_space();
    let wall_y = 1.5;
    room.add_wall(Wall::new(
        Segment::new(Point::new(-1.0, wall_y), Point::new(6.3, wall_y)),
        Material::Brick,
        "reflecting wall",
    ));
    // The walker crosses the LoS between x = 1.7 and 3.1 — inside the band
    // where the direct path is cut but both legs of the wall bounce stay
    // clear, so a retrained link survives the transit.
    let shape = Segment::new(Point::new(1.7, -0.6), Point::new(1.7, 0.95));
    let walker = room.add_obstacle(shape, Material::Human, "walker");
    room.set_wall_enabled(walker, false);

    let mut net = Net::with_ctx(Environment::new(room), cfg, ctx);
    let dock = net.add_device(Device::wigig_dock(
        ctx,
        "Dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        seeds::DOCK_A,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        ctx,
        "Laptop",
        Point::new(4.8, 0.0),
        Angle::from_degrees(180.0),
        seeds::LAPTOP_A,
    ));
    net.associate_instantly(dock, laptop);

    // The script: the walker appears, crosses the corridor, and leaves.
    let t0_ms = 40u64;
    let walk_ms = if quick { 160 } else { 320 };
    let steps = if quick { 16 } else { 32 };
    let t0 = SimTime::from_millis(t0_ms);
    let walk = SimDuration::from_millis(walk_ms);
    let t_end = SimTime::from_millis(t0_ms + walk_ms);
    let scenario = Scenario::new()
        .at(
            t0,
            WorldMutation::SetObstacleEnabled {
                wall: walker,
                enabled: true,
            },
        )
        .walking_blocker(walker, shape, Vec2::new(1.4, 0.0), t0, walk, steps)
        .at(
            t_end,
            WorldMutation::SetObstacleEnabled {
                wall: walker,
                enabled: false,
            },
        );
    let expected_mutations = scenario.len() as u64;
    net.install_scenario(scenario);

    // Drive download traffic and sample the radiometric ground truth at
    // the *originally trained* beam pair every millisecond.
    let los_sector = net.device(dock).wigig().expect("wigig").tx_sector;
    let total_ms = t0_ms + walk_ms + 150;
    let mut samples: Vec<(f64, f64)> = Vec::new();
    let mut baseline = f64::NEG_INFINITY;
    let mut retrains_before = 0u64;
    let mut min_blocked = f64::INFINITY;
    let mut delivered_after_walk = 0u64;
    let mut tag = 0u64;
    for k in 0..=total_ms {
        for _ in 0..6 {
            net.push_mpdu(dock, 1500, tag);
            tag += 1;
        }
        let t = SimTime::from_millis(k);
        net.run_until(t);
        let rx = net.medium_rx_power_dbm(dock, PatKey::Dir(los_sector), laptop);
        samples.push((k as f64, rx));
        if t < t0 {
            baseline = rx;
            retrains_before = net.device(dock).stats.retrains + net.device(laptop).stats.retrains;
        } else if t <= t_end {
            min_blocked = min_blocked.min(rx);
        }
        let mpdus = net
            .take_deliveries()
            .iter()
            .filter(|d| matches!(d, Delivery::Mpdu { .. }))
            .count() as u64;
        if t > t_end {
            delivered_after_walk += mpdus;
        }
    }
    // Drain: stop pushing and let the MAC finish its backlog.
    net.run_until(SimTime::from_millis(total_ms + 60));

    let mut violations = Vec::new();
    let depth = baseline - min_blocked;
    // Acceptance: the walker shadows the trained pair by ≥ 15 dB.
    if depth < 15.0 {
        violations.push(format!(
            "shadowing depth {depth:.1} dB at the trained pair (expected ≥ 15)"
        ));
    }
    let retrains_after = net.device(dock).stats.retrains + net.device(laptop).stats.retrains;
    if retrains_after <= retrains_before {
        violations.push("blockage caused no beam retraining".into());
    }
    if net.device(dock).wigig().expect("wigig").state != WigigState::Associated {
        violations.push("link did not recover after the walker left".into());
    }
    if delivered_after_walk == 0 {
        violations.push("no MPDUs delivered after the walker left".into());
    }
    if net.scenario_mutations() != expected_mutations {
        violations.push(format!(
            "applied {} of {expected_mutations} scripted mutations",
            net.scenario_mutations()
        ));
    }
    for d in [dock, laptop] {
        let w = net.device(d).wigig().expect("wigig");
        if w.in_txop || w.awaiting_ack.is_some() || w.pending_cts.is_some() {
            violations.push(format!(
                "device {d} left with dangling TXOP state after the transient"
            ));
        }
    }

    let pts: Vec<(f64, f64)> = samples.iter().step_by(5).cloned().collect();
    let output = report::series(
        "Dynamic blockage — rx power at the originally trained beam pair",
        "ms",
        "dBm",
        &pts,
    ) + &format!(
        "\nbaseline {baseline:.1} dBm   blocked minimum {min_blocked:.1} dBm \
         (depth {depth:.1} dB)\nretrains {retrains_before} → {retrains_after}   \
         MPDUs after recovery: {delivered_after_walk}\n"
    );

    RunReport {
        id: "dynblock",
        title: "Dynamic blockage: walking-blocker transient and MAC recovery",
        output,
        violations,
    }
}
