//! Fig. 3 — the D5000 device-discovery frame.
//!
//! The scope shows one ~1 ms frame built of 32 sub-elements, each with a
//! different (roughly constant) amplitude because each rides a different
//! quasi-omni antenna pattern. Here: an unassociated dock sweeps, a
//! waveguide tap captures one sweep, and the checks pin the structure.

use super::RunReport;
use crate::replay::{replay_trace, TapConfig};
use crate::report;
use crate::scenarios::seeds;
use mmwave_channel::Environment;
use mmwave_geom::{Angle, Point, Room};
use mmwave_mac::{Device, FrameClass, Net, NetConfig};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::{SimDuration, SimTime};

/// Run the Fig. 3 capture.
pub fn run(ctx: &SimCtx, _quick: bool, seed: u64) -> RunReport {
    let mut net = Net::with_ctx(
        Environment::new(Room::open_space()),
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        },
        ctx,
    );
    let dock = net.add_device(Device::wigig_dock(
        ctx,
        "Dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        seeds::DOCK_A,
    ));
    net.start();
    net.run_until(SimTime::from_millis(5));

    // Find the first sweep in the log.
    let subs: Vec<(SimTime, SimTime)> = net
        .txlog()
        .of(dock, FrameClass::DiscoverySub)
        .map(|e| (e.start, e.end))
        .take(32)
        .collect();

    let mut violations = Vec::new();
    if subs.len() != 32 {
        violations.push(format!("expected 32 sub-elements, captured {}", subs.len()));
    }

    let mut output = String::new();
    if let (Some(first), Some(last)) = (subs.first(), subs.last()) {
        let total = last.1 - first.0;
        // ~1 ms total frame (32 × 30 µs = 0.96 ms).
        if (total.as_millis_f64() - 0.96).abs() > 0.05 {
            violations.push(format!("frame duration {total} ≠ ≈0.96 ms"));
        }
        // Sub-elements are back to back.
        for w in subs.windows(2) {
            if w[1].0.saturating_since(w[0].1) > SimDuration::from_nanos(10) {
                violations.push("sub-elements are not contiguous".into());
                break;
            }
        }
        // Capture the amplitude staircase with a waveguide tap off-axis.
        let tap = TapConfig::waveguide(Point::new(1.5, 1.2), Angle::from_degrees(-120.0));
        let trace = replay_trace(&net, &tap, first.0, last.1);
        let amps: Vec<f64> = trace.segments().iter().map(|s| s.amplitude_v).collect();
        if amps.len() == 32 {
            let lo = amps.iter().cloned().fold(f64::MAX, f64::min);
            let hi = amps.iter().cloned().fold(f64::MIN, f64::max);
            // Different quasi-omni patterns must produce a clear amplitude
            // spread (≥ 6 dB ⇔ 2× in volts).
            if hi < 2.0 * lo {
                violations.push(format!(
                    "sub-element amplitudes too uniform: {lo:.4}–{hi:.4} V"
                ));
            }
            let points: Vec<(String, f64)> = amps
                .iter()
                .enumerate()
                .map(|(i, a)| (format!("sub {i:02}"), *a))
                .collect();
            output.push_str(&report::bars(
                "Fig. 3 — discovery frame sub-element amplitudes (V at the scope)",
                &points,
                40,
            ));
            output.push_str(&format!(
                "\nframe duration: {total}   sub-elements: {}   amplitude spread: {:.1} dB\n",
                amps.len(),
                20.0 * (hi / lo).log10()
            ));
        } else {
            violations.push(format!("trace holds {} segments, expected 32", amps.len()));
        }
    } else {
        violations.push("no discovery sweep captured".into());
    }

    RunReport {
        id: "fig03",
        title: "Fig. 3: Dell D5000 device discovery frame",
        output,
        violations,
    }
}
