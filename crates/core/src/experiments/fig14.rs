//! Fig. 14 — frame amplitudes and reported rate over ~80 minutes.
//!
//! The environment is static, yet the rate occasionally steps — and every
//! step coincides with a change in the received frame amplitude at the
//! Vubiq: beam-pattern realignment and rate adaptation are one joint
//! process. Here sparse perturbation events jitter the laptop's mount
//! angle; the beacon path retrains, and both observables move together.

use super::RunReport;
use crate::report;
use crate::scenarios::point_to_point;
use mmwave_capture::VubiqReceiver;
use mmwave_channel::RadioNode;
use mmwave_geom::{Angle, Point};
use mmwave_mac::{NetConfig, PatKey};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::SimTime;

/// Run the Fig. 14 campaign.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let minutes = if quick { 20 } else { 80 };
    let mut p = point_to_point(
        ctx,
        2.0,
        NetConfig {
            seed,
            enable_fading: false, // static environment: only realignments act
            enable_perturbations: true,
            ..NetConfig::default()
        },
    );
    p.net.txlog_mut().set_enabled(false);

    // The Vubiq behind the dock, pointing at the laptop's lid (§3.2).
    let tap_pos = Point::new(-0.6, 0.25);
    let probe = RadioNode::new(usize::MAX - 9, "vubiq", tap_pos, Angle::ZERO);
    let rx = VubiqReceiver::with_waveguide();

    let mut samples: Vec<(f64, f64, f64, u64)> = Vec::new(); // (min, amp V, rate Gb/s, retrains)
    let step_s = 10u64;
    for k in 0..=(minutes * 60 / step_s) {
        p.net.run_until(SimTime::from_secs(k * step_s));
        let laptop = p.net.device(p.laptop);
        let w = laptop.wigig().expect("wigig");
        // Amplitude of a laptop data/beacon frame at the Vubiq: its trained
        // sector towards the tap.
        let pattern = laptop.pattern(PatKey::Dir(w.tx_sector));
        let paths = p.net.env.paths(laptop.node.position, tap_pos);
        let lin: f64 = paths
            .iter()
            .map(|path| {
                let ga = laptop.node.gain_toward(pattern, path.departure);
                let gb = probe.gain_toward(&rx.antenna, path.arrival);
                mmwave_phy::db_to_lin(p.net.env.budget.rx_power_dbm(ga, gb, path))
            })
            .sum();
        let amp = rx.power_to_volts(mmwave_phy::lin_to_db(lin));
        let dock_w = p.net.device(p.dock).wigig().expect("wigig");
        let rate = dock_w.adapter.current().rate_gbps();
        let retrains = p.net.device(p.dock).stats.retrains;
        samples.push((k as f64 * step_s as f64 / 60.0, amp, rate, retrains));
    }

    let mut violations = Vec::new();
    // Realignments happened (beyond the initial association training).
    let total_retrains = samples.last().map(|s| s.3).unwrap_or(0);
    let expected_min = if quick { 2 } else { 5 };
    if total_retrains < expected_min {
        violations.push(format!(
            "only {total_retrains} retrains in {minutes} min (expected ≥ {expected_min})"
        ));
    }
    // Amplitude steps coincide with realignments: whenever the measured
    // amplitude changes appreciably between samples, the retrain counter
    // moved in the same interval.
    let mut amp_steps = 0;
    let mut coinciding = 0;
    for w in samples.windows(2) {
        let (a0, a1) = (w[0].1, w[1].1);
        if (a1 - a0).abs() > 0.03 * a0.max(1e-6) {
            amp_steps += 1;
            if w[1].3 > w[0].3 {
                coinciding += 1;
            }
        }
    }
    if amp_steps == 0 {
        violations.push("amplitude never changed — no observable realignments".into());
    } else if coinciding * 10 < amp_steps * 9 {
        violations.push(format!(
            "only {coinciding}/{amp_steps} amplitude steps coincide with a retrain"
        ));
    }
    // The link stays in the 16-QAM region at 2 m (rate between 3 and 4 Gb/s
    // almost always; brief dips allowed right after a perturbation).
    let low = samples.iter().filter(|s| s.2 < 2.0).count();
    if low * 10 > samples.len() {
        violations.push(format!(
            "{low}/{} samples below 2 Gb/s at 2 m",
            samples.len()
        ));
    }

    let pts: Vec<(f64, f64)> = samples.iter().step_by(6).map(|s| (s.0, s.1)).collect();
    let rates: Vec<(f64, f64)> = samples.iter().step_by(6).map(|s| (s.0, s.2)).collect();
    let output = report::series("Fig. 14 — laptop frame amplitude at the Vubiq", "minute", "V", &pts)
        + "\n"
        + &report::series("Fig. 14 — interface bit rate", "minute", "Gb/s", &rates)
        + &format!(
            "\nretrains: {total_retrains}   amplitude steps: {amp_steps} (coinciding with retrains: {coinciding})\n"
        );

    RunReport {
        id: "fig14",
        title: "Fig. 14: D5000 frame amplitudes and rate over 80 minutes",
        output,
        violations,
    }
}
