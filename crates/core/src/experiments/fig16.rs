//! Fig. 16 — four of the 32 quasi-omni discovery patterns.
//!
//! Measured on the outdoor semicircle range from real discovery sweeps:
//! HPBW as wide as 60°, but every pattern carved by deep gaps that can
//! prevent communication at specific angles.

use super::RunReport;
use crate::analysis::beampattern::{measure_discovery_pattern, measured_hpbw_deg};
use crate::report;
use crate::scenarios::seeds;
use mmwave_capture::scan::ScanPoint;
use mmwave_channel::Environment;
use mmwave_geom::{Angle, Point, Room};
use mmwave_mac::{Device, Net, NetConfig};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::SimTime;

/// Count deep gaps (local minima ≥ `depth_db` below the scan peak) within
/// the front sector of a semicircle scan.
fn deep_gaps(points: &[ScanPoint], depth_db: f64) -> usize {
    let peak = points.iter().map(|p| p.power_dbm).fold(f64::MIN, f64::max);
    let mut gaps = 0;
    for i in 1..points.len().saturating_sub(1) {
        let p = points[i].power_dbm;
        if p < peak - depth_db
            && p <= points[i - 1].power_dbm
            && p < points[i + 1].power_dbm
            && points[i].angle.degrees().abs() < 75.0
        {
            gaps += 1;
        }
    }
    gaps
}

/// Run the Fig. 16 measurement.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    // An unassociated dock on the open range sweeps discovery frames.
    let mut net = Net::with_ctx(
        Environment::new(Room::open_space()),
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        },
        ctx,
    );
    let dock = net.add_device(Device::wigig_dock(
        ctx,
        "D5000",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        seeds::DOCK_A,
    ));
    net.start();
    // A few sweeps suffice (the sub-element order is fixed, §3.2).
    net.run_until(SimTime::from_millis(if quick { 120 } else { 500 }));

    let chosen = [0usize, 9, 18, 27];
    let n_positions = 100;
    let mut output = String::new();
    let mut violations = Vec::new();
    let mut widest = 0.0f64;
    let mut with_gaps = 0usize;
    for &idx in &chosen {
        let scan = measure_discovery_pattern(
            &net,
            dock,
            idx,
            Angle::ZERO,
            3.2,
            n_positions,
            SimTime::ZERO,
            net.now(),
        );
        let hpbw = measured_hpbw_deg(&scan);
        let gaps = deep_gaps(&scan, 6.0);
        widest = widest.max(hpbw);
        if gaps > 0 {
            with_gaps += 1;
        }
        let norm: Vec<(Angle, f64)> = crate::analysis::beampattern::normalize(&scan);
        output.push_str(&report::polar(
            &format!("Fig. 16 — quasi-omni pattern, sub-element {idx} (HPBW {hpbw:.0}°, {gaps} deep gaps)"),
            &norm,
        ));
        output.push('\n');
        if hpbw < 20.0 {
            violations.push(format!(
                "sub {idx}: HPBW {hpbw:.0}° is directional, not quasi-omni"
            ));
        }
    }
    // §4.2: HPBW "can be as wide as 60 degrees".
    if !(40.0..=90.0).contains(&widest) {
        violations.push(format!(
            "widest quasi-omni HPBW {widest:.0}° (paper: up to ≈60°)"
        ));
    }
    // "each pattern contains several deep gaps" — require most of them to.
    if with_gaps < 3 {
        violations.push(format!(
            "only {with_gaps}/4 measured patterns show deep gaps"
        ));
    }

    RunReport {
        id: "fig16",
        title: "Fig. 16: quasi omni-directional beam patterns swept by the D5000",
        output,
        violations,
    }
}
