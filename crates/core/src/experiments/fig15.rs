//! Fig. 15 — the DVDO Air-3c WiHD frame flow.
//!
//! In contrast to the D5000 there is no data/ACK pairing: the source emits
//! variable-length data frames following the sink's periodic beacons, and
//! when the video queue empties only beacons remain on the air. The trace
//! shows the transition from active transmission to idle.

use super::RunReport;
use crate::report;
use crate::scenarios::seeds;
use mmwave_channel::Environment;
use mmwave_geom::{Angle, Point, Room};
use mmwave_mac::{Device, FrameClass, Net, NetConfig};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::SimTime;

/// Run the Fig. 15 capture.
pub fn run(ctx: &SimCtx, _quick: bool, seed: u64) -> RunReport {
    let mut net = Net::with_ctx(
        Environment::new(Room::open_space()),
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        },
        ctx,
    );
    let tx = net.add_device(Device::wihd_source(
        ctx,
        "HDMI TX",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        seeds::WIHD_TX,
    ));
    let rx = net.add_device(Device::wihd_sink(
        ctx,
        "HDMI RX",
        Point::new(8.0, 0.0),
        Angle::from_degrees(180.0),
        seeds::WIHD_RX,
    ));
    net.pair_wihd_instantly(tx, rx);
    // Stream for 40 ms, then cut the video: the trace must transition from
    // data+beacons to beacons only.
    net.run_until(SimTime::from_millis(40));
    net.set_video(tx, false);
    net.run_until(SimTime::from_millis(80));

    let active = (SimTime::from_millis(10), SimTime::from_millis(38));
    let idle = (SimTime::from_millis(45), SimTime::from_millis(80));

    let data_active = net
        .txlog()
        .in_window(active.0, active.1)
        .filter(|e| e.class == FrameClass::WihdData)
        .count();
    let data_idle = net
        .txlog()
        .in_window(idle.0, idle.1)
        .filter(|e| e.class == FrameClass::WihdData)
        .count();
    let beacons_idle = net
        .txlog()
        .in_window(idle.0, idle.1)
        .filter(|e| e.class == FrameClass::WihdBeacon)
        .count();
    let acks =
        net.txlog().of(rx, FrameClass::Ack).count() + net.txlog().of(tx, FrameClass::Ack).count();

    // Data frames come in variable lengths (the last frame of a burst is a
    // remainder).
    let durs: Vec<f64> = net
        .txlog()
        .in_window(active.0, active.1)
        .filter(|e| e.class == FrameClass::WihdData)
        .map(|e| (e.end - e.start).as_micros_f64())
        .collect();
    let min_dur = durs.iter().cloned().fold(f64::MAX, f64::min);
    let max_dur = durs.iter().cloned().fold(f64::MIN, f64::max);

    let mut violations = Vec::new();
    if data_active < 50 {
        violations.push(format!("only {data_active} data frames while streaming"));
    }
    if data_idle > 0 {
        violations.push(format!("{data_idle} data frames after the stream stopped"));
    }
    let expected_beacons = (idle.1 - idle.0).as_micros_f64() / 224.0;
    if (beacons_idle as f64) < 0.95 * expected_beacons {
        violations.push(format!(
            "beacons stopped with the video: {beacons_idle} vs expected ≈{expected_beacons:.0}"
        ));
    }
    if acks > 0 {
        violations.push(format!("WiHD must not exchange ACK frames, saw {acks}"));
    }
    if durs.len() > 10 && max_dur - min_dur < 5.0 {
        violations.push(format!(
            "data frames suspiciously uniform: {min_dur:.1}–{max_dur:.1} µs"
        ));
    }

    // Timeline excerpt around one beacon period while streaming.
    let mut rows = Vec::new();
    for e in net
        .txlog()
        .in_window(SimTime::from_millis(20), SimTime::from_micros(20_800))
        .take(12)
    {
        rows.push(vec![
            format!("{:?}", e.class),
            format!("{:.1} µs", e.start.as_micros_f64() - 20_000.0),
            format!("{:.1} µs", (e.end - e.start).as_micros_f64()),
        ]);
    }
    let output = report::table(
        "Fig. 15 — WiHD frame flow (one beacon period while streaming)",
        &["frame", "t (rel.)", "duration"],
        &rows,
    ) + &format!(
        "\nstreaming: {data_active} data frames ({min_dur:.1}–{max_dur:.1} µs)   after video off: {data_idle} data frames, {beacons_idle} beacons\n",
    );

    RunReport {
        id: "fig15",
        title: "Fig. 15: DVDO Air-3c WiHD frame flow",
        output,
        violations,
    }
}
