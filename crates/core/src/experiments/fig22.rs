//! Fig. 22 — side-lobe interference impact versus interferer distance.
//!
//! Two parallel D5000 links transfer files while the WiHD pair streams at
//! a lateral offset swept from 0 to 3 m; a Vubiq near Dock B measures link
//! utilization. The paper's shape: interference-free utilization 38–42 %,
//! WiHD alone 46 %, a high-interference regime below ~2 m with utilization
//! up to ~100 % (higher and more erratic for the 70°-rotated dock), and
//! the reported link rate moving *inversely* to utilization — with the
//! rotated link's rate lower throughout.

use super::RunReport;
use crate::report;
use crate::scenarios::interference_floor;
use mmwave_geom::{Angle, Point};
use mmwave_mac::NetConfig;

use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::SimTime;
use mmwave_transport::{Stack, TcpConfig};

/// Detection threshold of the utilization monitor (just above the CS
/// threshold: everything a nearby device would defer to counts as busy).
const MONITOR_THRESHOLD_DBM: f64 = -68.0;

/// One measured sweep point.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// WiHD lateral offset from Dock B, m.
    pub offset_m: f64,
    /// Measured utilization at the monitor (0–1).
    pub utilization: f64,
    /// Mean reported link rate of Dock B, Gb/s.
    pub rate_gbps: f64,
}

/// Measurement modes for the baselines and the sweep.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Both D5000 links transfer, WiHD off.
    WigigOnly,
    /// Only the WiHD streams.
    WihdOnly,
    /// Everything on.
    All,
}

fn measure(
    ctx: &SimCtx,
    offset_m: f64,
    rotation: Angle,
    mode: Mode,
    seed: u64,
    secs: f64,
) -> SweepPoint {
    let f = interference_floor(
        ctx,
        offset_m,
        rotation,
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        },
    );
    let (dock_a, laptop_a, dock_b, laptop_b, hdmi_tx) =
        (f.dock_a, f.laptop_a, f.dock_b, f.laptop_b, f.hdmi_tx);
    let mut net = f.net;
    net.txlog_mut().set_enabled(false);
    if mode == Mode::WigigOnly {
        net.set_video(hdmi_tx, false);
    }
    // The Vubiq just off Dock B's beam axis (inside the main-lobe edge so
    // every B-link frame registers), with a wide capture antenna.
    let mon = net.add_monitor(
        Point::new(3.05, 1.2),
        Angle::from_degrees(90.0),
        mmwave_phy::AntennaPattern::isotropic(3.0),
        MONITOR_THRESHOLD_DBM,
    );
    let mut stack = Stack::new(net);
    if mode != Mode::WihdOnly {
        stack.add_flow(TcpConfig::bulk(dock_a, laptop_a, 192 * 1024));
        stack.add_flow(TcpConfig::bulk(dock_b, laptop_b, 192 * 1024));
    }
    let end = SimTime::from_secs_f64(secs);
    // Sample the reported rate every 50 ms (the paper plots the driver's
    // periodic readout, not an instant).
    let mut rate_sum = 0.0;
    let mut rate_n = 0u32;
    let mut t = SimTime::from_millis(200);
    while t < end {
        stack.run_until(t);
        rate_sum += stack
            .net
            .device(dock_b)
            .wigig()
            .expect("wigig")
            .adapter
            .current()
            .rate_gbps();
        rate_n += 1;
        t += mmwave_sim::time::SimDuration::from_millis(50);
    }
    stack.run_until(end);
    let util = stack
        .net
        .monitor_utilization(mon, SimTime::from_millis(200));
    SweepPoint {
        offset_m,
        utilization: util,
        rate_gbps: rate_sum / rate_n.max(1) as f64,
    }
}

/// Run the Fig. 22 campaign.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let offsets: Vec<f64> = if quick {
        vec![0.2, 0.8, 1.6, 2.4, 3.0]
    } else {
        vec![0.0, 0.4, 0.8, 1.2, 1.6, 2.0, 2.4, 2.8, 3.0]
    };
    let secs = if quick { 1.0 } else { 2.5 };

    // The "rotated" dock: the paper nominally rotates 70°, and its rotated
    // link still reports 1.8–2.4 Gb/s — implying a ~3–5 dB link penalty.
    // Our synthesized array's penalty at exactly 70° is ~9 dB (enough to
    // collapse the 6 m link), so we steer to the same *effective*
    // operating point: boundary-region beamforming with elevated side
    // lobes and the paper's reported-rate band (see EXPERIMENTS.md).
    let rot = Angle::from_degrees(50.0);

    // Baselines.
    let free_aligned = measure(ctx, 1.5, Angle::ZERO, Mode::WigigOnly, seed, secs);
    let free_rotated = measure(ctx, 1.5, rot, Mode::WigigOnly, seed + 1, secs);
    let wihd_alone = measure(ctx, 1.5, Angle::ZERO, Mode::WihdOnly, seed + 2, secs);

    let mut aligned = Vec::new();
    let mut rotated = Vec::new();
    for (i, &off) in offsets.iter().enumerate() {
        aligned.push(measure(
            ctx,
            off,
            Angle::ZERO,
            Mode::All,
            seed + 10 + i as u64,
            secs,
        ));
        rotated.push(measure(
            ctx,
            off,
            rot,
            Mode::All,
            seed + 40 + i as u64,
            secs,
        ));
    }

    let mut violations = Vec::new();
    // Baseline shapes.
    if !(0.30..=0.62).contains(&free_aligned.utilization) {
        violations.push(format!(
            "interference-free utilization {:.0}% (paper: 38%)",
            free_aligned.utilization * 100.0
        ));
    }
    if !(0.30..=0.60).contains(&wihd_alone.utilization) {
        violations.push(format!(
            "WiHD-alone utilization {:.0}% (paper: 46%)",
            wihd_alone.utilization * 100.0
        ));
    }
    // High-interference regime below ~2 m: utilization well above the
    // interference-free level.
    let near_max = aligned
        .iter()
        .filter(|p| p.offset_m <= 2.0)
        .map(|p| p.utilization)
        .fold(0.0, f64::max);
    if near_max < free_aligned.utilization + 0.20 {
        violations.push(format!(
            "near-regime utilization peaks at {:.0}%, barely above the {:.0}% baseline",
            near_max * 100.0,
            free_aligned.utilization * 100.0
        ));
    }
    // Utilization declines towards 3 m.
    let far = aligned.last().expect("points").utilization;
    if far > near_max - 0.10 {
        violations.push(format!(
            "utilization does not decline with distance ({:.0}% at 3 m vs peak {:.0}%)",
            far * 100.0,
            near_max * 100.0
        ));
    }
    // The rotated dock suffers at least as much interference at its worst
    // ("at some measurement locations it reaches values of up to 100 %")…
    let max_util = |pts: &[SweepPoint]| pts.iter().map(|p| p.utilization).fold(0.0, f64::max);
    if max_util(&rotated) + 0.03 < max_util(&aligned) {
        violations.push(format!(
            "rotated peak utilization {:.0}% below aligned {:.0}%",
            max_util(&rotated) * 100.0,
            max_util(&aligned) * 100.0
        ));
    }
    // …and "shows a strongly varying pattern" — more variable than aligned.
    let std_util = |pts: &[SweepPoint]| {
        let m = pts.iter().map(|p| p.utilization).sum::<f64>() / pts.len().max(1) as f64;
        (pts.iter().map(|p| (p.utilization - m).powi(2)).sum::<f64>() / pts.len().max(1) as f64)
            .sqrt()
    };
    if std_util(&rotated) + 0.02 < std_util(&aligned) {
        violations.push(format!(
            "rotated utilization not more erratic (σ {:.2} vs aligned {:.2})",
            std_util(&rotated),
            std_util(&aligned)
        ));
    }
    // The rotated link's rate is lower (boundary beamforming).
    let mean_rate =
        |pts: &[SweepPoint]| pts.iter().map(|p| p.rate_gbps).sum::<f64>() / pts.len() as f64;
    if mean_rate(&rotated) >= mean_rate(&aligned) {
        violations.push(format!(
            "rotated rate {:.2} not below aligned {:.2} Gb/s",
            mean_rate(&rotated),
            mean_rate(&aligned)
        ));
    }
    // Inverse rate/utilization correlation in the aligned sweep: the rate
    // at the utilization peak is below the rate at 3 m.
    let peak_pt = aligned
        .iter()
        .max_by(|a, b| a.utilization.partial_cmp(&b.utilization).expect("finite"))
        .expect("points");
    let far_pt = aligned.last().expect("points");
    if peak_pt.rate_gbps > far_pt.rate_gbps + 0.05 {
        violations.push(format!(
            "no inverse rate/utilization correlation (peak-util rate {:.2} vs far rate {:.2})",
            peak_pt.rate_gbps, far_pt.rate_gbps
        ));
    }

    let mut rows = Vec::new();
    for (a, r) in aligned.iter().zip(&rotated) {
        rows.push(vec![
            format!("{:.1} m", a.offset_m),
            format!("{:.0}%", a.utilization * 100.0),
            format!("{:.2}", a.rate_gbps),
            format!("{:.0}%", r.utilization * 100.0),
            format!("{:.2}", r.rate_gbps),
        ]);
    }
    let output = report::table(
        "Fig. 22 — side-lobe interference vs WiHD offset",
        &["offset", "util (aligned)", "rate Gb/s", "util (rotated)", "rate Gb/s"],
        &rows,
    ) + &format!(
        "\nbaselines — interference-free: {:.0}% (aligned) / {:.0}% (rotated); WiHD alone: {:.0}%\n",
        free_aligned.utilization * 100.0,
        free_rotated.utilization * 100.0,
        wihd_alone.utilization * 100.0
    );

    RunReport {
        id: "fig22",
        title: "Fig. 22: side lobe interference impact",
        output,
        violations,
    }
}
