//! Fig. 13 — throughput versus distance.
//!
//! Individual runs hold ≈ 900 Mb/s (the GigE cap) until they fall
//! abruptly; the drop distance varies between ~10 and ~17 m across runs
//! (atmospheric conditions), so the *average* declines gradually.

use super::RunReport;
use crate::report;
use crate::scenarios::seeds;
use mmwave_channel::Environment;
use mmwave_geom::{Angle, Point, Room};
use mmwave_mac::{Device, Net, NetConfig};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::rng::SimRng;
use mmwave_sim::time::SimTime;
use mmwave_transport::{Stack, TcpConfig};

fn measure(ctx: &SimCtx, distance_m: f64, seed: u64, run_idx: u64, secs: f64) -> f64 {
    let rng = SimRng::root(seed);
    let env = Environment::new(Room::open_space()).with_atmosphere(&rng, run_idx);
    let mut net = Net::with_ctx(
        env,
        NetConfig {
            seed: seed + run_idx,
            ..NetConfig::default()
        },
        ctx,
    );
    let dock = net.add_device(Device::wigig_dock(
        ctx,
        "Dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        seeds::DOCK_A,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        ctx,
        "Laptop",
        Point::new(distance_m, 0.0),
        Angle::from_degrees(180.0),
        seeds::LAPTOP_A,
    ));
    net.associate_instantly(dock, laptop);
    net.txlog_mut().set_enabled(false);
    let mut stack = Stack::new(net);
    let flow = stack.add_flow(TcpConfig::bulk(dock, laptop, 256 * 1024));
    let end = SimTime::from_secs_f64(secs);
    stack.run_until(end);
    stack
        .flow_stats(flow)
        .mean_goodput_mbps(SimTime::from_millis(300), end)
}

/// Run the Fig. 13 campaign.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let (distances, runs, secs): (Vec<f64>, u64, f64) = if quick {
        (vec![2.0, 6.0, 10.0, 13.0, 16.0, 18.0, 21.0], 4, 0.9)
    } else {
        (
            vec![
                1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0, 21.0,
            ],
            6,
            1.5,
        )
    };
    let mut rows = Vec::new();
    let mut averages = Vec::new();
    let mut all_runs: Vec<(f64, Vec<f64>)> = Vec::new();
    for (di, &d) in distances.iter().enumerate() {
        let vals: Vec<f64> = (0..runs)
            .map(|r| measure(ctx, d, seed + di as u64 * 100, r, secs))
            .collect();
        let avg = vals.iter().sum::<f64>() / vals.len() as f64;
        let lo = vals.iter().cloned().fold(f64::MAX, f64::min);
        let hi = vals.iter().cloned().fold(f64::MIN, f64::max);
        rows.push(vec![
            format!("{d:.0} m"),
            format!("{avg:.0}"),
            format!("{lo:.0}"),
            format!("{hi:.0}"),
        ]);
        averages.push((d, avg));
        all_runs.push((d, vals));
    }

    let mut violations = Vec::new();
    // Short links hit the GigE plateau (§4.1: capped near 900–934 Mb/s).
    for (d, avg) in &averages {
        if *d <= 8.0 && *avg < 820.0 {
            violations.push(format!(
                "{d} m average {avg:.0} Mb/s below the GigE plateau"
            ));
        }
        if *avg > 960.0 {
            violations.push(format!("{d} m average {avg:.0} exceeds Gigabit Ethernet"));
        }
    }
    // Far links are dead.
    if let Some((d, avg)) = averages.iter().find(|(d, _)| *d >= 20.0) {
        if *avg > 150.0 {
            violations.push(format!(
                "{d} m still carries {avg:.0} Mb/s; links should break"
            ));
        }
    }
    // Individual runs are near-bimodal in the transition region while the
    // average falls gradually: some distance must show a wide run spread.
    let spread = all_runs
        .iter()
        .filter(|(d, _)| (9.0..=18.0).contains(d))
        .map(|(_, v)| {
            v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
        })
        .fold(0.0, f64::max);
    // (quick mode draws only 4 atmospheres per distance; 300 Mb/s of
    // spread still requires a near-plateau run and a near-dead run at the
    // same distance.)
    if spread < 300.0 {
        violations.push(format!(
            "no distance shows the abrupt-per-run / gradual-average split (max spread {spread:.0} Mb/s)"
        ));
    }
    // The average is (weakly) monotone decreasing beyond 8 m. The
    // per-distance averages carry run noise (a handful of atmospheric
    // draws each, exactly like the paper's), so the tolerance is generous.
    let far: Vec<&(f64, f64)> = averages.iter().filter(|(d, _)| *d >= 8.0).collect();
    for w in far.windows(2) {
        if w[1].1 > w[0].1 + 260.0 {
            violations.push(format!(
                "average increases with distance: {:.0} m {:.0} → {:.0} m {:.0}",
                w[0].0, w[0].1, w[1].0, w[1].1
            ));
        }
    }

    RunReport {
        id: "fig13",
        title: "Fig. 13: throughput decrease with distance",
        output: report::table(
            "Fig. 13 — Iperf throughput vs distance (Mb/s)",
            &["distance", "average", "min run", "max run"],
            &rows,
        ),
        violations,
    }
}
