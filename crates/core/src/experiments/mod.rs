//! One module per evaluation artifact (table/figure).
//!
//! Every experiment exposes `run(quick, seed) -> RunReport`. The report
//! carries the rendered rows/series (what the paper's table or figure
//! shows) and a list of *shape violations*: qualitative properties from
//! the paper that the reproduction must satisfy (who wins, by what factor,
//! where thresholds fall). An empty violation list is the reproduction
//! criterion; the integration suite asserts it for every experiment.
//!
//! `quick` trades statistical smoothness for runtime (shorter campaigns,
//! fewer sweep points); the shape checks hold in both modes.

pub mod fig03;
pub mod fig08;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod sweep;
pub mod table1;

/// Outcome of one experiment run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Experiment id ("fig09", "table1", …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered rows/series (paper-style output).
    pub output: String,
    /// Qualitative checks that failed (empty = reproduction holds).
    pub violations: Vec<String>,
}

impl RunReport {
    /// True if every shape check passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// All experiment ids in paper order.
pub const ALL: &[&str] = &[
    "table1", "fig03", "fig08", "fig09", "fig10", "fig11", "aggr", "fig12", "fig13",
    "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
    "fig23",
];

/// Run one experiment by id. `None` for an unknown id.
pub fn run(id: &str, quick: bool, seed: u64) -> Option<RunReport> {
    Some(match id {
        "table1" => table1::run(quick, seed),
        "fig03" => fig03::run(quick, seed),
        "fig08" => fig08::run(quick, seed),
        "fig09" => sweep::run_fig09(quick, seed),
        "fig10" => sweep::run_fig10(quick, seed),
        "fig11" => sweep::run_fig11(quick, seed),
        "aggr" => sweep::run_aggr(quick, seed),
        "fig12" => fig12::run(quick, seed),
        "fig13" => fig13::run(quick, seed),
        "fig14" => fig14::run(quick, seed),
        "fig15" => fig15::run(quick, seed),
        "fig16" => fig16::run(quick, seed),
        "fig17" => fig17::run(quick, seed),
        "fig18" => fig18::run(quick, seed),
        "fig19" => fig19::run(quick, seed),
        "fig20" => fig20::run(quick, seed),
        "fig21" => fig21::run(quick, seed),
        "fig22" => fig22::run(quick, seed),
        "fig23" => fig23::run(quick, seed),
        _ => return None,
    })
}
