//! One module per evaluation artifact (table/figure).
//!
//! Every experiment exposes `run(ctx, quick, seed) -> RunReport`. The report
//! carries the rendered rows/series (what the paper's table or figure
//! shows) and a list of *shape violations*: qualitative properties from
//! the paper that the reproduction must satisfy (who wins, by what factor,
//! where thresholds fall). An empty violation list is the reproduction
//! criterion; the integration suite asserts it for every experiment.
//!
//! `quick` trades statistical smoothness for runtime (shorter campaigns,
//! fewer sweep points); the shape checks hold in both modes.
//!
//! Experiments are exposed through a **typed registry** ([`REGISTRY`]):
//! each entry is an [`Experiment`] descriptor carrying the id, the human
//! title, a relative [`CostTier`] (a scheduling hint for the campaign
//! layer — heavy runs dispatch first so a worker pool drains evenly) and
//! the run function itself. The registry replaces the old stringly-typed
//! id list plus `match` dispatch: consumers iterate descriptors and call
//! through function pointers, so adding an experiment is one new entry
//! and the campaign/CLI layers pick it up untouched.

pub mod cc_compare;
pub mod churn;
pub mod dynblock;
pub mod enterprise;
pub mod fig03;
pub mod fig08;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod sweep;
pub mod table1;

use mmwave_sim::ctx::SimCtx;

/// Outcome of one experiment run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Experiment id ("fig09", "table1", …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered rows/series (paper-style output).
    pub output: String,
    /// Qualitative checks that failed (empty = reproduction holds).
    pub violations: Vec<String>,
}

impl RunReport {
    /// True if every shape check passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Relative runtime of an experiment in quick mode. Used by the campaign
/// scheduler to dispatch the heaviest runs first (longest-processing-time
/// order), which keeps a worker pool from idling on a late-arriving
/// multi-second run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum CostTier {
    /// Milliseconds: single-link protocol traces and beam patterns.
    Fast,
    /// Hundreds of milliseconds: TCP sweeps and interference scenes.
    Medium,
    /// Seconds: full distance/interference campaigns.
    Slow,
}

/// A typed experiment descriptor: everything a runner needs to schedule,
/// execute and label one paper artifact.
pub struct Experiment {
    /// Stable id ("fig09", "table1", …) used in CLIs and artifact names.
    pub id: &'static str,
    /// Human title matching the `RunReport` the run function produces.
    pub title: &'static str,
    /// Scheduling hint: relative cost in quick mode.
    pub cost: CostTier,
    /// Name of the physical scenario/rig this experiment runs in
    /// ("point-to-point", "blocked-los", …). Recorded in campaign
    /// artifacts so a run can be traced back to its geometry.
    pub scenario: &'static str,
    /// The artifact regenerator. All engine activity (event counts, cache
    /// hit rates, codebook fills) lands in the caller-supplied [`SimCtx`].
    pub run: fn(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport,
}

impl Experiment {
    /// Run this experiment, accumulating engine counters into `ctx`.
    pub fn run(&self, ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
        (self.run)(ctx, quick, seed)
    }
}

/// Every experiment, in paper order.
pub const REGISTRY: &[Experiment] = &[
    Experiment {
        id: "table1",
        title: "Table 1: D5000 and WiHD frame periodicity",
        cost: CostTier::Fast,
        scenario: "point-to-point",
        run: table1::run,
    },
    Experiment {
        id: "fig03",
        title: "Fig. 3: Dell D5000 device discovery frame",
        cost: CostTier::Fast,
        scenario: "point-to-point",
        run: fig03::run,
    },
    Experiment {
        id: "fig08",
        title: "Fig. 8: Dell D5000 frame flow",
        cost: CostTier::Fast,
        scenario: "point-to-point",
        run: fig08::run,
    },
    Experiment {
        id: "fig09",
        title: "Fig. 9: WiGig data frame length (CDF per TCP throughput)",
        cost: CostTier::Medium,
        scenario: "point-to-point",
        run: sweep::run_fig09,
    },
    Experiment {
        id: "fig10",
        title: "Fig. 10: percentage of long frames in WiGig",
        cost: CostTier::Medium,
        scenario: "point-to-point",
        run: sweep::run_fig10,
    },
    Experiment {
        id: "fig11",
        title: "Fig. 11: WiGig medium usage",
        cost: CostTier::Medium,
        scenario: "point-to-point",
        run: sweep::run_fig11,
    },
    Experiment {
        id: "aggr",
        title: "§4.1/§5: aggregation gain at 60 GHz timescales",
        cost: CostTier::Medium,
        scenario: "point-to-point",
        run: sweep::run_aggr,
    },
    Experiment {
        id: "fig12",
        title: "Fig. 12: MCS with low traffic",
        cost: CostTier::Medium,
        scenario: "point-to-point",
        run: fig12::run,
    },
    Experiment {
        id: "fig13",
        title: "Fig. 13: throughput decrease with distance",
        cost: CostTier::Slow,
        scenario: "point-to-point",
        run: fig13::run,
    },
    Experiment {
        id: "fig14",
        title: "Fig. 14: D5000 frame amplitudes and rate over 80 minutes",
        cost: CostTier::Slow,
        scenario: "point-to-point",
        run: fig14::run,
    },
    Experiment {
        id: "fig15",
        title: "Fig. 15: DVDO Air-3c WiHD frame flow",
        cost: CostTier::Fast,
        scenario: "point-to-point",
        run: fig15::run,
    },
    Experiment {
        id: "fig16",
        title: "Fig. 16: quasi omni-directional beam patterns swept by the D5000",
        cost: CostTier::Fast,
        scenario: "pattern-range",
        run: fig16::run,
    },
    Experiment {
        id: "fig17",
        title: "Fig. 17: laptop and D5000 beam patterns (aligned and rotated 70°)",
        cost: CostTier::Fast,
        scenario: "pattern-range",
        run: fig17::run,
    },
    Experiment {
        id: "fig18",
        title: "Fig. 18: reflections for Dell D5000 (conference room, probes A–F)",
        cost: CostTier::Fast,
        scenario: "conference-room",
        run: fig18::run,
    },
    Experiment {
        id: "fig19",
        title: "Fig. 19: reflections for DVDO Air-3c WiHD (conference room)",
        cost: CostTier::Fast,
        scenario: "conference-room",
        run: fig19::run,
    },
    Experiment {
        id: "fig20",
        title: "Fig. 20: angular profile and throughput with link blockage",
        cost: CostTier::Medium,
        scenario: "blocked-los",
        run: fig20::run,
    },
    Experiment {
        id: "fig21",
        title: "Fig. 21: inter-system interference effects (collisions + carrier sensing)",
        cost: CostTier::Medium,
        scenario: "interference-floor",
        run: fig21::run,
    },
    Experiment {
        id: "fig22",
        title: "Fig. 22: side lobe interference impact",
        cost: CostTier::Slow,
        scenario: "interference-floor",
        run: fig22::run,
    },
    Experiment {
        id: "fig23",
        title: "Fig. 23: reflection interference impact on TCP throughput",
        cost: CostTier::Slow,
        scenario: "reflector-rig",
        run: fig23::run,
    },
    Experiment {
        id: "dynblock",
        title: "Dynamic blockage: walking-blocker transient and MAC recovery",
        cost: CostTier::Medium,
        scenario: "dynamic-blocker",
        run: dynblock::run,
    },
    Experiment {
        id: "churn",
        title: "Link churn: repeated blockage, fault bursts and retrain cadence",
        cost: CostTier::Slow,
        scenario: "link-churn",
        run: churn::run,
    },
    Experiment {
        id: "enterprise",
        title: "Enterprise density: 18-office floor, 108 WiGig links + WiHD, spatial pruning",
        cost: CostTier::Slow,
        scenario: "enterprise-floor",
        run: enterprise::run,
    },
    Experiment {
        id: "cc_compare",
        title: "Congestion control over a blockage transient: Reno vs CUBIC vs rate-probe",
        cost: CostTier::Slow,
        scenario: "dynamic-blocker",
        run: cc_compare::run,
    },
];

/// Look up an experiment descriptor by id.
pub fn find(id: &str) -> Option<&'static Experiment> {
    REGISTRY.iter().find(|e| e.id == id)
}

/// All experiment ids in paper order.
pub fn ids() -> impl Iterator<Item = &'static str> {
    REGISTRY.iter().map(|e| e.id)
}

/// Run one experiment by id in a fresh context. `None` for an unknown id.
/// Callers that need the engine counters afterwards should build their own
/// [`SimCtx`] and call [`Experiment::run`] directly.
pub fn run(id: &str, quick: bool, seed: u64) -> Option<RunReport> {
    find(id).map(|e| e.run(&SimCtx::new(), quick, seed))
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_find_consistent() {
        let mut seen = std::collections::HashSet::new();
        for e in REGISTRY {
            assert!(seen.insert(e.id), "duplicate id {}", e.id);
            let found = find(e.id).expect("find by id");
            assert_eq!(found.title, e.title);
        }
        assert!(find("nope").is_none());
        assert_eq!(ids().count(), REGISTRY.len());
    }

    #[test]
    fn registry_titles_match_reports() {
        // The cheapest experiment: verify descriptor metadata agrees with
        // what the run function reports about itself.
        let e = find("table1").expect("table1 registered");
        let r = e.run(&SimCtx::new(), true, 1);
        assert_eq!(r.id, e.id);
        assert_eq!(r.title, e.title);
    }
}
