//! Fig. 19 — angular reflection profiles of the WiHD link in the same
//! conference room.
//!
//! §4.3: the WiHD profiles "feature more and larger lobes than in
//! [Fig. 18]" — the wider 24-element patterns spray more energy onto the
//! walls, which is exactly why the WiHD system is the worse neighbour.

use super::fig18::{check_room, run_room};
use super::RunReport;
use crate::scenarios::RoomSystem;
use mmwave_sim::ctx::SimCtx;

/// Run the Fig. 19 measurement (and the Fig. 18 baseline for comparison).
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let (_wigig_room, wigig, _) = run_room(ctx, RoomSystem::Wigig, quick, seed);
    let (_wihd_room, wihd, output) = run_room(ctx, RoomSystem::Wihd, quick, seed + 1);

    let mut violations = check_room(&wihd);
    let refl =
        |s: &[super::fig18::ProbeSummary]| -> usize { s.iter().map(|p| p.reflection_lobes).sum() };
    // §4.3: WiHD profiles "feature more and larger lobes". Lobe *counts*
    // are a noisy metric — the wider WiHD beams merge adjacent maxima into
    // single broad lobes — so the count check is loose and the *strength*
    // check below carries the physical claim.
    if refl(&wihd) + 4 < refl(&wigig) {
        violations.push(format!(
            "WiHD reflection lobes ({}) well below WiGig ({})",
            refl(&wihd),
            refl(&wigig)
        ));
    }
    let mean_strength = |s: &[super::fig18::ProbeSummary]| -> f64 {
        let v: Vec<f64> = s.iter().filter_map(|p| p.strongest_reflection_db).collect();
        if v.is_empty() {
            return -60.0;
        }
        v.iter().sum::<f64>() / v.len() as f64
    };
    if mean_strength(&wihd) < mean_strength(&wigig) - 0.5 {
        violations.push(format!(
            "WiHD reflections not larger: {:.1} dB vs WiGig {:.1} dB (rel. peak)",
            mean_strength(&wihd),
            mean_strength(&wigig)
        ));
    }

    RunReport {
        id: "fig19",
        title: "Fig. 19: reflections for DVDO Air-3c WiHD (conference room)",
        output: output
            + &format!(
                "\ntotals — reflection lobes: WiHD {} vs WiGig {}; mean strongest reflection: WiHD {:.1} dB vs WiGig {:.1} dB\n",
                refl(&wihd),
                refl(&wigig),
                mean_strength(&wihd),
                mean_strength(&wigig)
            ),
        violations,
    }
}
