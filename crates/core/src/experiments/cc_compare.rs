//! Congestion control through a blockage transient.
//!
//! The paper's "bane" — a human cutting the LoS for a few hundred ms —
//! looks like heavy congestion to a loss-based TCP: timeouts collapse the
//! window to one segment and recovery climbs back from there long after
//! the beam has retrained. A rate-based controller that models the path
//! instead of reacting to loss keeps its window and resumes at speed the
//! moment frames flow again. This experiment runs the same
//! walking-blocker transient as `dynblock` under each algorithm of the
//! congestion plane ([`mmwave_transport::cc`]) and compares window
//! traces, loss epochs and recovery times.

use super::RunReport;
use crate::report;
use crate::scenarios::seeds;
use mmwave_channel::Environment;
use mmwave_geom::{Angle, Material, Point, Room, Segment, Vec2, Wall};
use mmwave_mac::{Device, Net, NetConfig, Scenario, WorldMutation};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::{SimDuration, SimTime};
use mmwave_transport::{CcKind, Stack, TcpConfig};

/// Everything measured for one algorithm's pass through the transient.
struct AlgOutcome {
    kind: CcKind,
    /// Mean goodput before the walker appears, Mb/s.
    pre_mbps: f64,
    /// Smallest congestion window while the walker crossed, segments.
    min_cwnd: f64,
    /// Loss epochs the datapath counted (fast-recovery entries + first
    /// RTOs).
    loss_epochs: u64,
    /// Time after the walker left until windowed goodput regained 80% of
    /// the pre-blockage mean; `None` if it never did within the run.
    recovery_ms: Option<f64>,
    /// Mean goodput over the tail of the run, Mb/s.
    post_mbps: f64,
    /// Window trace, one sample per ms.
    cwnd_trace: Vec<(f64, f64)>,
}

/// The dynblock rig: open space, a brick wall providing the recovery
/// reflection, a disabled human walker poised to cross the LoS.
fn build_net(ctx: &SimCtx, seed: u64, quick: bool) -> (Net, usize, usize, SimTime, SimTime) {
    let cfg = NetConfig {
        seed,
        enable_fading: false,
        ..NetConfig::default()
    };
    let mut room = Room::open_space();
    room.add_wall(Wall::new(
        Segment::new(Point::new(-1.0, 1.5), Point::new(6.3, 1.5)),
        Material::Brick,
        "reflecting wall",
    ));
    let shape = Segment::new(Point::new(1.7, -0.6), Point::new(1.7, 0.95));
    let walker = room.add_obstacle(shape, Material::Human, "walker");
    room.set_wall_enabled(walker, false);

    let mut net = Net::with_ctx(Environment::new(room), cfg, ctx);
    let dock = net.add_device(Device::wigig_dock(
        ctx,
        "Dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        seeds::DOCK_A,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        ctx,
        "Laptop",
        Point::new(4.8, 0.0),
        Angle::from_degrees(180.0),
        seeds::LAPTOP_A,
    ));
    net.associate_instantly(dock, laptop);

    let t0_ms = 40u64;
    let walk_ms = if quick { 160 } else { 320 };
    let steps = if quick { 16 } else { 32 };
    let t0 = SimTime::from_millis(t0_ms);
    let walk = SimDuration::from_millis(walk_ms);
    let t_end = SimTime::from_millis(t0_ms + walk_ms);
    let scenario = Scenario::new()
        .at(
            t0,
            WorldMutation::SetObstacleEnabled {
                wall: walker,
                enabled: true,
            },
        )
        .walking_blocker(walker, shape, Vec2::new(1.4, 0.0), t0, walk, steps)
        .at(
            t_end,
            WorldMutation::SetObstacleEnabled {
                wall: walker,
                enabled: false,
            },
        );
    net.install_scenario(scenario);
    (net, dock, laptop, t0, t_end)
}

/// Run the transient under one algorithm.
fn run_alg(ctx: &SimCtx, seed: u64, quick: bool, kind: CcKind) -> AlgOutcome {
    let (net, dock, laptop, t0, t_end) = build_net(ctx, seed, quick);
    let mut stack = Stack::new(net);
    let flow = stack.add_flow(TcpConfig {
        cc: Some(kind),
        sample_interval: SimDuration::from_millis(5),
        ..TcpConfig::bulk(dock, laptop, 256 * 1024)
    });

    let total = t_end + SimDuration::from_millis(300);
    let total_ms = (total.as_nanos() / 1_000_000) as u64;
    let mut cwnd_trace = Vec::with_capacity(total_ms as usize + 1);
    let mut min_cwnd = f64::INFINITY;
    // Loss effects of the transit can land just after the walker leaves
    // (an RTO armed during the crossing fires a few ms later).
    let observe_until = t_end + SimDuration::from_millis(20);
    for k in 0..=total_ms {
        let t = SimTime::from_millis(k);
        stack.run_until(t);
        let w = stack.flow(flow).cwnd_segments();
        cwnd_trace.push((k as f64, w));
        if t >= t0 && t <= observe_until {
            min_cwnd = min_cwnd.min(w);
        }
    }

    let stats = stack.flow_stats(flow);
    // Skip the first 20 ms of slow start when establishing the baseline.
    let pre_mbps = stats.mean_goodput_mbps(SimTime::from_millis(20), t0);
    let post_mbps = stats.mean_goodput_mbps(t_end + SimDuration::from_millis(100), total);
    let bin = SimDuration::from_millis(10);
    let recovery_ms = stats
        .goodput_series_mbps(t_end, total, bin)
        .iter()
        .find(|(_, g)| *g >= 0.8 * pre_mbps)
        .map(|(t, _)| (*t - t_end).as_secs_f64() * 1e3);
    AlgOutcome {
        kind,
        pre_mbps,
        min_cwnd,
        loss_epochs: stats.loss_epochs,
        recovery_ms,
        post_mbps,
        cwnd_trace,
    }
}

/// Run the comparison across every registered algorithm.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let outcomes: Vec<AlgOutcome> = CcKind::ALL
        .iter()
        .map(|&kind| run_alg(ctx, seed, quick, kind))
        .collect();

    let mut violations = Vec::new();
    let by = |kind: CcKind| {
        outcomes
            .iter()
            .find(|o| o.kind == kind)
            .expect("all algorithms ran")
    };
    for o in &outcomes {
        if o.pre_mbps < 50.0 {
            violations.push(format!(
                "{}: pre-blockage goodput {:.0} Mb/s (expected a loaded link ≥ 50)",
                o.kind.as_str(),
                o.pre_mbps
            ));
        }
        if o.post_mbps <= 0.0 {
            violations.push(format!(
                "{}: no goodput after the walker left",
                o.kind.as_str()
            ));
        }
    }
    // Loss-based algorithms must experience the transient as loss…
    for kind in [CcKind::Reno, CcKind::Cubic] {
        let o = by(kind);
        if o.loss_epochs == 0 {
            violations.push(format!("{}: blockage opened no loss epoch", kind.as_str()));
        }
        if o.min_cwnd >= 4.0 {
            violations.push(format!(
                "{}: window never collapsed during blockage (min {:.1} segments)",
                kind.as_str(),
                o.min_cwnd
            ));
        }
    }
    // …while the rate-based one must not collapse: its window floor is 4
    // segments and loss reports are ignored by construction.
    let rp = by(CcKind::RateProbe);
    if rp.min_cwnd < 4.0 {
        violations.push(format!(
            "rate_probe: window collapsed to {:.1} segments (loss-blind floor is 4)",
            rp.min_cwnd
        ));
    }
    let loss_based_min = by(CcKind::Reno).min_cwnd.min(by(CcKind::Cubic).min_cwnd);
    if loss_based_min >= rp.min_cwnd {
        violations.push(format!(
            "no loss-based/rate-based divergence: loss-based min cwnd {:.1} ≥ rate_probe {:.1}",
            loss_based_min, rp.min_cwnd
        ));
    }

    let mut output = String::from(
        "== congestion control over a blockage transient ==\n\
         alg         pre Mb/s   min cwnd   loss epochs   recovery ms   post Mb/s\n",
    );
    for o in &outcomes {
        output.push_str(&format!(
            "{:<11} {:>8.0} {:>10.1} {:>13} {:>13} {:>11.0}\n",
            o.kind.as_str(),
            o.pre_mbps,
            o.min_cwnd,
            o.loss_epochs,
            o.recovery_ms
                .map_or("—".to_string(), |ms| format!("{ms:.0}")),
            o.post_mbps,
        ));
    }
    for o in &outcomes {
        let pts: Vec<(f64, f64)> = o.cwnd_trace.iter().step_by(10).cloned().collect();
        output.push('\n');
        output.push_str(&report::series(
            &format!("cwnd trace — {}", o.kind.as_str()),
            "ms",
            "segments",
            &pts,
        ));
    }

    RunReport {
        id: "cc_compare",
        title: "Congestion control over a blockage transient: Reno vs CUBIC vs rate-probe",
        output,
        violations,
    }
}
