//! Fig. 20 — the blocked-LoS link: angular proof + throughput.
//!
//! The angular energy profile at the docking station shows *no* lobe on
//! the line of sight — all energy arrives via the wall — yet Iperf still
//! measures ≈550 Mb/s, more than half of a line-of-sight link.

use super::RunReport;
use crate::analysis::reflections::measure_profile;
use crate::report;
use crate::scenarios::{blocked_los_link, point_to_point};
use mmwave_geom::Angle;
use mmwave_mac::NetConfig;
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::{SimDuration, SimTime};
use mmwave_transport::{Stack, TcpConfig};

/// Run the Fig. 20 measurement.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let cfg = NetConfig {
        seed,
        enable_fading: false,
        ..NetConfig::default()
    };
    let mut b = blocked_los_link(ctx, cfg.clone());
    let mut violations = Vec::new();

    // --- Angular profile at the dock (short loaded run) ---
    let mut i = 0u64;
    let profile_window = SimTime::from_millis(20);
    while b.net.now() < profile_window {
        for _ in 0..20 {
            b.net.push_mpdu(b.laptop, 1500, i);
            i += 1;
        }
        let t = b.net.now();
        b.net.run_until(t + SimDuration::from_micros(400));
    }
    let dock_pos = b.net.device(b.dock).node.position;
    let laptop_pos = b.net.device(b.laptop).node.position;
    let profile = measure_profile(&b.net, dock_pos, 120, SimTime::ZERO, profile_window);
    let los_dir = Angle::from_radians((laptop_pos - dock_pos).angle());
    // The wall bounce arrives from up-and-right (towards the reflection
    // point at y = wall height).
    let bounce_dir = Angle::from_radians(
        (mmwave_geom::Point::new(laptop_pos.x / 2.0, b.wall_y) - dock_pos).angle(),
    );
    if profile.has_lobe_toward(los_dir, 12f64.to_radians(), 1.0, 6.0) {
        violations.push("profile still shows a line-of-sight lobe — blockage failed".into());
    }
    if !profile.has_lobe_toward(bounce_dir, 18f64.to_radians(), 1.0, 3.0) {
        violations.push(format!(
            "dominant energy does not arrive via the wall (expected from {bounce_dir})"
        ));
    }

    // --- TCP throughput over the reflection ---
    let b2 = blocked_los_link(
        ctx,
        NetConfig {
            seed: seed + 1,
            ..cfg.clone()
        },
    );
    let mut stack = Stack::new(b2.net);
    // Download direction (dock → laptop), the docking station's main use.
    let flow = stack.add_flow(TcpConfig::bulk(b2.dock, b2.laptop, 256 * 1024));
    let end = SimTime::from_secs_f64(if quick { 1.0 } else { 3.0 });
    stack.run_until(end);
    let nlos = stack
        .flow_stats(flow)
        .mean_goodput_mbps(SimTime::from_millis(300), end);

    // Line-of-sight reference at the same distance.
    let p = point_to_point(
        ctx,
        4.8,
        NetConfig {
            seed: seed + 2,
            ..cfg
        },
    );
    let mut los_stack = Stack::new(p.net);
    let los_flow = los_stack.add_flow(TcpConfig::bulk(p.dock, p.laptop, 256 * 1024));
    los_stack.run_until(end);
    let los = los_stack
        .flow_stats(los_flow)
        .mean_goodput_mbps(SimTime::from_millis(300), end);

    // §4.3: ≈550 Mb/s, "more than half of what we measure on line-of-sight
    // links".
    // The reflected link runs BPSK 5/8 (≈963 Mb/s PHY): materially slower
    // than LoS but clearly usable — the paper measured 550 Mb/s; our MAC's
    // per-burst overheads land somewhat higher (see EXPERIMENTS.md).
    if !(450.0..=820.0).contains(&nlos) {
        violations.push(format!("NLoS throughput {nlos:.0} Mb/s (paper: ≈550)"));
    }
    if nlos < 0.5 * los {
        violations.push(format!("NLoS {nlos:.0} below half of LoS {los:.0}"));
    }
    if nlos > 0.95 * los {
        violations.push(format!(
            "NLoS {nlos:.0} indistinguishable from LoS {los:.0} — reflection loss missing"
        ));
    }

    let output = report::polar(
        "Fig. 20 — angular energy profile at the docking station (LoS blocked)",
        &profile.normalized_db(),
    ) + &format!(
        "\nLoS direction: {los_dir} (no lobe)   wall bounce: {bounce_dir} (dominant)\n\
         TCP over the reflection: {nlos:.0} Mb/s   line-of-sight reference: {los:.0} Mb/s\n"
    );

    RunReport {
        id: "fig20",
        title: "Fig. 20: angular profile and throughput with link blockage",
        output,
        violations,
    }
}
