//! Link churn — repeated blockage crossings, fault bursts and interferer
//! toggles over a long run.
//!
//! The Fig. 14 trace shows that even a nominally static link keeps
//! retraining; here the churn is scripted and much denser. Every epoch a
//! human crosses the line of sight (open space, no recovery reflection —
//! the link drops and must rediscover), an injected frame-error burst and
//! a beacon-loss burst exercise the loss-triggered recovery paths while
//! the channel is actually fine (the SNR gate must absorb them), and the
//! WiHD interferer's video stream toggles. The reproduction criterion is
//! the cadence: the link retrains every epoch, deliveries resume after
//! every crossing, and the MAC ends the run clean.

use super::RunReport;
use crate::report;
use crate::scenarios::seeds;
use mmwave_channel::Environment;
use mmwave_geom::{Angle, Material, Point, Room, Segment, Vec2};
use mmwave_mac::device::WigigState;
use mmwave_mac::{Delivery, Device, FaultKind, Net, NetConfig, Scenario, WorldMutation};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::{SimDuration, SimTime};

/// Run the link-churn campaign.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let cfg = NetConfig {
        seed,
        enable_fading: false,
        ..NetConfig::default()
    };

    let mut room = Room::open_space();
    // The crossing human, parked below the corridor and off stage.
    let shape = Segment::new(Point::new(1.5, -1.7), Point::new(1.5, -0.7));
    let walker = room.add_obstacle(shape, Material::Human, "walker");
    room.set_wall_enabled(walker, false);

    let mut net = Net::with_ctx(Environment::new(room), cfg, ctx);
    let dock = net.add_device(Device::wigig_dock(
        ctx,
        "Dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        seeds::DOCK_A,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        ctx,
        "Laptop",
        Point::new(3.0, 0.0),
        Angle::from_degrees(180.0),
        seeds::LAPTOP_A,
    ));
    // A WiHD pair running parallel 4 m away — its video stream is the
    // scripted on/off interferer.
    let hdmi_tx = net.add_device(Device::wihd_source(
        ctx,
        "HDMI TX",
        Point::new(1.5, 4.0),
        Angle::ZERO,
        seeds::WIHD_TX,
    ));
    let hdmi_rx = net.add_device(Device::wihd_sink(
        ctx,
        "HDMI RX",
        Point::new(4.5, 4.0),
        Angle::from_degrees(180.0),
        seeds::WIHD_RX,
    ));
    net.associate_instantly(dock, laptop);
    net.pair_wihd_instantly(hdmi_tx, hdmi_rx);

    let epochs = if quick { 4 } else { 12 };
    let epoch_ms = 800u64;
    let start_ms = 300u64;
    let cross = SimDuration::from_millis(150);
    let mut sc = Scenario::new();
    for e in 0..epochs {
        let te_ms = start_ms + e * epoch_ms;
        let te = SimTime::from_millis(te_ms);
        // The crossing: enable, walk through the LoS (alternating
        // direction each epoch), disappear again.
        let (from, sweep) = if e % 2 == 0 {
            (shape, Vec2::new(0.0, 2.4))
        } else {
            (
                Segment::new(Point::new(1.5, 0.7), Point::new(1.5, 1.7)),
                Vec2::new(0.0, -2.4),
            )
        };
        sc = sc
            .at(
                te,
                WorldMutation::SetObstacleEnabled {
                    wall: walker,
                    enabled: true,
                },
            )
            .walking_blocker(walker, from, sweep, te, cross, 10)
            .at(
                SimTime::from_millis(te_ms + 150),
                WorldMutation::SetObstacleEnabled {
                    wall: walker,
                    enabled: false,
                },
            );
        // Fault bursts against a *healthy* channel: the SNR gate must
        // absorb them without spending recovery budget.
        sc = sc
            .at(
                SimTime::from_millis(te_ms + 400),
                WorldMutation::InjectFaults {
                    dev: laptop,
                    kind: FaultKind::AllFrames,
                    until: SimTime::from_millis(te_ms + 406),
                },
            )
            .at(
                SimTime::from_millis(te_ms + 550),
                WorldMutation::InjectFaults {
                    dev: laptop,
                    kind: FaultKind::BeaconsOnly,
                    until: SimTime::from_millis(te_ms + 580),
                },
            );
        // The interferer's power switch.
        sc = sc
            .at(
                SimTime::from_millis(te_ms + 200),
                WorldMutation::SetVideo {
                    dev: hdmi_tx,
                    on: false,
                },
            )
            .at(
                SimTime::from_millis(te_ms + 600),
                WorldMutation::SetVideo {
                    dev: hdmi_tx,
                    on: true,
                },
            );
    }
    let expected_mutations = sc.len() as u64;
    net.install_scenario(sc);

    // Drive traffic for the whole run, bucketing deliveries per epoch.
    let total_ms = start_ms + epochs * epoch_ms + 300;
    let mut per_epoch = vec![0u64; epochs as usize];
    let mut tag = 0u64;
    for k in 0..=total_ms {
        for _ in 0..4 {
            net.push_mpdu(dock, 1500, tag);
            tag += 1;
        }
        net.run_until(SimTime::from_millis(k));
        let mpdus = net
            .take_deliveries()
            .iter()
            .filter(|d| matches!(d, Delivery::Mpdu { .. }))
            .count() as u64;
        if k >= start_ms {
            let e = ((k - start_ms) / epoch_ms).min(epochs - 1) as usize;
            per_epoch[e] += mpdus;
        }
    }
    // Drain without fresh traffic.
    net.run_until(SimTime::from_millis(total_ms + 80));

    let mut violations = Vec::new();
    let retrains = net.device(dock).stats.retrains + net.device(laptop).stats.retrains;
    // Cadence: at least one retrain (realignment or re-association) per
    // crossing.
    if retrains < epochs {
        violations.push(format!(
            "{retrains} retrains over {epochs} crossings (expected ≥ one each)"
        ));
    }
    for (e, n) in per_epoch.iter().enumerate() {
        if *n == 0 {
            violations.push(format!(
                "no MPDUs delivered in epoch {e} — link never resumed"
            ));
        }
    }
    if net.device(dock).wigig().expect("wigig").state != WigigState::Associated {
        violations.push("link not re-established at end of run".into());
    }
    if net.faults_injected() == 0 {
        violations.push("injected fault windows corrupted no frames".into());
    }
    if net.scenario_mutations() != expected_mutations {
        violations.push(format!(
            "applied {} of {expected_mutations} scripted mutations",
            net.scenario_mutations()
        ));
    }
    for d in [dock, laptop] {
        let w = net.device(d).wigig().expect("wigig");
        if w.in_txop || w.awaiting_ack.is_some() || w.pending_cts.is_some() {
            violations.push(format!("device {d} left with dangling TXOP state"));
        }
    }

    let pts: Vec<(f64, f64)> = per_epoch
        .iter()
        .enumerate()
        .map(|(e, n)| (e as f64, *n as f64))
        .collect();
    let output = report::series(
        "Link churn — MPDUs delivered per 800 ms epoch (one crossing each)",
        "epoch",
        "MPDUs",
        &pts,
    ) + &format!(
        "\nretrains: {retrains}   faults injected: {}   drops: {}\n",
        net.faults_injected(),
        net.device(dock).stats.drops,
    );

    RunReport {
        id: "churn",
        title: "Link churn: repeated blockage, fault bursts and retrain cadence",
        output,
        violations,
    }
}
