//! Fig. 23 — reflection interference impact on TCP throughput.
//!
//! The shielded rig of Fig. 7: WiHD energy reaches the dock only via the
//! metal reflector. With the WiHD on, TCP throughput drops by ≈200 Mb/s on
//! average (worst dips ≈300 Mb/s, up to 33 %) and fluctuates; switching
//! the WiHD off restores a stable ≈950 Mb/s.

use super::RunReport;
use crate::report;
use crate::scenarios::reflector_rig;
use mmwave_mac::NetConfig;
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::{SimDuration, SimTime};
use mmwave_transport::{Stack, TcpConfig};

/// Run the Fig. 23 measurement.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let (total_s, off_s) = if quick { (36.0, 24.0) } else { (120.0, 90.0) };
    // Fading ON: the reflected interference hovers at the dock's
    // clear-channel threshold, and the slow fading toggling it across is
    // what produces the paper's strong throughput fluctuation.
    let r = reflector_rig(
        ctx,
        NetConfig {
            seed,
            ..NetConfig::default()
        },
    );
    let (dock, laptop, hdmi_tx) = (r.dock, r.laptop, r.hdmi_tx);
    let mut net = r.net;
    net.txlog_mut().set_enabled(false);
    let mut stack = Stack::new(net);
    // §4.4: 250 KB window, frame flow laptop → dock.
    let flow = stack.add_flow(TcpConfig::bulk(laptop, dock, 250 * 1024));
    stack.run_until(SimTime::from_secs_f64(off_s));
    stack.net.set_video(hdmi_tx, false);
    stack.run_until(SimTime::from_secs_f64(total_s));

    let bin = SimDuration::from_secs(2);
    let series = stack.flow_stats(flow).goodput_series_mbps(
        SimTime::ZERO,
        SimTime::from_secs_f64(total_s),
        bin,
    );
    let on_window: Vec<f64> = series
        .iter()
        .filter(|(t, _)| t.as_secs_f64() >= 4.0 && t.as_secs_f64() < off_s - 2.0)
        .map(|(_, g)| *g)
        .collect();
    let off_window: Vec<f64> = series
        .iter()
        .filter(|(t, _)| t.as_secs_f64() >= off_s + 2.0)
        .map(|(_, g)| *g)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let std = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len().max(1) as f64).sqrt()
    };
    let on_mean = mean(&on_window);
    let off_mean = mean(&off_window);
    let worst = on_window.iter().cloned().fold(f64::MAX, f64::min);
    let drop = off_mean - on_mean;
    let worst_drop = off_mean - worst;

    let mut violations = Vec::new();
    // Clean link runs near the GigE cap.
    if off_mean < 850.0 {
        violations.push(format!("clean throughput only {off_mean:.0} Mb/s"));
    }
    // ≈200 Mb/s (≈20 %) average loss under the reflected interference.
    if !(90.0..=380.0).contains(&drop) {
        violations.push(format!(
            "average degradation {drop:.0} Mb/s (paper: ≈200, i.e. ≈20%)"
        ));
    }
    // Worst 2 s bin dips ≈300 Mb/s (up to 33 %).
    if worst_drop < 150.0 {
        violations.push(format!("worst dip only {worst_drop:.0} Mb/s (paper: ≈300)"));
    }
    if worst_drop > 0.6 * off_mean {
        violations.push(format!(
            "worst dip {worst_drop:.0} Mb/s too deep — interference overpowering"
        ));
    }
    // Fluctuation: interference period noisier than the clean period.
    if std(&on_window) <= std(&off_window) {
        violations.push(format!(
            "throughput not fluctuating under interference (σ {:.0} vs clean σ {:.0})",
            std(&on_window),
            std(&off_window)
        ));
    }

    let pts: Vec<(f64, f64)> = series.iter().map(|(t, g)| (t.as_secs_f64(), *g)).collect();
    let output = report::series(
        "Fig. 23 — TCP throughput over time (WiHD off at the marked time)",
        "t (s)",
        "Mb/s",
        &pts,
    ) + &format!(
        "\nWiHD on: mean {on_mean:.0} Mb/s (worst bin {worst:.0})   WiHD off: mean {off_mean:.0} Mb/s\n\
         degradation: {drop:.0} Mb/s average ({:.0}%), {worst_drop:.0} Mb/s worst\n",
        100.0 * drop / off_mean.max(1.0)
    );

    RunReport {
        id: "fig23",
        title: "Fig. 23: reflection interference impact on TCP throughput",
        output,
        violations,
    }
}
