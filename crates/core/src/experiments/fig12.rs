//! Fig. 12 — reported PHY rate over time, with low traffic, at 2/8/14 m.
//!
//! The paper reads the rate from the D5000 driver while barely loading the
//! link, showing: 16-QAM 5/8 pinned at 2 m, QPSK-class rates at 8 m, and
//! low, unstable rates at 14 m — and never the standard's highest MCS.

use super::RunReport;
use crate::report;
use crate::scenarios::point_to_point;
use mmwave_mac::NetConfig;
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::SimTime;

/// One distance's sampled rate trace.
#[derive(Clone, Debug)]
pub struct RateTrace {
    /// Link distance, m.
    pub distance_m: f64,
    /// Sampled `(minute, rate in Gb/s)` points (0 when unassociated).
    pub samples: Vec<(f64, f64)>,
    /// Distinct MCS labels observed.
    pub labels: Vec<String>,
}

fn run_distance(ctx: &SimCtx, distance_m: f64, seed: u64, minutes: u64) -> RateTrace {
    let mut p = point_to_point(
        ctx,
        distance_m,
        NetConfig {
            seed,
            ..NetConfig::default()
        }, // fading ON: Fig. 12 needs it
    );
    let mut samples = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    let step_s = 10u64;
    for k in 0..=(minutes * 60 / step_s) {
        p.net.txlog_mut().clear(); // long idle run: keep memory flat
        p.net.run_until(SimTime::from_secs(k * step_s));
        let w = p.net.device(p.dock).wigig().expect("wigig");
        let (rate, label) = if w.state == mmwave_mac::device::WigigState::Associated {
            (w.adapter.current().rate_gbps(), w.adapter.current().label())
        } else {
            (0.0, "link broken".to_string())
        };
        samples.push((k as f64 * step_s as f64 / 60.0, rate));
        if !labels.contains(&label) {
            labels.push(label);
        }
    }
    RateTrace {
        distance_m,
        samples,
        labels,
    }
}

/// Run the Fig. 12 campaign.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let minutes = if quick { 3 } else { 10 };
    let traces: Vec<RateTrace> = [2.0, 8.0, 14.0]
        .into_iter()
        .enumerate()
        .map(|(i, d)| run_distance(ctx, d, seed + i as u64, minutes))
        .collect();

    let mut violations = Vec::new();
    let stats = |t: &RateTrace| {
        let vals: Vec<f64> = t.samples.iter().map(|(_, r)| *r).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let distinct = {
            let mut v: Vec<i64> = vals.iter().map(|r| (r * 1000.0) as i64).collect();
            v.sort();
            v.dedup();
            v.len()
        };
        (mean, distinct)
    };

    // 2 m: pinned at 16-QAM 5/8 = 3.85 Gb/s, never the highest MCS (4.62).
    let (mean2, _) = stats(&traces[0]);
    if (mean2 - 3.85).abs() > 0.05 {
        violations.push(format!("2 m mean rate {mean2:.2} Gb/s ≠ 3.85 (16-QAM 5/8)"));
    }
    if traces
        .iter()
        .any(|t| t.samples.iter().any(|(_, r)| *r > 4.0))
    {
        violations.push("observed a rate above 16-QAM 5/8 — the D5000 never uses MCS 12".into());
    }
    // 8 m: QPSK-class (1.54–2.5 Gb/s).
    let (mean8, _) = stats(&traces[1]);
    if !(1.3..=2.7).contains(&mean8) {
        violations.push(format!(
            "8 m mean rate {mean8:.2} Gb/s outside the QPSK band"
        ));
    }
    // 14 m: lower and unstable.
    let (mean14, distinct14) = stats(&traces[2]);
    if mean14 >= mean8 {
        violations.push(format!(
            "14 m mean {mean14:.2} not below 8 m mean {mean8:.2}"
        ));
    }
    if distinct14 < 2 {
        violations.push("14 m link suspiciously stable (single rate for the whole run)".into());
    }

    let mut output = String::new();
    for t in &traces {
        let pts: Vec<(f64, f64)> = t.samples.iter().step_by(3).cloned().collect();
        output.push_str(&report::series(
            &format!(
                "Fig. 12 — PHY rate at {} m (labels seen: {})",
                t.distance_m,
                t.labels.join(", ")
            ),
            "minute",
            "rate (Gb/s)",
            &pts,
        ));
        output.push('\n');
    }

    RunReport {
        id: "fig12",
        title: "Fig. 12: MCS with low traffic",
        output,
        violations,
    }
}
