//! Fig. 18 — angular reflection profiles of the D5000 link in the
//! conference room.
//!
//! At six probe positions, most profiles show a lobe towards the
//! transmitter and one towards the receiver (its ACK traffic), and a
//! significant number show *additional* lobes pointing at walls — first-
//! and second-order reflections.

use super::RunReport;
use crate::analysis::reflections::{expected_directions, measure_profile, unattributed_lobes};
use crate::report;
use crate::scenarios::{reflection_room, ReflectionRoom, RoomSystem};
use mmwave_mac::NetConfig;
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::{SimDuration, SimTime};

/// Per-probe profile summary shared with Fig. 19.
pub struct ProbeSummary {
    /// Probe letter.
    pub letter: char,
    /// Total lobes within 12 dB of the profile peak.
    pub lobes: usize,
    /// Lobes not pointing at either device.
    pub reflection_lobes: usize,
    /// Level of the strongest reflection lobe relative to the profile
    /// peak, dB (None if no reflection lobe).
    pub strongest_reflection_db: Option<f64>,
    /// Whether lobes towards TX and RX were found.
    pub tx_rx_seen: (bool, bool),
}

/// Run the room campaign for one system; shared by Figs. 18 and 19.
pub fn run_room(
    ctx: &SimCtx,
    system: RoomSystem,
    quick: bool,
    seed: u64,
) -> (ReflectionRoom, Vec<ProbeSummary>, String) {
    let mut r = reflection_room(
        ctx,
        system,
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        },
    );
    let horizon = SimTime::from_millis(if quick { 30 } else { 120 });
    match system {
        RoomSystem::Wigig => {
            // Load the laptop→dock direction.
            let mut i = 0u64;
            while r.net.now() < horizon {
                for _ in 0..20 {
                    r.net.push_mpdu(r.tx, 1500, i);
                    i += 1;
                }
                let t = r.net.now();
                r.net.run_until(t + SimDuration::from_micros(400));
            }
        }
        RoomSystem::Wihd => {
            r.net.run_until(horizon); // video streams by itself
        }
    }

    let tol = 16f64.to_radians();
    let mut output = String::new();
    let mut summaries = Vec::new();
    for (letter, pos) in r.layout.probes {
        let profile = measure_profile(&r.net, pos, 120, SimTime::ZERO, horizon);
        let exp = expected_directions(&r.net, pos, r.tx, r.rx);
        let pattern = profile.as_pattern();
        let peak = pattern.peak().gain_dbi;
        let lobes = pattern
            .lobes(1.0)
            .into_iter()
            .filter(|l| l.gain_dbi >= peak - 12.0)
            .count();
        let refl_dirs = unattributed_lobes(&profile, &exp, tol, 1.0, 12.0);
        let refl = refl_dirs.len();
        let strongest_reflection_db = refl_dirs
            .iter()
            .map(|d| pattern.gain_dbi(*d) - peak)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            });
        let tx_seen = profile.has_lobe_toward(exp.toward_tx, tol, 1.0, 20.0);
        let rx_seen = profile.has_lobe_toward(exp.toward_rx, tol, 1.0, 20.0);
        output.push_str(&report::polar(
            &format!(
                "position {letter}: {lobes} lobes (≤8 dB), {refl} reflection lobes, TX {} RX {}",
                if tx_seen { "✓" } else { "✗" },
                if rx_seen { "✓" } else { "✗" }
            ),
            &profile.normalized_db(),
        ));
        output.push('\n');
        summaries.push(ProbeSummary {
            letter,
            lobes,
            reflection_lobes: refl,
            strongest_reflection_db,
            tx_rx_seen: (tx_seen, rx_seen),
        });
    }
    (r, summaries, output)
}

/// Shape checks common to Figs. 18/19.
pub fn check_room(summaries: &[ProbeSummary]) -> Vec<String> {
    let mut violations = Vec::new();
    // "most angular patterns have at least two clearly identifiable lobes"
    let two_plus = summaries.iter().filter(|s| s.lobes >= 2).count();
    if two_plus < 4 {
        violations.push(format!("only {two_plus}/6 probes show ≥2 lobes"));
    }
    // TX or RX lobe visible almost everywhere.
    let endpoint_seen = summaries
        .iter()
        .filter(|s| s.tx_rx_seen.0 || s.tx_rx_seen.1)
        .count();
    if endpoint_seen < 5 {
        violations.push(format!(
            "device lobes visible at only {endpoint_seen}/6 probes"
        ));
    }
    // "a significant number of angular patterns feature additional lobes"
    let with_reflections = summaries.iter().filter(|s| s.reflection_lobes > 0).count();
    if with_reflections < 2 {
        violations.push(format!(
            "reflection lobes at only {with_reflections}/6 probes — reflections too weak"
        ));
    }
    violations
}

/// Run the Fig. 18 measurement.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let (_room, summaries, output) = run_room(ctx, RoomSystem::Wigig, quick, seed);
    let violations = check_room(&summaries);
    RunReport {
        id: "fig18",
        title: "Fig. 18: reflections for Dell D5000 (conference room, probes A–F)",
        output,
        violations,
    }
}
