//! The TCP-throughput sweep behind Figs. 9, 10 and 11 and the §4.1
//! aggregation findings.
//!
//! §4.1: "We control the TCP throughput by adjusting its window size in
//! Iperf" — plus application pacing for the kb/s operating points (the
//! real setup reached those through pathological small-window TCP
//! behaviour; pacing exercises the same MAC-side code path: rare, lone
//! MPDUs). Every operating point is labelled with the *measured*
//! throughput, exactly as the paper's x-axes are.

use super::RunReport;
use crate::analysis::aggregation::{self, SweepPoint};
use crate::analysis::frame_level;
use crate::report;
use crate::scenarios::point_to_point;
use mmwave_mac::{FrameClass, NetConfig};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::metrics::EngineCounters;
use mmwave_sim::stats::Cdf;
use mmwave_sim::time::{SimDuration, SimTime};
use mmwave_transport::{Stack, TcpConfig};
use std::cell::RefCell;
use std::collections::HashMap;

/// One measured operating point.
#[derive(Clone, Debug)]
pub struct PointData {
    /// Human label ("9.7 kbps", "930 mbps" style, from the measurement).
    pub label: String,
    /// Measured TCP goodput, Mb/s.
    pub throughput_mbps: f64,
    /// Dock data-frame durations, µs.
    pub durations_us: Vec<f64>,
    /// Fraction of frames > 5 µs.
    pub long_fraction: f64,
    /// Fig. 11 windowed medium usage.
    pub medium_usage: f64,
    /// Dominant MCS index.
    pub mcs: u8,
}

impl PointData {
    fn max_frame_us(&self) -> f64 {
        self.durations_us.iter().cloned().fold(0.0, f64::max)
    }
}

fn label_of(mbps: f64) -> String {
    if mbps < 1.0 {
        format!("{:.1} kbps", mbps * 1000.0)
    } else {
        format!("{mbps:.0} mbps")
    }
}

/// Run one operating point and measure everything the three figures need.
fn run_point(ctx: &SimCtx, seed: u64, pace_bps: Option<u64>, window: u64, secs: f64) -> PointData {
    let p = point_to_point(
        ctx,
        2.0,
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        },
    );
    let dock = p.dock;
    let mut stack = Stack::new(p.net);
    let cfg = match pace_bps {
        Some(r) => TcpConfig::paced(dock, p.laptop, r),
        None => TcpConfig::bulk(dock, p.laptop, window),
    };
    let flow = stack.add_flow(cfg);
    let warmup = SimTime::from_millis(300);
    let end = SimTime::from_secs_f64(0.3 + secs);
    stack.run_until(end);
    let throughput = stack.flow_stats(flow).mean_goodput_mbps(warmup, end);
    let net = &stack.net;
    let durations_us = frame_level::data_frame_durations_us(net, dock, warmup, end);
    // 6 µs boundary: a lone 1500 B MPDU at MCS 11 is ≈5.1 µs ("around
    // 5 µs" in the paper); anything longer carries ≥2 MPDUs.
    let long_fraction = frame_level::long_frame_fraction(net, dock, warmup, end, 6.0);
    let medium_usage = frame_level::medium_usage(net, warmup, end, SimDuration::from_millis(1));
    // Dominant MCS among the dock's data frames.
    let mut counts: HashMap<u8, usize> = HashMap::new();
    for e in net.txlog().of(dock, FrameClass::Data) {
        if let Some(m) = e.mcs {
            *counts.entry(m).or_insert(0) += 1;
        }
    }
    let mcs = counts
        .into_iter()
        .max_by_key(|(_, c)| *c)
        .map(|(m, _)| m)
        .unwrap_or(0);
    PointData {
        label: label_of(throughput),
        throughput_mbps: throughput,
        durations_us,
        long_fraction,
        medium_usage,
        mcs,
    }
}

/// Collect the full sweep (cached per `(quick, seed)` in a slot on the
/// simulation context, because four experiments share it).
///
/// The cache also stores the engine-counter delta of the simulation that
/// filled it, and merges it back into the context on every hit — so
/// fig09/10/11/aggr all report the same scheduler activity no matter
/// which of them ran first on a shared context. The campaign runner gives
/// every task a fresh context, where the fill's delta on zeroed counters
/// equals the merge a hit would have applied — artifact counters are
/// identical either way.
pub fn collect(ctx: &SimCtx, quick: bool, seed: u64) -> Vec<PointData> {
    #[derive(Default)]
    struct SweepCache {
        map: RefCell<HashMap<(bool, u64), (Vec<PointData>, EngineCounters)>>,
    }
    let cache = ctx.ext_or_insert_with(SweepCache::default);
    if let Some((v, counters)) = cache.map.borrow().get(&(quick, seed)) {
        ctx.merge_counters(*counters);
        return v.clone();
    }
    let before = ctx.counters();
    let secs: f64 = if quick { 0.6 } else { 2.0 };
    // Paced points reproduce the paper's low/medium ladder (9.7 kb/s …
    // 372 Mb/s). The real setup reached these via the Iperf window knob
    // over a ~2 ms RTT; our simulated RTT is ~10× shorter, which makes
    // window-clamped mid-rate flows artificially bursty — pacing restores
    // the smooth arrival process the real TCP had (see DESIGN.md). The
    // top of the ladder uses window clamping as in the paper.
    let paced: &[u64] = if quick {
        &[9_700, 171_000_000]
    } else {
        &[9_700, 40_000, 171_000_000, 372_000_000, 601_000_000]
    };
    let mut points = Vec::new();
    for (i, &r) in paced.iter().enumerate() {
        points.push(run_point(
            ctx,
            seed + i as u64,
            Some(r),
            0,
            secs.max(2.0).min(if r > 1_000_000 { secs } else { 9.0 }),
        ));
    }
    let windows: &[u64] = if quick {
        &[64 * 1024, 256 * 1024]
    } else {
        &[64 * 1024, 128 * 1024, 256 * 1024]
    };
    for (i, &w) in windows.iter().enumerate() {
        points.push(run_point(ctx, seed + 20 + i as u64, None, w, secs));
    }
    points.sort_by(|a, b| {
        a.throughput_mbps
            .partial_cmp(&b.throughput_mbps)
            .expect("finite")
    });
    let after = ctx.counters();
    let delta = EngineCounters {
        events_popped: after.events_popped - before.events_popped,
        events_cancelled: after.events_cancelled - before.events_cancelled,
        // The watermark isn't separable from prior activity; campaign
        // tasks run on a fresh context, and all four sweep consumers call
        // collect() first, so this is the fill's own peak.
        peak_queue_depth: after.peak_queue_depth,
        link_gain_hits: after.link_gain_hits - before.link_gain_hits,
        link_gain_misses: after.link_gain_misses - before.link_gain_misses,
        link_gain_invalidations: after.link_gain_invalidations - before.link_gain_invalidations,
        scenario_mutations: after.scenario_mutations - before.scenario_mutations,
        faults_injected: after.faults_injected - before.faults_injected,
        codebook_hits: after.codebook_hits - before.codebook_hits,
        codebook_misses: after.codebook_misses - before.codebook_misses,
        codebook_prebuilt_hits: after.codebook_prebuilt_hits - before.codebook_prebuilt_hits,
        cc_reports_folded: after.cc_reports_folded - before.cc_reports_folded,
        cc_patterns_installed: after.cc_patterns_installed - before.cc_patterns_installed,
        cc_loss_epochs: after.cc_loss_epochs - before.cc_loss_epochs,
        spatial_pruned_pairs: after.spatial_pruned_pairs - before.spatial_pruned_pairs,
        spatial_zone_invalidations: after.spatial_zone_invalidations
            - before.spatial_zone_invalidations,
    };
    cache
        .map
        .borrow_mut()
        .insert((quick, seed), (points.clone(), delta));
    points
}

/// Fig. 9 — frame-length CDFs per throughput.
pub fn run_fig09(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let points = collect(ctx, quick, seed);
    let mut output = String::new();
    let grid: Vec<f64> = (0..=26).map(|x| x as f64).collect();
    let mut violations = Vec::new();
    for p in &points {
        if p.durations_us.is_empty() {
            violations.push(format!("{}: no data frames", p.label));
            continue;
        }
        let mut cdf = Cdf::from_samples(p.durations_us.iter().cloned());
        let curve = cdf.curve(&grid);
        let compact: String = curve
            .iter()
            .step_by(5)
            .map(|(x, y)| format!("{x:>2.0}µs:{y:>4.2}"))
            .collect::<Vec<_>>()
            .join("  ");
        output.push_str(&format!("{:>10}  {compact}\n", p.label));
        // Shape: nothing beyond ~26 µs; the kbps points are all-short.
        if cdf.max() > 26.0 {
            violations.push(format!(
                "{}: frame of {:.1} µs beyond the 25 µs cap",
                p.label,
                cdf.max()
            ));
        }
        if p.throughput_mbps < 1.0 && cdf.fraction_above(6.0) > 0.05 {
            violations.push(format!("{}: kbps point has long frames", p.label));
        }
    }
    // Bimodality: the top point must have clear mass at both ends.
    if let Some(top) = points.last() {
        let mut cdf = Cdf::from_samples(top.durations_us.iter().cloned());
        let short = cdf.probability_at(6.0);
        let long = cdf.fraction_above(15.0);
        if long < 0.5 {
            violations.push(format!(
                "top point {}: only {:.0}% of frames ≥ 15 µs",
                top.label,
                long * 100.0
            ));
        }
        let _ = short;
    }
    RunReport {
        id: "fig09",
        title: "Fig. 9: WiGig data frame length (CDF per TCP throughput)",
        output,
        violations,
    }
}

/// Fig. 10 — percentage of long frames per throughput.
pub fn run_fig10(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let points = collect(ctx, quick, seed);
    let bars: Vec<(String, f64)> = points
        .iter()
        .map(|p| (p.label.clone(), p.long_fraction * 100.0))
        .collect();
    let mut violations = Vec::new();
    // The fraction grows with throughput: ends anchored, grossly monotone.
    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        if first.long_fraction > 0.1 {
            violations.push(format!(
                "lowest point {} already has {:.0}% long frames",
                first.label,
                first.long_fraction * 100.0
            ));
        }
        if last.long_fraction < 0.7 {
            violations.push(format!(
                "highest point {} has only {:.0}% long frames",
                last.label,
                last.long_fraction * 100.0
            ));
        }
    }
    for w in points.windows(2) {
        if w[1].long_fraction + 0.15 < w[0].long_fraction {
            violations.push(format!(
                "long-frame fraction not increasing: {} {:.2} → {} {:.2}",
                w[0].label, w[0].long_fraction, w[1].label, w[1].long_fraction
            ));
        }
    }
    RunReport {
        id: "fig10",
        title: "Fig. 10: percentage of long frames in WiGig",
        output: report::bars("Fig. 10 — long frames [%] per TCP throughput", &bars, 40),
        violations,
    }
}

/// Fig. 11 — windowed medium usage per throughput.
pub fn run_fig11(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let points = collect(ctx, quick, seed);
    let bars: Vec<(String, f64)> = points
        .iter()
        .map(|p| (p.label.clone(), p.medium_usage * 100.0))
        .collect();
    let mut violations = Vec::new();
    for p in &points {
        if p.throughput_mbps < 1.0 && p.medium_usage > 0.10 {
            violations.push(format!(
                "{}: kbps point shows {:.0}% medium usage",
                p.label,
                p.medium_usage * 100.0
            ));
        }
        // §4.1: "beyond a relatively low throughput value, all oscilloscope
        // traces contained data frames".
        if p.throughput_mbps > 150.0 && p.medium_usage < 0.95 {
            violations.push(format!(
                "{}: expected saturated medium usage, got {:.0}%",
                p.label,
                p.medium_usage * 100.0
            ));
        }
    }
    RunReport {
        id: "fig11",
        title: "Fig. 11: WiGig medium usage",
        output: report::bars("Fig. 11 — medium usage [%] per TCP throughput", &bars, 40),
        violations,
    }
}

/// The §4.1/§5 aggregation summary (5.4× at ≤ 25 µs).
pub fn run_aggr(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let points = collect(ctx, quick, seed);
    let sweep: Vec<SweepPoint> = points
        .iter()
        .map(|p| SweepPoint {
            throughput_mbps: p.throughput_mbps,
            long_frame_fraction: p.long_fraction,
            medium_usage: p.medium_usage,
            mcs: p.mcs,
            max_frame_us: p.max_frame_us(),
        })
        .collect();
    let mut violations = Vec::new();
    let mut output = String::new();
    match aggregation::summarize(&sweep) {
        Some(s) => {
            let adv = aggregation::timescale_advantage(s.max_aggregation_us);
            output.push_str(&report::table(
                "Aggregation findings (§4.1/§5)",
                &["metric", "measured", "paper"],
                &[
                    vec![
                        "gain (base → peak)".into(),
                        format!(
                            "{:.1}× ({:.0} → {:.0} mbps)",
                            s.gain, s.base_mbps, s.peak_mbps
                        ),
                        "5.4× (171 → 934)".into(),
                    ],
                    vec![
                        "max aggregation".into(),
                        format!("{:.1} µs", s.max_aggregation_us),
                        "≤ 25 µs".into(),
                    ],
                    vec![
                        "constant MCS".into(),
                        format!("{}", s.constant_mcs),
                        "yes (16-QAM 5/8)".into(),
                    ],
                    vec![
                        "vs 802.11ac timescale".into(),
                        format!("{adv:.0}× shorter"),
                        "320×".into(),
                    ],
                ],
            ));
            if s.gain < 3.0 {
                violations.push(format!("aggregation gain only {:.1}×, paper: 5.4×", s.gain));
            }
            if !s.constant_mcs {
                violations.push("MCS changed across the compared points".into());
            }
            if s.max_aggregation_us > 26.0 {
                violations.push(format!(
                    "max aggregation {:.1} µs > 25 µs",
                    s.max_aggregation_us
                ));
            }
            if adv < 250.0 {
                violations.push(format!("timescale advantage {adv:.0}× (paper ≈ 320×)"));
            }
        }
        None => violations.push("no medium-saturated operating point".into()),
    }
    RunReport {
        id: "aggr",
        title: "§4.1/§5: aggregation gain at 60 GHz timescales",
        output,
        violations,
    }
}
