//! Table 1 — frame periodicities of both systems.
//!
//! | Frame type                    | Paper's interval |
//! |-------------------------------|------------------|
//! | D5000 device discovery frame  | 102.4 ms         |
//! | D5000 beacon frame            | 1.1 ms           |
//! | WiHD device discovery frame   | 20 ms            |
//! | WiHD beacon frame             | 0.224 ms         |
//!
//! Measured here exactly as the paper did: capture traces, extract the
//! frame starts of each class, report the median repeat interval.

use super::RunReport;
use crate::report;
use crate::scenarios::{point_to_point, seeds};
use mmwave_channel::Environment;
use mmwave_geom::{Angle, Point, Room};
use mmwave_mac::{Device, FrameClass, Net, NetConfig, PatKey};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::SimTime;

fn quiet(seed: u64) -> NetConfig {
    NetConfig {
        seed,
        enable_fading: false,
        ..NetConfig::default()
    }
}

fn median_interval_ms(mut starts: Vec<SimTime>) -> Option<f64> {
    if starts.len() < 3 {
        return None;
    }
    starts.sort();
    let mut gaps: Vec<f64> = starts
        .windows(2)
        .map(|w| (w[1] - w[0]).as_millis_f64())
        .collect();
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Some(gaps[gaps.len() / 2])
}

/// Run the Table 1 measurement.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let horizon = SimTime::from_millis(if quick { 400 } else { 1200 });

    // Unpaired systems: discovery periodicities.
    let mut idle = Net::with_ctx(Environment::new(Room::open_space()), quiet(seed), ctx);
    let dock = idle.add_device(Device::wigig_dock(
        ctx,
        "Dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        seeds::DOCK_A,
    ));
    let hdmi = idle.add_device(Device::wihd_source(
        ctx,
        "HDMI TX",
        Point::new(20.0, 20.0),
        Angle::ZERO,
        seeds::WIHD_TX,
    ));
    idle.start();
    idle.run_until(horizon);
    // A sweep's first sub-element marks the discovery frame start. The
    // D5000's order is fixed (Qo(0) first); the WiHD's is shuffled, so the
    // earliest sub-element per sweep burst is found by gap-splitting.
    let d5000_disc = idle
        .txlog()
        .of(dock, FrameClass::DiscoverySub)
        .filter(|e| e.pattern == PatKey::Qo(0))
        .map(|e| e.start)
        .collect::<Vec<_>>();
    let mut wihd_subs: Vec<SimTime> = idle
        .txlog()
        .of(hdmi, FrameClass::DiscoverySub)
        .map(|e| e.start)
        .collect();
    wihd_subs.sort();
    let mut wihd_disc = Vec::new();
    let mut last_end = SimTime::ZERO;
    for s in wihd_subs {
        if wihd_disc.is_empty() || s.saturating_since(last_end).as_millis_f64() > 1.0 {
            wihd_disc.push(s);
        }
        last_end = s;
    }

    // Established links: beacon periodicities.
    let p = point_to_point(ctx, 2.0, quiet(seed + 1));
    let mut paired = p.net;
    let hdmi_tx = paired.add_device(Device::wihd_source(
        ctx,
        "HDMI TX",
        Point::new(0.0, 10.0),
        Angle::ZERO,
        seeds::WIHD_TX,
    ));
    let hdmi_rx = paired.add_device(Device::wihd_sink(
        ctx,
        "HDMI RX",
        Point::new(8.0, 10.0),
        Angle::from_degrees(180.0),
        seeds::WIHD_RX,
    ));
    paired.pair_wihd_instantly(hdmi_tx, hdmi_rx);
    paired.run_until(horizon.min(SimTime::from_millis(300)));
    let d5000_beacons: Vec<SimTime> = paired
        .txlog()
        .of(p.dock, FrameClass::Beacon)
        .map(|e| e.start)
        .collect();
    let wihd_beacons: Vec<SimTime> = paired
        .txlog()
        .of(hdmi_rx, FrameClass::WihdBeacon)
        .map(|e| e.start)
        .collect();

    let rows_data = [
        (
            "D5000 Device Discovery Frame",
            median_interval_ms(d5000_disc),
            102.4,
        ),
        ("D5000 Beacon Frame", median_interval_ms(d5000_beacons), 1.1),
        (
            "WiHD Device Discovery Frame",
            median_interval_ms(wihd_disc),
            20.0,
        ),
        ("WiHD Beacon Frame", median_interval_ms(wihd_beacons), 0.224),
    ];

    let mut violations = Vec::new();
    let mut rows = Vec::new();
    for (name, measured, expected) in rows_data {
        match measured {
            Some(ms) => {
                rows.push(vec![
                    name.to_string(),
                    format!("{ms:.3} ms"),
                    format!("{expected} ms"),
                ]);
                if (ms - expected).abs() / expected > 0.02 {
                    violations.push(format!(
                        "{name}: measured {ms:.3} ms vs paper {expected} ms"
                    ));
                }
            }
            None => violations.push(format!("{name}: too few frames captured")),
        }
    }

    RunReport {
        id: "table1",
        title: "Table 1: D5000 and WiHD frame periodicity",
        output: report::table(
            "Table 1 — frame periodicity",
            &["Frame type", "Measured interval", "Paper"],
            &rows,
        ),
        violations,
    }
}
