//! Fig. 17 — trained directional patterns: laptop, dock, and the dock
//! rotated 70° off its peer.
//!
//! §4.2's numbers: HPBW below 20°, side lobes −4…−6 dB when aligned; at
//! the coverage boundary (the 70° rotation) side lobes reach −1 dB and the
//! authors needed +10 dB receiver gain — i.e. ~10 dB less link gain.

use super::RunReport;
use crate::analysis::beampattern::{
    measure_pattern, measured_hpbw_deg, measured_sll_db, normalize,
};
use crate::report;
use crate::scenarios::{pattern_range, PatternRange};
use mmwave_capture::scan::ScanPoint;
use mmwave_geom::Angle;
use mmwave_mac::NetConfig;
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::SimTime;

fn run_range(ctx: &SimCtx, rotation: Angle, seed: u64, quick: bool) -> (PatternRange, SimTime) {
    let mut r = pattern_range(
        ctx,
        rotation,
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        },
    );
    // Load the link in both directions so both devices emit data frames.
    let horizon = SimTime::from_millis(if quick { 15 } else { 60 });
    let mut i = 0u64;
    while r.net.now() < horizon {
        for _ in 0..20 {
            r.net.push_mpdu(r.dut, 1500, i);
            r.net.push_mpdu(r.peer, 1500, 1_000_000 + i);
            i += 1;
        }
        let t = r.net.now();
        r.net
            .run_until(t + mmwave_sim::time::SimDuration::from_micros(500));
    }
    (r, horizon)
}

fn strong_lobes(points: &[ScanPoint]) -> usize {
    let peak = points.iter().map(|p| p.power_dbm).fold(f64::MIN, f64::max);
    let mut n = 0;
    for i in 1..points.len().saturating_sub(1) {
        let p = points[i].power_dbm;
        if p >= peak - 3.0 && p >= points[i - 1].power_dbm && p > points[i + 1].power_dbm {
            n += 1;
        }
    }
    n
}

/// Run the Fig. 17 measurement.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let n = 100;
    let mut output = String::new();
    let mut violations = Vec::new();

    // Aligned: measure both the laptop and the dock.
    let (aligned, end) = run_range(ctx, Angle::ZERO, seed, quick);
    let facing_dut = Angle::ZERO; // DUT faces its peer along +x
    let dock_scan = measure_pattern(
        &aligned.net,
        aligned.dut,
        facing_dut,
        3.2,
        n,
        SimTime::ZERO,
        end,
    );
    let laptop_scan = measure_pattern(
        &aligned.net,
        aligned.peer,
        Angle::from_degrees(180.0),
        3.2,
        n,
        SimTime::ZERO,
        end,
    );

    // Rotated 70°: measure the dock again on the same semicircle.
    let (rotated, end_r) = run_range(ctx, Angle::from_degrees(70.0), seed + 1, quick);
    let rot_scan = measure_pattern(
        &rotated.net,
        rotated.dut,
        facing_dut,
        3.2,
        n,
        SimTime::ZERO,
        end_r,
    );

    for (name, scan) in [("laptop", &laptop_scan), ("D5000", &dock_scan)] {
        let hpbw = measured_hpbw_deg(scan);
        let sll = measured_sll_db(scan).unwrap_or(-99.0);
        output.push_str(&report::polar(
            &format!("Fig. 17 — {name} trained pattern (HPBW {hpbw:.0}°, SLL {sll:.1} dB)"),
            &normalize(scan),
        ));
        output.push('\n');
        if hpbw >= 20.0 {
            violations.push(format!("{name}: HPBW {hpbw:.0}° not below 20°"));
        }
        if !(-9.0..=-3.0).contains(&sll) {
            violations.push(format!("{name}: SLL {sll:.1} dB outside the −4…−6 dB band"));
        }
    }

    let rot_hpbw = measured_hpbw_deg(&rot_scan);
    let rot_sll = measured_sll_db(&rot_scan).unwrap_or(-99.0);
    let peak_of = |s: &[ScanPoint]| s.iter().map(|p| p.power_dbm).fold(f64::MIN, f64::max);
    let gain_drop = peak_of(&dock_scan) - peak_of(&rot_scan);
    output.push_str(&report::polar(
        &format!(
            "Fig. 17 — D5000 rotated 70° (SLL {rot_sll:.1} dB, {gain_drop:.1} dB below aligned peak)"
        ),
        &normalize(&rot_scan),
    ));
    output.push_str(&format!(
        "\nstrong (≤3 dB) lobes: aligned {} vs rotated {}\n",
        strong_lobes(&dock_scan),
        strong_lobes(&rot_scan)
    ));

    // §4.2: rotated side lobes "as strong as −1 dB".
    if rot_sll < -3.5 {
        violations.push(format!("rotated SLL {rot_sll:.1} dB, expected ≈ −1 dB"));
    }
    // "we had to increase the receiver gain by 10 dB".
    if !(6.0..=15.0).contains(&gain_drop) {
        violations.push(format!(
            "rotated peak only {gain_drop:.1} dB below aligned (≈10 expected)"
        ));
    }
    // "a much higher number of side lobes".
    if strong_lobes(&rot_scan) <= strong_lobes(&dock_scan) {
        violations.push("rotated pattern does not show more strong lobes".into());
    }
    let _ = rot_hpbw;

    RunReport {
        id: "fig17",
        title: "Fig. 17: laptop and D5000 beam patterns (aligned and rotated 70°)",
        output,
        violations,
    }
}
