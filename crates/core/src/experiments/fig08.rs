//! Fig. 8 — the D5000 frame flow.
//!
//! A 0.6 ms scope window over an active link shows: a beacon, then a burst
//! opening with two control frames (RTS/CTS) followed by alternating data
//! and acknowledgment frames. Bursts are capped at 2 ms (§4.1).

use super::RunReport;
use crate::analysis::frame_level::bursts;
use crate::report;
use crate::scenarios::point_to_point;
use mmwave_mac::{FrameClass, NetConfig};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::{SimDuration, SimTime};

/// Run the Fig. 8 capture.
pub fn run(ctx: &SimCtx, _quick: bool, seed: u64) -> RunReport {
    let mut p = point_to_point(
        ctx,
        2.0,
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        },
    );
    // Steady traffic, ACK-clocked batches so several bursts form.
    for batch in 0..12u64 {
        p.net.run_until(SimTime::from_micros(400 * batch));
        for i in 0..40u64 {
            p.net.push_mpdu(p.dock, 1500, batch * 100 + i);
        }
    }
    p.net.run_until(SimTime::from_millis(8));

    let window = (SimTime::ZERO, SimTime::from_millis(8));
    let bs = bursts(
        &p.net,
        &[p.dock, p.laptop],
        window.0,
        window.1,
        SimDuration::from_micros(20),
    );

    let mut violations = Vec::new();
    if bs.is_empty() {
        violations.push("no bursts captured".into());
    }
    let mut checked_rts = false;
    for b in &bs {
        if b.duration() > SimDuration::from_micros(2_100) {
            violations.push(format!(
                "burst of {} exceeds the 2 ms TXOP cap",
                b.duration()
            ));
        }
        if b.frames.len() >= 4 {
            // Fig. 8's anatomy: two control frames then data/ACK pairs.
            if b.frames[0].0 != FrameClass::Control || b.frames[1].0 != FrameClass::Control {
                violations.push("burst does not open with an RTS/CTS pair".into());
            }
            let mut expects_data = true;
            for (class, _, _) in &b.frames[2..] {
                let ok = if expects_data {
                    *class == FrameClass::Data
                } else {
                    *class == FrameClass::Ack
                };
                if !ok {
                    violations.push("data/ACK alternation broken inside a burst".into());
                    break;
                }
                expects_data = !expects_data;
            }
            checked_rts = true;
        }
    }
    if !checked_rts {
        violations.push("no burst long enough to validate the RTS/CTS anatomy".into());
    }
    // Beacons tick through the window ("outside the bursts, the channel is
    // idle except for a regular beacon exchange").
    let beacons = p.net.txlog().of(p.dock, FrameClass::Beacon).count();
    if beacons < 5 {
        violations.push(format!("only {beacons} beacons in the window"));
    }

    // Render a timeline of the first 0.6 ms containing a burst.
    let mut rows = Vec::new();
    if let Some(b) = bs.first() {
        let t0 = b.start;
        for (class, s, e) in b.frames.iter().take(14) {
            rows.push(vec![
                format!("{:?}", class),
                format!("{:.1} µs", s.saturating_since(t0).as_micros_f64()),
                format!("{:.1} µs", (*e - *s).as_micros_f64()),
            ]);
        }
    }
    let output = report::table(
        "Fig. 8 — first burst anatomy (t relative to burst start)",
        &["frame", "start", "duration"],
        &rows,
    ) + &format!(
        "\nbursts captured: {}   longest: {}   beacons in window: {}\n",
        bs.len(),
        bs.iter()
            .map(|b| b.duration())
            .max()
            .unwrap_or(SimDuration::ZERO),
        beacons
    );

    RunReport {
        id: "fig08",
        title: "Fig. 8: Dell D5000 frame flow",
        output,
        violations,
    }
}
