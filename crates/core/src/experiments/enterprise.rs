//! Dense enterprise deployment — a multi-room office floor at scale.
//!
//! The paper measures single rooms; this experiment extrapolates its
//! models to the deployment density §6 worries about: a 6×3 grid of
//! radio-closed offices (absorber-grade partitions, one metal reflector
//! per room for multipath), six WiGig dock–laptop links per room
//! (108 links, 216 stations) plus a WiHD pair in every third room. Every
//! office is declared an opaque zone, and the medium runs with the
//! spatial interference graph enabled: cross-room pairs are provably
//! below the coupling floor and never touch the radiometric chain.
//!
//! Reported artifacts: per-link delivered throughput, aggregate floor
//! throughput, mean per-device airtime share, and Jain's fairness index
//! over the per-link throughputs. The prune mode honours the context
//! override ([`mmwave_channel::spatial::install_override`]), which the
//! campaign differential suite uses to prove enforce-mode and audit-mode
//! runs byte-identical.

use super::RunReport;
use crate::report;
use crate::scenarios::seeds;
use mmwave_channel::{Environment, SpatialConfig};
use mmwave_geom::{Angle, Material, Point, Room, Segment};
use mmwave_mac::{Delivery, Device, Net, NetConfig};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::SimTime;

const ROOMS_X: usize = 6;
const ROOMS_Y: usize = 3;
const ROOM_W: f64 = 6.0;
const ROOM_H: f64 = 4.0;
const PITCH_X: f64 = 6.4;
const PITCH_Y: f64 = 4.4;
const LINKS_PER_ROOM: usize = 6;

/// Jain's fairness index `(Σx)² / (n·Σx²)`; 1.0 when `xs` is empty.
fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Run the enterprise floor.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    let cfg = NetConfig {
        seed,
        enable_fading: false,
        ..NetConfig::default()
    };

    // --- floor plan -----------------------------------------------------
    let mut room = Room::open_space();
    for ry in 0..ROOMS_Y {
        for rx in 0..ROOMS_X {
            let (x0, y0) = (rx as f64 * PITCH_X, ry as f64 * PITCH_Y);
            let (x1, y1) = (x0 + ROOM_W, y0 + ROOM_H);
            let corners = [
                (Point::new(x0, y0), Point::new(x1, y0)),
                (Point::new(x1, y0), Point::new(x1, y1)),
                (Point::new(x1, y1), Point::new(x0, y1)),
                (Point::new(x0, y1), Point::new(x0, y0)),
            ];
            for (i, (a, b)) in corners.into_iter().enumerate() {
                room.add_obstacle(
                    Segment::new(a, b),
                    Material::Absorber,
                    format!("office-{rx}-{ry}-{i}"),
                );
            }
            // A metal cabinet along the left wall: in-room multipath.
            room.add_obstacle(
                Segment::new(
                    Point::new(x0 + 0.15, y0 + 1.2),
                    Point::new(x0 + 0.15, y0 + 2.8),
                ),
                Material::Metal,
                format!("cabinet-{rx}-{ry}"),
            );
            room.add_zone(Point::new(x0, y0), Point::new(x1, y1));
        }
    }
    let mut net = Net::with_ctx(Environment::new(room), cfg, ctx);

    // --- stations -------------------------------------------------------
    let mut links: Vec<(usize, usize)> = Vec::new(); // (dock, laptop)
    for ry in 0..ROOMS_Y {
        for rx in 0..ROOMS_X {
            let (x0, y0) = (rx as f64 * PITCH_X, ry as f64 * PITCH_Y);
            for k in 0..LINKS_PER_ROOM {
                let x = x0 + 0.8 + k as f64 * 0.88;
                let dock = net.add_device(Device::wigig_dock(
                    ctx,
                    &format!("dock-{rx}-{ry}-{k}"),
                    Point::new(x, y0 + 0.6),
                    Angle::from_degrees(90.0),
                    seeds::DOCK_A,
                ));
                let laptop = net.add_device(Device::wigig_laptop(
                    ctx,
                    &format!("laptop-{rx}-{ry}-{k}"),
                    Point::new(x + 0.3, y0 + ROOM_H - 0.6),
                    Angle::from_degrees(-90.0),
                    seeds::LAPTOP_A,
                ));
                links.push((dock, laptop));
            }
            if (rx + ry) % 3 == 0 {
                let src = net.add_device(Device::wihd_source(
                    ctx,
                    &format!("wihd-src-{rx}-{ry}"),
                    Point::new(x0 + 1.0, y0 + 2.0),
                    Angle::ZERO,
                    seeds::WIHD_TX,
                ));
                let sink = net.add_device(Device::wihd_sink(
                    ctx,
                    &format!("wihd-sink-{rx}-{ry}"),
                    Point::new(x0 + ROOM_W - 0.8, y0 + 2.0),
                    Angle::from_degrees(180.0),
                    seeds::WIHD_RX,
                ));
                net.pair_wihd_instantly(src, sink);
            }
        }
    }
    net.enable_spatial(&SpatialConfig::default());
    for &(dock, laptop) in &links {
        net.associate_instantly(dock, laptop);
    }

    // --- traffic --------------------------------------------------------
    let horizon_ms = if quick { 20u64 } else { 120u64 };
    let mut delivered_bytes = vec![0u64; links.len()];
    let link_of_dock: std::collections::HashMap<usize, usize> = links
        .iter()
        .enumerate()
        .map(|(i, &(dock, _))| (dock, i))
        .collect();
    let mut tag = 0u64;
    let mut scratch = Vec::new();
    for ms in 1..=horizon_ms {
        for &(dock, _) in &links {
            for _ in 0..2 {
                net.push_mpdu(dock, 1500, tag);
                tag += 1;
            }
        }
        net.run_until(SimTime::from_millis(ms));
        net.drain_deliveries_into(&mut scratch);
        for d in &scratch {
            if let Delivery::Mpdu { src, bytes, .. } = d {
                if let Some(&l) = link_of_dock.get(src) {
                    delivered_bytes[l] += *bytes as u64;
                }
            }
        }
    }

    // --- metrics --------------------------------------------------------
    let secs = horizon_ms as f64 / 1e3;
    let mbps: Vec<f64> = delivered_bytes
        .iter()
        .map(|b| *b as f64 * 8.0 / secs / 1e6)
        .collect();
    let aggregate: f64 = mbps.iter().sum();
    let fairness = jain(&mbps);
    let airtime: f64 = links
        .iter()
        .map(|&(dock, _)| net.device(dock).stats.tx_airtime_ns as f64 / (horizon_ms as f64 * 1e6))
        .sum::<f64>()
        / links.len() as f64;
    let pruned = ctx.counters().spatial_pruned_pairs;

    let mut violations = Vec::new();
    if links.len() < 100 {
        violations.push(format!(
            "{} links — floor below the 100-link target",
            links.len()
        ));
    }
    let dead = mbps.iter().filter(|m| **m == 0.0).count();
    if dead > 0 {
        violations.push(format!("{dead} links delivered nothing"));
    }
    if fairness < 0.55 {
        violations.push(format!(
            "Jain fairness {fairness:.3} — dense floor starves some links"
        ));
    }
    if aggregate < 10.0 * links.len() as f64 / 1e3 {
        violations.push(format!("aggregate {aggregate:.1} Mb/s implausibly low"));
    }
    if pruned == 0 {
        violations.push("spatial interference graph never pruned a pair".into());
    }

    let pts: Vec<(f64, f64)> = mbps
        .iter()
        .enumerate()
        .map(|(i, m)| (i as f64, *m))
        .collect();
    let output = report::series(
        "Enterprise floor — per-link delivered throughput",
        "link",
        "Mb/s",
        &pts,
    ) + &format!(
        "\nlinks: {}   aggregate: {aggregate:.1} Mb/s   Jain: {fairness:.3}   \
         mean dock airtime: {:.3}   pruned pairs: {pruned}\n",
        links.len(),
        airtime,
    );

    RunReport {
        id: "enterprise",
        title: "Enterprise density: 18-office floor, 108 WiGig links + WiHD, spatial pruning",
        output,
        violations,
    }
}
