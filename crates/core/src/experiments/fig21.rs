//! Fig. 21 — inter-system interference effects at frame level.
//!
//! Two effects in one trace: (a) WiHD frames overlapping D5000 data →
//! missing ACKs and retransmissions; (b) dense WiHD series occupying
//! enlarged gaps in the D5000 flow — the D5000's carrier sensing.

use super::RunReport;
use crate::report;
use crate::scenarios::interference_floor;
use mmwave_geom::Angle;
use mmwave_mac::{FrameClass, NetConfig};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::{SimDuration, SimTime};
use mmwave_transport::{Stack, TcpConfig};

/// Run the Fig. 21 capture.
pub fn run(ctx: &SimCtx, quick: bool, seed: u64) -> RunReport {
    // Close spacing (0.3 m lateral) to provoke visible interference.
    let f = interference_floor(
        ctx,
        0.3,
        Angle::ZERO,
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        },
    );
    let (dock_b, laptop_b, dock_a, laptop_a) = (f.dock_b, f.laptop_b, f.dock_a, f.laptop_a);
    let mut stack = Stack::new(f.net);
    stack.add_flow(TcpConfig::bulk(dock_a, laptop_a, 128 * 1024));
    stack.add_flow(TcpConfig::bulk(dock_b, laptop_b, 128 * 1024));
    let end = SimTime::from_secs_f64(if quick { 0.5 } else { 2.0 });
    stack
        .net
        .txlog_mut()
        .set_window(SimTime::from_millis(100), end);
    stack.run_until(end);
    let net = &stack.net;

    let mut violations = Vec::new();
    // (a) Collisions: the D5000 link loses frames and retransmits.
    let st = net.device(dock_b).stats;
    if st.ack_timeouts == 0 {
        violations.push("no missing ACKs on the dock B link — no collisions observed".into());
    }
    if st.data_retx == 0 {
        violations.push("no retransmissions on the dock B link".into());
    }
    // (b) Carrier sensing: deferred TXOP attempts.
    if st.cs_defers == 0 {
        violations.push("dock B never deferred — carrier sensing not visible".into());
    }
    // Ground truth: failed data frames that overlapped a WiHD frame.
    let entries: Vec<_> = net.txlog().entries().to_vec();
    let mut overlapped_failures = 0;
    for e in &entries {
        if e.src == dock_b && e.class == FrameClass::Data && e.delivered == Some(false) {
            let overlaps = entries
                .iter()
                .any(|o| o.class == FrameClass::WihdData && o.start < e.end && e.start < o.end);
            if overlaps {
                overlapped_failures += 1;
            }
        }
    }
    if overlapped_failures == 0 {
        violations.push("no data frame failed while a WiHD frame was on the air".into());
    }

    // Render a 1 ms excerpt around the first overlapped failure.
    let mut output = String::new();
    let focus = entries
        .iter()
        .find(|e| e.src == dock_b && e.class == FrameClass::Data && e.delivered == Some(false))
        .map(|e| e.start)
        .unwrap_or(SimTime::from_millis(100));
    let from = focus.saturating_since(SimTime::ZERO + SimDuration::from_micros(200));
    let from = SimTime::ZERO + from;
    let to = from + SimDuration::from_millis(1);
    let mut rows = Vec::new();
    for e in net.txlog().in_window(from, to).take(28) {
        rows.push(vec![
            format!("{:?}", e.class),
            net.device(e.src).node.label.clone(),
            format!("{:.1} µs", e.start.saturating_since(from).as_micros_f64()),
            format!("{:.1} µs", (e.end - e.start).as_micros_f64()),
            match e.delivered {
                Some(true) => "ok".into(),
                Some(false) => "LOST".into(),
                None => "-".into(),
            },
        ]);
    }
    output.push_str(&report::table(
        "Fig. 21 — 1 ms excerpt around a collision",
        &["frame", "source", "t (rel.)", "duration", "delivery"],
        &rows,
    ));
    output.push_str(&format!(
        "\ndock B: {} data tx, {} retransmissions, {} missing ACKs, {} CS defers; {} failures overlapped WiHD frames\n",
        st.data_tx, st.data_retx, st.ack_timeouts, st.cs_defers, overlapped_failures
    ));

    RunReport {
        id: "fig21",
        title: "Fig. 21: inter-system interference effects (collisions + carrier sensing)",
        output,
        violations,
    }
}
