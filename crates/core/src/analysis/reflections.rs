//! Rotation-scan angular profiles (§3.2, Figs. 4 and 18–20).
//!
//! The Vubiq sits on a programmable rotation stage at a probe position and
//! sweeps a highly directional horn through the full circle; incident
//! power per look direction forms the angular profile. Against an *active
//! link*, the profile mixes both link directions weighted by their
//! airtime, exactly as the paper's dwell-and-average procedure does.

use mmwave_capture::scan::{angular_profile, AngularProfile};
use mmwave_geom::{Angle, Point};
use mmwave_mac::Net;
use mmwave_phy::{db_to_lin, lin_to_db};
use mmwave_sim::time::SimTime;

/// Measure the angular profile at `probe`: for each of `n_dirs` look
/// directions, the airtime-weighted average incident power of every
/// logged transmission in the window.
///
/// Implementation note: the log is first collapsed into per
/// `(source, pattern)` contributions — for each, the ray trace and the
/// transmit-side gains are computed once, and only the horn's receive
/// gain varies with the look direction. This keeps the 6-probe ×
/// 120-direction scans of Figs. 18/19 fast.
pub fn measure_profile(
    net: &Net,
    probe: Point,
    n_dirs: usize,
    from: SimTime,
    to: SimTime,
) -> AngularProfile {
    use std::collections::HashMap;
    // Airtime per (src, pattern) combination.
    let mut airtime: HashMap<(usize, mmwave_mac::PatKey), f64> = HashMap::new();
    let mut extra: HashMap<(usize, mmwave_mac::PatKey), f64> = HashMap::new();
    for e in net.txlog().in_window(from, to) {
        *airtime.entry((e.src, e.pattern)).or_insert(0.0) += (e.end - e.start).as_secs_f64();
        // Control-class frames carry the boost; a (src, pattern) combo is
        // only ever used by one class in practice, so last-write wins.
        let boost = match e.class {
            mmwave_mac::FrameClass::Beacon
            | mmwave_mac::FrameClass::DiscoverySub
            | mmwave_mac::FrameClass::WihdBeacon
            | mmwave_mac::FrameClass::Training => net.config().control_power_offset_db,
            _ => 0.0,
        };
        extra.insert((e.src, e.pattern), boost);
    }
    let total_time: f64 = airtime.values().sum();
    // Per combination: (arrival azimuth, linear power *without* the horn
    // gain) for every path, scaled by the combo's airtime share.
    let mut components: Vec<(Angle, f64)> = Vec::new();
    let horn = mmwave_phy::horn_25dbi();
    for (&(src, pat), &t) in &airtime {
        let dev = net.device(src);
        let paths = net.env.paths(dev.node.position, probe);
        let tx_pattern = dev.pattern(pat);
        for path in &paths {
            let ga = dev.node.gain_toward(tx_pattern, path.departure);
            let dbm = net.env.budget.rx_power_dbm(ga, 0.0, path)
                + dev.tx_power_offset_db
                + extra[&(src, pat)]
                - net.env.extra_loss_db;
            components.push((path.arrival, db_to_lin(dbm) * t / total_time.max(1e-12)));
        }
    }
    angular_profile(n_dirs, |look: Angle| {
        if components.is_empty() {
            return -120.0;
        }
        let lin: f64 = components
            .iter()
            .map(|(arrival, base)| base * db_to_lin(horn.gain_dbi(arrival.diff(look))))
            .sum();
        lin_to_db(lin)
    })
}

/// Attribution helpers: expected arrival directions at a probe.
pub struct Expected {
    /// Direction towards the transmitter (LoS).
    pub toward_tx: Angle,
    /// Direction towards the receiver (its ACK/beacon traffic).
    pub toward_rx: Angle,
}

/// Compute the LoS arrival directions at `probe` for a TX/RX pair.
pub fn expected_directions(net: &Net, probe: Point, tx: usize, rx: usize) -> Expected {
    let t = net.device(tx).node.position;
    let r = net.device(rx).node.position;
    Expected {
        toward_tx: Angle::from_radians((t - probe).angle()),
        toward_rx: Angle::from_radians((r - probe).angle()),
    }
}

/// Lobes of a profile that do **not** point at either link endpoint —
/// the paper's indicator of wall reflections ("additional lobes … do not
/// point to any of the devices in the room").
pub fn unattributed_lobes(
    profile: &AngularProfile,
    expected: &Expected,
    tolerance: f64,
    min_prominence_db: f64,
    max_below_peak_db: f64,
) -> Vec<Angle> {
    let pattern = profile.as_pattern();
    let peak = pattern.peak().gain_dbi;
    pattern
        .lobes(min_prominence_db)
        .into_iter()
        .filter(|l| l.gain_dbi >= peak - max_below_peak_db)
        .map(|l| l.direction)
        .filter(|d| {
            d.distance(expected.toward_tx) > tolerance && d.distance(expected.toward_rx) > tolerance
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{reflection_room, RoomSystem};
    use mmwave_mac::NetConfig;
    use mmwave_sim::ctx::SimCtx;

    #[test]
    fn profile_of_active_wigig_link_sees_both_endpoints() {
        let mut r = reflection_room(
            &SimCtx::new(),
            RoomSystem::Wigig,
            NetConfig {
                seed: 5,
                enable_fading: false,
                ..NetConfig::default()
            },
        );
        // Load the link so data flows (laptop is the transmitter).
        for i in 0..2000u64 {
            r.net.push_mpdu(r.tx, 1500, i);
        }
        r.net.run_until(SimTime::from_millis(40));
        let probe = r.layout.probe('A');
        let profile = measure_profile(&r.net, probe, 120, SimTime::ZERO, SimTime::from_millis(40));
        let exp = expected_directions(&r.net, probe, r.tx, r.rx);
        // Lobes towards the transmitter and the receiver (§4.3: "one
        // pointing to the transmitter and one pointing to the receiver").
        assert!(
            profile.has_lobe_toward(exp.toward_tx, 20f64.to_radians(), 1.0, 20.0),
            "no TX lobe"
        );
        assert!(
            profile.has_lobe_toward(exp.toward_rx, 20f64.to_radians(), 1.0, 20.0),
            "no RX lobe"
        );
    }

    #[test]
    fn expected_directions_geometry() {
        let r = reflection_room(
            &SimCtx::new(),
            RoomSystem::Wigig,
            NetConfig {
                seed: 6,
                enable_fading: false,
                ..NetConfig::default()
            },
        );
        let probe = r.layout.probe('C'); // upper row, left third
        let exp = expected_directions(&r.net, probe, r.tx, r.rx);
        // TX is to the right of C, RX to the left.
        assert!(exp.toward_tx.degrees().abs() < 45.0, "{}", exp.toward_tx);
        assert!(exp.toward_rx.degrees().abs() > 135.0, "{}", exp.toward_rx);
    }
}
