//! Aggregation-gain arithmetic (§4.1 and the §5 design principle).
//!
//! The paper's headline: WiGig scales TCP throughput 5.4× (171 → 934 Mb/s)
//! at constant MCS and medium usage purely by aggregating up to 25 µs of
//! data — 320× less aggregation time than the 8 ms 802.11ac needs for a
//! mere 2× gain.

/// One operating point of the throughput sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Measured TCP goodput, Mb/s.
    pub throughput_mbps: f64,
    /// Fraction of data frames longer than the short/long boundary.
    pub long_frame_fraction: f64,
    /// Windowed medium usage (Fig. 11 metric), 0–1.
    pub medium_usage: f64,
    /// Dominant MCS index during the run.
    pub mcs: u8,
    /// Maximum observed data-frame duration, µs.
    pub max_frame_us: f64,
}

/// Summary of the aggregation behaviour across a sweep.
#[derive(Clone, Copy, Debug)]
pub struct AggregationSummary {
    /// Lowest "high-load" throughput (first point with saturated medium
    /// usage), Mb/s.
    pub base_mbps: f64,
    /// Highest throughput, Mb/s.
    pub peak_mbps: f64,
    /// Throughput gain attributable to aggregation.
    pub gain: f64,
    /// Longest aggregated frame, µs.
    pub max_aggregation_us: f64,
    /// True if MCS stayed constant across the compared points.
    pub constant_mcs: bool,
}

/// Compute the aggregation gain between the first medium-saturated point
/// and the peak, mirroring §4.1's 171 → 934 Mb/s comparison. Returns
/// `None` if no point saturates the medium.
pub fn summarize(points: &[SweepPoint]) -> Option<AggregationSummary> {
    let saturated: Vec<&SweepPoint> = points.iter().filter(|p| p.medium_usage > 0.9).collect();
    let base = saturated.iter().min_by(|a, b| {
        a.throughput_mbps
            .partial_cmp(&b.throughput_mbps)
            .expect("finite")
    })?;
    let peak = saturated.iter().max_by(|a, b| {
        a.throughput_mbps
            .partial_cmp(&b.throughput_mbps)
            .expect("finite")
    })?;
    Some(AggregationSummary {
        base_mbps: base.throughput_mbps,
        peak_mbps: peak.throughput_mbps,
        gain: peak.throughput_mbps / base.throughput_mbps,
        max_aggregation_us: points.iter().map(|p| p.max_frame_us).fold(0.0, f64::max),
        constant_mcs: base.mcs == peak.mcs,
    })
}

/// The 802.11ac comparison from §5 / [19]: 2× gain needs 8 ms frames.
pub const AC_GAIN: f64 = 2.0;
/// 802.11ac frame length for that gain, µs.
pub const AC_FRAME_US: f64 = 8_000.0;

/// "How many times less aggregation time than 802.11ac" (the paper's
/// 320× with 25 µs frames).
pub fn timescale_advantage(max_aggregation_us: f64) -> f64 {
    AC_FRAME_US / max_aggregation_us
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(mbps: f64, usage: f64, mcs: u8, max_us: f64) -> SweepPoint {
        SweepPoint {
            throughput_mbps: mbps,
            long_frame_fraction: 0.5,
            medium_usage: usage,
            mcs,
            max_frame_us: max_us,
        }
    }

    #[test]
    fn summarize_papers_numbers() {
        let pts = [
            p(0.0097, 0.001, 11, 5.1),
            p(171.0, 1.0, 11, 8.2),
            p(372.0, 1.0, 11, 15.0),
            p(934.0, 1.0, 11, 24.5),
        ];
        let s = summarize(&pts).expect("saturated points exist");
        assert!((s.gain - 5.46).abs() < 0.1, "gain {}", s.gain);
        assert!(s.constant_mcs);
        assert!((s.max_aggregation_us - 24.5).abs() < 1e-9);
        // ≈ 326× less aggregation time than 802.11ac.
        let adv = timescale_advantage(s.max_aggregation_us);
        assert!((adv - 326.5).abs() < 1.0, "{adv}");
    }

    #[test]
    fn no_saturated_points_gives_none() {
        let pts = [p(0.01, 0.001, 11, 5.0)];
        assert!(summarize(&pts).is_none());
    }
}
