//! The analysis toolkit: everything §4 computes from traces.
//!
//! * [`frame_level`] — frame durations, burst structure, the windowed
//!   "medium usage" metric of Fig. 11 and the long-frame fraction of
//!   Fig. 10.
//! * [`beampattern`] — the semicircle beam-pattern measurement (Figs. 16
//!   and 17) driven through the replay pipeline.
//! * [`reflections`] — rotation-scan angular profiles (Figs. 18–20) with
//!   airtime-weighted incident power and lobe attribution.
//! * [`aggregation`] — the §5 aggregation-gain arithmetic (5.4× at ≤ 25 µs
//!   versus 802.11ac's 2× at 8 ms).

pub mod aggregation;
pub mod beampattern;
pub mod frame_level;
pub mod reflections;
