//! Frame-level statistics from the transmission log.

use mmwave_mac::{FrameClass, Net, TxLogEntry};
use mmwave_sim::stats::Cdf;
use mmwave_sim::time::{SimDuration, SimTime};

/// Durations (µs) of all data frames transmitted by `src` in the window —
/// the Fig. 9 CDF input.
pub fn data_frame_durations_us(net: &Net, src: usize, from: SimTime, to: SimTime) -> Vec<f64> {
    net.txlog()
        .in_window(from, to)
        .filter(|e| e.src == src && e.class == FrameClass::Data)
        .map(|e| (e.end - e.start).as_micros_f64())
        .collect()
}

/// The Fig. 9 CDF itself.
pub fn frame_length_cdf(net: &Net, src: usize, from: SimTime, to: SimTime) -> Cdf {
    Cdf::from_samples(data_frame_durations_us(net, src, from, to))
}

/// Fraction of data frames longer than `boundary_us` (Fig. 10; the paper
/// uses ≈ 5 µs as the short/long split).
pub fn long_frame_fraction(
    net: &Net,
    src: usize,
    from: SimTime,
    to: SimTime,
    boundary_us: f64,
) -> f64 {
    let durs = data_frame_durations_us(net, src, from, to);
    if durs.is_empty() {
        return 0.0;
    }
    durs.iter().filter(|&&d| d > boundary_us).count() as f64 / durs.len() as f64
}

/// The Fig. 11 "medium usage" metric: the fraction of oscilloscope capture
/// windows (width `window`) that contain at least one data frame. This is
/// the paper's per-trace busy metric — much coarser than busy-time
/// utilization, which is why Fig. 11 saturates at ~100 % while Fig. 22's
/// utilization sits near 40 % for the same traffic.
pub fn medium_usage(net: &Net, from: SimTime, to: SimTime, window: SimDuration) -> f64 {
    assert!(!window.is_zero());
    let data: Vec<(SimTime, SimTime)> = net
        .txlog()
        .in_window(from, to)
        .filter(|e| e.class == FrameClass::Data || e.class == FrameClass::WihdData)
        .map(|e| (e.start, e.end))
        .collect();
    let total_windows = ((to - from) / window).max(1);
    let mut busy_windows = 0u64;
    let mut t = from;
    let mut idx = 0usize;
    for _ in 0..total_windows {
        let end = t + window;
        // Advance past frames that ended before this window.
        while idx < data.len() && data[idx].1 <= t {
            idx += 1;
        }
        if idx < data.len() && data[idx].0 < end {
            busy_windows += 1;
        }
        t = end;
    }
    busy_windows as f64 / total_windows as f64
}

/// A burst (TXOP) reconstructed from the log: consecutive same-source
/// frames separated by gaps below `max_gap`.
#[derive(Clone, Debug)]
pub struct Burst {
    /// Burst start.
    pub start: SimTime,
    /// Burst end.
    pub end: SimTime,
    /// Frames inside (class, start, end).
    pub frames: Vec<(FrameClass, SimTime, SimTime)>,
}

impl Burst {
    /// Burst duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Group the exchange on a link (both directions) into bursts. Control,
/// data and ACK frames joined by gaps ≤ `max_gap` form one burst; beacons
/// are excluded (they tick independently).
pub fn bursts(
    net: &Net,
    devs: &[usize],
    from: SimTime,
    to: SimTime,
    max_gap: SimDuration,
) -> Vec<Burst> {
    let mut frames: Vec<&TxLogEntry> = net
        .txlog()
        .in_window(from, to)
        .filter(|e| {
            devs.contains(&e.src)
                && matches!(
                    e.class,
                    FrameClass::Control | FrameClass::Data | FrameClass::Ack
                )
        })
        .collect();
    frames.sort_by_key(|e| e.start);
    let mut out: Vec<Burst> = Vec::new();
    for e in frames {
        let item = (e.class, e.start, e.end);
        match out.last_mut() {
            Some(b) if e.start.saturating_since(b.end) <= max_gap => {
                b.end = b.end.max(e.end);
                b.frames.push(item);
            }
            _ => out.push(Burst {
                start: e.start,
                end: e.end,
                frames: vec![item],
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::point_to_point;
    use mmwave_mac::NetConfig;
    use mmwave_sim::ctx::SimCtx;

    fn loaded_link(seed: u64) -> (mmwave_mac::Net, usize) {
        let mut p = point_to_point(
            &SimCtx::new(),
            2.0,
            NetConfig {
                seed,
                enable_fading: false,
                ..NetConfig::default()
            },
        );
        for i in 0..100u64 {
            p.net.push_mpdu(p.dock, 1500, i);
        }
        p.net.run_until(SimTime::from_millis(10));
        (p.net, p.dock)
    }

    #[test]
    fn durations_and_cdf() {
        let (net, dock) = loaded_link(1);
        let durs = data_frame_durations_us(&net, dock, SimTime::ZERO, SimTime::from_millis(10));
        assert!(!durs.is_empty());
        let mut cdf = frame_length_cdf(&net, dock, SimTime::ZERO, SimTime::from_millis(10));
        // Aggregated batch: most frames long, none beyond ~25 µs.
        assert!(cdf.max() <= 26.0, "{}", cdf.max());
        assert!(
            long_frame_fraction(&net, dock, SimTime::ZERO, SimTime::from_millis(10), 5.0) > 0.5
        );
    }

    #[test]
    fn medium_usage_saturates_under_load_and_zeroes_idle() {
        let (net, _) = loaded_link(2);
        // The 100-MPDU batch drains in ~0.5 ms: usage over the first ms is
        // high, over a later idle stretch zero.
        let busy = medium_usage(
            &net,
            SimTime::ZERO,
            SimTime::from_micros(400),
            SimDuration::from_micros(100),
        );
        assert!(busy > 0.7, "busy {busy}");
        let idle = medium_usage(
            &net,
            SimTime::from_millis(5),
            SimTime::from_millis(10),
            SimDuration::from_micros(100),
        );
        assert!(idle < 0.05, "idle {idle}");
    }

    #[test]
    fn bursts_group_correctly() {
        let (net, dock) = loaded_link(3);
        let laptop = 1 - dock.min(1); // the other device index (0 or 1)
        let bs = bursts(
            &net,
            &[dock, laptop],
            SimTime::ZERO,
            SimTime::from_millis(10),
            SimDuration::from_micros(20),
        );
        assert!(!bs.is_empty());
        // Every burst respects the 2 ms TXOP cap (plus slack for the
        // trailing ACK).
        for b in &bs {
            assert!(
                b.duration() <= SimDuration::from_micros(2_100),
                "{:?}",
                b.duration()
            );
            assert!(!b.frames.is_empty());
        }
        // The first burst opens with the RTS/CTS control pair (Fig. 8).
        let first = &bs[0];
        assert_eq!(first.frames[0].0, FrameClass::Control);
        assert_eq!(first.frames[1].0, FrameClass::Control);
        assert!(first.frames.iter().any(|(c, _, _)| *c == FrameClass::Data));
        assert!(first.frames.iter().any(|(c, _, _)| *c == FrameClass::Ack));
    }
}
