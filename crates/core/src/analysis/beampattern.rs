//! The semicircle beam-pattern measurement (§3.2, Fig. 2).
//!
//! The Vubiq + horn are placed at 100 positions on a 3.2 m semicircle
//! around the device under test, the horn always pointing back at it;
//! averaging the received power of *data frames only* per position yields
//! the transmit pattern. Here the replay pipeline computes exactly that,
//! against whatever the DUT actually transmitted during the campaign.

use crate::replay::{mean_data_power_dbm, TapConfig};
use mmwave_capture::scan::ScanPoint;
use mmwave_geom::{arc, Angle};
use mmwave_mac::Net;
use mmwave_phy::{db_to_lin, lin_to_db};
use mmwave_sim::time::SimTime;

/// Measure the transmit pattern of `dut` from its logged data frames:
/// `n` positions on a semicircle of `radius` centred on the DUT, spanning
/// ±90° around `facing` (the paper centres the arc on the device front).
/// Returns scan points with angles relative to `facing`.
pub fn measure_pattern(
    net: &Net,
    dut: usize,
    facing: Angle,
    radius: f64,
    n: usize,
    from: SimTime,
    to: SimTime,
) -> Vec<ScanPoint> {
    let dut_pos = net.device(dut).node.position;
    arc(n, Angle::from_degrees(-90.0), Angle::from_degrees(90.0))
        .into_iter()
        .map(|rel| {
            let world = facing + rel;
            let pos = dut_pos + world.unit() * radius;
            // Horn points back at the DUT.
            let look = Angle::from_radians((dut_pos - pos).angle());
            let tap = TapConfig::horn(pos, look);
            let power = mean_data_power_dbm(net, &tap, dut, from, to).unwrap_or(-120.0);
            ScanPoint {
                angle: rel,
                power_dbm: power,
            }
        })
        .collect()
}

/// Measure one sub-element of the discovery sweep: average the incident
/// power of `DiscoverySub` frames transmitted with quasi-omni codebook
/// entry `sub_idx` (the paper splits the 32-element frame in
/// post-processing — Fig. 16).
#[allow(clippy::too_many_arguments)]
pub fn measure_discovery_pattern(
    net: &Net,
    dut: usize,
    sub_idx: usize,
    facing: Angle,
    radius: f64,
    n: usize,
    from: SimTime,
    to: SimTime,
) -> Vec<ScanPoint> {
    let dut_pos = net.device(dut).node.position;
    let entries: Vec<&mmwave_mac::TxLogEntry> = net
        .txlog()
        .in_window(from, to)
        .filter(|e| {
            e.src == dut
                && e.class == mmwave_mac::FrameClass::DiscoverySub
                && e.pattern == mmwave_mac::PatKey::Qo(sub_idx)
        })
        .collect();
    arc(n, Angle::from_degrees(-90.0), Angle::from_degrees(90.0))
        .into_iter()
        .map(|rel| {
            let world = facing + rel;
            let pos = dut_pos + world.unit() * radius;
            let look = Angle::from_radians((dut_pos - pos).angle());
            let tap = TapConfig::horn(pos, look);
            let power = if entries.is_empty() {
                -120.0
            } else {
                let lin: f64 = entries
                    .iter()
                    .map(|e| db_to_lin(crate::replay::incident_power_dbm(net, &tap, e)))
                    .sum();
                lin_to_db(lin / entries.len() as f64)
            };
            ScanPoint {
                angle: rel,
                power_dbm: power,
            }
        })
        .collect()
}

/// Peak-normalize scan points to dB-relative-to-peak form (figure style).
pub fn normalize(points: &[ScanPoint]) -> Vec<(Angle, f64)> {
    let peak = points.iter().map(|p| p.power_dbm).fold(f64::MIN, f64::max);
    points
        .iter()
        .map(|p| (p.angle, p.power_dbm - peak))
        .collect()
}

/// Half-power beamwidth (degrees) of a measured semicircle scan: widest
/// contiguous run of points within 3 dB of the peak.
pub fn measured_hpbw_deg(points: &[ScanPoint]) -> f64 {
    let peak = points.iter().map(|p| p.power_dbm).fold(f64::MIN, f64::max);
    let mut best = 0usize;
    let mut run = 0usize;
    for p in points {
        if p.power_dbm >= peak - 3.0 {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    if points.len() < 2 {
        return 0.0;
    }
    let spacing = 180.0 / (points.len() - 1) as f64;
    best as f64 * spacing
}

/// Strongest side-lobe level (dB relative to the main lobe) of a measured
/// scan: the highest local maximum outside the main lobe's −3 dB region.
pub fn measured_sll_db(points: &[ScanPoint]) -> Option<f64> {
    let peak_idx = points
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.power_dbm.partial_cmp(&b.power_dbm).expect("finite"))?
        .0;
    let peak = points[peak_idx].power_dbm;
    // Walk outward from the peak until below −3 dB to bound the main lobe.
    let mut lo = peak_idx;
    while lo > 0 && points[lo - 1].power_dbm >= peak - 3.0 {
        lo -= 1;
    }
    let mut hi = peak_idx;
    while hi + 1 < points.len() && points[hi + 1].power_dbm >= peak - 3.0 {
        hi += 1;
    }
    let mut best: Option<f64> = None;
    for (i, p) in points.iter().enumerate() {
        if i >= lo && i <= hi {
            continue;
        }
        let left = if i > 0 {
            points[i - 1].power_dbm
        } else {
            f64::MIN
        };
        let right = if i + 1 < points.len() {
            points[i + 1].power_dbm
        } else {
            f64::MIN
        };
        if p.power_dbm >= left && p.power_dbm >= right {
            let rel = p.power_dbm - peak;
            best = Some(best.map_or(rel, |b: f64| b.max(rel)));
        }
    }
    best
}

/// Combine multiple scans (linear average per position) — the paper
/// averages one minute of frames per position.
pub fn average_scans(scans: &[Vec<ScanPoint>]) -> Vec<ScanPoint> {
    assert!(!scans.is_empty());
    let n = scans[0].len();
    (0..n)
        .map(|i| {
            let lin: f64 = scans.iter().map(|s| db_to_lin(s[i].power_dbm)).sum();
            ScanPoint {
                angle: scans[0][i].angle,
                power_dbm: lin_to_db(lin / scans.len() as f64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_scan(sll_db: f64) -> Vec<ScanPoint> {
        // Main lobe at 0°, side lobe at +45°.
        (0..100)
            .map(|i| {
                let deg = -90.0 + 180.0 * i as f64 / 99.0;
                let main = -40.0 - (deg / 8.0).powi(2);
                let side = -40.0 + sll_db - ((deg - 45.0) / 6.0).powi(2);
                ScanPoint {
                    angle: Angle::from_degrees(deg),
                    power_dbm: main.max(side).max(-90.0),
                }
            })
            .collect()
    }

    #[test]
    fn hpbw_of_synthetic() {
        // main = −(deg/8)² → −3 dB at ±13.9° → HPBW ≈ 27.7°.
        let scan = synthetic_scan(-20.0);
        let hpbw = measured_hpbw_deg(&scan);
        assert!((hpbw - 27.7).abs() < 4.0, "{hpbw}");
    }

    #[test]
    fn sll_of_synthetic() {
        for target in [-2.0, -5.0, -9.0] {
            let scan = synthetic_scan(target);
            let sll = measured_sll_db(&scan).expect("side lobe");
            assert!((sll - target).abs() < 0.6, "target {target} measured {sll}");
        }
    }

    #[test]
    fn normalize_peaks_at_zero() {
        let scan = synthetic_scan(-5.0);
        let norm = normalize(&scan);
        let max = norm.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
        assert!(max.abs() < 1e-12);
    }

    #[test]
    fn average_scans_reduces_noise() {
        let a = synthetic_scan(-6.0);
        let avg = average_scans(&[a.clone(), a.clone()]);
        for (x, y) in a.iter().zip(&avg) {
            assert!((x.power_dbm - y.power_dbm).abs() < 1e-9);
        }
    }
}
