//! Command-line experiment runner.
//!
//! ```text
//! experiments [--quick] [--seed N] [--out DIR] [--list] [all | <id> ...]
//! ```
//!
//! Runs the requested experiments (default: all) and prints the
//! paper-style rows/series plus the shape-check verdicts. With `--out`,
//! each report is also written to `DIR/<id>.txt` (handy for diffing two
//! campaigns). Exit code 1 if any shape check failed.

use mmwave_core::experiments::{self, RunReport};

struct Cli {
    quick: bool,
    seed: u64,
    out_dir: Option<String>,
    list: bool,
    ids: Vec<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli =
        Cli { quick: false, seed: 1, out_dir: None, list: false, ids: Vec::new() };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--list" => cli.list = true,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                cli.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--out" => {
                cli.out_dir = Some(args.next().ok_or("--out needs a directory")?);
            }
            "all" => {}
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            id => cli.ids.push(id.to_string()),
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\nusage: experiments [--quick] [--seed N] [--out DIR] [--list] [all | <id> ...]");
            std::process::exit(2);
        }
    };
    if cli.list {
        println!("available experiment ids (paper order):");
        for id in experiments::ALL {
            println!("  {id}");
        }
        return;
    }
    let ids: Vec<&str> = if cli.ids.is_empty() {
        experiments::ALL.to_vec()
    } else {
        cli.ids.iter().map(|s| s.as_str()).collect()
    };
    if let Some(dir) = &cli.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(2);
        }
    }

    let mut failures = 0;
    for id in ids {
        let t0 = std::time::Instant::now();
        let Some(report): Option<RunReport> = experiments::run(id, cli.quick, cli.seed) else {
            eprintln!("unknown experiment id: {id} (try --list)");
            failures += 1;
            continue;
        };
        println!("\n################################################################");
        println!("# {} — {}", report.id, report.title);
        println!("################################################################");
        println!("{}", report.output);
        if report.passed() {
            println!("[PASS] all shape checks hold ({:.1?})", t0.elapsed());
        } else {
            failures += 1;
            println!("[FAIL] {} shape check(s) violated:", report.violations.len());
            for v in &report.violations {
                println!("  - {v}");
            }
        }
        if let Some(dir) = &cli.out_dir {
            let verdict = if report.passed() {
                "PASS".to_string()
            } else {
                format!("FAIL\n{}", report.violations.join("\n"))
            };
            let body = format!("{}\n\n{}\n{}\n", report.title, report.output, verdict);
            if let Err(e) = std::fs::write(format!("{dir}/{}.txt", report.id), body) {
                eprintln!("cannot write report for {id}: {e}");
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
