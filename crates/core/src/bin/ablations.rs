//! Ablation studies for the §5 design principles: what moves when the
//! cost-effective hardware and the protocol policies change?
//!
//! ```text
//! cargo run --release --bin ablations
//! ```
//!
//! * phase-shifter resolution vs side lobes (the "cheap hardware" knob);
//! * aggregation cap vs throughput and channel time (the §5 aggregation
//!   principle);
//! * carrier-sense threshold vs interference loss (the §5 MAC-behaviour
//!   principle);
//! * reflection order vs angular-profile lobes (the §5 geometric-MAC
//!   principle: "extend the geometric approach to include up to two
//!   reflections").

use mmwave_core::analysis::reflections::{
    expected_directions, measure_profile, unattributed_lobes,
};
use mmwave_core::report;
use mmwave_core::scenarios::{self, point_to_point, RoomSystem};
use mmwave_geom::Angle;
use mmwave_mac::{NetConfig, WigigConfig};
use mmwave_phy::{ArrayConfig, PhaseShifter, PhasedArray};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::{SimDuration, SimTime};
use mmwave_transport::{Stack, TcpConfig};

fn quiet(seed: u64) -> NetConfig {
    NetConfig {
        seed,
        enable_fading: false,
        ..NetConfig::default()
    }
}

fn ablate_phase_shifters() {
    // Average the side-lobe level over steering angles and device seeds,
    // once with the calibrated manufacturing errors and once without, so
    // the two imperfection sources separate cleanly.
    let steers = [-50.0, -30.0, -15.0, 15.0, 30.0, 50.0];
    let seeds = [1u64, 5, 7, 11, 13, 17];
    let mut rows = Vec::new();
    for bits in 1..=6u8 {
        let mean_sll = |with_errors: bool| -> f64 {
            let mut acc = 0.0;
            let mut n = 0;
            for &seed in &seeds {
                let mut cfg = ArrayConfig::wigig_2x8(seed);
                cfg.shifter = PhaseShifter::new(bits);
                if !with_errors {
                    cfg.amp_error_db = 0.0;
                    cfg.phase_error_rad = 0.0;
                }
                let arr = PhasedArray::new(cfg);
                for &deg in &steers {
                    if let Some(sll) = arr
                        .steered_pattern(Angle::from_degrees(deg))
                        .side_lobe_level_db()
                    {
                        acc += sll;
                        n += 1;
                    }
                }
            }
            acc / n as f64
        };
        rows.push(vec![
            format!("{bits}"),
            format!("{:.1}", mean_sll(false)),
            format!("{:.1}", mean_sll(true)),
        ]);
    }
    println!(
        "{}",
        report::table(
            "Ablation 1 — phase-shifter resolution vs mean side-lobe level",
            &[
                "bits",
                "SLL, ideal elements (dB)",
                "SLL, calibrated errors (dB)"
            ],
            &rows,
        )
    );
    println!("→ with clean elements, more shifter bits steadily buy side-lobe\n   suppression; with consumer-grade manufacturing spread the errors set\n   a floor near the paper's −4…−6 dB regardless — the cost-effective\n   design is imperfect beyond its shifters.\n");
}

fn ablate_aggregation() {
    let mut rows = Vec::new();
    for max_agg in [1usize, 2, 4, 7] {
        let mut p = point_to_point(&SimCtx::new(), 2.0, quiet(31));
        {
            let w = p.net.device_mut(p.dock).wigig_mut().expect("wigig");
            w.cfg = WigigConfig {
                max_aggregation: max_agg,
                min_aggregation: max_agg.clamp(1, 5),
                ..w.cfg
            };
        }
        let dock = p.dock;
        let mon = p.net.add_monitor(
            mmwave_geom::Point::new(1.0, 0.8),
            Angle::from_degrees(-90.0),
            mmwave_phy::AntennaPattern::isotropic(3.0),
            -70.0,
        );
        p.net.txlog_mut().set_enabled(false);
        let mut stack = Stack::new(p.net);
        let flow = stack.add_flow(TcpConfig::bulk(dock, p.laptop, 256 * 1024));
        stack.run_until(SimTime::from_secs(1));
        let goodput = stack
            .flow_stats(flow)
            .mean_goodput_mbps(SimTime::from_millis(300), SimTime::from_secs(1));
        let util = stack
            .net
            .monitor_utilization(mon, SimTime::from_millis(300));
        rows.push(vec![
            format!("{max_agg}"),
            format!("{goodput:.0}"),
            format!("{:.0}%", util * 100.0),
        ]);
    }
    println!(
        "{}",
        report::table(
            "Ablation 2 — A-MPDU aggregation cap (2 m link, bulk TCP)",
            &["max MPDUs", "goodput (Mb/s)", "channel busy"],
            &rows,
        )
    );
    println!("→ §5: aggregation buys channel time, not just throughput — the\n   un-aggregated link burns the medium other nodes would need.\n");
}

fn ablate_cs_threshold() {
    let mut rows = Vec::new();
    for thr in [-60.0, -68.0, -76.0] {
        let mut f = scenarios::interference_floor(
            &SimCtx::new(),
            0.8,
            Angle::ZERO,
            NetConfig {
                seed: 33,
                enable_fading: false,
                params: mmwave_mac::MacParams {
                    cs_threshold_dbm: thr,
                    ..mmwave_mac::MacParams::default()
                },
                ..NetConfig::default()
            },
        );
        let (db, lb) = (f.dock_b, f.laptop_b);
        f.net.txlog_mut().set_enabled(false);
        let mut stack = Stack::new(f.net);
        let flow = stack.add_flow(TcpConfig::bulk(db, lb, 192 * 1024));
        stack.run_until(SimTime::from_secs(1));
        let goodput = stack
            .flow_stats(flow)
            .mean_goodput_mbps(SimTime::from_millis(300), SimTime::from_secs(1));
        let st = stack.net.device(db).stats;
        rows.push(vec![
            format!("{thr} dBm"),
            format!("{goodput:.0}"),
            format!("{}", st.data_retx),
            format!("{}", st.cs_defers),
        ]);
    }
    println!(
        "{}",
        report::table(
            "Ablation 3 — carrier-sense threshold next to a WiHD interferer (0.8 m)",
            &[
                "CS threshold",
                "goodput (Mb/s)",
                "retransmissions",
                "deferrals"
            ],
            &rows,
        )
    );
    println!("→ §5: no single MAC behaviour fits all beam patterns — deaf carrier\n   sensing trades deferrals for collisions.\n");
}

fn ablate_reflection_order() {
    let mut rows = Vec::new();
    for order in [0usize, 1, 2] {
        let mut r = scenarios::reflection_room(&SimCtx::new(), RoomSystem::Wigig, quiet(35));
        r.net.env.trace.max_order = order;
        let mut i = 0u64;
        while r.net.now() < SimTime::from_millis(30) {
            for _ in 0..20 {
                r.net.push_mpdu(r.tx, 1500, i);
                i += 1;
            }
            let t = r.net.now();
            r.net.run_until(t + SimDuration::from_micros(400));
        }
        let mut lobes = 0usize;
        let mut deep_lobes = 0usize;
        for (_, pos) in r.layout.probes {
            let profile = measure_profile(&r.net, pos, 120, SimTime::ZERO, r.net.now());
            let exp = expected_directions(&r.net, pos, r.tx, r.rx);
            lobes += unattributed_lobes(&profile, &exp, 16f64.to_radians(), 1.0, 12.0).len();
            deep_lobes += unattributed_lobes(&profile, &exp, 16f64.to_radians(), 0.5, 22.0).len();
        }
        rows.push(vec![
            format!("{order}"),
            format!("{lobes}"),
            format!("{deep_lobes}"),
        ]);
    }
    println!(
        "{}",
        report::table(
            "Ablation 4 — ray-tracing reflection order vs observed wall lobes",
            &["max order", "strong lobes (≤12 dB)", "all lobes (≤22 dB)"],
            &rows,
        )
    );
    println!("→ §5: a geometric MAC that ignores reflections misses every one of\n   those lobes. First-order bounces carry the strong ones; second-order\n   bounces add the weaker tail (the paper's position-B observation).\n");
}

fn main() {
    ablate_phase_shifters();
    ablate_aggregation();
    ablate_cs_threshold();
    ablate_reflection_order();
}
