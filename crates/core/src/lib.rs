//! # mmwave-core — the measurement campaign, as a library
//!
//! This crate is the paper's primary contribution in executable form: the
//! *methodology* of overhearing consumer 60 GHz devices with a
//! down-converter and extracting beamforming, interference and frame-level
//! insight from amplitude traces. It composes the substrate crates into
//! the exact experimental setups of the paper and re-runs every analysis:
//!
//! * [`scenarios`] — constructors for each measurement setup: the outdoor
//!   semicircle pattern range (Fig. 2), the conference room with its six
//!   probe positions (Fig. 4), the blocked-LoS wall link (Fig. 5), the
//!   parallel-links interference floor (Fig. 6) and the shielded
//!   reflector setup (Fig. 7).
//! * [`replay`] — turns a MAC transmission log into the oscilloscope
//!   traces a Vubiq at any position would have recorded.
//! * [`analysis`] — frame-level statistics (lengths, bursts, aggregation),
//!   beam-pattern metrics, reflection attribution and interference
//!   summaries.
//! * [`design`] — working prototypes of the paper's §5 design principles
//!   (MAC-behaviour switching, reflection-aware interference maps,
//!   quasi-static power control), each evaluated against the simulated
//!   hardware.
//! * [`experiments`] — one module per table/figure of the evaluation;
//!   each returns a structured result and renders the same rows/series the
//!   paper reports. The `experiments` binary runs them from the shell.
//! * [`report`] — plain-text table/series/polar renderers shared by the
//!   binaries.

pub mod analysis;
pub mod design;
pub mod experiments;
pub mod replay;
pub mod report;
pub mod scenarios;
