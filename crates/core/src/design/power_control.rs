//! §5, principle 4: *"devices may need to adjust their transmit power to
//! control interference even in quasi-static scenarios, such as homes."*
//!
//! The prototype: a margin-based transmit power controller. A link that
//! enjoys more SNR than its operating MCS needs is wasting the excess as
//! interference into its neighbours; the controller trims the conducted
//! power down to `required + target_margin`, never below a safety floor.

use mmwave_mac::{Net, PatKey};

/// How much SNR headroom to keep above the current MCS's selection point.
pub const TARGET_MARGIN_DB: f64 = 5.0;
/// Never trim more than this (hardware ranges are finite).
pub const MAX_TRIM_DB: f64 = 12.0;

/// The SNR the device's current link enjoys, measured the way its beacon
/// path does (trained sectors, no fading snapshot).
pub fn link_snr_db(net: &mut Net, dev: usize) -> Option<f64> {
    let w = net.device(dev).wigig()?;
    let peer = w.peer?;
    let peer_sector = net.device(peer).wigig()?.tx_sector;
    let rx = net.medium_rx_power_dbm(peer, PatKey::Dir(peer_sector), dev);
    Some(rx - net.env.noise_floor_dbm())
}

/// Compute the power trim (≤ 0 dB) that leaves `TARGET_MARGIN_DB` of
/// headroom above the MCS the device currently runs.
pub fn recommend_trim_db(net: &mut Net, dev: usize) -> Option<f64> {
    let snr = link_snr_db(net, dev)?;
    let w = net.device(dev).wigig()?;
    let needed = w
        .adapter
        .current()
        .snr_threshold_db(net.env.noise_floor_dbm());
    let excess = snr - (needed + TARGET_MARGIN_DB);
    Some((-excess).clamp(-MAX_TRIM_DB, 0.0))
}

/// Apply the recommended trim to a device's conducted power. Returns the
/// trim applied (0 when the link has no headroom).
pub fn apply_to_device(net: &mut Net, dev: usize) -> Option<f64> {
    let trim = recommend_trim_db(net, dev)?;
    net.device_mut(dev).tx_power_offset_db += trim;
    Some(trim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::point_to_point;
    use mmwave_mac::NetConfig;
    use mmwave_sim::ctx::SimCtx;
    use mmwave_sim::time::SimTime;

    fn quiet(seed: u64) -> NetConfig {
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        }
    }

    #[test]
    fn short_link_gets_trimmed() {
        // A 2 m link runs MCS 11 with ~10 dB of excess SNR: the controller
        // trims but leaves the MCS intact.
        let mut p = point_to_point(&SimCtx::new(), 2.0, quiet(1));
        let before = link_snr_db(&mut p.net, p.dock).expect("link up");
        let trim = apply_to_device(&mut p.net, p.laptop).expect("wigig");
        assert!(trim < -3.0, "expected a real trim, got {trim}");
        assert!(trim >= -MAX_TRIM_DB);
        let after = link_snr_db(&mut p.net, p.dock).expect("link up");
        assert!(
            (before + trim - after).abs() < 0.5,
            "trim maps 1:1 onto SNR"
        );
        // The link still carries data at the same MCS.
        for i in 0..30u64 {
            p.net.push_mpdu(p.laptop, 1500, i);
        }
        p.net.run_until(SimTime::from_millis(10));
        assert_eq!(p.net.device(p.dock).stats.mpdus_rx, 30);
        let w = p.net.device(p.laptop).wigig().expect("wigig");
        assert_eq!(w.adapter.current().index, 11, "MCS survives the trim");
    }

    #[test]
    fn marginal_link_is_left_alone() {
        // A 12 m link has little headroom: no trim.
        let mut p = point_to_point(&SimCtx::new(), 12.0, quiet(2));
        let trim = recommend_trim_db(&mut p.net, p.dock).expect("wigig");
        assert!(trim > -2.0, "marginal link must keep its power: {trim}");
    }

    #[test]
    fn trimming_reduces_interference_at_a_bystander() {
        // The trimmed transmitter leaks less energy into a third party.
        let mut p = point_to_point(&SimCtx::new(), 2.0, quiet(3));
        let bystander = p.net.add_device(mmwave_mac::Device::wigig_dock(
            &SimCtx::new(),
            "bystander",
            mmwave_geom::Point::new(1.0, 3.0),
            mmwave_geom::Angle::from_degrees(-90.0),
            7,
        ));
        let laptop = p.laptop;
        let sector = p.net.device(laptop).wigig().expect("wigig").tx_sector;
        let before = p
            .net
            .medium_rx_power_dbm(laptop, PatKey::Dir(sector), bystander);
        let trim = apply_to_device(&mut p.net, laptop).expect("wigig");
        let after = p
            .net
            .medium_rx_power_dbm(laptop, PatKey::Dir(sector), bystander);
        assert!(
            (before + trim - after).abs() < 0.5,
            "interference drops by the trim"
        );
    }
}
