//! §5, principle 1: *"60 GHz networks should implement multiple MAC
//! behaviors and choose the one which is most suitable for the beam
//! patterns of the individual devices in the network."*
//!
//! The prototype: assess the *realized* (trained) pattern of a device —
//! not its nominal spec — and pick a carrier-sensing posture from it.
//! Clean patterns (deep side lobes) barely leak energy sideways, so their
//! owner can afford a deaf, reuse-friendly CS threshold; dirty patterns
//! (the boundary-steering case) spray energy everywhere and should defer
//! readily.

use mmwave_mac::{Net, PatKey};
use mmwave_phy::AntennaPattern;

/// The two MAC postures the selector chooses between.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MacBehavior {
    /// Deaf CS: assume directionality isolates us; maximize spatial reuse.
    AggressiveReuse,
    /// Sensitive CS: expect our side lobes to collide; defer readily.
    ConservativeCsma,
}

impl MacBehavior {
    /// The carrier-sense threshold implementing this posture, dBm.
    pub fn cs_threshold_dbm(self) -> f64 {
        match self {
            MacBehavior::AggressiveReuse => -60.0,
            MacBehavior::ConservativeCsma => -74.0,
        }
    }
}

/// What the selector measures about a realized pattern.
#[derive(Clone, Copy, Debug)]
pub struct PatternAssessment {
    /// Half-power beamwidth, degrees.
    pub hpbw_deg: f64,
    /// Strongest side lobe relative to the main lobe, dB (0 = as strong).
    pub sll_db: f64,
    /// Number of lobes within 3 dB of the peak.
    pub strong_lobes: usize,
}

/// Assess a pattern the way the selector would (e.g. from a factory
/// calibration table or an in-field semicircle measurement).
pub fn assess(pattern: &AntennaPattern) -> PatternAssessment {
    let peak = pattern.peak().gain_dbi;
    PatternAssessment {
        hpbw_deg: pattern.hpbw().to_degrees(),
        sll_db: pattern.side_lobe_level_db().unwrap_or(-40.0),
        strong_lobes: pattern
            .lobes(1.0)
            .iter()
            .filter(|l| l.gain_dbi >= peak - 3.0)
            .count(),
    }
}

/// Choose the posture for a pattern: aggressive reuse only when the
/// pattern is genuinely pencil-like (the paper's point is that consumer
/// hardware often is not).
pub fn choose(a: &PatternAssessment) -> MacBehavior {
    if a.sll_db <= -5.0 && a.strong_lobes <= 1 && a.hpbw_deg <= 25.0 {
        MacBehavior::AggressiveReuse
    } else {
        MacBehavior::ConservativeCsma
    }
}

/// Assess the *trained* transmit pattern of a WiGig device in a running
/// network and apply the chosen posture to its carrier sensing.
/// Returns the choice, or `None` for non-WiGig devices.
pub fn apply_to_device(net: &mut Net, dev: usize) -> Option<MacBehavior> {
    let sector = net.device(dev).wigig()?.tx_sector;
    let assessment = {
        let pattern = net.device(dev).pattern(PatKey::Dir(sector));
        assess(pattern)
    };
    let behavior = choose(&assessment);
    net.device_mut(dev).cs_threshold_override_dbm = Some(behavior.cs_threshold_dbm());
    Some(behavior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{interference_floor, point_to_point};
    use mmwave_geom::Angle;
    use mmwave_mac::NetConfig;
    use mmwave_sim::ctx::SimCtx;
    use mmwave_sim::time::SimTime;

    fn quiet(seed: u64) -> NetConfig {
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        }
    }

    #[test]
    fn clean_aligned_pattern_selects_reuse() {
        let mut p = point_to_point(&SimCtx::new(), 2.0, quiet(1));
        let choice = apply_to_device(&mut p.net, p.dock).expect("wigig device");
        assert_eq!(choice, MacBehavior::AggressiveReuse);
        assert_eq!(
            p.net.device(p.dock).cs_threshold_override_dbm,
            Some(MacBehavior::AggressiveReuse.cs_threshold_dbm())
        );
    }

    #[test]
    fn boundary_steering_selects_conservative() {
        // The Fig. 22 rotated dock: its trained sector is a boundary
        // pattern with near-0 dB side lobes.
        let mut f = interference_floor(&SimCtx::new(), 1.5, Angle::from_degrees(50.0), quiet(2));
        let choice = apply_to_device(&mut f.net, f.dock_b).expect("wigig device");
        assert_eq!(choice, MacBehavior::ConservativeCsma);
        // The aligned dock A keeps reuse.
        let choice_a = apply_to_device(&mut f.net, f.dock_a).expect("wigig device");
        assert_eq!(choice_a, MacBehavior::AggressiveReuse);
    }

    #[test]
    fn wihd_devices_are_not_assessed() {
        let mut f = interference_floor(&SimCtx::new(), 1.5, Angle::ZERO, quiet(3));
        assert!(apply_to_device(&mut f.net, f.hdmi_tx).is_none());
    }

    #[test]
    fn assessment_reports_sane_numbers() {
        let p = point_to_point(&SimCtx::new(), 2.0, quiet(4));
        let w = p.net.device(p.dock).wigig().expect("wigig");
        let a = assess(&w.codebook.sector(w.tx_sector).pattern);
        assert!(a.hpbw_deg > 5.0 && a.hpbw_deg < 30.0);
        assert!(a.sll_db < 0.0);
        assert!(a.strong_lobes >= 1);
    }

    /// End to end: on the interference floor, the conservative posture
    /// reduces the rotated link's loss ratio compared to forcing the
    /// aggressive one — the behaviour *choice* matters, which is the §5
    /// claim.
    #[test]
    fn posture_choice_matters_for_dirty_patterns() {
        let run = |behavior: MacBehavior| {
            let mut f =
                interference_floor(&SimCtx::new(), 1.5, Angle::from_degrees(50.0), quiet(5));
            f.net.device_mut(f.dock_b).cs_threshold_override_dbm =
                Some(behavior.cs_threshold_dbm());
            for i in 0..800u64 {
                f.net.push_mpdu(f.dock_b, 1500, i);
                f.net.push_mpdu(f.dock_a, 1500, 100_000 + i);
            }
            f.net.run_until(SimTime::from_millis(120));
            f.net.device(f.dock_b).stats.data_loss_ratio()
        };
        let aggressive = run(MacBehavior::AggressiveReuse);
        let conservative = run(MacBehavior::ConservativeCsma);
        assert!(
            conservative <= aggressive,
            "conservative CSMA should not lose more: {conservative} vs {aggressive}"
        );
    }
}
