//! Prototypes of the paper's §5 design principles.
//!
//! The paper closes with four principles for 60 GHz protocol designers.
//! None of them is evaluated there — they are "derive"d from the
//! measurements. This module turns each into working code and evaluates
//! it against the same simulated hardware the measurements came from:
//!
//! * [`mac_switching`] — *"60 GHz networks should implement multiple MAC
//!   behaviors and choose the one which is most suitable for the beam
//!   patterns of the individual devices"*: a selector that measures the
//!   realized pattern of a link and picks aggressive spatial reuse versus
//!   conservative CSMA accordingly.
//! * [`geometric_mac`] — *"such protocols should extend this geometric
//!   approach to include up to two signal reflections"*: an interference
//!   map that predicts which link pairs collide, with and without
//!   reflection awareness, validated against the simulated ground truth.
//! * [`power_control`] — *"devices may need to adjust their transmit
//!   power to control interference even in quasi-static scenarios"*: a
//!   margin-based power controller evaluated on the Fig. 6 floor.

pub mod geometric_mac;
pub mod mac_switching;
pub mod power_control;
