//! §5, principle 2: *"MAC layer designs which exploit the sparsity of
//! 60 GHz signals … should extend this geometric approach to include up
//! to two signal reflections off walls or obstacles if possible."*
//!
//! The prototype: an interference map. For every (transmitter, victim
//! receiver) pair it predicts whether a concurrent transmission would
//! disturb the victim, using the trained patterns and the ray tracer at a
//! configurable reflection order. A geometry-only MAC corresponds to
//! order 0 (line of sight); the paper's recommendation is order 2.

use mmwave_mac::{Net, PatKey};
use mmwave_phy::{db_to_lin, lin_to_db};

/// A directed link (transmitter index, receiver index).
pub type Link = (usize, usize);

/// Predicted interference of `tx`'s transmissions at `victim_rx`, dBm,
/// considering propagation paths up to `max_order` reflections and both
/// ends' current (trained) patterns.
pub fn predicted_interference_dbm(net: &Net, tx: usize, victim_rx: usize, max_order: usize) -> f64 {
    let tx_dev = net.device(tx);
    let rx_dev = net.device(victim_rx);
    let tx_key = match tx_dev.wigig() {
        Some(w) => PatKey::Dir(w.tx_sector),
        None => PatKey::Dir(tx_dev.wihd().map(|w| w.tx_sector).unwrap_or(0)),
    };
    let tx_pattern = tx_dev.pattern(tx_key);
    let rx_pattern = rx_dev.pattern(rx_dev.listen_key());
    let lin: f64 = net
        .env
        .paths(tx_dev.node.position, rx_dev.node.position)
        .iter()
        .filter(|p| p.order() <= max_order)
        .map(|p| {
            let ga = tx_dev.node.gain_toward(tx_pattern, p.departure);
            let gb = rx_dev.node.gain_toward(rx_pattern, p.arrival);
            db_to_lin(
                net.env.budget.rx_power_dbm(ga, gb, p) + tx_dev.tx_power_offset_db
                    - net.env.extra_loss_db,
            )
        })
        .sum();
    lin_to_db(lin)
}

/// The conflict matrix: `conflicts[i][j]` is true when link `i`'s
/// transmitter is predicted to disturb link `j`'s receiver above
/// `threshold_dbm` (links never conflict with themselves).
#[derive(Clone, Debug)]
pub struct InterferenceMap {
    /// Predicted interference levels, dBm: `levels[i][j]` from link i's TX
    /// at link j's RX.
    pub levels: Vec<Vec<f64>>,
    /// Conflict verdicts at the construction threshold.
    pub conflicts: Vec<Vec<bool>>,
}

/// Build the map for a set of links.
pub fn interference_map(
    net: &Net,
    links: &[Link],
    threshold_dbm: f64,
    max_order: usize,
) -> InterferenceMap {
    let n = links.len();
    let mut levels = vec![vec![f64::NEG_INFINITY; n]; n];
    let mut conflicts = vec![vec![false; n]; n];
    for (i, &(tx, _)) in links.iter().enumerate() {
        for (j, &(_, rx)) in links.iter().enumerate() {
            if i == j {
                continue;
            }
            let p = predicted_interference_dbm(net, tx, rx, max_order);
            levels[i][j] = p;
            conflicts[i][j] = p > threshold_dbm;
        }
    }
    InterferenceMap { levels, conflicts }
}

impl InterferenceMap {
    /// Pairs of links the map would schedule concurrently (no conflict in
    /// either direction).
    pub fn reusable_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.conflicts.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if !self.conflicts[i][j] && !self.conflicts[j][i] {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{interference_floor, reflector_rig};
    use mmwave_geom::Angle;
    use mmwave_mac::NetConfig;
    use mmwave_sim::ctx::SimCtx;
    use mmwave_sim::time::SimTime;

    fn quiet(seed: u64) -> NetConfig {
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        }
    }

    /// The Fig. 7 rig is the paper's own counter-example to geometry-only
    /// MACs: the direct path is shielded, so an order-0 map sees no
    /// conflict — yet the metal reflector delivers real interference. The
    /// order-≥1 map catches it.
    #[test]
    fn reflection_aware_map_catches_the_fig7_conflict() {
        let r = reflector_rig(&SimCtx::new(), quiet(1));
        // WiHD TX versus the WiGig link's receiver (the dock).
        let blind = predicted_interference_dbm(&r.net, r.hdmi_tx, r.dock, 0);
        let aware = predicted_interference_dbm(&r.net, r.hdmi_tx, r.dock, 2);
        assert!(blind < -100.0, "direct path is shielded: {blind}");
        assert!(
            aware > -72.0,
            "reflected interference must be visible: {aware}"
        );
        // And the interference is real: the fig23 experiment measures an
        // actual TCP degradation from exactly this path.
    }

    /// On the open interference floor the two WiGig links genuinely reuse
    /// space; the map must say so at any order (no false conflicts).
    #[test]
    fn parallel_links_are_reusable() {
        let f = interference_floor(&SimCtx::new(), 1.5, Angle::ZERO, quiet(2));
        let links = [(f.dock_a, f.laptop_a), (f.dock_b, f.laptop_b)];
        let map = interference_map(&f.net, &links, -64.0, 2);
        assert_eq!(map.reusable_pairs(), vec![(0, 1)]);
    }

    /// The WiHD transmitter, in contrast, conflicts with the nearby dock
    /// link at small offsets and stops conflicting at large ones — the
    /// Fig. 22 sweep, predicted geometrically.
    #[test]
    fn map_tracks_the_fig22_distance_sweep() {
        let level_at = |off: f64| {
            let f = interference_floor(&SimCtx::new(), off, Angle::ZERO, quiet(3));
            predicted_interference_dbm(&f.net, f.hdmi_tx, f.laptop_b, 2)
        };
        let near = level_at(0.4);
        let far = level_at(3.0);
        assert!(
            near > far,
            "interference must decline with offset: {near} vs {far}"
        );
    }

    /// Ground-truth check: running the Fig. 7 rig, the dock's reception
    /// actually suffers (deferrals or corrupted frames) — the conflict the
    /// order-2 map predicted and the order-0 map missed.
    #[test]
    fn predicted_conflict_is_real() {
        let r = reflector_rig(&SimCtx::new(), quiet(4));
        let (dock, laptop) = (r.dock, r.laptop);
        let mut net = r.net;
        for i in 0..600u64 {
            net.push_mpdu(laptop, 1500, i);
        }
        net.run_until(SimTime::from_millis(100));
        let st = net.device(dock).stats;
        let sl = net.device(laptop).stats;
        assert!(
            st.cs_defers + sl.cs_defers + sl.ack_timeouts > 0,
            "the reflected interference should visibly disturb the link"
        );
    }
}
