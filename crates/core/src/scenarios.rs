//! The paper's experimental setups, one constructor per figure.
//!
//! Coordinates follow each figure's annotations; where a figure leaves a
//! dimension unspecified, DESIGN.md records the choice. All constructors
//! return fully wired [`Net`]s (devices added and, where the experiment
//! assumes an established link, already associated/paired).

use mmwave_channel::Environment;
use mmwave_geom::{Angle, ConferenceRoom, Material, Point, Room, Segment};
use mmwave_mac::{Device, Net, NetConfig};
use mmwave_sim::ctx::SimCtx;

/// Canonical array seeds, re-exported from the calibrated definitions in
/// [`mmwave_phy::calib`] (pinned by `crates/phy/tests/calibration.rs`).
pub mod seeds {
    use mmwave_phy::calib;

    /// Dock A / the dock under test.
    pub const DOCK_A: u64 = calib::DOCK_SEED;
    /// Dock B (second link in Fig. 6).
    pub const DOCK_B: u64 = calib::DOCK_B_SEED;
    /// Laptop A / the laptop under test.
    pub const LAPTOP_A: u64 = calib::LAPTOP_SEED;
    /// Laptop B.
    pub const LAPTOP_B: u64 = calib::LAPTOP_B_SEED;
    /// WiHD source (HDMI TX).
    pub const WIHD_TX: u64 = calib::WIHD_TX_SEED;
    /// WiHD sink (HDMI RX).
    pub const WIHD_RX: u64 = calib::WIHD_RX_SEED;
}

/// A simple point-to-point dock↔laptop link at `distance_m` in open space
/// (the basic rig of Figs. 9–14), already associated.
pub struct PointToPoint {
    /// The network.
    pub net: Net,
    /// Dock index.
    pub dock: usize,
    /// Laptop index.
    pub laptop: usize,
}

/// Build the point-to-point link.
pub fn point_to_point(ctx: &SimCtx, distance_m: f64, cfg: NetConfig) -> PointToPoint {
    let mut net = Net::with_ctx(Environment::new(Room::open_space()), cfg, ctx);
    let dock = net.add_device(Device::wigig_dock(
        ctx,
        "Dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        seeds::DOCK_A,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        ctx,
        "Laptop",
        Point::new(distance_m, 0.0),
        Angle::from_degrees(180.0),
        seeds::LAPTOP_A,
    ));
    net.associate_instantly(dock, laptop);
    PointToPoint { net, dock, laptop }
}

/// The outdoor beam-pattern range of Fig. 2: device under test at the
/// origin facing +x, an active peer 3 m further out on the boresight (so
/// the link trains), and no walls at all. The capture equipment moves
/// along a 3.2 m semicircle around the DUT.
pub struct PatternRange {
    /// The network.
    pub net: Net,
    /// The device under test (at the origin).
    pub dut: usize,
    /// Its link peer (kept close to boresight, as in the paper).
    pub peer: usize,
    /// Semicircle radius used by the paper.
    pub scan_radius_m: f64,
}

/// Build the pattern range with the DUT misaligned by `rotation` (0° for
/// the aligned measurement, 70° for the boundary-steering one).
pub fn pattern_range(ctx: &SimCtx, rotation: Angle, cfg: NetConfig) -> PatternRange {
    let mut net = Net::with_ctx(Environment::new(Room::open_space()), cfg, ctx);
    let dut = net.add_device(Device::wigig_dock(
        ctx,
        "D5000 (DUT)",
        Point::new(0.0, 0.0),
        rotation, // boresight rotated away from the peer
        seeds::DOCK_A,
    ));
    let peer = net.add_device(Device::wigig_laptop(
        ctx,
        "Laptop (peer)",
        Point::new(3.0, 0.0),
        Angle::from_degrees(180.0),
        seeds::LAPTOP_A,
    ));
    net.associate_instantly(dut, peer);
    PatternRange {
        net,
        dut,
        peer,
        scan_radius_m: 3.2,
    }
}

/// Fig. 4's conference room with an active link along its axis.
pub struct ReflectionRoom {
    /// The network (room walls included).
    pub net: Net,
    /// Transmitting device index.
    pub tx: usize,
    /// Receiving device index.
    pub rx: usize,
    /// The room description (probe positions A–F).
    pub layout: ConferenceRoom,
}

/// Which system occupies the room in the reflection experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoomSystem {
    /// D5000 dock + laptop (Fig. 18).
    Wigig,
    /// WiHD source + sink (Fig. 19).
    Wihd,
}

/// Build the conference-room scenario.
pub fn reflection_room(ctx: &SimCtx, system: RoomSystem, cfg: NetConfig) -> ReflectionRoom {
    let layout = ConferenceRoom::new();
    let mut net = Net::with_ctx(Environment::new(layout.room.clone()), cfg, ctx);
    let (tx, rx) = match system {
        RoomSystem::Wigig => {
            // Laptop transmits from the right end, dock receives left.
            let rx = net.add_device(Device::wigig_dock(
                ctx,
                "Dock",
                layout.rx,
                Angle::ZERO,
                seeds::DOCK_A,
            ));
            let tx = net.add_device(Device::wigig_laptop(
                ctx,
                "Laptop",
                layout.tx,
                Angle::from_degrees(180.0),
                seeds::LAPTOP_A,
            ));
            net.associate_instantly(rx, tx);
            (tx, rx)
        }
        RoomSystem::Wihd => {
            let rx = net.add_device(Device::wihd_sink(
                ctx,
                "HDMI RX",
                layout.rx,
                Angle::ZERO,
                seeds::WIHD_RX,
            ));
            let tx = net.add_device(Device::wihd_source(
                ctx,
                "HDMI TX",
                layout.tx,
                Angle::from_degrees(180.0),
                seeds::WIHD_TX,
            ));
            net.pair_wihd_instantly(tx, rx);
            (tx, rx)
        }
    };
    ReflectionRoom {
        net,
        tx,
        rx,
        layout,
    }
}

/// Fig. 5: a dock↔laptop link parallel to a wall, with the direct path
/// blocked, so all energy travels via the wall reflection. Dock at the
/// origin, laptop 4.8 m along +x, wall 1.5 m to the side, obstacle between.
/// (The figure's schematic is shorter; the dimensions here are calibrated
/// so the reflected link lands in the MCS region that yields the paper's
/// ≈550 Mb/s — see DESIGN.md.)
pub struct BlockedLosLink {
    /// The network.
    pub net: Net,
    /// Dock index.
    pub dock: usize,
    /// Laptop index.
    pub laptop: usize,
    /// The reflecting wall's y coordinate.
    pub wall_y: f64,
}

/// Build the blocked-LoS reflection link.
pub fn blocked_los_link(ctx: &SimCtx, cfg: NetConfig) -> BlockedLosLink {
    let mut room = Room::open_space();
    let wall_y = 1.5;
    // The reflecting wall runs parallel to the link.
    room.add_wall(mmwave_geom::Wall::new(
        Segment::new(Point::new(-1.0, wall_y), Point::new(6.3, wall_y)),
        Material::Brick,
        "reflecting wall",
    ));
    // The obstacle on the direct path (clears the wall bounce at y≈1.5).
    room.add_obstacle(
        Segment::new(Point::new(2.4, -0.6), Point::new(2.4, 0.95)),
        Material::Human,
        "blockage",
    );
    let mut net = Net::with_ctx(Environment::new(room), cfg, ctx);
    let dock = net.add_device(Device::wigig_dock(
        ctx,
        "Dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        seeds::DOCK_A,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        ctx,
        "Laptop",
        Point::new(4.8, 0.0),
        Angle::from_degrees(180.0),
        seeds::LAPTOP_A,
    ));
    net.associate_instantly(dock, laptop);
    BlockedLosLink {
        net,
        dock,
        laptop,
        wall_y,
    }
}

/// Fig. 6: two parallel dock↔laptop links (6 m, vertical) plus the WiHD
/// pair (8 m, vertical) at a variable horizontal offset from Dock B.
///
/// Geometry (x grows to the right, y upward):
/// docks at y = 0 facing +y, laptops at y = 6 facing −y; Dock A at x = 0,
/// Dock B at x = 3. The WiHD transmitter sits near the docks' row at
/// `x = 3 + 1 + offset` (the figure's fixed 1 m gap plus the swept 0–3 m),
/// its sink 8 m up.
pub struct InterferenceFloor {
    /// The network.
    pub net: Net,
    /// Dock A.
    pub dock_a: usize,
    /// Laptop A.
    pub laptop_a: usize,
    /// Dock B (the one nearest the interferer).
    pub dock_b: usize,
    /// Laptop B.
    pub laptop_b: usize,
    /// WiHD source.
    pub hdmi_tx: usize,
    /// WiHD sink.
    pub hdmi_rx: usize,
}

/// Build the interference floor with the WiHD system at `offset_m`
/// (0–3 m) horizontal distance from Dock B, optionally rotating Dock B by
/// `dock_rotation` (the paper's 70° "rotated" case).
pub fn interference_floor(
    ctx: &SimCtx,
    offset_m: f64,
    dock_rotation: Angle,
    cfg: NetConfig,
) -> InterferenceFloor {
    let mut net = Net::with_ctx(Environment::new(Room::open_space()), cfg, ctx);
    let up = Angle::from_degrees(90.0);
    let down = Angle::from_degrees(-90.0);
    let dock_a = net.add_device(Device::wigig_dock(
        ctx,
        "Dock A",
        Point::new(0.0, 0.0),
        up,
        seeds::DOCK_A,
    ));
    let laptop_a = net.add_device(Device::wigig_laptop(
        ctx,
        "Laptop A",
        Point::new(0.0, 6.0),
        down,
        seeds::LAPTOP_A,
    ));
    let dock_b = net.add_device(Device::wigig_dock(
        ctx,
        "Dock B",
        Point::new(3.0, 0.0),
        up + dock_rotation,
        seeds::DOCK_B,
    ));
    let laptop_b = net.add_device(Device::wigig_laptop(
        ctx,
        "Laptop B",
        Point::new(3.0, 6.0),
        down,
        seeds::LAPTOP_B,
    ));
    let hdmi_x = 3.0 + 1.0 + offset_m;
    let hdmi_tx = net.add_device(Device::wihd_source(
        ctx,
        "HDMI TX",
        Point::new(hdmi_x, 0.0),
        up,
        seeds::WIHD_TX,
    ));
    let hdmi_rx = net.add_device(Device::wihd_sink(
        ctx,
        "HDMI RX",
        Point::new(hdmi_x, 8.0),
        down,
        seeds::WIHD_RX,
    ));
    net.associate_instantly(dock_a, laptop_a);
    net.associate_instantly(dock_b, laptop_b);
    net.pair_wihd_instantly(hdmi_tx, hdmi_rx);
    InterferenceFloor {
        net,
        dock_a,
        laptop_a,
        dock_b,
        laptop_b,
        hdmi_tx,
        hdmi_rx,
    }
}

/// Fig. 7: the reflection-interference rig. A WiGig link (laptop → dock)
/// and a WiHD link are mutually shielded on the direct path, but a metal
/// reflector behind the WiHD receiver bounces WiHD energy into the dock.
pub struct ReflectorRig {
    /// The network.
    pub net: Net,
    /// Dock (TCP receiver).
    pub dock: usize,
    /// Laptop (TCP sender).
    pub laptop: usize,
    /// WiHD source.
    pub hdmi_tx: usize,
    /// WiHD sink.
    pub hdmi_rx: usize,
}

/// Build the reflector rig. Geometry follows Fig. 7's logic with the
/// coordinates chosen so the physics works out (the figure's exact layout
/// is schematic): the WiGig link runs along y = 0 (laptop → dock, 1.9 m);
/// the WiHD link runs along y = 2 above an absorbing shield, its
/// transmitter beaming *towards* the metal reflector placed behind the
/// WiHD receiver; the reflector's tilt bounces that energy past the edge
/// of the shield into the dock's strong side-lobe region (≈ 38° off its
/// boresight).
pub fn reflector_rig(ctx: &SimCtx, cfg: NetConfig) -> ReflectorRig {
    let mut room = Room::open_space();
    // The metal reflector behind the WiHD receiver (1 m plate, 80° tilt).
    // Placement is calibrated so the reflected WiHD level at the dock
    // hovers right at the dock's clear-channel threshold — the regime the
    // paper's ≈20 % average / ≈33 % worst-case TCP degradation implies
    // (fading toggles the dock between deferring and tolerating).
    room.add_wall(mmwave_geom::Wall::new(
        Segment::new(Point::new(0.813, 0.958), Point::new(0.987, 1.942)),
        Material::Metal,
        "reflector",
    ));
    // Shielding between the two systems; the left side is deliberately
    // open so the reflected path reaches the dock ("we make sure that we
    // do not block the reflected signal", §3.2).
    room.add_obstacle(
        Segment::new(Point::new(1.9, 1.0), Point::new(3.6, 1.0)),
        Material::Absorber,
        "shielding",
    );
    let mut net = Net::with_ctx(Environment::new(room), cfg, ctx);
    // WiGig link along y = 0: laptop left, dock right, 1.9 m apart.
    let dock = net.add_device(Device::wigig_dock(
        ctx,
        "Dock",
        Point::new(3.0, 0.0),
        Angle::from_degrees(180.0),
        seeds::DOCK_A,
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        ctx,
        "Laptop",
        Point::new(1.1, 0.0),
        Angle::ZERO,
        seeds::LAPTOP_A,
    ));
    // WiHD link above the shielding: TX right, RX left near the reflector.
    let mut hdmi_src = Device::wihd_source(
        ctx,
        "HDMI TX",
        Point::new(2.8, 2.0),
        Angle::from_degrees(180.0),
        seeds::WIHD_TX,
    );
    // Per-unit conducted-power spread: this particular module runs 0.5 dB
    // hot, putting the reflected level at the dock (−68.5 dBm) just above
    // its clear-channel threshold. Slow fading wobbles it around that
    // point, so the dock's deferral comes and goes — the regime behind
    // Fig. 23's fluctuating ≈20 % average loss.
    hdmi_src.tx_power_offset_db += 0.5;
    let hdmi_tx = net.add_device(hdmi_src);
    let hdmi_rx = net.add_device(Device::wihd_sink(
        ctx,
        "HDMI RX",
        Point::new(0.9, 2.0),
        Angle::ZERO,
        seeds::WIHD_RX,
    ));
    net.associate_instantly(dock, laptop);
    net.pair_wihd_instantly(hdmi_tx, hdmi_rx);
    ReflectorRig {
        net,
        dock,
        laptop,
        hdmi_tx,
        hdmi_rx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_mac::device::WigigState;
    use mmwave_sim::time::SimTime;

    fn cfg(seed: u64) -> NetConfig {
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        }
    }

    #[test]
    fn point_to_point_associates() {
        let p = point_to_point(&SimCtx::new(), 2.0, cfg(1));
        assert_eq!(
            p.net.device(p.dock).wigig().expect("wigig").state,
            WigigState::Associated
        );
    }

    #[test]
    fn pattern_range_trains_toward_peer() {
        let aligned = pattern_range(&SimCtx::new(), Angle::ZERO, cfg(2));
        let dut = aligned.net.device(aligned.dut);
        let w = dut.wigig().expect("wigig");
        // Facing the peer: trained sector near boresight.
        assert!(w.codebook.sector(w.tx_sector).steer.degrees().abs() < 15.0);

        let rotated = pattern_range(&SimCtx::new(), Angle::from_degrees(70.0), cfg(2));
        let dut = rotated.net.device(rotated.dut);
        let w = dut.wigig().expect("wigig");
        // Rotated 70°: the trained sector steers far off boresight.
        assert!(
            w.codebook.sector(w.tx_sector).steer.degrees() < -45.0,
            "steer {}",
            w.codebook.sector(w.tx_sector).steer
        );
    }

    #[test]
    fn reflection_room_links_work() {
        let mut wigig = reflection_room(&SimCtx::new(), RoomSystem::Wigig, cfg(3));
        wigig.net.run_until(SimTime::from_millis(10));
        assert!(!wigig.net.txlog().is_empty());
        let mut wihd = reflection_room(&SimCtx::new(), RoomSystem::Wihd, cfg(3));
        wihd.net.run_until(SimTime::from_millis(10));
        assert!(wihd.net.device(wihd.rx).wihd().expect("wihd").paired);
    }

    #[test]
    fn blocked_los_has_no_direct_path() {
        let b = blocked_los_link(&SimCtx::new(), cfg(4));
        let dock_pos = b.net.device(b.dock).node.position;
        let laptop_pos = b.net.device(b.laptop).node.position;
        assert!(
            !b.net.env.room.is_clear(dock_pos, laptop_pos, 1e-3),
            "LoS must be blocked"
        );
        // Yet the link associates (via the wall bounce).
        assert_eq!(
            b.net.device(b.dock).wigig().expect("wigig").state,
            WigigState::Associated
        );
    }

    #[test]
    fn interference_floor_wiring() {
        let f = interference_floor(&SimCtx::new(), 1.5, Angle::ZERO, cfg(5));
        assert_eq!(f.net.device_count(), 6);
        assert!((f.net.device(f.hdmi_tx).node.position.x - 5.5).abs() < 1e-9);
        assert!(f.net.device(f.hdmi_tx).wihd().expect("wihd").paired);
    }

    #[test]
    fn reflector_rig_shields_direct_path() {
        let r = reflector_rig(&SimCtx::new(), cfg(6));
        let dock = r.net.device(r.dock).node.position;
        let hdmi_tx = r.net.device(r.hdmi_tx).node.position;
        // Direct path between systems crosses the shielding.
        assert!(!r.net.env.room.is_clear(hdmi_tx, dock, 1e-3));
        // But a reflected path exists.
        let paths = r.net.env.paths(hdmi_tx, dock);
        assert!(
            paths.iter().any(|p| p.order() >= 1),
            "reflector must deliver WiHD energy to the dock"
        );
        // And the WiGig link itself is unobstructed.
        let laptop = r.net.device(r.laptop).node.position;
        assert!(r.net.env.room.is_clear(laptop, dock, 1e-3));
    }
}
