//! Replaying a transmission log into oscilloscope traces.
//!
//! The MAC records *what was on the air*; this module computes *what a
//! Vubiq at a given position would have seen*: each logged transmission's
//! incident power at the tap (through the channel model, with the actual
//! transmit pattern and the tap's antenna), converted to volts by the
//! receiver model. The result is a [`SignalTrace`] that the capture
//! crate's detectors consume — the exact pipeline of §3.2.

use mmwave_capture::trace::SegmentTag;
use mmwave_capture::{SignalTrace, VubiqReceiver};
use mmwave_geom::{Angle, Point};
use mmwave_mac::Net;
use mmwave_phy::{db_to_lin, lin_to_db};
use mmwave_sim::time::SimTime;
use std::collections::HashMap;

/// Where the capture equipment sits and what it points at.
#[derive(Clone, Debug)]
pub struct TapConfig {
    /// Tap position.
    pub position: Point,
    /// Azimuth the antenna boresight faces.
    pub orientation: Angle,
    /// The receiver front end (horn or waveguide, gain setting).
    pub receiver: VubiqReceiver,
}

impl TapConfig {
    /// A horn-equipped tap at `position` looking along `orientation`.
    pub fn horn(position: Point, orientation: Angle) -> TapConfig {
        TapConfig {
            position,
            orientation,
            receiver: VubiqReceiver::with_horn(),
        }
    }

    /// An open-waveguide tap (protocol analysis).
    pub fn waveguide(position: Point, orientation: Angle) -> TapConfig {
        TapConfig {
            position,
            orientation,
            receiver: VubiqReceiver::with_waveguide(),
        }
    }
}

/// Replay the net's transmission log over `[from, to)` into a trace at
/// the tap. Transmissions below the receiver noise floor are still
/// recorded (at their tiny amplitude); the detector decides visibility.
pub fn replay_trace(net: &Net, tap: &TapConfig, from: SimTime, to: SimTime) -> SignalTrace {
    let mut trace = tap.receiver.begin_capture(from, to);
    let probe =
        mmwave_channel::RadioNode::new(usize::MAX - 7, "vubiq", tap.position, tap.orientation);
    // Cache paths per (source, logged position): scenario mobility can move
    // a device mid-run, so a replay must trace from where the source stood
    // at transmission time — the log records that pose per entry.
    let mut paths: HashMap<(usize, u64, u64), Vec<mmwave_geom::PropPath>> = HashMap::new();
    for e in net.txlog().in_window(from, to) {
        let dev = net.device(e.src);
        let p = paths
            .entry((
                e.src,
                e.src_position.x.to_bits(),
                e.src_position.y.to_bits(),
            ))
            .or_insert_with(|| net.env.paths(e.src_position, tap.position));
        let mut src_node = dev.node.clone();
        src_node.position = e.src_position;
        src_node.orientation = e.src_orientation;
        let tx_pattern = dev.pattern(e.pattern);
        let lin: f64 = p
            .iter()
            .map(|path| {
                let ga = src_node.gain_toward(tx_pattern, path.departure);
                let gb = probe.gain_toward(&tap.receiver.antenna, path.arrival);
                db_to_lin(
                    net.env.budget.rx_power_dbm(ga, gb, path) + dev.tx_power_offset_db
                        - net.env.extra_loss_db
                        + control_boost(net, e),
                )
            })
            .sum();
        let incident_dbm = lin_to_db(lin);
        tap.receiver.record(
            &mut trace,
            e.start,
            e.end,
            incident_dbm,
            SegmentTag {
                source: e.src,
                class: e.class.as_u8(),
            },
        );
    }
    trace
}

/// Control/beacon/discovery frames ride with extra power (§3.2); the replay
/// must apply the same boost the medium did.
fn control_boost(net: &Net, e: &mmwave_mac::TxLogEntry) -> f64 {
    use mmwave_mac::FrameClass::*;
    match e.class {
        Beacon | DiscoverySub | WihdBeacon | Training => net.config().control_power_offset_db,
        _ => 0.0,
    }
}

/// Incident power (dBm) of one logged transmission at a tap.
pub fn incident_power_dbm(net: &Net, tap: &TapConfig, e: &mmwave_mac::TxLogEntry) -> f64 {
    let dev = net.device(e.src);
    let probe =
        mmwave_channel::RadioNode::new(usize::MAX - 7, "vubiq", tap.position, tap.orientation);
    let paths = net.env.paths(e.src_position, tap.position);
    let mut src_node = dev.node.clone();
    src_node.position = e.src_position;
    src_node.orientation = e.src_orientation;
    let tx_pattern = dev.pattern(e.pattern);
    let lin: f64 = paths
        .iter()
        .map(|path| {
            let ga = src_node.gain_toward(tx_pattern, path.departure);
            let gb = probe.gain_toward(&tap.receiver.antenna, path.arrival);
            db_to_lin(
                net.env.budget.rx_power_dbm(ga, gb, path) + dev.tx_power_offset_db
                    - net.env.extra_loss_db
                    + control_boost(net, e),
            )
        })
        .sum();
    lin_to_db(lin)
}

/// Average incident power (dBm) of logged *data-class* frames at the tap —
/// the "signal strength from data frames only" average of §3.2's beam
/// pattern methodology. Returns `None` if no matching frame is in window.
pub fn mean_data_power_dbm(
    net: &Net,
    tap: &TapConfig,
    src: usize,
    from: SimTime,
    to: SimTime,
) -> Option<f64> {
    let trace = replay_trace(net, tap, from, to);
    let data_class = mmwave_mac::FrameClass::Data.as_u8();
    let wihd_data = mmwave_mac::FrameClass::WihdData.as_u8();
    let mut lin_sum = 0.0;
    let mut n = 0usize;
    for seg in trace.segments() {
        if seg.tag.source == src && (seg.tag.class == data_class || seg.tag.class == wihd_data) {
            lin_sum += db_to_lin(tap.receiver.volts_to_power_dbm(seg.amplitude_v.max(1e-9)));
            n += 1;
        }
    }
    (n > 0).then(|| lin_to_db(lin_sum / n as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{point_to_point, seeds};
    use mmwave_mac::NetConfig;
    use mmwave_sim::ctx::SimCtx;

    fn quiet(seed: u64) -> NetConfig {
        NetConfig {
            seed,
            enable_fading: false,
            ..NetConfig::default()
        }
    }

    #[test]
    fn replay_produces_segments_for_active_link() {
        let mut p = point_to_point(&SimCtx::new(), 2.0, quiet(1));
        for i in 0..20u64 {
            p.net.push_mpdu(p.dock, 1500, i);
        }
        p.net.run_until(SimTime::from_millis(10));
        let tap = TapConfig::waveguide(Point::new(1.0, 0.6), Angle::from_degrees(-90.0));
        let trace = replay_trace(&p.net, &tap, SimTime::ZERO, SimTime::from_millis(10));
        assert!(
            trace.segments().len() > 20,
            "{} segments",
            trace.segments().len()
        );
        // The trace covers exactly the log window.
        assert_eq!(trace.window_start, SimTime::ZERO);
        assert_eq!(trace.window_end, SimTime::from_millis(10));
    }

    #[test]
    fn horn_pointing_matters() {
        let mut p = point_to_point(&SimCtx::new(), 2.0, quiet(2));
        for i in 0..20u64 {
            p.net.push_mpdu(p.dock, 1500, i);
        }
        p.net.run_until(SimTime::from_millis(5));
        let at = Point::new(1.0, 3.0);
        // The 10°-HPBW horn must point *at* a device, not vaguely at the
        // link: aim at the dock (azimuth of (0,0) from (1,3) ≈ −108.4°).
        let toward = TapConfig::horn(at, Angle::from_degrees(-108.4));
        let away = TapConfig::horn(at, Angle::from_degrees(71.6));
        let t1 = replay_trace(&p.net, &toward, SimTime::ZERO, SimTime::from_millis(5));
        let t2 = replay_trace(&p.net, &away, SimTime::ZERO, SimTime::from_millis(5));
        let max1 = t1
            .segments()
            .iter()
            .map(|s| s.amplitude_v)
            .fold(0.0, f64::max);
        let max2 = t2
            .segments()
            .iter()
            .map(|s| s.amplitude_v)
            .fold(0.0, f64::max);
        assert!(max1 > 5.0 * max2, "toward {max1} V vs away {max2} V");
    }

    #[test]
    fn mean_data_power_sees_only_data() {
        let mut p = point_to_point(&SimCtx::new(), 2.0, quiet(3));
        // Idle link: only beacons → no data power.
        p.net.run_until(SimTime::from_millis(10));
        let tap = TapConfig::waveguide(Point::new(1.0, 0.5), Angle::from_degrees(-90.0));
        assert!(mean_data_power_dbm(
            &p.net,
            &tap,
            p.dock,
            SimTime::ZERO,
            SimTime::from_millis(10)
        )
        .is_none());
        // Push data: now the average exists and is sane.
        for i in 0..10u64 {
            p.net.push_mpdu(p.dock, 1500, i);
        }
        p.net.run_until(SimTime::from_millis(20));
        let dbm = mean_data_power_dbm(
            &p.net,
            &tap,
            p.dock,
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        )
        .expect("data frames present");
        assert!((-90.0..=-20.0).contains(&dbm), "{dbm}");
    }

    #[test]
    fn replay_tracks_scripted_source_motion() {
        // A walking-blocker run whose *source* is also scripted to move:
        // every segment must replay from the pose logged at transmission
        // time. Before the pose-keyed cache, the whole window replayed
        // from the device's final position, so frames sent next to the
        // tap came out as weak as frames sent from across the room.
        use mmwave_channel::Environment;
        use mmwave_geom::{Material, Room, Segment, Vec2};
        use mmwave_mac::{Device, Net, Scenario, WorldMutation};
        use mmwave_sim::time::SimDuration;

        let ctx = SimCtx::new();
        let mut room = Room::open_space();
        let shape = Segment::new(Point::new(1.0, 2.0), Point::new(1.0, 3.0));
        let walker = room.add_obstacle(shape, Material::Human, "walker");
        let mut net = Net::with_ctx(Environment::new(room), quiet(7), &ctx);
        let dock = net.add_device(Device::wigig_dock(
            &ctx,
            "Dock",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            seeds::DOCK_A,
        ));
        let laptop = net.add_device(Device::wigig_laptop(
            &ctx,
            "Laptop",
            Point::new(2.0, 0.0),
            Angle::from_degrees(180.0),
            seeds::LAPTOP_A,
        ));
        net.associate_instantly(dock, laptop);
        // The walker sweeps across the upper half of the room while the
        // dock hops away from the tap at t = 10 ms (still facing the
        // laptop from its new spot).
        let scenario = Scenario::new()
            .walking_blocker(
                walker,
                shape,
                Vec2::new(1.0, 0.0),
                SimTime::from_millis(2),
                SimDuration::from_millis(6),
                4,
            )
            .at(
                SimTime::from_millis(10),
                WorldMutation::MoveDevice {
                    dev: dock,
                    position: Point::new(0.0, 4.0),
                    orientation: Angle::from_degrees(-63.4),
                },
            );
        net.install_scenario(scenario);
        for k in 1..=20u64 {
            for i in 0..60u64 {
                net.push_mpdu(dock, 1500, k * 100 + i);
            }
            net.run_until(SimTime::from_millis(k));
        }

        // Tap next to the dock's *original* position.
        let tap = TapConfig::waveguide(Point::new(0.3, 0.5), Angle::from_degrees(-90.0));
        let early = mean_data_power_dbm(&net, &tap, dock, SimTime::ZERO, SimTime::from_millis(10))
            .expect("data before the move");
        let late = mean_data_power_dbm(
            &net,
            &tap,
            dock,
            SimTime::from_millis(11),
            SimTime::from_millis(20),
        )
        .expect("data after the move");
        assert!(
            early > late + 10.0,
            "frames sent beside the tap must replay loud: early {early} dBm, late {late} dBm"
        );
    }

    #[test]
    fn seeds_are_distinct() {
        // Guard against accidental seed collisions across device roles.
        let all = [
            seeds::DOCK_A,
            seeds::DOCK_B,
            seeds::LAPTOP_A,
            seeds::LAPTOP_B,
            seeds::WIHD_TX,
            seeds::WIHD_RX,
        ];
        let set: std::collections::HashSet<u64> = all.into_iter().collect();
        assert_eq!(set.len(), all.len());
    }
}
