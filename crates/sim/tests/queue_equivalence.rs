//! Differential test: the timer-wheel backend must pop a byte-identical
//! event order to the binary-heap reference on randomized workloads.
//!
//! The two backends share the `EventQueue` wrapper (sequence numbers,
//! tombstone set, counters), so the only thing that can diverge is the
//! order the backend surfaces entries in. This suite drives both with
//! identical schedule/cancel/pop/peek interleavings — including
//! equal-timestamp bursts, cancels of already-popped ids, double
//! cancels, and timestamps spanning every wheel level — and requires the
//! full observable transcript (pop results, peek times, cancel return
//! values, lengths) to match exactly.

use mmwave_sim::ctx::SimCtx;
use mmwave_sim::queue::{EventId, EventQueue, QueueBackend};
use mmwave_sim::rng::SimRng;
use mmwave_sim::time::SimTime;

/// One observable step of queue behavior, recorded from each backend.
#[derive(PartialEq, Eq, Debug)]
enum Observation {
    Popped(Option<(SimTime, u64)>),
    Peeked(Option<SimTime>),
    Cancelled(bool),
    Len(usize),
}

struct Pair {
    wheel: EventQueue<u64>,
    heap: EventQueue<u64>,
    transcript: usize,
}

impl Pair {
    fn new() -> Pair {
        Pair {
            wheel: EventQueue::with_backend(&SimCtx::new(), QueueBackend::TimerWheel),
            heap: EventQueue::with_backend(&SimCtx::new(), QueueBackend::BinaryHeap),
            transcript: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, payload: u64) -> EventId {
        let a = self.wheel.schedule(at, payload);
        let b = self.heap.schedule(at, payload);
        assert_eq!(a, b, "backends must issue identical ids");
        a
    }

    fn check(&mut self, a: Observation, b: Observation) {
        assert_eq!(a, b, "divergence at transcript step {}", self.transcript);
        self.transcript += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let a = self.wheel.pop();
        let b = self.heap.pop();
        self.check(Observation::Popped(a), Observation::Popped(b));
        a
    }

    fn peek(&mut self) {
        let a = Observation::Peeked(self.wheel.peek_time());
        let b = Observation::Peeked(self.heap.peek_time());
        self.check(a, b);
    }

    fn cancel(&mut self, id: EventId) {
        let a = Observation::Cancelled(self.wheel.cancel(id));
        let b = Observation::Cancelled(self.heap.cancel(id));
        self.check(a, b);
    }

    fn len(&mut self) {
        let a = Observation::Len(self.wheel.len());
        let b = Observation::Len(self.heap.len());
        self.check(a, b);
    }

    fn drain(&mut self) {
        while self.pop().is_some() {}
        self.len();
    }
}

/// Timestamps drawn to stress every wheel level: mostly dense (µs-scale
/// deltas around a moving "now"), sometimes bursty at one instant,
/// sometimes far future (up to 2⁵⁰ ns ahead).
fn random_time(rng: &mut SimRng, now: u64) -> SimTime {
    let shape = rng.next_u64() % 100;
    let delta = match shape {
        0..=59 => rng.next_u64() % 20_000,       // dense: < 20 µs
        60..=84 => rng.next_u64() % 3_000_000,   // MAC-scale: < 3 ms
        85..=94 => rng.next_u64() % 200_000_000, // beacon-scale: < 200 ms
        _ => rng.next_u64() % (1 << 50),         // far future
    };
    SimTime::from_nanos(now.saturating_add(delta))
}

#[test]
fn randomized_schedule_cancel_pop_interleavings_match() {
    for seed in 0..8u64 {
        let mut rng = SimRng::root(0xEE11_0000 + seed);
        let mut pair = Pair::new();
        let mut live_ids: Vec<EventId> = Vec::new();
        let mut dead_ids: Vec<EventId> = Vec::new();
        let mut now = 0u64;
        let mut payload = 0u64;
        for _ in 0..4_000 {
            match rng.next_u64() % 100 {
                // Schedule (55%): random time relative to the last pop.
                0..=54 => {
                    let at = random_time(&mut rng, now);
                    let id = pair.schedule(at, payload);
                    payload += 1;
                    live_ids.push(id);
                }
                // Equal-timestamp burst (10%): FIFO order must hold.
                55..=64 => {
                    let at = random_time(&mut rng, now);
                    for _ in 0..(1 + rng.next_u64() % 12) {
                        let id = pair.schedule(at, payload);
                        payload += 1;
                        live_ids.push(id);
                    }
                }
                // Pop (20%).
                65..=84 => {
                    if let Some((at, _)) = pair.pop() {
                        now = at.as_nanos();
                    }
                }
                // Cancel a pending id (8%).
                85..=92 => {
                    if !live_ids.is_empty() {
                        let i = (rng.next_u64() as usize) % live_ids.len();
                        let id = live_ids.swap_remove(i);
                        pair.cancel(id);
                        dead_ids.push(id);
                    }
                }
                // Cancel an already-popped or already-cancelled id (4%).
                93..=96 => {
                    if !dead_ids.is_empty() {
                        let i = (rng.next_u64() as usize) % dead_ids.len();
                        let id = dead_ids[i];
                        pair.cancel(id);
                    }
                }
                // Peek / len probes (3%).
                _ => {
                    pair.peek();
                    pair.len();
                }
            }
        }
        // Anything popped from here on was never tracked as live/dead by
        // the driver, but the transcript comparison still covers it.
        pair.drain();
    }
}

#[test]
fn equal_timestamp_burst_with_cancels_matches() {
    let mut pair = Pair::new();
    let at = SimTime::from_micros(40);
    let ids: Vec<EventId> = (0..256).map(|i| pair.schedule(at, i)).collect();
    // Cancel every third, including after some pops.
    for id in ids.iter().step_by(3).take(40) {
        pair.cancel(*id);
    }
    for _ in 0..100 {
        pair.pop();
    }
    for id in ids.iter().step_by(3).skip(40) {
        pair.cancel(*id); // many of these already popped
    }
    pair.drain();
}

#[test]
fn cancel_of_popped_ids_never_kills_later_events() {
    let mut pair = Pair::new();
    let early: Vec<EventId> = (0..32)
        .map(|i| pair.schedule(SimTime::from_nanos(i), i))
        .collect();
    for _ in 0..32 {
        pair.pop();
    }
    // All already fired: every cancel must report false on both backends
    // and must not affect the events scheduled next.
    for id in early {
        pair.cancel(id);
    }
    for i in 0..32u64 {
        pair.schedule(SimTime::from_micros(1 + i), 100 + i);
    }
    pair.drain();
}
