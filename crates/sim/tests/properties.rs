//! Property tests for the simulation kernel: ordering and accounting
//! invariants the whole workspace assumes.
//!
//! Std-only: each property is driven by a deterministic seeded case loop
//! (the workspace builds offline, so no proptest). Failures print the case
//! seed, which reproduces the exact inputs.

use mmwave_sim::queue::EventQueue;
use mmwave_sim::rng::SimRng;
use mmwave_sim::stats::{BusyTracker, Cdf, OnlineStats};
use mmwave_sim::time::{SimDuration, SimTime};

const CASES: u64 = 128;

/// Whatever order events are scheduled in, they pop sorted by time,
/// and equal timestamps pop in insertion order.
#[test]
fn queue_pops_sorted_and_stable() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("queue-sorted");
        let n = 1 + (r.next_u64() % 199) as usize;
        let times: Vec<u64> = (0..n).map(|_| r.next_u64() % 1_000).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((at, idx)) = q.pop() {
            popped.push((at, idx));
        }
        assert_eq!(popped.len(), times.len(), "case {case}");
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "case {case}: out of order");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "case {case}: FIFO violated at equal times");
            }
        }
    }
}

/// Cancelling an arbitrary subset removes exactly those events.
#[test]
fn queue_cancellation_exact() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("queue-cancel");
        let n = 1 + (r.next_u64() % 99) as usize;
        let times: Vec<u64> = (0..n).map(|_| r.next_u64() % 1_000).collect();
        let mask: Vec<bool> = (0..100).map(|_| r.chance(0.5)).collect();
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if mask[i % mask.len()] {
                assert!(q.cancel(*id), "case {case}: cancel failed");
            } else {
                kept.push(i);
            }
        }
        let mut popped = Vec::new();
        while let Some((_, idx)) = q.pop() {
            popped.push(idx);
        }
        popped.sort();
        kept.sort();
        assert_eq!(popped, kept, "case {case}");
    }
}

/// BusyTracker: the merged busy time never exceeds the window, never
/// exceeds the sum of interval lengths, and equals it when intervals
/// are disjoint.
#[test]
fn busy_tracker_bounds() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("busy");
        let n = 1 + (r.next_u64() % 59) as usize;
        let spans: Vec<(u64, u64)> = (0..n)
            .map(|_| (r.next_u64() % 10_000, 1 + r.next_u64() % 499))
            .collect();
        let mut b = BusyTracker::new();
        let mut sum = 0u64;
        for &(s, len) in &spans {
            b.add(SimTime::from_nanos(s), SimTime::from_nanos(s + len));
            sum += len;
        }
        let window = (SimTime::ZERO, SimTime::from_nanos(11_000));
        let busy = b.busy_within(window.0, window.1).as_nanos();
        assert!(
            busy <= sum,
            "case {case}: merged busy {busy} > raw sum {sum}"
        );
        assert!(busy <= 11_000, "case {case}");
        let util = b.utilization(window.0, window.1);
        assert!((0.0..=1.0).contains(&util), "case {case}");
        // Intervals are disjoint and sorted after merging.
        for w in b.intervals().windows(2) {
            assert!(w[0].1 < w[1].0, "case {case}: intervals overlap");
        }
    }
}

/// CDF quantiles are monotone in q and bounded by min/max.
#[test]
fn cdf_quantile_monotone() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("cdf");
        let n = 1 + (r.next_u64() % 299) as usize;
        let samples: Vec<f64> = (0..n).map(|_| r.uniform(-1e6, 1e6)).collect();
        let mut cdf = Cdf::from_samples(samples.iter().cloned());
        let mut last = f64::MIN;
        for k in 0..=10 {
            let v = cdf.quantile(k as f64 / 10.0);
            assert!(v >= last, "case {case}: quantile not monotone");
            last = v;
        }
        assert_eq!(cdf.quantile(0.0), cdf.min(), "case {case}");
        assert_eq!(cdf.quantile(1.0), cdf.max(), "case {case}");
        // probability_at is a valid CDF.
        assert_eq!(cdf.probability_at(f64::MAX / 2.0), 1.0, "case {case}");
        assert_eq!(cdf.probability_at(-f64::MAX / 2.0), 0.0, "case {case}");
    }
}

/// Welford matches the two-pass computation.
#[test]
fn online_stats_match_two_pass() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("welford");
        let n = 2 + (r.next_u64() % 198) as usize;
        let samples: Vec<f64> = (0..n).map(|_| r.uniform(-1e3, 1e3)).collect();
        let mut s = OnlineStats::new();
        for &x in &samples {
            s.add(x);
        }
        let nf = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / nf;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (nf - 1.0);
        assert!(
            (s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()),
            "case {case}"
        );
        assert!(
            (s.variance() - var).abs() < 1e-6 * (1.0 + var),
            "case {case}"
        );
    }
}

/// Duration arithmetic: for_bits/bits_at round-trip within rounding.
#[test]
fn duration_bits_roundtrip() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("bits");
        let bits = 1 + r.next_u64() % 999_999_999;
        let rate = 1_000_000 + r.next_u64() % 4_999_000_000;
        let d = SimDuration::for_bits(bits, rate);
        let back = d.bits_at(rate);
        assert!(back >= bits, "case {case}");
        // Rounding up by at most one nanosecond's worth of bits.
        let slack = rate / 1_000_000_000 + 1;
        assert!(
            back - bits <= slack,
            "case {case}: {} extra bits",
            back - bits
        );
    }
}
