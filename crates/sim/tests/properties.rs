//! Property tests for the simulation kernel: ordering and accounting
//! invariants the whole workspace assumes.

use mmwave_sim::queue::EventQueue;
use mmwave_sim::stats::{BusyTracker, Cdf, OnlineStats};
use mmwave_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Whatever order events are scheduled in, they pop sorted by time,
    /// and equal timestamps pop in insertion order.
    #[test]
    fn queue_pops_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((at, idx)) = q.pop() {
            popped.push((at, idx));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at equal times");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn queue_cancellation_exact(times in proptest::collection::vec(0u64..1_000, 1..100),
                                mask in proptest::collection::vec(any::<bool>(), 100)) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if mask[i % mask.len()] {
                prop_assert!(q.cancel(*id));
            } else {
                kept.push(i);
            }
        }
        let mut popped = Vec::new();
        while let Some((_, idx)) = q.pop() {
            popped.push(idx);
        }
        popped.sort();
        kept.sort();
        prop_assert_eq!(popped, kept);
    }

    /// BusyTracker: the merged busy time never exceeds the window, never
    /// exceeds the sum of interval lengths, and equals it when intervals
    /// are disjoint.
    #[test]
    fn busy_tracker_bounds(spans in proptest::collection::vec((0u64..10_000, 1u64..500), 1..60)) {
        let mut b = BusyTracker::new();
        let mut sum = 0u64;
        for &(s, len) in &spans {
            b.add(SimTime::from_nanos(s), SimTime::from_nanos(s + len));
            sum += len;
        }
        let window = (SimTime::ZERO, SimTime::from_nanos(11_000));
        let busy = b.busy_within(window.0, window.1).as_nanos();
        prop_assert!(busy <= sum, "merged busy {busy} > raw sum {sum}");
        prop_assert!(busy <= 11_000);
        let util = b.utilization(window.0, window.1);
        prop_assert!((0.0..=1.0).contains(&util));
        // Intervals are disjoint and sorted after merging.
        for w in b.intervals().windows(2) {
            prop_assert!(w[0].1 < w[1].0);
        }
    }

    /// CDF quantiles are monotone in q and bounded by min/max.
    #[test]
    fn cdf_quantile_monotone(samples in proptest::collection::vec(-1e6..1e6f64, 1..300)) {
        let mut cdf = Cdf::from_samples(samples.iter().cloned());
        let mut last = f64::MIN;
        for k in 0..=10 {
            let v = cdf.quantile(k as f64 / 10.0);
            prop_assert!(v >= last);
            last = v;
        }
        prop_assert_eq!(cdf.quantile(0.0), cdf.min());
        prop_assert_eq!(cdf.quantile(1.0), cdf.max());
        // probability_at is a valid CDF.
        prop_assert_eq!(cdf.probability_at(f64::MAX / 2.0), 1.0);
        prop_assert_eq!(cdf.probability_at(-f64::MAX / 2.0), 0.0);
    }

    /// Welford matches the two-pass computation.
    #[test]
    fn online_stats_match_two_pass(samples in proptest::collection::vec(-1e3..1e3f64, 2..200)) {
        let mut s = OnlineStats::new();
        for &x in &samples {
            s.add(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-6 * (1.0 + var));
    }

    /// Duration arithmetic: for_bits/bits_at round-trip within rounding.
    #[test]
    fn duration_bits_roundtrip(bits in 1u64..1_000_000_000, rate in 1_000_000u64..5_000_000_000) {
        let d = SimDuration::for_bits(bits, rate);
        let back = d.bits_at(rate);
        prop_assert!(back >= bits);
        // Rounding up by at most one nanosecond's worth of bits.
        let slack = rate / 1_000_000_000 + 1;
        prop_assert!(back - bits <= slack, "{} extra bits", back - bits);
    }
}
