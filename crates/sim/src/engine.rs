//! The simulation run loop.
//!
//! An [`Engine`] owns a *world* (any user type) and a queue of boxed event
//! closures. Popping an event advances the clock to its timestamp and runs
//! the closure with mutable access to both the world and the [`Scheduler`],
//! so handlers can schedule (or cancel) further events. The loop is strictly
//! sequential and deterministic — see [`crate::queue`] for the ordering
//! guarantees.

use crate::ctx::SimCtx;
use crate::metrics::EngineCounters;
use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A scheduled event: a one-shot closure over the world.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, SimTime, &mut Scheduler<W>)>;

/// The scheduling facet handed to event handlers.
pub struct Scheduler<W> {
    now: SimTime,
    queue: EventQueue<EventFn<W>>,
}

impl<W> Scheduler<W> {
    fn with_ctx(ctx: &SimCtx) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::with_ctx(ctx),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `f` to run at the absolute instant `at`.
    ///
    /// Panics if `at` is in the past — an event cannot rewrite history.
    pub fn at(&mut self, at: SimTime, f: EventFn<W>) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        self.queue.schedule(at, f)
    }

    /// Schedule `f` to run after the relative delay `d`.
    pub fn after(&mut self, d: SimDuration, f: EventFn<W>) -> EventId {
        self.queue.schedule(self.now + d, f)
    }

    /// Cancel a pending event. Returns true if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Discrete-event engine: a world plus the event loop driving it.
pub struct Engine<W> {
    world: W,
    sched: Scheduler<W>,
    processed: u64,
}

impl<W> Engine<W> {
    /// Wrap `world` with an empty event queue at t = 0, reporting into a
    /// fresh private context.
    pub fn new(world: W) -> Self {
        Self::with_ctx(world, &SimCtx::new())
    }

    /// Wrap `world` with an empty event queue at t = 0, streaming queue
    /// counters into `ctx`.
    pub fn with_ctx(world: W, ctx: &SimCtx) -> Self {
        Engine {
            world,
            sched: Scheduler::with_ctx(ctx),
            processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for setup and inspection between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Schedule an event from outside the loop (setup code).
    pub fn schedule(&mut self, at: SimTime, f: EventFn<W>) -> EventId {
        self.sched.at(at, f)
    }

    /// Schedule an event a delay from now (setup code).
    pub fn schedule_in(&mut self, d: SimDuration, f: EventFn<W>) -> EventId {
        self.sched.after(d, f)
    }

    /// Cancel a pending event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.sched.cancel(id)
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Scheduler activity counters for this engine: events popped and
    /// cancelled, and the deepest the queue ever got. The same counters
    /// also stream into the [`SimCtx`] the engine was built with, so
    /// callers that never see the engine (the campaign layer running
    /// opaque experiments) can still report them per run.
    pub fn metrics(&self) -> EngineCounters {
        EngineCounters {
            events_popped: self.sched.queue.popped(),
            events_cancelled: self.sched.queue.cancelled_count(),
            peak_queue_depth: self.sched.queue.peak_len() as u64,
            // Link-gain cache activity is not an engine-level quantity; it
            // reaches artifacts through the context only.
            ..EngineCounters::default()
        }
    }

    /// Run a single event if one is pending; returns false when idle.
    pub fn step(&mut self) -> bool {
        match self.sched.queue.pop() {
            Some((at, f)) => {
                debug_assert!(at >= self.sched.now, "event queue went backwards");
                self.sched.now = at;
                f(&mut self.world, at, &mut self.sched);
                self.processed += 1;
                true
            }
            None => false,
        }
    }

    /// Process every event with timestamp ≤ `horizon`, then set the clock to
    /// `horizon`. Events scheduled beyond the horizon stay pending, so a
    /// campaign can be resumed with a later horizon.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(t) = self.sched.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
        if horizon > self.sched.now {
            self.sched.now = horizon;
        }
    }

    /// Run until the queue drains completely. Returns the final time.
    pub fn run_to_idle(&mut self) -> SimTime {
        while self.step() {}
        self.sched.now
    }

    /// Consume the engine, returning the world (end-of-campaign analysis).
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
    }

    fn ev(tag: &'static str) -> EventFn<W> {
        Box::new(move |w: &mut W, now, _s| w.log.push((now.as_nanos(), tag)))
    }

    #[test]
    fn events_run_in_order_and_clock_advances() {
        let mut e = Engine::new(W::default());
        e.schedule(SimTime::from_nanos(20), ev("b"));
        e.schedule(SimTime::from_nanos(10), ev("a"));
        e.run_until(SimTime::from_nanos(100));
        assert_eq!(e.world().log, vec![(10, "a"), (20, "b")]);
        assert_eq!(e.now(), SimTime::from_nanos(100));
        assert_eq!(e.events_processed(), 2);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut e = Engine::new(W::default());
        e.schedule(
            SimTime::from_nanos(5),
            Box::new(|w: &mut W, now, s| {
                w.log.push((now.as_nanos(), "first"));
                s.after(SimDuration::from_nanos(5), ev("second"));
            }),
        );
        e.run_to_idle();
        assert_eq!(e.world().log, vec![(5, "first"), (10, "second")]);
    }

    #[test]
    fn run_until_leaves_future_events_pending() {
        let mut e = Engine::new(W::default());
        e.schedule(SimTime::from_nanos(10), ev("now"));
        e.schedule(SimTime::from_nanos(1000), ev("later"));
        e.run_until(SimTime::from_nanos(100));
        assert_eq!(e.world().log.len(), 1);
        e.run_until(SimTime::from_nanos(2000));
        assert_eq!(e.world().log.len(), 2);
    }

    #[test]
    fn cancellation_prevents_execution() {
        let mut e = Engine::new(W::default());
        let id = e.schedule(SimTime::from_nanos(10), ev("nope"));
        assert!(e.cancel(id));
        e.run_to_idle();
        assert!(e.world().log.is_empty());
    }

    #[test]
    fn handler_can_cancel_sibling() {
        struct S {
            victim: Option<EventId>,
            fired: bool,
        }
        let mut e = Engine::new(S {
            victim: None,
            fired: false,
        });
        let victim = e.schedule(
            SimTime::from_nanos(20),
            Box::new(|w: &mut S, _, _| w.fired = true),
        );
        e.world_mut().victim = Some(victim);
        e.schedule(
            SimTime::from_nanos(10),
            Box::new(|w: &mut S, _, s| {
                s.cancel(w.victim.take().expect("victim id present"));
            }),
        );
        e.run_to_idle();
        assert!(!e.world().fired);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new(W::default());
        e.schedule(
            SimTime::from_nanos(100),
            Box::new(|_w, _now, s| {
                s.at(SimTime::from_nanos(50), Box::new(|_, _, _| {}));
            }),
        );
        e.run_to_idle();
    }

    #[test]
    fn metrics_count_pops_cancels_and_peak_depth() {
        let mut e = Engine::new(W::default());
        let a = e.schedule(SimTime::from_nanos(10), ev("a"));
        e.schedule(SimTime::from_nanos(20), ev("b"));
        e.schedule(SimTime::from_nanos(30), ev("c"));
        assert!(e.cancel(a));
        e.run_to_idle();
        let m = e.metrics();
        assert_eq!(m.events_popped, 2);
        assert_eq!(m.events_cancelled, 1);
        assert_eq!(m.peak_queue_depth, 3);
    }

    #[test]
    fn context_tracks_engine_activity() {
        let ctx = SimCtx::new();
        let mut e = Engine::with_ctx(W::default(), &ctx);
        e.schedule(SimTime::from_nanos(1), ev("x"));
        e.schedule(SimTime::from_nanos(2), ev("y"));
        e.run_to_idle();
        let s = ctx.counters();
        assert_eq!(s.events_popped, 2);
        assert_eq!(s.peak_queue_depth, 2);
    }

    #[test]
    fn two_engines_on_one_thread_keep_independent_counters() {
        let ctx_a = SimCtx::new();
        let ctx_b = SimCtx::new();
        let mut a = Engine::with_ctx(W::default(), &ctx_a);
        let mut b = Engine::with_ctx(W::default(), &ctx_b);
        for i in 1..=3u64 {
            a.schedule(SimTime::from_nanos(i), ev("a"));
        }
        b.schedule(SimTime::from_nanos(1), ev("b"));
        // Interleave the two engines on this thread.
        while a.step() | b.step() {}
        assert_eq!(ctx_a.counters().events_popped, 3);
        assert_eq!(ctx_b.counters().events_popped, 1);
        assert_eq!(ctx_a.counters().peak_queue_depth, 3);
        assert_eq!(ctx_b.counters().peak_queue_depth, 1);
    }

    #[test]
    fn same_time_events_fifo() {
        let mut e = Engine::new(W::default());
        for tag in ["x", "y", "z"] {
            e.schedule(SimTime::from_nanos(7), ev(tag));
        }
        e.run_to_idle();
        let tags: Vec<_> = e.world().log.iter().map(|(_, t)| *t).collect();
        assert_eq!(tags, vec!["x", "y", "z"]);
    }
}
