//! The explicit simulation context.
//!
//! [`SimCtx`] bundles everything that used to live in ambient state —
//! thread-local engine counters, the thread-local codebook cache, the
//! process-global link-gain bypass flag — into one cheaply-cloneable
//! handle that is threaded explicitly through every layer. Two `Net`s
//! stepped interleaved on one thread therefore accumulate independent
//! counters and independent caches by construction, and the counters a
//! campaign task reports are a pure function of that task rather than of
//! whichever thread happened to run it.
//!
//! Internally a `SimCtx` is an `Rc` around a block of `Cell` counters, the
//! link-gain [`CacheMode`], and a small type-keyed extension map. The
//! extension map solves the dependency direction: `mmwave-sim` sits at the
//! bottom of the workspace and cannot name the codebook cache (`mmwave-phy`)
//! or the TCP-sweep memo (`mmwave-core`), so downstream crates install
//! their per-context stores via [`SimCtx::ext_or_insert_with`].
//!
//! Cloning a `SimCtx` clones the `Rc` — clones share counters and caches.
//! A fresh context ([`SimCtx::new`]) shares nothing with any other.
//!
//! `SimCtx` is deliberately `!Send`: contexts, and the `Net`s that hold
//! them, live and die on one thread (campaign workers build a fresh
//! context per task on their own thread).

use crate::metrics::EngineCounters;
use crate::queue::QueueBackend;
use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Whether link-gain lookups through a context memoize or recompute.
///
/// `Bypass` exists to prove the cache sound: a bypassed run performs the
/// identical bookkeeping (counters, generations) but recomputes every
/// gain, so cached and bypassed campaigns must produce byte-identical
/// artifacts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CacheMode {
    /// Memoize link gains and sector tables (the default).
    #[default]
    Cached,
    /// Recompute every lookup (validation / benchmarking baseline).
    Bypass,
}

impl CacheMode {
    /// Stable identifier (wire protocol, CLI flag values, test labels).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheMode::Cached => "cached",
            CacheMode::Bypass => "bypass",
        }
    }

    /// Inverse of [`CacheMode::as_str`].
    pub fn from_str(s: &str) -> Option<CacheMode> {
        match s {
            "cached" => Some(CacheMode::Cached),
            "bypass" => Some(CacheMode::Bypass),
            _ => None,
        }
    }
}

struct CtxInner {
    events_popped: Cell<u64>,
    events_cancelled: Cell<u64>,
    peak_queue_depth: Cell<u64>,
    link_gain_hits: Cell<u64>,
    link_gain_misses: Cell<u64>,
    link_gain_invalidations: Cell<u64>,
    scenario_mutations: Cell<u64>,
    faults_injected: Cell<u64>,
    codebook_hits: Cell<u64>,
    codebook_misses: Cell<u64>,
    codebook_prebuilt_hits: Cell<u64>,
    cc_reports_folded: Cell<u64>,
    cc_patterns_installed: Cell<u64>,
    cc_loss_epochs: Cell<u64>,
    spatial_pruned_pairs: Cell<u64>,
    spatial_zone_invalidations: Cell<u64>,
    cache_mode: CacheMode,
    queue_backend: QueueBackend,
    /// Type-keyed extension slots: downstream crates park their
    /// per-context stores here (codebook cache, TCP-sweep memo). Linear
    /// scan — a context carries a handful of slots at most.
    ext: RefCell<Vec<(TypeId, Rc<dyn Any>)>>,
}

impl CtxInner {
    fn new(cache_mode: CacheMode, queue_backend: QueueBackend) -> CtxInner {
        CtxInner {
            events_popped: Cell::new(0),
            events_cancelled: Cell::new(0),
            peak_queue_depth: Cell::new(0),
            link_gain_hits: Cell::new(0),
            link_gain_misses: Cell::new(0),
            link_gain_invalidations: Cell::new(0),
            scenario_mutations: Cell::new(0),
            faults_injected: Cell::new(0),
            codebook_hits: Cell::new(0),
            codebook_misses: Cell::new(0),
            codebook_prebuilt_hits: Cell::new(0),
            cc_reports_folded: Cell::new(0),
            cc_patterns_installed: Cell::new(0),
            cc_loss_epochs: Cell::new(0),
            spatial_pruned_pairs: Cell::new(0),
            spatial_zone_invalidations: Cell::new(0),
            cache_mode,
            queue_backend,
            ext: RefCell::new(Vec::new()),
        }
    }
}

/// Explicit simulation context: counter sink, cache-mode policy, and
/// per-context cache slots. See the module docs.
#[derive(Clone)]
pub struct SimCtx {
    inner: Rc<CtxInner>,
}

impl Default for SimCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SimCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCtx")
            .field("counters", &self.counters())
            .field("cache_mode", &self.cache_mode())
            .finish_non_exhaustive()
    }
}

impl SimCtx {
    /// A fresh context with zeroed counters, [`CacheMode::Cached`], and the
    /// default event-queue backend.
    pub fn new() -> SimCtx {
        Self::with_config(CacheMode::default(), QueueBackend::default())
    }

    /// A fresh context with an explicit link-gain cache mode.
    pub fn with_cache_mode(mode: CacheMode) -> SimCtx {
        Self::with_config(mode, QueueBackend::default())
    }

    /// A fresh context with an explicit event-queue backend.
    pub fn with_queue_backend(backend: QueueBackend) -> SimCtx {
        Self::with_config(CacheMode::default(), backend)
    }

    /// A fresh context with every construction-time policy explicit.
    pub fn with_config(mode: CacheMode, backend: QueueBackend) -> SimCtx {
        SimCtx {
            inner: Rc::new(CtxInner::new(mode, backend)),
        }
    }

    /// The link-gain cache mode caches built through this context adopt.
    pub fn cache_mode(&self) -> CacheMode {
        self.inner.cache_mode
    }

    /// The event-queue backend queues built through this context adopt.
    pub fn queue_backend(&self) -> QueueBackend {
        self.inner.queue_backend
    }

    /// True if `other` is a clone of this context (shares state with it).
    pub fn shares_state_with(&self, other: &SimCtx) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// Read the accumulated counters.
    pub fn counters(&self) -> EngineCounters {
        let c = &self.inner;
        EngineCounters {
            events_popped: c.events_popped.get(),
            events_cancelled: c.events_cancelled.get(),
            peak_queue_depth: c.peak_queue_depth.get(),
            link_gain_hits: c.link_gain_hits.get(),
            link_gain_misses: c.link_gain_misses.get(),
            link_gain_invalidations: c.link_gain_invalidations.get(),
            scenario_mutations: c.scenario_mutations.get(),
            faults_injected: c.faults_injected.get(),
            codebook_hits: c.codebook_hits.get(),
            codebook_misses: c.codebook_misses.get(),
            codebook_prebuilt_hits: c.codebook_prebuilt_hits.get(),
            cc_reports_folded: c.cc_reports_folded.get(),
            cc_patterns_installed: c.cc_patterns_installed.get(),
            cc_loss_epochs: c.cc_loss_epochs.get(),
            spatial_pruned_pairs: c.spatial_pruned_pairs.get(),
            spatial_zone_invalidations: c.spatial_zone_invalidations.get(),
        }
    }

    /// Fold previously captured counters into this context — additive for
    /// the event counts, watermark-max for the queue depth.
    ///
    /// For when a computation's *result* is cached and reused: capture the
    /// counter delta while computing, store it with the cached value, and
    /// merge it on every cache hit. Each consumer then reports the same
    /// counters whether it filled the cache or read it.
    pub fn merge_counters(&self, c: EngineCounters) {
        let i = &self.inner;
        i.events_popped.set(i.events_popped.get() + c.events_popped);
        i.events_cancelled
            .set(i.events_cancelled.get() + c.events_cancelled);
        i.peak_queue_depth
            .set(i.peak_queue_depth.get().max(c.peak_queue_depth));
        i.link_gain_hits
            .set(i.link_gain_hits.get() + c.link_gain_hits);
        i.link_gain_misses
            .set(i.link_gain_misses.get() + c.link_gain_misses);
        i.link_gain_invalidations
            .set(i.link_gain_invalidations.get() + c.link_gain_invalidations);
        i.scenario_mutations
            .set(i.scenario_mutations.get() + c.scenario_mutations);
        i.faults_injected
            .set(i.faults_injected.get() + c.faults_injected);
        i.codebook_hits.set(i.codebook_hits.get() + c.codebook_hits);
        i.codebook_misses
            .set(i.codebook_misses.get() + c.codebook_misses);
        i.codebook_prebuilt_hits
            .set(i.codebook_prebuilt_hits.get() + c.codebook_prebuilt_hits);
        i.cc_reports_folded
            .set(i.cc_reports_folded.get() + c.cc_reports_folded);
        i.cc_patterns_installed
            .set(i.cc_patterns_installed.get() + c.cc_patterns_installed);
        i.cc_loss_epochs
            .set(i.cc_loss_epochs.get() + c.cc_loss_epochs);
        i.spatial_pruned_pairs
            .set(i.spatial_pruned_pairs.get() + c.spatial_pruned_pairs);
        i.spatial_zone_invalidations
            .set(i.spatial_zone_invalidations.get() + c.spatial_zone_invalidations);
    }

    /// Record an event popped and executed.
    pub fn record_pop(&self) {
        bump(&self.inner.events_popped);
    }

    /// Record an event cancelled while still pending.
    pub fn record_cancel(&self) {
        bump(&self.inner.events_cancelled);
    }

    /// Record the current live-event depth of some queue; the context keeps
    /// the watermark.
    pub fn record_depth(&self, depth: usize) {
        let c = &self.inner.peak_queue_depth;
        c.set(c.get().max(depth as u64));
    }

    /// Record a link-gain cache hit.
    pub fn record_link_gain_hit(&self) {
        bump(&self.inner.link_gain_hits);
    }

    /// Record a link-gain cache miss (entry computed or recomputed).
    pub fn record_link_gain_miss(&self) {
        bump(&self.inner.link_gain_misses);
    }

    /// Record a link-gain cache invalidation event.
    pub fn record_link_gain_invalidation(&self) {
        bump(&self.inner.link_gain_invalidations);
    }

    /// Record one applied scenario world mutation.
    pub fn record_scenario_mutation(&self) {
        bump(&self.inner.scenario_mutations);
    }

    /// Record one frame forced to fail by an injected fault window.
    pub fn record_fault_injected(&self) {
        bump(&self.inner.faults_injected);
    }

    /// Record a codebook-cache hit.
    pub fn record_codebook_hit(&self) {
        bump(&self.inner.codebook_hits);
    }

    /// Record a codebook-cache miss (all sectors synthesized).
    pub fn record_codebook_miss(&self) {
        bump(&self.inner.codebook_misses);
    }

    /// Record a codebook request resolved from a campaign-wide prebuilt
    /// pool (a cold synthesis avoided).
    pub fn record_codebook_prebuilt_hit(&self) {
        bump(&self.inner.codebook_prebuilt_hits);
    }

    /// Record one congestion-control measurement report folded into an
    /// algorithm.
    pub fn record_cc_report(&self) {
        bump(&self.inner.cc_reports_folded);
    }

    /// Record one congestion-control pattern installed on a datapath.
    pub fn record_cc_pattern(&self) {
        bump(&self.inner.cc_patterns_installed);
    }

    /// Record the start of one transport loss epoch (fast-retransmit
    /// entry or first RTO of a backoff train).
    pub fn record_cc_loss_epoch(&self) {
        bump(&self.inner.cc_loss_epochs);
    }

    /// Record `n` device pairs pruned by the spatial interference graph
    /// during one evaluation sweep (0 is a no-op).
    pub fn record_spatial_pruned(&self, n: u64) {
        let c = &self.inner.spatial_pruned_pairs;
        c.set(c.get() + n);
    }

    /// Record one wall mutation whose invalidation was scoped to its
    /// opaque zones instead of a global flush.
    pub fn record_spatial_zone_invalidation(&self) {
        bump(&self.inner.spatial_zone_invalidations);
    }

    /// Fetch this context's extension slot of type `T`, installing
    /// `f()` on first access. Clones of a context share slots; distinct
    /// contexts never do.
    pub fn ext_or_insert_with<T: Any>(&self, f: impl FnOnce() -> T) -> Rc<T> {
        let tid = TypeId::of::<T>();
        {
            let ext = self.inner.ext.borrow();
            if let Some((_, v)) = ext.iter().find(|(t, _)| *t == tid) {
                return Rc::clone(v).downcast::<T>().expect("ext slot type");
            }
        }
        // Build outside the borrow: `f` may itself touch the context.
        let v = Rc::new(f());
        self.inner
            .ext
            .borrow_mut()
            .push((tid, Rc::clone(&v) as Rc<dyn Any>));
        v
    }
}

fn bump(c: &Cell<u64>) {
    c.set(c.get() + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_context_counts_from_zero() {
        let ctx = SimCtx::new();
        assert_eq!(ctx.counters(), EngineCounters::default());
        ctx.record_pop();
        ctx.record_pop();
        ctx.record_cancel();
        ctx.record_depth(3);
        ctx.record_depth(1);
        ctx.record_link_gain_hit();
        ctx.record_link_gain_hit();
        ctx.record_link_gain_hit();
        ctx.record_link_gain_miss();
        ctx.record_link_gain_invalidation();
        ctx.record_scenario_mutation();
        ctx.record_scenario_mutation();
        ctx.record_fault_injected();
        ctx.record_codebook_hit();
        ctx.record_codebook_hit();
        ctx.record_codebook_miss();
        ctx.record_cc_report();
        ctx.record_cc_report();
        ctx.record_cc_report();
        ctx.record_cc_pattern();
        ctx.record_cc_pattern();
        ctx.record_cc_loss_epoch();
        ctx.record_spatial_pruned(4);
        ctx.record_spatial_pruned(0);
        ctx.record_spatial_zone_invalidation();
        let s = ctx.counters();
        assert_eq!(s.events_popped, 2);
        assert_eq!(s.events_cancelled, 1);
        assert_eq!(s.peak_queue_depth, 3);
        assert_eq!(s.link_gain_hits, 3);
        assert_eq!(s.link_gain_misses, 1);
        assert_eq!(s.link_gain_invalidations, 1);
        assert_eq!(s.scenario_mutations, 2);
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.codebook_hits, 2);
        assert_eq!(s.codebook_misses, 1);
        assert_eq!(s.cc_reports_folded, 3);
        assert_eq!(s.cc_patterns_installed, 2);
        assert_eq!(s.cc_loss_epochs, 1);
        assert_eq!(s.spatial_pruned_pairs, 4);
        assert_eq!(s.spatial_zone_invalidations, 1);
    }

    #[test]
    fn merge_is_additive_with_depth_watermark() {
        let ctx = SimCtx::new();
        ctx.record_depth(5);
        ctx.merge_counters(EngineCounters {
            events_popped: 10,
            events_cancelled: 2,
            peak_queue_depth: 3,
            link_gain_hits: 7,
            link_gain_misses: 4,
            link_gain_invalidations: 1,
            scenario_mutations: 6,
            faults_injected: 2,
            codebook_hits: 9,
            codebook_misses: 3,
            codebook_prebuilt_hits: 5,
            cc_reports_folded: 11,
            cc_patterns_installed: 8,
            cc_loss_epochs: 4,
            spatial_pruned_pairs: 12,
            spatial_zone_invalidations: 2,
        });
        let s = ctx.counters();
        assert_eq!(s.events_popped, 10);
        assert_eq!(s.peak_queue_depth, 5, "depth merges as a watermark");
        assert_eq!(s.link_gain_hits, 7);
        assert_eq!(s.link_gain_misses, 4);
        assert_eq!(s.link_gain_invalidations, 1);
        assert_eq!(s.scenario_mutations, 6);
        assert_eq!(s.faults_injected, 2);
        assert_eq!(s.codebook_hits, 9);
        assert_eq!(s.codebook_misses, 3);
        assert_eq!(s.codebook_prebuilt_hits, 5);
        assert_eq!(s.cc_reports_folded, 11);
        assert_eq!(s.cc_patterns_installed, 8);
        assert_eq!(s.cc_loss_epochs, 4);
        assert_eq!(s.spatial_pruned_pairs, 12);
        assert_eq!(s.spatial_zone_invalidations, 2);
    }

    #[test]
    fn clones_share_state_and_fresh_contexts_do_not() {
        let a = SimCtx::new();
        let b = a.clone();
        let c = SimCtx::new();
        assert!(a.shares_state_with(&b));
        assert!(!a.shares_state_with(&c));
        b.record_pop();
        assert_eq!(a.counters().events_popped, 1, "clones share counters");
        assert_eq!(c.counters().events_popped, 0, "fresh contexts do not");
    }

    #[test]
    fn cache_mode_is_set_at_construction() {
        assert_eq!(SimCtx::new().cache_mode(), CacheMode::Cached);
        let b = SimCtx::with_cache_mode(CacheMode::Bypass);
        assert_eq!(b.cache_mode(), CacheMode::Bypass);
        assert_eq!(b.clone().cache_mode(), CacheMode::Bypass);
    }

    #[test]
    fn queue_backend_is_set_at_construction() {
        assert_eq!(SimCtx::new().queue_backend(), QueueBackend::TimerWheel);
        let h = SimCtx::with_queue_backend(QueueBackend::BinaryHeap);
        assert_eq!(h.queue_backend(), QueueBackend::BinaryHeap);
        assert_eq!(h.clone().queue_backend(), QueueBackend::BinaryHeap);
        assert_eq!(h.cache_mode(), CacheMode::Cached);
        let both = SimCtx::with_config(CacheMode::Bypass, QueueBackend::BinaryHeap);
        assert_eq!(both.cache_mode(), CacheMode::Bypass);
        assert_eq!(both.queue_backend(), QueueBackend::BinaryHeap);
    }

    #[test]
    fn ext_slots_memoize_per_type_and_per_context() {
        struct Slot(Cell<u32>);
        let ctx = SimCtx::new();
        let first = ctx.ext_or_insert_with(|| Slot(Cell::new(7)));
        first.0.set(42);
        let again = ctx.ext_or_insert_with(|| Slot(Cell::new(0)));
        assert!(Rc::ptr_eq(&first, &again), "same slot on repeat access");
        assert_eq!(again.0.get(), 42);
        let clone_view = ctx.clone().ext_or_insert_with(|| Slot(Cell::new(0)));
        assert_eq!(clone_view.0.get(), 42, "clones share slots");
        let other = SimCtx::new();
        let fresh = other.ext_or_insert_with(|| Slot(Cell::new(0)));
        assert_eq!(fresh.0.get(), 0, "fresh contexts get fresh slots");
    }
}
