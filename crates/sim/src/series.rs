//! Time-series recording.
//!
//! Several paper figures are value-versus-time plots (Fig. 12 PHY rate,
//! Fig. 14 amplitude + rate over 80 minutes, Fig. 23 TCP throughput around
//! the WiHD power-off). [`TimeSeries`] is the recorder those experiments
//! write into, with the resampling helpers the report renderers need.

use crate::time::{SimDuration, SimTime};

/// An append-only `(time, value)` series. Appends must be in non-decreasing
/// time order (the engine guarantees handlers run in time order).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Append a sample. Panics in debug builds on out-of-order timestamps.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample at {t:?}");
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(t >= last, "TimeSeries::push out of order");
        }
        self.points.push((t, v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Value at time `t` under sample-and-hold (step) interpolation:
    /// the most recent sample at or before `t`. `None` before the first.
    pub fn sample_hold(&self, t: SimTime) -> Option<f64> {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        idx.checked_sub(1).map(|i| self.points[i].1)
    }

    /// Mean of samples with `from <= t < to`. `None` if that window is empty.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let lo = self.points.partition_point(|&(pt, _)| pt < from);
        let hi = self.points.partition_point(|&(pt, _)| pt < to);
        if hi <= lo {
            return None;
        }
        let slice = &self.points[lo..hi];
        Some(slice.iter().map(|&(_, v)| v).sum::<f64>() / slice.len() as f64)
    }

    /// Resample into fixed bins of width `bin` covering `[from, to)`,
    /// averaging the samples in each bin; empty bins carry the previous
    /// bin's value forward (or the sample-and-hold value at the bin start).
    /// Returns `(bin_start, value)` pairs.
    pub fn resample(&self, from: SimTime, to: SimTime, bin: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!bin.is_zero(), "zero bin width");
        let mut out = Vec::new();
        let mut t = from;
        let mut last = self.sample_hold(from).unwrap_or(0.0);
        while t < to {
            let end = (t + bin).min(to);
            let v = self.mean_in(t, end).unwrap_or(last);
            out.push((t, v));
            last = v;
            t = end;
        }
        out
    }

    /// Time-weighted average over `[from, to)` under sample-and-hold
    /// interpolation. Used for e.g. mean PHY rate over a campaign.
    pub fn time_weighted_mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        if to <= from {
            return None;
        }
        let mut acc = 0.0;
        let mut covered = SimDuration::ZERO;
        let mut cur_t = from;
        let mut cur_v = self.sample_hold(from);
        let start_idx = self.points.partition_point(|&(pt, _)| pt <= from);
        for &(pt, pv) in &self.points[start_idx..] {
            if pt >= to {
                break;
            }
            if let Some(v) = cur_v {
                let span = pt - cur_t;
                acc += v * span.as_secs_f64();
                covered += span;
            }
            cur_t = pt;
            cur_v = Some(pv);
        }
        if let Some(v) = cur_v {
            let span = to - cur_t;
            acc += v * span.as_secs_f64();
            covered += span;
        }
        if covered.is_zero() {
            None
        } else {
            Some(acc / covered.as_secs_f64())
        }
    }

    /// Minimum and maximum values. `None` if empty.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        self.points.iter().fold(None, |acc, &(_, v)| match acc {
            None => Some((v, v)),
            Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn series() -> TimeSeries {
        let mut s = TimeSeries::new();
        s.push(t(10), 1.0);
        s.push(t(20), 2.0);
        s.push(t(30), 4.0);
        s
    }

    #[test]
    fn sample_hold_semantics() {
        let s = series();
        assert_eq!(s.sample_hold(t(5)), None);
        assert_eq!(s.sample_hold(t(10)), Some(1.0));
        assert_eq!(s.sample_hold(t(15)), Some(1.0));
        assert_eq!(s.sample_hold(t(25)), Some(2.0));
        assert_eq!(s.sample_hold(t(99)), Some(4.0));
    }

    #[test]
    fn mean_in_window() {
        let s = series();
        assert_eq!(s.mean_in(t(10), t(31)), Some(7.0 / 3.0));
        assert_eq!(s.mean_in(t(10), t(30)), Some(1.5));
        assert_eq!(s.mean_in(t(0), t(10)), None);
    }

    #[test]
    fn resample_fills_gaps_with_hold() {
        let s = series();
        let bins = s.resample(t(0), t(50), SimDuration::from_millis(10));
        assert_eq!(bins.len(), 5);
        // Bin [0,10) is empty and before any sample -> 0.0 default.
        assert_eq!(bins[0].1, 0.0);
        assert_eq!(bins[1].1, 1.0);
        assert_eq!(bins[2].1, 2.0);
        assert_eq!(bins[3].1, 4.0);
        assert_eq!(bins[4].1, 4.0); // held
    }

    #[test]
    fn time_weighted_mean_weights_by_span() {
        let mut s = TimeSeries::new();
        s.push(t(0), 10.0);
        s.push(t(90), 20.0);
        // 90 ms at 10.0, 10 ms at 20.0 -> 11.0
        let m = s.time_weighted_mean(t(0), t(100)).expect("covered");
        assert!((m - 11.0).abs() < 1e-9, "{m}");
    }

    #[test]
    fn time_weighted_mean_before_first_sample_is_none() {
        let s = series();
        assert_eq!(s.time_weighted_mean(t(0), t(5)), None);
    }

    #[test]
    fn value_range() {
        assert_eq!(series().value_range(), Some((1.0, 4.0)));
        assert_eq!(TimeSeries::new().value_range(), None);
    }
}
