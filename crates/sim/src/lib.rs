//! # mmwave-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate every other crate in the workspace runs on.
//! It deliberately contains **no networking or radio knowledge** — just the
//! three things a reproducible measurement campaign needs:
//!
//! * [`time`] — integer-nanosecond simulated time ([`SimTime`], [`SimDuration`])
//!   so protocol constants (SIFS = 3 µs, beacon interval = 1.1 ms, …) are exact
//!   and never drift through floating point.
//! * [`queue`] + [`engine`] — a cancellable, deterministically ordered event
//!   queue and a simple run loop. Two events scheduled for the same instant
//!   fire in scheduling order, so a simulation is a pure function of its
//!   inputs and seed.
//! * [`rng`] — a seeded RNG that hands out independent, *labelled* substreams.
//!   Adding a new random component never perturbs the draws of existing ones,
//!   which keeps regression tests stable.
//!
//! [`ctx`] adds the explicit simulation context ([`SimCtx`]): the
//! counter sink, cache-mode policy, and per-context cache slots that every
//! layer above threads through instead of reaching for ambient state.
//!
//! [`stats`] and [`series`] hold the small statistics toolkit (CDFs,
//! percentiles, confidence intervals, busy-time accounting, time series)
//! that the analysis crates share.
//!
//! ## Example
//!
//! ```
//! use mmwave_sim::prelude::*;
//!
//! // A world that counts ticks.
//! struct World { ticks: u32 }
//!
//! let mut engine = Engine::new(World { ticks: 0 });
//! // Schedule three ticks, one every 100 µs.
//! for i in 1..=3u64 {
//!     engine.schedule(SimTime::ZERO + SimDuration::from_micros(100) * i as u32,
//!                     Box::new(|w: &mut World, _now, _sched| { w.ticks += 1; }));
//! }
//! engine.run_until(SimTime::from_millis(1));
//! assert_eq!(engine.world().ticks, 3);
//! assert_eq!(engine.now(), SimTime::from_millis(1));
//! ```

pub mod ctx;
pub mod engine;
pub mod hash;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

/// Convenient re-exports of the types almost every consumer needs.
pub mod prelude {
    pub use crate::ctx::{CacheMode, SimCtx};
    pub use crate::engine::{Engine, EventFn, Scheduler};
    pub use crate::hash::{FastMap, FastSet};
    pub use crate::metrics::EngineCounters;
    pub use crate::queue::{EventId, EventQueue, QueueBackend};
    pub use crate::rng::SimRng;
    pub use crate::series::TimeSeries;
    pub use crate::stats::{BusyTracker, Cdf, OnlineStats};
    pub use crate::time::{SimDuration, SimTime};
}

pub use prelude::*;
