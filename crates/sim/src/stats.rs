//! Small statistics toolkit shared by the analysis crates.
//!
//! Everything here mirrors what the paper's Matlab post-processing needs:
//! empirical CDFs of frame lengths (Fig. 9), mean ± 95 % confidence interval
//! throughput (the 550 ± 18 Mb/s NLoS result), and busy/idle time accounting
//! for the threshold-based link-utilization estimates (Figs. 11 and 22).

use crate::time::{SimDuration, SimTime};

/// Empirical cumulative distribution function over `f64` samples.
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
    dirty: bool,
}

impl Cdf {
    /// An empty CDF.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Build directly from samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut c = Cdf::new();
        for s in samples {
            c.add(s);
        }
        c
    }

    /// Insert one sample.
    pub fn add(&mut self, sample: f64) {
        debug_assert!(sample.is_finite(), "non-finite sample");
        self.sorted.push(sample);
        self.dirty = true;
    }

    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.dirty = false;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples were added.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x), in [0, 1]. Returns 0 for an empty CDF.
    pub fn probability_at(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (q in [0, 1]) using nearest-rank. Panics if empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        self.ensure_sorted();
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// Median (0.5-quantile).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Arithmetic mean. Panics if empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.sorted.is_empty(), "mean of empty CDF");
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum sample.
    pub fn min(&mut self) -> f64 {
        self.ensure_sorted();
        *self.sorted.first().expect("min of empty CDF")
    }

    /// Maximum sample.
    pub fn max(&mut self) -> f64 {
        self.ensure_sorted();
        *self.sorted.last().expect("max of empty CDF")
    }

    /// Evaluate the CDF at `points`, returning `(x, P(X ≤ x))` pairs —
    /// ready for plotting a figure-9 style curve.
    pub fn curve(&mut self, points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&x| (x, self.probability_at(x)))
            .collect()
    }

    /// Fraction of samples strictly greater than `threshold`
    /// (the "long frame" fraction of Fig. 10).
    pub fn fraction_above(&mut self, threshold: f64) -> f64 {
        1.0 - self.probability_at(threshold)
    }
}

/// Numerically stable online mean/variance (Welford) with a 95 % CI helper.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats::default()
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the 95 % confidence interval on the mean, using the
    /// normal approximation (1.96 · s/√n). Good enough for n ≥ ~30, which
    /// all our campaigns satisfy.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

/// Accumulates busy time on a shared medium, merging overlapping busy
/// intervals — the ground-truth side of the link-utilization measurements.
#[derive(Clone, Debug, Default)]
pub struct BusyTracker {
    /// Sorted, disjoint busy intervals.
    intervals: Vec<(SimTime, SimTime)>,
}

impl BusyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        BusyTracker::default()
    }

    /// Record that the medium was busy over `[start, end)`.
    /// Intervals may be added out of order and may overlap.
    pub fn add(&mut self, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        // Insert sorted by start, then merge neighbours.
        let pos = self.intervals.partition_point(|&(s, _)| s < start);
        self.intervals.insert(pos, (start, end));
        self.coalesce_around(pos);
    }

    fn coalesce_around(&mut self, pos: usize) {
        // Merge left.
        let mut i = pos;
        if i > 0 && self.intervals[i - 1].1 >= self.intervals[i].0 {
            let (s, e) = self.intervals.remove(i);
            i -= 1;
            self.intervals[i].1 = self.intervals[i].1.max(e);
            self.intervals[i].0 = self.intervals[i].0.min(s);
        }
        // Merge right as long as the next interval touches.
        while i + 1 < self.intervals.len() && self.intervals[i].1 >= self.intervals[i + 1].0 {
            let (_, e) = self.intervals.remove(i + 1);
            self.intervals[i].1 = self.intervals[i].1.max(e);
        }
    }

    /// Total busy time within the observation window `[from, to)`.
    pub fn busy_within(&self, from: SimTime, to: SimTime) -> SimDuration {
        let mut acc = SimDuration::ZERO;
        for &(s, e) in &self.intervals {
            let lo = s.max(from);
            let hi = e.min(to);
            if hi > lo {
                acc += hi - lo;
            }
        }
        acc
    }

    /// Busy fraction (utilization) over `[from, to)` in [0, 1].
    pub fn utilization(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        self.busy_within(from, to).as_secs_f64() / (to - from).as_secs_f64()
    }

    /// The merged intervals (sorted, disjoint).
    pub fn intervals(&self) -> &[(SimTime, SimTime)] {
        &self.intervals
    }
}

/// Linear histogram over a fixed range; used for amplitude clustering in the
/// capture crate and for sanity plots.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram of `nbins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(lo < hi && nbins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Insert one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Samples that fell below/above the range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basic_probabilities() {
        let mut c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.probability_at(0.5), 0.0);
        assert_eq!(c.probability_at(2.0), 0.5);
        assert_eq!(c.probability_at(10.0), 1.0);
        assert_eq!(c.fraction_above(2.0), 0.5);
    }

    #[test]
    fn cdf_quantiles() {
        let mut c = Cdf::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.median(), 50.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 100.0);
        assert!((c.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let mut c = Cdf::from_samples([5.0, 1.0, 3.0, 3.0, 9.0]);
        let pts: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let curve = c.curve(&pts);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn online_stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn busy_tracker_merges_overlaps() {
        let mut b = BusyTracker::new();
        let t = SimTime::from_micros;
        b.add(t(10), t(20));
        b.add(t(15), t(30)); // overlaps previous
        b.add(t(40), t(50)); // disjoint
        b.add(t(0), t(5)); // out of order
        assert_eq!(b.intervals().len(), 3);
        assert_eq!(b.busy_within(t(0), t(100)), SimDuration::from_micros(35));
        assert!((b.utilization(t(0), t(100)) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn busy_tracker_window_clipping() {
        let mut b = BusyTracker::new();
        let t = SimTime::from_micros;
        b.add(t(0), t(100));
        assert_eq!(b.busy_within(t(25), t(75)), SimDuration::from_micros(50));
        assert_eq!(b.utilization(t(25), t(75)), 1.0);
        assert_eq!(b.utilization(t(75), t(75)), 0.0);
    }

    #[test]
    fn busy_tracker_adjacent_intervals_coalesce() {
        let mut b = BusyTracker::new();
        let t = SimTime::from_micros;
        b.add(t(0), t(10));
        b.add(t(10), t(20));
        assert_eq!(b.intervals().len(), 1);
        assert_eq!(b.busy_within(t(0), t(20)), SimDuration::from_micros(20));
    }

    #[test]
    fn busy_tracker_containment() {
        let mut b = BusyTracker::new();
        let t = SimTime::from_micros;
        b.add(t(0), t(100));
        b.add(t(20), t(30)); // fully contained
        assert_eq!(b.intervals().len(), 1);
        assert_eq!(b.busy_within(t(0), t(100)), SimDuration::from_micros(100));
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        h.add(-1.0);
        h.add(11.0);
        assert!(h.bins().iter().all(|&c| c == 1));
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.total(), 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }
}
