//! A cancellable event queue with deterministic ordering.
//!
//! Events at equal timestamps pop in the order they were scheduled
//! (FIFO by a monotonically increasing sequence number), which makes the
//! whole simulation deterministic regardless of heap internals.
//! Cancellation is *lazy*: a cancelled entry stays in the heap and is
//! discarded when it surfaces, which keeps `cancel` O(1).

use crate::ctx::SimCtx;
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// Handle identifying a scheduled event; used to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

/// Open-addressed set of raw `u64` keys — the lazy-cancellation tombstone
/// store.
///
/// Every `pop` consults this set, so with `HashSet<EventId>` the queue's
/// hot path paid a full SipHash round per event. Event ids are plain
/// sequence numbers; one Fibonacci multiply spreads them perfectly well,
/// and linear probing with backward-shift deletion (no tombstone markers)
/// keeps lookups a couple of cache lines at the typical (tiny) occupancy.
struct U64Set {
    /// Power-of-two slot array; `EMPTY` marks a free slot.
    slots: Vec<u64>,
    mask: usize,
    len: usize,
}

/// Free-slot sentinel. Event sequence numbers count up from zero, so a
/// queue would have to schedule 2⁶⁴ − 1 events before colliding with it.
const EMPTY: u64 = u64::MAX;

impl U64Set {
    fn new() -> U64Set {
        U64Set {
            slots: Vec::new(),
            mask: 0,
            len: 0,
        }
    }

    /// Home slot: Fibonacci hashing (golden-ratio multiply, top bits).
    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & self.mask
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; cap]);
        self.mask = cap - 1;
        self.len = 0;
        for k in old {
            if k != EMPTY {
                self.insert(k);
            }
        }
    }

    /// Insert; returns false if the key was already present.
    fn insert(&mut self, key: u64) -> bool {
        debug_assert_ne!(key, EMPTY, "sentinel key");
        // Keep occupancy under 3/4 so probe chains stay short.
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            let k = self.slots[i];
            if k == EMPTY {
                self.slots[i] = key;
                self.len += 1;
                return true;
            }
            if k == key {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    fn contains(&self, key: u64) -> bool {
        if self.len == 0 {
            return false;
        }
        let mut i = self.home(key);
        loop {
            let k = self.slots[i];
            if k == EMPTY {
                return false;
            }
            if k == key {
                return true;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Remove; returns true if the key was present. Uses backward-shift
    /// deletion: later entries of the probe chain slide into the hole so
    /// no deleted-marker state is ever needed.
    fn remove(&mut self, key: u64) -> bool {
        if self.len == 0 {
            return false;
        }
        let mut i = self.home(key);
        loop {
            let k = self.slots[i];
            if k == EMPTY {
                return false;
            }
            if k == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        self.slots[i] = EMPTY;
        self.len -= 1;
        let mut j = (i + 1) & self.mask;
        while self.slots[j] != EMPTY {
            let h = self.home(self.slots[j]);
            // `slots[j]` may move into the hole at `i` iff its home lies
            // at or before `i` along its probe path (Knuth's distance
            // criterion, cyclic arithmetic).
            if (j.wrapping_sub(h) & self.mask) >= (j.wrapping_sub(i) & self.mask) {
                self.slots[i] = self.slots[j];
                self.slots[j] = EMPTY;
                i = j;
            }
            j = (j + 1) & self.mask;
        }
        true
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the comparison to pop earliest first,
// breaking ties by scheduling order.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Priority queue of `(SimTime, payload)` pairs with stable FIFO tie-breaks
/// and O(1) cancellation.
///
/// ```
/// use mmwave_sim::queue::EventQueue;
/// use mmwave_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_micros(10), "a");
/// let _b = q.schedule(SimTime::from_micros(5), "b");
/// q.cancel(a);
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<(EventId, E)>>,
    cancelled: U64Set,
    next_seq: u64,
    live: usize,
    popped: u64,
    cancelled_total: u64,
    peak_live: usize,
    ctx: SimCtx,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue streaming counters into a fresh private context.
    /// Simulations that report counters build through [`Self::with_ctx`].
    pub fn new() -> Self {
        Self::with_ctx(&SimCtx::new())
    }

    /// An empty queue streaming its counter updates (pops, cancels, depth
    /// watermark) into `ctx`.
    pub fn with_ctx(ctx: &SimCtx) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: U64Set::new(),
            next_seq: 0,
            live: 0,
            popped: 0,
            cancelled_total: 0,
            peak_live: 0,
            ctx: ctx.clone(),
        }
    }

    /// Schedule `payload` to fire at `at`. Returns a handle for cancellation.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Entry {
            at,
            seq,
            payload: (id, payload),
        });
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.ctx.record_depth(self.live);
        id
    }

    /// Cancel a previously scheduled event. Returns true if the event was
    /// still pending (false if it already fired or was already cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // An id is pending iff it was issued, hasn't popped, and isn't
        // already in the tombstone set. We can't check "hasn't popped"
        // cheaply, so we record the tombstone and let `pop` reconcile;
        // `live` is only decremented when the tombstone actually kills a
        // pending entry, which we detect by insertion success + a sweep on
        // pop. To keep `live` exact we instead check insertion and trust the
        // caller not to cancel twice; double-cancels return false.
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(id.0) {
            if self.live > 0 {
                self.live -= 1;
            }
            self.cancelled_total += 1;
            self.ctx.record_cancel();
            true
        } else {
            false
        }
    }

    /// Remove and return the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let (id, payload) = entry.payload;
            if self.cancelled.remove(id.0) {
                continue; // tombstoned
            }
            self.live -= 1;
            self.popped += 1;
            self.ctx.record_pop();
            return Some((entry.at, payload));
        }
        None
    }

    /// Timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain tombstones off the top so peek is accurate.
        while let Some(top) = self.heap.peek() {
            let id = top.payload.0;
            if self.cancelled.contains(id.0) {
                let e = self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(e.payload.0 .0);
            } else {
                return Some(top.at);
            }
        }
        None
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events popped over the queue's lifetime.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Total successful cancellations over the queue's lifetime.
    pub fn cancelled_count(&self) -> u64 {
        self.cancelled_total
    }

    /// Highest number of simultaneously live events ever observed.
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_pop_returns_false_eventually() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert_eq!(q.pop(), Some((t(1), ())));
        // The event already fired; cancelling marks a tombstone that will
        // never match, but must not confuse later events.
        q.cancel(a);
        let b = q.schedule(t(2), ());
        assert!(b != a);
        assert_eq!(q.pop(), Some((t(2), ())));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(5), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.pop(), Some((t(5), 2)));
    }

    #[test]
    fn u64set_insert_contains_remove_across_growth() {
        let mut s = U64Set::new();
        assert!(!s.contains(0));
        assert!(!s.remove(0));
        for k in 0..1000u64 {
            assert!(s.insert(k), "first insert of {k}");
            assert!(!s.insert(k), "duplicate insert of {k}");
        }
        for k in 0..1000u64 {
            assert!(s.contains(k));
        }
        assert!(!s.contains(1000));
        // Remove evens; odds must survive every backward shift.
        for k in (0..1000u64).step_by(2) {
            assert!(s.remove(k));
            assert!(!s.remove(k), "double remove of {k}");
        }
        for k in 0..1000u64 {
            assert_eq!(s.contains(k), k % 2 == 1, "key {k}");
        }
        // Reinsert into the holes.
        for k in (0..1000u64).step_by(2) {
            assert!(s.insert(k));
        }
        assert_eq!(s.len, 1000);
    }

    #[test]
    fn u64set_handles_colliding_keys() {
        // Keys a multiple of a large power of two apart collide in small
        // tables, exercising probe chains and backward-shift deletion.
        let mut s = U64Set::new();
        let keys: Vec<u64> = (0..48).map(|i| i << 32).collect();
        for &k in &keys {
            assert!(s.insert(k));
        }
        for &k in &keys {
            assert!(s.contains(k));
        }
        // Delete from the middle of chains and re-verify the rest.
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert!(s.remove(k));
            }
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(s.contains(k), i % 3 != 0);
        }
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), ());
        let _ = q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
