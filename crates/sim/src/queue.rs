//! A cancellable event queue with deterministic ordering.
//!
//! Events at equal timestamps pop in the order they were scheduled
//! (FIFO by a monotonically increasing sequence number), which makes the
//! whole simulation deterministic regardless of backend internals.
//! Cancellation is *lazy*: a cancelled entry stays in the backend and is
//! discarded when it surfaces, which keeps `cancel` O(1).
//!
//! Two backends implement the same `(at, seq)` min-order contract and are
//! selected per [`SimCtx`] (see [`QueueBackend`]):
//!
//! * a **hierarchical timer wheel** (the default) — near-O(1)
//!   schedule/pop for the dense-timer regime the MAC and transport layers
//!   generate (per-frame TX timers, RTO, pacer ticks), and
//! * a **binary heap** — the reference implementation, kept selectable so
//!   differential tests can prove both backends pop byte-identical event
//!   orders on randomized schedule/cancel workloads.

use crate::ctx::SimCtx;
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// Which data structure backs an [`EventQueue`].
///
/// Fixed per [`SimCtx`] at construction, like
/// [`CacheMode`](crate::ctx::CacheMode): every queue built through a
/// context adopts the context's backend, so a whole simulation switches
/// implementations in one place. Both backends honor the same
/// determinism contract — pop order is strictly `(timestamp, scheduling
/// sequence)` — so switching backends never changes simulation results,
/// only wall-clock cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueBackend {
    /// Hierarchical timer wheel; near-O(1) per event in the dense-timer
    /// regime. The production default.
    #[default]
    TimerWheel,
    /// Binary heap; O(log n) per event. The reference implementation
    /// differential tests compare the wheel against.
    BinaryHeap,
}

/// Handle identifying a scheduled event; used to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

/// Open-addressed set of raw `u64` keys — the lazy-cancellation tombstone
/// store.
///
/// Every `pop` consults this set, so with `HashSet<EventId>` the queue's
/// hot path paid a full SipHash round per event. Event ids are plain
/// sequence numbers; one Fibonacci multiply spreads them perfectly well,
/// and linear probing with backward-shift deletion (no tombstone markers)
/// keeps lookups a couple of cache lines at the typical (tiny) occupancy.
struct U64Set {
    /// Power-of-two slot array; `EMPTY` marks a free slot.
    slots: Vec<u64>,
    mask: usize,
    len: usize,
}

/// Free-slot sentinel. Event sequence numbers count up from zero, so a
/// queue would have to schedule 2⁶⁴ − 1 events before colliding with it.
const EMPTY: u64 = u64::MAX;

impl U64Set {
    fn new() -> U64Set {
        U64Set {
            slots: Vec::new(),
            mask: 0,
            len: 0,
        }
    }

    /// Home slot: Fibonacci hashing (golden-ratio multiply, top bits).
    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & self.mask
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; cap]);
        self.mask = cap - 1;
        self.len = 0;
        for k in old {
            if k != EMPTY {
                self.insert(k);
            }
        }
    }

    /// Insert; returns false if the key was already present.
    fn insert(&mut self, key: u64) -> bool {
        debug_assert_ne!(key, EMPTY, "sentinel key");
        // Keep occupancy under 3/4 so probe chains stay short.
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            let k = self.slots[i];
            if k == EMPTY {
                self.slots[i] = key;
                self.len += 1;
                return true;
            }
            if k == key {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    fn contains(&self, key: u64) -> bool {
        if self.len == 0 {
            return false;
        }
        let mut i = self.home(key);
        loop {
            let k = self.slots[i];
            if k == EMPTY {
                return false;
            }
            if k == key {
                return true;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Remove; returns true if the key was present. Uses backward-shift
    /// deletion: later entries of the probe chain slide into the hole so
    /// no deleted-marker state is ever needed.
    fn remove(&mut self, key: u64) -> bool {
        if self.len == 0 {
            return false;
        }
        let mut i = self.home(key);
        loop {
            let k = self.slots[i];
            if k == EMPTY {
                return false;
            }
            if k == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        self.slots[i] = EMPTY;
        self.len -= 1;
        let mut j = (i + 1) & self.mask;
        while self.slots[j] != EMPTY {
            let h = self.home(self.slots[j]);
            // `slots[j]` may move into the hole at `i` iff its home lies
            // at or before `i` along its probe path (Knuth's distance
            // criterion, cyclic arithmetic).
            if (j.wrapping_sub(h) & self.mask) >= (j.wrapping_sub(i) & self.mask) {
                self.slots[i] = self.slots[j];
                self.slots[j] = EMPTY;
                i = j;
            }
            j = (j + 1) & self.mask;
        }
        true
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the comparison to pop earliest first,
// breaking ties by scheduling order.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Slots per wheel level (64 → a `u64` occupancy bitmask per level).
const WHEEL_SLOTS: usize = 64;
/// log2 of the level-0 slot width: 2¹⁰ ns ≈ 1 µs, matching the natural
/// spacing of MAC/transport timers so a slot holds only a few events.
const WHEEL_SHIFT0: u32 = 10;
/// Levels. Each level widens slots by 64×, so nine levels cover all 64
/// bits of `SimTime` (10 + 9·6 = 64) — no overflow list is ever needed.
const WHEEL_LEVELS: usize = 9;

/// Hierarchical timer wheel keyed by `(at, seq)`.
///
/// Every pending event lives either in the **stage** — the sorted
/// contents of the level-0 slot the cursor currently points at — or in a
/// level-`l` slot indexed by bits `[sh(l), sh(l)+6)` of its timestamp,
/// where `l` is the level of the most significant bit in which the
/// timestamp differs from the cursor. That placement rule yields the two
/// invariants `advance` relies on:
///
/// 1. events at level `l` share the cursor's timestamp bits *above*
///    level `l`, so they all fall inside the current level-`l+1` slot —
///    any occupied lower level is therefore strictly earlier than any
///    occupied higher level; and
/// 2. their level-`l` slot digit is strictly greater than the cursor's,
///    so within a level the smallest occupied slot index (one
///    `trailing_zeros` on the occupancy mask) is the earliest and no
///    wrap-around ambiguity exists.
///
/// Popping drains the stage; when it empties, the cursor jumps straight
/// to the next occupied slot (no tick-by-tick stepping), cascading
/// higher-level slots downward as they are reached. Each event cascades
/// at most `WHEEL_LEVELS − 1` times over its lifetime.
struct TimerWheel<E> {
    /// `WHEEL_LEVELS × WHEEL_SLOTS` buckets, level-major.
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level bitmask of non-empty slots.
    occupied: [u64; WHEEL_LEVELS],
    /// Contents of the cursor's level-0 slot, sorted descending by
    /// `(at, seq)` so the earliest event pops from the back.
    stage: Vec<Entry<E>>,
    /// Cursor: start of the stage's level-0 slot, in nanoseconds.
    elapsed: u64,
    /// Total entries held (stage + all slots), including tombstoned ones.
    items: usize,
}

impl<E> TimerWheel<E> {
    fn new() -> Self {
        TimerWheel {
            slots: (0..WHEEL_LEVELS * WHEEL_SLOTS)
                .map(|_| Vec::new())
                .collect(),
            occupied: [0; WHEEL_LEVELS],
            stage: Vec::new(),
            elapsed: 0,
            items: 0,
        }
    }

    #[inline]
    fn shift(level: usize) -> u32 {
        WHEEL_SHIFT0 + 6 * level as u32
    }

    fn push(&mut self, entry: Entry<E>) {
        self.items += 1;
        self.place(entry);
    }

    /// Bucket `entry` relative to the current cursor.
    fn place(&mut self, entry: Entry<E>) {
        let t = entry.at.as_nanos();
        if (t >> WHEEL_SHIFT0) <= (self.elapsed >> WHEEL_SHIFT0) {
            // The cursor's own slot, or the past: goes straight into the
            // stage at its sorted position (descending, pop-from-back).
            let key = (entry.at, entry.seq);
            let pos = self.stage.partition_point(|e| (e.at, e.seq) > key);
            self.stage.insert(pos, entry);
        } else {
            // Differing slot ⇒ some bit ≥ WHEEL_SHIFT0 differs.
            let msb = 63 - (t ^ self.elapsed).leading_zeros();
            let level = ((msb - WHEEL_SHIFT0) / 6) as usize;
            let slot = ((t >> Self::shift(level)) & 63) as usize;
            self.slots[level * WHEEL_SLOTS + slot].push(entry);
            self.occupied[level] |= 1 << slot;
        }
    }

    /// Move the cursor to the next occupied slot and fill the stage.
    /// Precondition: the stage is empty and `items > 0`.
    ///
    /// Buffer discipline: slot `Vec`s are never dropped, only swapped or
    /// restored, so the steady state performs zero allocations — the
    /// property that lets the wheel beat the (allocation-free) heap.
    fn refill_stage(&mut self) {
        while self.stage.is_empty() {
            let level = (0..WHEEL_LEVELS)
                .find(|&l| self.occupied[l] != 0)
                .expect("wheel holds items but every slot is empty");
            let slot = self.occupied[level].trailing_zeros() as usize;
            let idx = level * WHEEL_SLOTS + slot;
            self.occupied[level] &= !(1u64 << slot);
            // Jump the cursor to the start of that slot: keep the bits
            // above the level's digit, set the digit, zero the rest.
            let sh = Self::shift(level);
            let prefix = if sh + 6 >= 64 {
                0
            } else {
                self.elapsed >> (sh + 6) << (sh + 6)
            };
            self.elapsed = prefix | ((slot as u64) << sh);
            if level == 0 {
                // The (empty) stage trades buffers with the slot: the slot
                // keeps a reusable allocation, the stage gets the entries.
                std::mem::swap(&mut self.stage, &mut self.slots[idx]);
                self.stage
                    .sort_unstable_by(|a, b| (b.at, b.seq).cmp(&(a.at, a.seq)));
            } else {
                // Cascade: re-bucket against the advanced cursor. Entries
                // land strictly below `level` (their timestamps now agree
                // with the cursor through this level's digit) or in the
                // stage, never back in this slot — so the drained buffer
                // can be handed back afterwards, capacity intact.
                let mut entries = std::mem::take(&mut self.slots[idx]);
                for e in entries.drain(..) {
                    self.place(e);
                }
                self.slots[idx] = entries;
            }
        }
    }

    fn pop_front(&mut self) -> Option<Entry<E>> {
        if self.items == 0 {
            return None;
        }
        if self.stage.is_empty() {
            self.refill_stage();
        }
        self.items -= 1;
        Some(self.stage.pop().expect("refilled stage is non-empty"))
    }

    fn peek_front(&mut self) -> Option<(SimTime, u64)> {
        if self.items == 0 {
            return None;
        }
        if self.stage.is_empty() {
            self.refill_stage();
        }
        self.stage.last().map(|e| (e.at, e.seq))
    }
}

/// Backend dispatch. Both variants surface entries in `(at, seq)` order;
/// tombstone filtering happens in the [`EventQueue`] wrapper so the
/// cancellation semantics are shared code.
enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    Wheel(TimerWheel<E>),
}

impl<E> Backend<E> {
    fn push(&mut self, at: SimTime, seq: u64, payload: E) {
        let entry = Entry { at, seq, payload };
        match self {
            Backend::Heap(h) => h.push(entry),
            Backend::Wheel(w) => w.push(entry),
        }
    }

    fn pop_front(&mut self) -> Option<(SimTime, u64, E)> {
        match self {
            Backend::Heap(h) => h.pop().map(|e| (e.at, e.seq, e.payload)),
            Backend::Wheel(w) => w.pop_front().map(|e| (e.at, e.seq, e.payload)),
        }
    }

    fn peek_front(&mut self) -> Option<(SimTime, u64)> {
        match self {
            Backend::Heap(h) => h.peek().map(|e| (e.at, e.seq)),
            Backend::Wheel(w) => w.peek_front(),
        }
    }
}

/// Priority queue of `(SimTime, payload)` pairs with stable FIFO tie-breaks
/// and O(1) cancellation.
///
/// ```
/// use mmwave_sim::queue::EventQueue;
/// use mmwave_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_micros(10), "a");
/// let _b = q.schedule(SimTime::from_micros(5), "b");
/// q.cancel(a);
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    backend: Backend<E>,
    cancelled: U64Set,
    next_seq: u64,
    live: usize,
    popped: u64,
    cancelled_total: u64,
    peak_live: usize,
    /// Memoized front `(at, seq)` from the last [`Self::peek_time`], valid
    /// until a pop, a strictly-earlier schedule, or a cancel of that very
    /// event. Driver loops peek between every event; the memo makes the
    /// repeat peeks free of backend work (stage refills, tombstone drains).
    peeked: Option<(SimTime, u64)>,
    ctx: SimCtx,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue streaming counters into a fresh private context.
    /// Simulations that report counters build through [`Self::with_ctx`].
    pub fn new() -> Self {
        Self::with_ctx(&SimCtx::new())
    }

    /// An empty queue streaming its counter updates (pops, cancels, depth
    /// watermark) into `ctx`, backed per the context's
    /// [`queue_backend`](SimCtx::queue_backend) selection.
    pub fn with_ctx(ctx: &SimCtx) -> Self {
        Self::with_backend(ctx, ctx.queue_backend())
    }

    /// An empty queue with an explicit backend, overriding the context's
    /// selection. Differential tests use this to run both backends
    /// against one workload.
    pub fn with_backend(ctx: &SimCtx, backend: QueueBackend) -> Self {
        EventQueue {
            backend: match backend {
                QueueBackend::BinaryHeap => Backend::Heap(BinaryHeap::new()),
                QueueBackend::TimerWheel => Backend::Wheel(TimerWheel::new()),
            },
            cancelled: U64Set::new(),
            next_seq: 0,
            live: 0,
            popped: 0,
            cancelled_total: 0,
            peak_live: 0,
            peeked: None,
            ctx: ctx.clone(),
        }
    }

    /// Schedule `payload` to fire at `at`. Returns a handle for cancellation.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        // A new event displaces the memoized front only if strictly
        // earlier — at an equal timestamp the FIFO rule keeps the older
        // (lower-seq) event in front.
        if self.peeked.is_some_and(|(t, _)| at < t) {
            self.peeked = None;
        }
        self.backend.push(at, seq, payload);
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.ctx.record_depth(self.live);
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns true if the event was
    /// still pending (false if it already fired or was already cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // An id is pending iff it was issued, hasn't popped, and isn't
        // already in the tombstone set. We can't check "hasn't popped"
        // cheaply, so we record the tombstone and let `pop` reconcile;
        // `live` is only decremented when the tombstone actually kills a
        // pending entry, which we detect by insertion success + a sweep on
        // pop. To keep `live` exact we instead check insertion and trust the
        // caller not to cancel twice; double-cancels return false.
        if id.0 >= self.next_seq {
            return false;
        }
        if self.peeked.is_some_and(|(_, s)| s == id.0) {
            self.peeked = None;
        }
        if self.cancelled.insert(id.0) {
            if self.live > 0 {
                self.live -= 1;
            }
            self.cancelled_total += 1;
            self.ctx.record_cancel();
            true
        } else {
            false
        }
    }

    /// Remove and return the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.peeked = None;
        while let Some((at, seq, payload)) = self.backend.pop_front() {
            if self.cancelled.remove(seq) {
                continue; // tombstoned
            }
            // Saturating for the same reason `cancel` clamps: a cancel of
            // an already-popped id spuriously decrements `live`, and the
            // surviving events must still pop without underflow.
            self.live = self.live.saturating_sub(1);
            self.popped += 1;
            self.ctx.record_pop();
            return Some((at, payload));
        }
        None
    }

    /// Timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if let Some((at, _)) = self.peeked {
            return Some(at);
        }
        // Drain tombstones off the top so peek is accurate.
        while let Some((at, seq)) = self.backend.peek_front() {
            if self.cancelled.contains(seq) {
                self.backend.pop_front();
                self.cancelled.remove(seq);
            } else {
                self.peeked = Some((at, seq));
                return Some(at);
            }
        }
        None
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events popped over the queue's lifetime.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Total successful cancellations over the queue's lifetime.
    pub fn cancelled_count(&self) -> u64 {
        self.cancelled_total
    }

    /// Highest number of simultaneously live events ever observed.
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_pop_returns_false_eventually() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert_eq!(q.pop(), Some((t(1), ())));
        // The event already fired; cancelling marks a tombstone that will
        // never match, but must not confuse later events.
        q.cancel(a);
        let b = q.schedule(t(2), ());
        assert!(b != a);
        assert_eq!(q.pop(), Some((t(2), ())));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1);
        q.schedule(t(5), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.pop(), Some((t(5), 2)));
    }

    #[test]
    fn u64set_insert_contains_remove_across_growth() {
        let mut s = U64Set::new();
        assert!(!s.contains(0));
        assert!(!s.remove(0));
        for k in 0..1000u64 {
            assert!(s.insert(k), "first insert of {k}");
            assert!(!s.insert(k), "duplicate insert of {k}");
        }
        for k in 0..1000u64 {
            assert!(s.contains(k));
        }
        assert!(!s.contains(1000));
        // Remove evens; odds must survive every backward shift.
        for k in (0..1000u64).step_by(2) {
            assert!(s.remove(k));
            assert!(!s.remove(k), "double remove of {k}");
        }
        for k in 0..1000u64 {
            assert_eq!(s.contains(k), k % 2 == 1, "key {k}");
        }
        // Reinsert into the holes.
        for k in (0..1000u64).step_by(2) {
            assert!(s.insert(k));
        }
        assert_eq!(s.len, 1000);
    }

    #[test]
    fn u64set_handles_colliding_keys() {
        // Keys a multiple of a large power of two apart collide in small
        // tables, exercising probe chains and backward-shift deletion.
        let mut s = U64Set::new();
        let keys: Vec<u64> = (0..48).map(|i| i << 32).collect();
        for &k in &keys {
            assert!(s.insert(k));
        }
        for &k in &keys {
            assert!(s.contains(k));
        }
        // Delete from the middle of chains and re-verify the rest.
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert!(s.remove(k));
            }
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(s.contains(k), i % 3 != 0);
        }
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1), ());
        let _ = q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }

    fn for_both_backends(f: impl Fn(EventQueue<u64>)) {
        for backend in [QueueBackend::TimerWheel, QueueBackend::BinaryHeap] {
            f(EventQueue::with_backend(&SimCtx::new(), backend));
        }
    }

    #[test]
    fn both_backends_pop_in_time_order() {
        for_both_backends(|mut q| {
            // Spans all wheel levels: sub-slot, same-level, and far-future
            // timestamps, scheduled out of order.
            let times = [
                7u64,
                1,
                1_000,
                1_023,
                1_024,
                65_536,
                65_537,
                4_194_304,
                1 << 40,
                (1 << 40) + 1,
                u64::MAX,
                0,
                3_000_000_000,
            ];
            for (i, &ns) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(ns), i as u64);
            }
            let mut sorted = times;
            sorted.sort();
            for &ns in &sorted {
                let (at, _) = q.pop().expect("event present");
                assert_eq!(at, SimTime::from_nanos(ns));
            }
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn wheel_schedules_into_current_slot_after_pops() {
        // After the cursor has advanced, schedule events at, before, and
        // just after the cursor; all must still pop in (at, seq) order.
        let ctx = SimCtx::new();
        let mut q = EventQueue::with_backend(&ctx, QueueBackend::TimerWheel);
        q.schedule(SimTime::from_nanos(1 << 20), 0);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1 << 20), 0)));
        q.schedule(SimTime::from_nanos((1 << 20) + 10), 1);
        q.schedule(SimTime::from_nanos(5), 2); // in the cursor's past
        q.schedule(SimTime::from_nanos((1 << 20) + 10), 3); // FIFO with 1
        q.schedule(SimTime::from_nanos((1 << 20) + 2_000), 4); // next slot
        assert_eq!(q.pop(), Some((SimTime::from_nanos(5), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos((1 << 20) + 10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos((1 << 20) + 10), 3)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos((1 << 20) + 2_000), 4)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wheel_interleaves_pops_and_far_schedules() {
        // Repeatedly pop the front and schedule strictly later events so
        // the cursor jumps across level boundaries many times.
        let ctx = SimCtx::new();
        let mut q = EventQueue::with_backend(&ctx, QueueBackend::TimerWheel);
        let mut at = 1u64;
        q.schedule(SimTime::from_nanos(at), 0);
        for i in 1..200u64 {
            let (got, _) = q.pop().expect("front event");
            assert_eq!(got.as_nanos(), at);
            at = at.wrapping_mul(3).wrapping_add(i) % (1 << 50) + at + 1;
            q.schedule(SimTime::from_nanos(at), i);
        }
    }

    #[test]
    fn both_backends_equal_times_pop_fifo_after_advance() {
        for_both_backends(|mut q| {
            q.schedule(t(50), 0);
            assert!(q.pop().is_some());
            for i in 1..=64u64 {
                q.schedule(t(70), i);
            }
            for i in 1..=64u64 {
                assert_eq!(q.pop(), Some((t(70), i)));
            }
        });
    }
}
