//! Deterministic random numbers with labelled substreams.
//!
//! Every stochastic component in a simulation (fading process, per-frame
//! error draws, TCP jitter, measurement noise, …) pulls from its own
//! substream, derived from the root seed and a string label. This gives two
//! properties the experiment suite relies on:
//!
//! 1. **Reproducibility** — the same root seed always produces the same
//!    campaign, so integration tests can assert concrete numbers.
//! 2. **Stability under extension** — adding a new random component (a new
//!    label) never shifts the draws of existing components, so unrelated
//!    regression baselines survive refactors.
//!
//! The generator is a hand-rolled xoshiro256\*\* (public domain algorithm by
//! Blackman & Vigna) so the whole crate is **std-only**: the simulation has
//! no external dependencies and builds in hermetic/offline environments.
//! The campaign-orchestration layer relies on this — per-task streams are
//! derived from `(experiment id, seed)` alone, so results are bitwise
//! identical regardless of worker count or scheduling order.

/// FNV-1a 64-bit hash; tiny, stable, good enough for seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer; decorrelates nearby seed values.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** state, expanded from a 64-bit seed via SplitMix64 so that
/// no state word is ever all-zero.
#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *w = splitmix(z);
        }
        Xoshiro256 { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic RNG tied to a root seed, able to fork labelled substreams.
///
/// ```
/// use mmwave_sim::rng::SimRng;
///
/// let mut a = SimRng::root(42).stream("fading");
/// let mut b = SimRng::root(42).stream("fading");
/// assert_eq!(a.next_u64(), b.next_u64());            // same label, same draws
/// let mut c = SimRng::root(42).stream("frame-errors");
/// assert_ne!(a.next_u64(), c.next_u64());            // different label, independent
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    seed: u64,
    inner: Xoshiro256,
}

impl SimRng {
    /// Create the root stream for a campaign.
    pub fn root(seed: u64) -> SimRng {
        SimRng {
            seed,
            inner: Xoshiro256::seed_from_u64(splitmix(seed)),
        }
    }

    /// Fork an independent substream identified by `label`.
    pub fn stream(&self, label: &str) -> SimRng {
        let derived = splitmix(self.seed ^ fnv1a(label.as_bytes()));
        SimRng {
            seed: derived,
            inner: Xoshiro256::seed_from_u64(derived),
        }
    }

    /// Fork an independent substream identified by `label` and an index
    /// (e.g. one stream per node or per run).
    pub fn stream_n(&self, label: &str, n: u64) -> SimRng {
        let derived = splitmix(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix(n));
        SimRng {
            seed: derived,
            inner: Xoshiro256::seed_from_u64(derived),
        }
    }

    /// The derived seed of this stream (for diagnostics).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Next raw 32-bit draw (upper bits of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.inner.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.inner.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard-normal draw (Box–Muller; two uniforms per call, no caching so
    /// draw counts stay easy to reason about).
    pub fn gauss(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1: f64 = self.f64().max(f64::MIN_POSITIVE);
        let u2: f64 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gauss()
    }

    /// Exponentially distributed draw with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Bernoulli draw: true with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform: empty range");
        lo + (hi - lo) * self.f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_identical() {
        let mut a = SimRng::root(7).stream("x");
        let mut b = SimRng::root(7).stream("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_are_independent() {
        let mut a = SimRng::root(7).stream("alpha");
        let mut b = SimRng::root(7).stream("beta");
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_n_indices_are_independent() {
        let root = SimRng::root(99);
        let mut s0 = root.stream_n("node", 0);
        let mut s1 = root.stream_n("node", 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
    }

    #[test]
    fn different_root_seeds_differ() {
        let mut a = SimRng::root(1).stream("x");
        let mut b = SimRng::root(2).stream("x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::root(11).stream("unit");
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v), "f64 out of range: {v}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::root(4).stream("bytes");
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Same stream refilled produces the same bytes.
        let mut r2 = SimRng::root(4).stream("bytes");
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
        assert!(
            buf.iter().any(|&b| b != 0),
            "13 zero bytes is vanishingly unlikely"
        );
    }

    #[test]
    fn gauss_moments() {
        let mut r = SimRng::root(5).stream("gauss");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gauss()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::root(5).stream("exp");
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::root(1).stream("chance");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::root(1).stream("uni");
        for _ in 0..1000 {
            let v = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }
}
