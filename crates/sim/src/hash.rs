//! Deterministic fast hashing for simulation-internal maps.
//!
//! The engine's hot maps (radiometric gain entries, fading processes) are
//! keyed by small tuples of device indices and pattern ids, and are probed
//! on every frame. `std`'s default SipHash is keyed per-process for HashDoS
//! resistance — protection these internal, attacker-free maps don't need,
//! at a cost that dominates a warm lookup. [`FastHasher`] is an unkeyed
//! multiply-xor word hasher (the folded-multiply construction used by
//! rustc's own internal maps): a few cycles per word, and deterministic
//! across processes, which also removes a source of run-to-run variation
//! in any future debug dump that iterates one of these maps.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` on [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` on [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// Unkeyed multiply-xor hasher for small integer-tuple keys.
#[derive(Default)]
pub struct FastHasher(u64);

/// Odd multiplier with a balanced bit pattern (high-entropy constant from
/// the splitmix64 increment); multiplication spreads low-entropy index
/// keys across the high bits, which `HashMap` uses to derive the bucket.
const M: u64 = 0x9e37_79b9_7f4a_7c15;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(M);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: the multiply alone leaves the low bits weak,
        // and SwissTable's control bytes come from the hash's extremes.
        let h = self.0;
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_maps() {
        let mut a: FastMap<(usize, usize, u32, u32), f64> = FastMap::default();
        let mut b: FastMap<(usize, usize, u32, u32), f64> = FastMap::default();
        for i in 0..100usize {
            a.insert((i, i + 1, i as u32, 0), i as f64);
            b.insert((i, i + 1, i as u32, 0), i as f64);
        }
        assert_eq!(a, b);
        assert_eq!(a.get(&(7, 8, 7, 0)), Some(&7.0));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Degenerate spreading would collapse sequential small keys into
        // few buckets; sanity-check the hash values differ widely.
        let mut seen = HashSet::new();
        for i in 0..1000u64 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            seen.insert(h.finish() >> 48);
        }
        // 1000 keys over 65536 top-16-bit values: a healthy spread keeps
        // most distinct.
        assert!(
            seen.len() > 900,
            "only {} distinct top-16 slices",
            seen.len()
        );
    }

    #[test]
    fn tuple_keys_hash_stably() {
        let mut m: FastMap<(usize, usize), &str> = FastMap::default();
        m.insert((0, 1), "pair");
        assert_eq!(m.get(&(0, 1)), Some(&"pair"));
        assert_eq!(m.get(&(1, 0)), None);
    }
}
