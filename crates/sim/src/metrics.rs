//! Engine instrumentation counters.
//!
//! Two layers:
//!
//! * **Per-engine**: every [`crate::engine::Engine`] exposes
//!   [`crate::engine::Engine::metrics`], computed from its own queue's
//!   counters — events popped, events cancelled, peak queue depth.
//! * **Per-thread accumulation** ([`reset`] / [`snapshot`]): experiments
//!   construct engines and queues internally and out of reach of the
//!   caller, so [`crate::queue::EventQueue`] streams every counter update
//!   into a thread-local accumulator (this also covers consumers like the
//!   MAC simulator that drive an `EventQueue` directly without an engine).
//!   A campaign worker resets the accumulator before a run and snapshots
//!   it after, capturing the aggregate scheduler activity of *all* queues
//!   the run created — without threading a handle through sixteen
//!   experiment modules.
//!
//! The accumulator is thread-local, not global, so concurrent campaign
//! workers never observe each other's counters: the numbers a task reports
//! depend only on that task, which keeps campaign artifacts bitwise
//! deterministic under any worker count.

use std::cell::Cell;

/// Scheduler activity counters for one run (one engine or one accumulated
/// task, depending on where they were read).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Events popped and executed.
    pub events_popped: u64,
    /// Events cancelled while still pending.
    pub events_cancelled: u64,
    /// Highest number of simultaneously pending events.
    pub peak_queue_depth: u64,
}

thread_local! {
    static POPPED: Cell<u64> = const { Cell::new(0) };
    static CANCELLED: Cell<u64> = const { Cell::new(0) };
    static PEAK_DEPTH: Cell<u64> = const { Cell::new(0) };
}

/// Zero this thread's accumulator (call before a measured run).
pub fn reset() {
    POPPED.with(|c| c.set(0));
    CANCELLED.with(|c| c.set(0));
    PEAK_DEPTH.with(|c| c.set(0));
}

/// Read this thread's accumulated counters (call after a measured run).
pub fn snapshot() -> EngineCounters {
    EngineCounters {
        events_popped: POPPED.with(Cell::get),
        events_cancelled: CANCELLED.with(Cell::get),
        peak_queue_depth: PEAK_DEPTH.with(Cell::get),
    }
}

/// Fold previously captured counters into this thread's accumulator —
/// additive for the event counts, watermark-max for the queue depth.
///
/// For when a computation's *result* is cached and reused: capture the
/// counter delta while computing, store it with the cached value, and
/// merge it on every cache hit. Each consumer then reports the same
/// counters whether it filled the cache or read it, keeping aggregate
/// metrics independent of scheduling order.
pub fn merge(c: EngineCounters) {
    POPPED.with(|p| p.set(p.get() + c.events_popped));
    CANCELLED.with(|p| p.set(p.get() + c.events_cancelled));
    PEAK_DEPTH.with(|p| p.set(p.get().max(c.peak_queue_depth)));
}

pub(crate) fn record_pop() {
    POPPED.with(|c| c.set(c.get() + 1));
}

pub(crate) fn record_cancel() {
    CANCELLED.with(|c| c.set(c.get() + 1));
}

pub(crate) fn record_depth(depth: usize) {
    PEAK_DEPTH.with(|c| c.set(c.get().max(depth as u64)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_resets_and_counts() {
        reset();
        assert_eq!(snapshot(), EngineCounters::default());
        record_pop();
        record_pop();
        record_cancel();
        record_depth(3);
        record_depth(1);
        let s = snapshot();
        assert_eq!(s.events_popped, 2);
        assert_eq!(s.events_cancelled, 1);
        assert_eq!(s.peak_queue_depth, 3);
        reset();
        assert_eq!(snapshot(), EngineCounters::default());
    }
}
