//! Engine instrumentation counters.
//!
//! [`EngineCounters`] is the plain value type campaign artifacts carry.
//! Accumulation happens on an explicit [`crate::ctx::SimCtx`]: every
//! [`crate::queue::EventQueue`] streams its counter updates into the
//! context it was built with, and downstream caches (link gain, codebook)
//! record through the same context. A campaign worker builds one fresh
//! context per task and reads [`crate::ctx::SimCtx::counters`] after the
//! run — the numbers a task reports depend only on that task, by
//! construction, which keeps campaign artifacts bitwise deterministic
//! under any worker count or interleaving.
//!
//! (The previous design accumulated into a `thread_local!` block that the
//! runner had to reset per task; it was retired in favour of the explicit
//! context — see DESIGN.md, "Explicit simulation context".)

/// Scheduler activity counters for one run (one engine or one accumulated
/// task, depending on where they were read).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Events popped and executed.
    pub events_popped: u64,
    /// Events cancelled while still pending.
    pub events_cancelled: u64,
    /// Highest number of simultaneously pending events.
    pub peak_queue_depth: u64,
    /// Radiometric link-gain cache lookups answered from a memoized entry.
    pub link_gain_hits: u64,
    /// Link-gain lookups that had to recompute (cold or stale entry).
    pub link_gain_misses: u64,
    /// Link-gain cache invalidation events (device moved/rotated or a
    /// global flush).
    pub link_gain_invalidations: u64,
    /// Scenario world mutations applied (blocker moves, device moves,
    /// interferer toggles, fault-window installs).
    pub scenario_mutations: u64,
    /// Frames forced to fail by an injected fault window.
    pub faults_injected: u64,
    /// Codebook requests answered from the memoized per-array cache.
    pub codebook_hits: u64,
    /// Codebook requests that had to synthesize all sectors.
    pub codebook_misses: u64,
    /// Codebook requests resolved from a campaign-wide prebuilt pool
    /// instead of a per-context cold synthesis.
    pub codebook_prebuilt_hits: u64,
    /// Congestion-control measurement reports folded into an algorithm.
    pub cc_reports_folded: u64,
    /// Congestion-control patterns that changed the datapath state
    /// (installed cwnd or pacing rate differed from the previous one).
    pub cc_patterns_installed: u64,
    /// Distinct transport loss epochs (fast-retransmit entries plus first
    /// RTOs; backed-off retransmit timers within one outage count once).
    pub cc_loss_epochs: u64,
    /// Device pairs the spatial interference graph pruned (conservative
    /// coupling bound below the floor, so the full radiometric evaluation
    /// was skippable; audit mode records the same count while computing).
    pub spatial_pruned_pairs: u64,
    /// Wall mutations whose cache invalidation was scoped to the opaque
    /// zones the wall touches instead of flushing every pair.
    pub spatial_zone_invalidations: u64,
}
