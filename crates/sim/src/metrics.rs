//! Engine instrumentation counters.
//!
//! [`EngineCounters`] is the plain value type campaign artifacts carry.
//! Accumulation happens on an explicit [`crate::ctx::SimCtx`]: every
//! [`crate::queue::EventQueue`] streams its counter updates into the
//! context it was built with, and downstream caches (link gain, codebook)
//! record through the same context. A campaign worker builds one fresh
//! context per task and reads [`crate::ctx::SimCtx::counters`] after the
//! run — the numbers a task reports depend only on that task, by
//! construction, which keeps campaign artifacts bitwise deterministic
//! under any worker count or interleaving.
//!
//! (The previous design accumulated into a `thread_local!` block that the
//! runner had to reset per task; it was retired in favour of the explicit
//! context — see DESIGN.md, "Explicit simulation context".)

/// Scheduler activity counters for one run (one engine or one accumulated
/// task, depending on where they were read).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Events popped and executed.
    pub events_popped: u64,
    /// Events cancelled while still pending.
    pub events_cancelled: u64,
    /// Highest number of simultaneously pending events.
    pub peak_queue_depth: u64,
    /// Radiometric link-gain cache lookups answered from a memoized entry.
    pub link_gain_hits: u64,
    /// Link-gain lookups that had to recompute (cold or stale entry).
    pub link_gain_misses: u64,
    /// Link-gain cache invalidation events (device moved/rotated or a
    /// global flush).
    pub link_gain_invalidations: u64,
    /// Scenario world mutations applied (blocker moves, device moves,
    /// interferer toggles, fault-window installs).
    pub scenario_mutations: u64,
    /// Frames forced to fail by an injected fault window.
    pub faults_injected: u64,
    /// Codebook requests answered from the memoized per-array cache.
    pub codebook_hits: u64,
    /// Codebook requests that had to synthesize all sectors.
    pub codebook_misses: u64,
    /// Codebook requests resolved from a campaign-wide prebuilt pool
    /// instead of a per-context cold synthesis.
    pub codebook_prebuilt_hits: u64,
    /// Congestion-control measurement reports folded into an algorithm.
    pub cc_reports_folded: u64,
    /// Congestion-control patterns that changed the datapath state
    /// (installed cwnd or pacing rate differed from the previous one).
    pub cc_patterns_installed: u64,
    /// Distinct transport loss epochs (fast-retransmit entries plus first
    /// RTOs; backed-off retransmit timers within one outage count once).
    pub cc_loss_epochs: u64,
    /// Device pairs the spatial interference graph pruned (conservative
    /// coupling bound below the floor, so the full radiometric evaluation
    /// was skippable; audit mode records the same count while computing).
    pub spatial_pruned_pairs: u64,
    /// Wall mutations whose cache invalidation was scoped to the opaque
    /// zones the wall touches instead of flushing every pair.
    pub spatial_zone_invalidations: u64,
}

impl EngineCounters {
    /// Every counter's stable field name, in artifact/schema order. The
    /// campaign artifact codec and the worker wire protocol both iterate
    /// this table instead of hand-listing fields, so adding a counter is
    /// one struct field plus one entry here — encode, decode and
    /// cross-process marshalling pick it up in lockstep.
    pub const FIELDS: [&'static str; 16] = [
        "events_popped",
        "events_cancelled",
        "peak_queue_depth",
        "link_gain_hits",
        "link_gain_misses",
        "link_gain_invalidations",
        "scenario_mutations",
        "faults_injected",
        "codebook_hits",
        "codebook_misses",
        "codebook_prebuilt_hits",
        "cc_reports_folded",
        "cc_patterns_installed",
        "cc_loss_epochs",
        "spatial_pruned_pairs",
        "spatial_zone_invalidations",
    ];

    /// Read a counter by its [`Self::FIELDS`] name.
    pub fn get(&self, field: &str) -> Option<u64> {
        Some(match field {
            "events_popped" => self.events_popped,
            "events_cancelled" => self.events_cancelled,
            "peak_queue_depth" => self.peak_queue_depth,
            "link_gain_hits" => self.link_gain_hits,
            "link_gain_misses" => self.link_gain_misses,
            "link_gain_invalidations" => self.link_gain_invalidations,
            "scenario_mutations" => self.scenario_mutations,
            "faults_injected" => self.faults_injected,
            "codebook_hits" => self.codebook_hits,
            "codebook_misses" => self.codebook_misses,
            "codebook_prebuilt_hits" => self.codebook_prebuilt_hits,
            "cc_reports_folded" => self.cc_reports_folded,
            "cc_patterns_installed" => self.cc_patterns_installed,
            "cc_loss_epochs" => self.cc_loss_epochs,
            "spatial_pruned_pairs" => self.spatial_pruned_pairs,
            "spatial_zone_invalidations" => self.spatial_zone_invalidations,
            _ => return None,
        })
    }

    /// Write a counter by its [`Self::FIELDS`] name. Returns false (and
    /// changes nothing) for an unknown name.
    pub fn set(&mut self, field: &str, value: u64) -> bool {
        let slot = match field {
            "events_popped" => &mut self.events_popped,
            "events_cancelled" => &mut self.events_cancelled,
            "peak_queue_depth" => &mut self.peak_queue_depth,
            "link_gain_hits" => &mut self.link_gain_hits,
            "link_gain_misses" => &mut self.link_gain_misses,
            "link_gain_invalidations" => &mut self.link_gain_invalidations,
            "scenario_mutations" => &mut self.scenario_mutations,
            "faults_injected" => &mut self.faults_injected,
            "codebook_hits" => &mut self.codebook_hits,
            "codebook_misses" => &mut self.codebook_misses,
            "codebook_prebuilt_hits" => &mut self.codebook_prebuilt_hits,
            "cc_reports_folded" => &mut self.cc_reports_folded,
            "cc_patterns_installed" => &mut self.cc_patterns_installed,
            "cc_loss_epochs" => &mut self.cc_loss_epochs,
            "spatial_pruned_pairs" => &mut self.spatial_pruned_pairs,
            "spatial_zone_invalidations" => &mut self.spatial_zone_invalidations,
            _ => return false,
        };
        *slot = value;
        true
    }

    /// `(name, value)` pairs in [`Self::FIELDS`] order.
    pub fn fields(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Self::FIELDS
            .iter()
            .map(|f| (*f, self.get(f).expect("FIELDS names are valid")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_table_covers_every_counter_exactly_once() {
        // A counter reachable by name must round-trip through get/set, and
        // setting every field to a distinct value must make every field
        // read back distinct (catches a copy-pasted match arm pointing two
        // names at one slot).
        let mut c = EngineCounters::default();
        for (i, f) in EngineCounters::FIELDS.iter().enumerate() {
            assert!(c.set(f, (i + 1) as u64), "unknown field {f}");
        }
        let mut seen: Vec<u64> = c.fields().map(|(_, v)| v).collect();
        assert_eq!(seen.len(), EngineCounters::FIELDS.len());
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            EngineCounters::FIELDS.len(),
            "two field names alias the same slot"
        );
        assert_eq!(c.get("events_popped"), Some(1));
        assert_eq!(c.get("nonexistent"), None);
        assert!(!c.set("nonexistent", 9));
    }
}
