//! Engine instrumentation counters.
//!
//! Two layers:
//!
//! * **Per-engine**: every [`crate::engine::Engine`] exposes
//!   [`crate::engine::Engine::metrics`], computed from its own queue's
//!   counters — events popped, events cancelled, peak queue depth.
//! * **Per-thread accumulation** ([`reset`] / [`snapshot`]): experiments
//!   construct engines and queues internally and out of reach of the
//!   caller, so [`crate::queue::EventQueue`] streams every counter update
//!   into a thread-local accumulator (this also covers consumers like the
//!   MAC simulator that drive an `EventQueue` directly without an engine).
//!   A campaign worker resets the accumulator before a run and snapshots
//!   it after, capturing the aggregate scheduler activity of *all* queues
//!   the run created — without threading a handle through sixteen
//!   experiment modules.
//!
//! The accumulator is thread-local, not global, so concurrent campaign
//! workers never observe each other's counters: the numbers a task reports
//! depend only on that task, which keeps campaign artifacts bitwise
//! deterministic under any worker count.

use std::cell::Cell;

/// Scheduler activity counters for one run (one engine or one accumulated
/// task, depending on where they were read).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Events popped and executed.
    pub events_popped: u64,
    /// Events cancelled while still pending.
    pub events_cancelled: u64,
    /// Highest number of simultaneously pending events.
    pub peak_queue_depth: u64,
    /// Radiometric link-gain cache lookups answered from a memoized entry.
    pub link_gain_hits: u64,
    /// Link-gain lookups that had to recompute (cold or stale entry).
    pub link_gain_misses: u64,
    /// Link-gain cache invalidation events (device moved/rotated or a
    /// global flush).
    pub link_gain_invalidations: u64,
    /// Scenario world mutations applied (blocker moves, device moves,
    /// interferer toggles, fault-window installs).
    pub scenario_mutations: u64,
    /// Frames forced to fail by an injected fault window.
    pub faults_injected: u64,
    /// Codebook requests answered from the memoized per-array cache.
    pub codebook_hits: u64,
    /// Codebook requests that had to synthesize all sectors.
    pub codebook_misses: u64,
}

thread_local! {
    static POPPED: Cell<u64> = const { Cell::new(0) };
    static CANCELLED: Cell<u64> = const { Cell::new(0) };
    static PEAK_DEPTH: Cell<u64> = const { Cell::new(0) };
    static GAIN_HITS: Cell<u64> = const { Cell::new(0) };
    static GAIN_MISSES: Cell<u64> = const { Cell::new(0) };
    static GAIN_INVALIDATIONS: Cell<u64> = const { Cell::new(0) };
    static SCENARIO_MUTATIONS: Cell<u64> = const { Cell::new(0) };
    static FAULTS_INJECTED: Cell<u64> = const { Cell::new(0) };
    static CODEBOOK_HITS: Cell<u64> = const { Cell::new(0) };
    static CODEBOOK_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Zero this thread's accumulator (call before a measured run).
pub fn reset() {
    POPPED.with(|c| c.set(0));
    CANCELLED.with(|c| c.set(0));
    PEAK_DEPTH.with(|c| c.set(0));
    GAIN_HITS.with(|c| c.set(0));
    GAIN_MISSES.with(|c| c.set(0));
    GAIN_INVALIDATIONS.with(|c| c.set(0));
    SCENARIO_MUTATIONS.with(|c| c.set(0));
    FAULTS_INJECTED.with(|c| c.set(0));
    CODEBOOK_HITS.with(|c| c.set(0));
    CODEBOOK_MISSES.with(|c| c.set(0));
}

/// Read this thread's accumulated counters (call after a measured run).
pub fn snapshot() -> EngineCounters {
    EngineCounters {
        events_popped: POPPED.with(Cell::get),
        events_cancelled: CANCELLED.with(Cell::get),
        peak_queue_depth: PEAK_DEPTH.with(Cell::get),
        link_gain_hits: GAIN_HITS.with(Cell::get),
        link_gain_misses: GAIN_MISSES.with(Cell::get),
        link_gain_invalidations: GAIN_INVALIDATIONS.with(Cell::get),
        scenario_mutations: SCENARIO_MUTATIONS.with(Cell::get),
        faults_injected: FAULTS_INJECTED.with(Cell::get),
        codebook_hits: CODEBOOK_HITS.with(Cell::get),
        codebook_misses: CODEBOOK_MISSES.with(Cell::get),
    }
}

/// Fold previously captured counters into this thread's accumulator —
/// additive for the event counts, watermark-max for the queue depth.
///
/// For when a computation's *result* is cached and reused: capture the
/// counter delta while computing, store it with the cached value, and
/// merge it on every cache hit. Each consumer then reports the same
/// counters whether it filled the cache or read it, keeping aggregate
/// metrics independent of scheduling order.
pub fn merge(c: EngineCounters) {
    POPPED.with(|p| p.set(p.get() + c.events_popped));
    CANCELLED.with(|p| p.set(p.get() + c.events_cancelled));
    PEAK_DEPTH.with(|p| p.set(p.get().max(c.peak_queue_depth)));
    GAIN_HITS.with(|p| p.set(p.get() + c.link_gain_hits));
    GAIN_MISSES.with(|p| p.set(p.get() + c.link_gain_misses));
    GAIN_INVALIDATIONS.with(|p| p.set(p.get() + c.link_gain_invalidations));
    SCENARIO_MUTATIONS.with(|p| p.set(p.get() + c.scenario_mutations));
    FAULTS_INJECTED.with(|p| p.set(p.get() + c.faults_injected));
    CODEBOOK_HITS.with(|p| p.set(p.get() + c.codebook_hits));
    CODEBOOK_MISSES.with(|p| p.set(p.get() + c.codebook_misses));
}

pub(crate) fn record_pop() {
    POPPED.with(|c| c.set(c.get() + 1));
}

pub(crate) fn record_cancel() {
    CANCELLED.with(|c| c.set(c.get() + 1));
}

pub(crate) fn record_depth(depth: usize) {
    PEAK_DEPTH.with(|c| c.set(c.get().max(depth as u64)));
}

/// Record a link-gain cache hit. `pub` (unlike the queue hooks) because the
/// cache lives downstream in `mmwave-channel`.
pub fn record_link_gain_hit() {
    GAIN_HITS.with(|c| c.set(c.get() + 1));
}

/// Record a link-gain cache miss (entry computed or recomputed).
pub fn record_link_gain_miss() {
    GAIN_MISSES.with(|c| c.set(c.get() + 1));
}

/// Record a link-gain cache invalidation event.
pub fn record_link_gain_invalidation() {
    GAIN_INVALIDATIONS.with(|c| c.set(c.get() + 1));
}

/// Record one applied scenario world mutation (the MAC simulator lives
/// downstream in `mmwave-mac`, hence `pub`).
pub fn record_scenario_mutation() {
    SCENARIO_MUTATIONS.with(|c| c.set(c.get() + 1));
}

/// Record one frame forced to fail by an injected fault window.
pub fn record_fault_injected() {
    FAULTS_INJECTED.with(|c| c.set(c.get() + 1));
}

/// Record a codebook-cache hit (the synthesizer lives downstream in
/// `mmwave-phy`, hence `pub`).
pub fn record_codebook_hit() {
    CODEBOOK_HITS.with(|c| c.set(c.get() + 1));
}

/// Record a codebook-cache miss (all sectors synthesized).
pub fn record_codebook_miss() {
    CODEBOOK_MISSES.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_resets_and_counts() {
        reset();
        assert_eq!(snapshot(), EngineCounters::default());
        record_pop();
        record_pop();
        record_cancel();
        record_depth(3);
        record_depth(1);
        record_link_gain_hit();
        record_link_gain_hit();
        record_link_gain_hit();
        record_link_gain_miss();
        record_link_gain_invalidation();
        record_scenario_mutation();
        record_scenario_mutation();
        record_fault_injected();
        record_codebook_hit();
        record_codebook_hit();
        record_codebook_miss();
        let s = snapshot();
        assert_eq!(s.events_popped, 2);
        assert_eq!(s.events_cancelled, 1);
        assert_eq!(s.peak_queue_depth, 3);
        assert_eq!(s.link_gain_hits, 3);
        assert_eq!(s.link_gain_misses, 1);
        assert_eq!(s.link_gain_invalidations, 1);
        assert_eq!(s.scenario_mutations, 2);
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.codebook_hits, 2);
        assert_eq!(s.codebook_misses, 1);
        reset();
        assert_eq!(snapshot(), EngineCounters::default());
    }

    #[test]
    fn merge_is_additive_with_depth_watermark() {
        reset();
        record_depth(5);
        merge(EngineCounters {
            events_popped: 10,
            events_cancelled: 2,
            peak_queue_depth: 3,
            link_gain_hits: 7,
            link_gain_misses: 4,
            link_gain_invalidations: 1,
            scenario_mutations: 6,
            faults_injected: 2,
            codebook_hits: 9,
            codebook_misses: 3,
        });
        let s = snapshot();
        assert_eq!(s.events_popped, 10);
        assert_eq!(s.peak_queue_depth, 5, "depth merges as a watermark");
        assert_eq!(s.link_gain_hits, 7);
        assert_eq!(s.link_gain_misses, 4);
        assert_eq!(s.link_gain_invalidations, 1);
        assert_eq!(s.scenario_mutations, 6);
        assert_eq!(s.faults_injected, 2);
        assert_eq!(s.codebook_hits, 9);
        assert_eq!(s.codebook_misses, 3);
        reset();
    }
}
