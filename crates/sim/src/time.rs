//! Simulated time in integer nanoseconds.
//!
//! All protocol timing in this workspace — SIFS gaps, TXOP limits, beacon
//! intervals, oscilloscope sample clocks — is expressed with these two types.
//! `u64` nanoseconds cover ~584 years of simulated time, so the paper's
//! longest campaign (the 80-minute amplitude/rate trace of Figure 14) fits
//! with nine orders of magnitude to spare.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from fractional seconds (rounded to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "negative or non-finite time");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Time since the epoch in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Time since the epoch in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Time since the epoch in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`. Panics in debug builds if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "SimTime::since: earlier is later");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The next instant at or after `self` that is a whole multiple of
    /// `period` (used for aligning periodic frames like beacons).
    pub fn align_up(self, period: SimDuration) -> SimTime {
        assert!(period.0 > 0, "align_up: zero period");
        let rem = self.0 % period.0;
        if rem == 0 {
            self
        } else {
            SimTime(self.0 + (period.0 - rem))
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from fractional seconds (rounded to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "negative or non-finite span");
        SimDuration((s * 1e9).round() as u64)
    }
    /// Construct from fractional microseconds (rounded to the nearest ns).
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0 && us.is_finite());
        SimDuration((us * 1e3).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Span in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Time needed to serialize `bits` at `rate_bps` bits per second,
    /// rounded up to a whole nanosecond (a frame never finishes early).
    pub fn for_bits(bits: u64, rate_bps: u64) -> SimDuration {
        assert!(rate_bps > 0, "for_bits: zero rate");
        // ceil(bits * 1e9 / rate) without overflow for realistic inputs:
        // bits < 2^40, 1e9 < 2^30 -> product < 2^70. Use u128.
        let ns = ((bits as u128) * 1_000_000_000u128).div_ceil(rate_bps as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// Number of bits that fit in this span at `rate_bps` (rounded down).
    pub fn bits_at(self, rate_bps: u64) -> u64 {
        ((self.0 as u128) * (rate_bps as u128) / 1_000_000_000u128).min(u64::MAX as u128) as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}
impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}
impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}
impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}
impl Mul<u32> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u32) -> SimDuration {
        SimDuration(self.0 * rhs as u64)
    }
}
impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        debug_assert!(rhs >= 0.0 && rhs.is_finite());
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}
impl Div<u32> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u32) -> SimDuration {
        SimDuration(self.0 / rhs as u64)
    }
}
impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `rhs` spans fit in `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}
impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}
impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns == 0 {
        write!(f, "0s")
    } else if ns < 1_000 {
        write!(f, "{ns}ns")
    } else if ns < 1_000_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ns(self.0, f)
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}
impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}
impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(5);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_is_zero_for_future() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn for_bits_rounds_up() {
        // 1 bit at 1 Gbps = exactly 1 ns.
        assert_eq!(
            SimDuration::for_bits(1, 1_000_000_000),
            SimDuration::from_nanos(1)
        );
        // 1 bit at 3 Gbps = 1/3 ns -> rounds up to 1 ns.
        assert_eq!(
            SimDuration::for_bits(1, 3_000_000_000),
            SimDuration::from_nanos(1)
        );
        // 12000 bits (1500 B) at 1.54 Gbps ≈ 7.792 µs.
        let d = SimDuration::for_bits(12_000, 1_540_000_000);
        assert!((d.as_micros_f64() - 7.7922).abs() < 0.01, "{d}");
    }

    #[test]
    fn bits_at_inverts_for_bits() {
        let d = SimDuration::for_bits(123_456, 2_310_000_000);
        let bits = d.bits_at(2_310_000_000);
        // Rounding up the duration can only gain bits, never lose them.
        assert!((123_456..=123_456 + 3).contains(&bits), "{bits}");
    }

    #[test]
    fn align_up() {
        let p = SimDuration::from_micros(100);
        assert_eq!(SimTime::from_nanos(0).align_up(p), SimTime::from_nanos(0));
        assert_eq!(
            SimTime::from_nanos(1).align_up(p),
            SimTime::from_micros(100)
        );
        assert_eq!(
            SimTime::from_micros(100).align_up(p),
            SimTime::from_micros(100)
        );
        assert_eq!(
            SimTime::from_micros(101).align_up(p),
            SimTime::from_micros(200)
        );
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn duration_div_counts_periods() {
        let d = SimDuration::from_millis(1);
        let p = SimDuration::from_micros(300);
        assert_eq!(d / p, 3);
        assert_eq!(d % p, SimDuration::from_micros(100));
    }
}
