//! Phased-array pattern synthesis.
//!
//! A [`PhasedArray`] combines the array geometry, per-device manufacturing
//! errors and the coarse phase shifters of [`crate::antenna`] into gain
//! patterns. The important property — verified by `tests/calibration.rs` —
//! is that the *measured* imperfections of the paper's devices emerge here
//! naturally:
//!
//! * steering near boresight: HPBW < 20°, strongest side lobe −4…−6 dB;
//! * steering 70° off boresight: side lobes up to ≈ −1 dB and ≈ 10 dB less
//!   absolute gain (element roll-off + quantization lobes).

use crate::antenna::ArrayConfig;
use crate::fastmath;
use crate::pattern::AntennaPattern;
use mmwave_geom::Angle;
use mmwave_sim::rng::SimRng;
use std::f64::consts::TAU;
use std::sync::OnceLock;

/// Minimal complex number for field summation (avoids a num dependency).
/// `add`/`mul` are deliberately inherent methods named like the operator
/// traits — implementing the traits themselves buys nothing here.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

#[allow(clippy::should_implement_trait)]
impl Complex {
    /// Construct from rectangular parts.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }
    /// `mag · e^{jφ}`.
    pub fn polar(mag: f64, phase: f64) -> Complex {
        Complex {
            re: mag * phase.cos(),
            im: mag * phase.sin(),
        }
    }
    /// Magnitude. Routed through [`crate::fastmath`] — bit-identical to
    /// `self.re.hypot(self.im)` on every input, but inlinable.
    pub fn abs(self) -> f64 {
        fastmath::hypot(self.re, self.im)
    }
    /// Complex multiplication.
    pub fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
    /// Complex addition.
    pub fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

/// Exact identity of an array's frozen configuration: every
/// [`ArrayConfig`] field that influences synthesized samples, with f64s
/// captured bit-exactly via `to_bits`. Two arrays with equal fingerprints
/// draw the same errors and synthesize bit-identical patterns for the same
/// weights — the soundness condition of the codebook cache in
/// [`crate::codebook`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArrayFingerprint([u64; 11]);

/// Precomputed per-array synthesis tables over the default angle grid,
/// stored structure-of-arrays so the synthesis loops autovectorize.
///
/// For grid sample `k` (azimuth `θ_k = k·2π/n`) and column `i`:
/// `steer_re[i·n + k] + j·steer_im[i·n + k] = e^{j·TAU·y_i·sin θ_k}` —
/// exactly the phasor the reference path computes per element per angle,
/// stored once. The layout is *column-major* (one contiguous angle run per
/// column) so the per-column accumulation stage streams unit-stride f64
/// slices. `element_db` and `rows_gain_db` are the remaining
/// pure-of-θ/config terms of the sample expression. ~720 × cols × 2 f64s
/// ≈ 90 KiB for 8 columns.
#[derive(Clone, Debug)]
struct SteeringBasis {
    /// Real steering parts, column-major: `columns` runs of `n` samples.
    steer_re: Vec<f64>,
    /// Imaginary steering parts, same layout as `steer_re`.
    steer_im: Vec<f64>,
    /// Element gain (dBi) at each grid azimuth.
    element_db: Vec<f64>,
    /// Constant elevation-stack gain `10·log10(rows)`.
    rows_gain_db: f64,
}

/// Reusable scratch for SoA pattern synthesis: chunk accumulators plus the
/// error-folded weight rows. Once the buffers have grown to an array's
/// size, synthesis through [`PhasedArray::pattern_samples_into`] performs
/// no allocations — keep one per context (the codebook keeps one in its
/// per-`SimCtx` store; benches assert the zero-alloc property).
#[derive(Clone, Debug, Default)]
pub struct SynthScratch {
    /// In-flight field sums (real) for the current angle chunk.
    acc_re: Vec<f64>,
    /// In-flight field sums (imaginary) for the current angle chunk.
    acc_im: Vec<f64>,
    /// Error-folded non-zero weights `(column, re, im)`, rows concatenated.
    folded: Vec<(u32, f64, f64)>,
    /// Per row: end offset into `folded` and the `active` normalizer.
    row_meta: Vec<(usize, f64)>,
}

/// Angle samples per synthesis chunk. Sized so one chunk of every basis
/// column plus the accumulators stays L1-resident while all sectors of a
/// batched synthesis re-read it (8 columns: 120·8·2·8 B ≈ 15 KiB).
const SYNTH_CHUNK: usize = 120;

/// A concrete phased array instance with frozen manufacturing errors.
#[derive(Clone, Debug)]
pub struct PhasedArray {
    config: ArrayConfig,
    /// Element azimuth-axis positions in wavelengths (includes jitter).
    positions_wl: Vec<f64>,
    /// Frozen per-element complex error factors (amplitude × phase error).
    errors: Vec<Complex>,
    /// Steering basis, built on first synthesis (cloned arrays re-share the
    /// already-built tables; a clone before first use rebuilds lazily).
    basis: OnceLock<SteeringBasis>,
}

impl PhasedArray {
    /// Instantiate an array; errors and placement jitter are drawn
    /// deterministically from `config.error_seed`.
    pub fn new(config: ArrayConfig) -> PhasedArray {
        let mut rng = SimRng::root(config.error_seed).stream("array-errors");
        let cols = config.columns;
        let center = (cols as f64 - 1.0) / 2.0;
        let positions_wl = (0..cols)
            .map(|i| {
                let jitter = if config.placement_jitter_wl > 0.0 {
                    rng.normal(0.0, config.placement_jitter_wl)
                } else {
                    0.0
                };
                (i as f64 - center) * config.spacing_wl + jitter
            })
            .collect();
        let errors = (0..cols)
            .map(|_| {
                let amp_db = rng.normal(0.0, config.amp_error_db);
                let phase = rng.normal(0.0, config.phase_error_rad);
                Complex::polar(10f64.powf(amp_db / 20.0), phase)
            })
            .collect();
        PhasedArray {
            config,
            positions_wl,
            errors,
            basis: OnceLock::new(),
        }
    }

    /// The array's configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// Element azimuth-axis positions in wavelengths (includes jitter).
    pub fn positions_wl(&self) -> &[f64] {
        &self.positions_wl
    }

    /// This array's exact configuration identity (see [`ArrayFingerprint`]).
    pub fn fingerprint(&self) -> ArrayFingerprint {
        let c = &self.config;
        ArrayFingerprint([
            c.columns as u64,
            c.rows as u64,
            c.spacing_wl.to_bits(),
            c.element.q.to_bits(),
            c.element.boresight_gain_dbi.to_bits(),
            c.element.back_floor_db.to_bits(),
            c.shifter.bits as u64,
            c.amp_error_db.to_bits(),
            c.phase_error_rad.to_bits(),
            c.error_seed,
            c.placement_jitter_wl.to_bits(),
        ])
    }

    /// The steering basis, built on first use.
    fn basis(&self) -> &SteeringBasis {
        self.basis.get_or_init(|| {
            let n = AntennaPattern::DEFAULT_SAMPLES;
            let cols = self.config.columns;
            let mut steer_re = vec![0.0; n * cols];
            let mut steer_im = vec![0.0; n * cols];
            let mut element_db = Vec::with_capacity(n);
            for k in 0..n {
                // Identical expressions to the reference closure path, so
                // every table entry is the exact f64 it would compute
                // (storage order cannot change a value's bits).
                let theta = Angle::from_radians(TAU * k as f64 / n as f64);
                let s = theta.radians().sin();
                for (i, &y) in self.positions_wl.iter().enumerate() {
                    let ph = Complex::polar(1.0, TAU * y * s);
                    steer_re[i * n + k] = ph.re;
                    steer_im[i * n + k] = ph.im;
                }
                element_db.push(self.config.element.gain_dbi(theta));
            }
            SteeringBasis {
                steer_re,
                steer_im,
                element_db,
                rows_gain_db: 10.0 * (self.config.rows as f64).log10(),
            }
        })
    }

    /// Ideal (pre-quantization) steering phases for local azimuth `steer`.
    fn ideal_phases(&self, steer: Angle) -> Vec<f64> {
        let s = steer.radians().sin();
        self.positions_wl.iter().map(|&y| -TAU * y * s).collect()
    }

    /// Fold each weight row with the frozen element errors into `scratch`:
    /// zero-weight columns are dropped exactly where the reference loop
    /// `continue`s them, preserving the per-sample summation order.
    fn fold_rows(&self, scratch: &mut SynthScratch, rows: &[&[Complex]]) {
        scratch.folded.clear();
        scratch.row_meta.clear();
        for weights in rows {
            assert_eq!(weights.len(), self.config.columns, "weight length mismatch");
            let active: f64 = weights.iter().map(|w| w.abs().powi(2)).sum();
            assert!(active > 0.0, "all elements off");
            for (i, (w, e)) in weights.iter().zip(&self.errors).enumerate() {
                if w.abs() != 0.0 {
                    let we = w.mul(*e);
                    scratch.folded.push((i as u32, we.re, we.im));
                }
            }
            scratch.row_meta.push((scratch.folded.len(), active));
        }
    }

    /// Staged SoA synthesis core: every weight row in `rows` is synthesized
    /// into the matching slice of `outs` (each `DEFAULT_SAMPLES` long).
    ///
    /// The angle grid is walked in [`SYNTH_CHUNK`]-sized chunks; per chunk
    /// and row, stage A accumulates the folded column phasors
    /// (vectorization runs *across* the chunk's independent angle samples,
    /// while each sample still sums its columns in reference order), and
    /// stage B/C converts field sums to dB samples. With more than one row
    /// the basis chunk loaded by the first row is re-read L1-hot by all
    /// others — that is the batched-codebook amortization.
    ///
    /// Bit-identity with [`PhasedArray::pattern_from_weights_reference`]
    /// holds because every per-sample scalar op sequence is unchanged:
    /// `acc ± (w·e)·steer` in column order, `hypot`, square, divide,
    /// `10·log10`, clamp, and the final dB adds — only the iteration
    /// *across* samples and rows is restructured.
    fn synth_rows_into(
        &self,
        scratch: &mut SynthScratch,
        rows: &[&[Complex]],
        outs: &mut [&mut [f64]],
    ) {
        debug_assert_eq!(rows.len(), outs.len());
        self.fold_rows(scratch, rows);
        let basis = self.basis();
        let n = AntennaPattern::DEFAULT_SAMPLES;
        let SynthScratch {
            acc_re,
            acc_im,
            folded,
            row_meta,
        } = scratch;
        acc_re.resize(SYNTH_CHUNK, 0.0);
        acc_im.resize(SYNTH_CHUNK, 0.0);
        let mut start = 0;
        while start < n {
            let len = SYNTH_CHUNK.min(n - start);
            let edb = &basis.element_db[start..start + len];
            let mut row_start = 0;
            for (r, &(row_end, active)) in row_meta.iter().enumerate() {
                let acc_re = &mut acc_re[..len];
                let acc_im = &mut acc_im[..len];
                // Stage A: per-column axpy over the chunk's angle run. The
                // first column stores instead of accumulating (an exact
                // replacement for zero-init + add: `0.0 + t` can only flip
                // the sign of an exact zero, which stage B's `abs` absorbs).
                let mut cols = folded[row_start..row_end].iter();
                match cols.next() {
                    Some(&(i, wre, wim)) => {
                        let col = i as usize * n + start;
                        let cre = &basis.steer_re[col..col + len];
                        let cim = &basis.steer_im[col..col + len];
                        for (((ar, ai), cr), ci) in
                            acc_re.iter_mut().zip(acc_im.iter_mut()).zip(cre).zip(cim)
                        {
                            *ar = wre * cr - wim * ci;
                            *ai = wre * ci + wim * cr;
                        }
                    }
                    None => {
                        acc_re.fill(0.0);
                        acc_im.fill(0.0);
                    }
                }
                for &(i, wre, wim) in cols {
                    let col = i as usize * n + start;
                    let cre = &basis.steer_re[col..col + len];
                    let cim = &basis.steer_im[col..col + len];
                    for (((ar, ai), cr), ci) in
                        acc_re.iter_mut().zip(acc_im.iter_mut()).zip(cre).zip(cim)
                    {
                        *ar += wre * cr - wim * ci;
                        *ai += wre * ci + wim * cr;
                    }
                }
                // Stages B+C fused: field magnitude, normalization so an
                // ideal uniform array peaks at element_gain +
                // 10·log10(columns) (+ rows gain), dB conversion, clamp.
                // `af² → log10 → ·10 → max(−60)` maps an exactly-zero
                // field to −60 just like the reference's `af_power > 0`
                // branch (`10·log10(0) = −inf`, clamped).
                let out = &mut outs[r][start..start + len];
                fastmath::pattern_db_slice(acc_re, acc_im, active, edb, basis.rows_gain_db, out);
                row_start = row_end;
            }
            start += len;
        }
    }

    /// Synthesize the pattern for an arbitrary per-column weight vector
    /// (`weights[i]` applied to column `i`). Columns with zero weight are
    /// switched off. This is the primitive the codebook builds on.
    ///
    /// Runs on the precomputed steering basis — no trig — and is
    /// bit-identical to [`PhasedArray::pattern_from_weights_reference`]:
    /// see [`PhasedArray::synth_rows_into`].
    pub fn pattern_from_weights(&self, weights: &[Complex]) -> AntennaPattern {
        let mut scratch = SynthScratch::default();
        self.pattern_from_weights_with(&mut scratch, weights)
    }

    /// [`PhasedArray::pattern_from_weights`] with caller-provided scratch;
    /// allocates only the returned pattern's sample buffer.
    pub fn pattern_from_weights_with(
        &self,
        scratch: &mut SynthScratch,
        weights: &[Complex],
    ) -> AntennaPattern {
        let mut samples = vec![0.0; AntennaPattern::DEFAULT_SAMPLES];
        self.synth_rows_into(scratch, &[weights], &mut [samples.as_mut_slice()]);
        AntennaPattern::from_samples(samples)
    }

    /// Synthesize into a caller-owned sample buffer: zero allocations in
    /// steady state (once `scratch` and `out` have grown to size).
    pub fn pattern_samples_into(
        &self,
        scratch: &mut SynthScratch,
        weights: &[Complex],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(AntennaPattern::DEFAULT_SAMPLES, 0.0);
        self.synth_rows_into(scratch, &[weights], &mut [out.as_mut_slice()]);
    }

    /// Batched synthesis: one pattern per weight row, in one pass over the
    /// angle grid. All rows share each L1-hot basis chunk, which is what
    /// makes cold codebook synthesis ~linear in rows instead of re-reading
    /// the 90 KiB basis per sector. Bit-identical to calling
    /// [`PhasedArray::pattern_from_weights`] per row.
    pub fn patterns_from_weight_rows(
        &self,
        scratch: &mut SynthScratch,
        rows: &[&[Complex]],
    ) -> Vec<AntennaPattern> {
        let n = AntennaPattern::DEFAULT_SAMPLES;
        let mut outs: Vec<Vec<f64>> = rows.iter().map(|_| vec![0.0; n]).collect();
        let mut views: Vec<&mut [f64]> = outs.iter_mut().map(|v| v.as_mut_slice()).collect();
        self.synth_rows_into(scratch, rows, &mut views);
        outs.into_iter().map(AntennaPattern::from_samples).collect()
    }

    /// Reference synthesis: evaluates the closed-form sample expression per
    /// angle with a fresh `sin`/`cos` per element, exactly as
    /// `pattern_from_weights` did before the steering basis existed. Kept as
    /// the bit-level specification — `tests/basis_equivalence.rs` proves the
    /// basis path reproduces it exactly across all calibrated devices.
    pub fn pattern_from_weights_reference(&self, weights: &[Complex]) -> AntennaPattern {
        assert_eq!(weights.len(), self.config.columns, "weight length mismatch");
        let active: f64 = weights.iter().map(|w| w.abs().powi(2)).sum();
        assert!(active > 0.0, "all elements off");
        let rows_gain_db = 10.0 * (self.config.rows as f64).log10();
        let el = self.config.element;
        let positions = self.positions_wl.clone();
        let errors = self.errors.clone();
        let weights = weights.to_vec();
        AntennaPattern::from_fn(AntennaPattern::DEFAULT_SAMPLES, move |theta| {
            let s = theta.radians().sin();
            let mut field = Complex::default();
            for ((&y, w), e) in positions.iter().zip(&weights).zip(&errors) {
                if w.abs() == 0.0 {
                    continue;
                }
                let steer = Complex::polar(1.0, TAU * y * s);
                field = field.add(w.mul(*e).mul(steer));
            }
            let af_power = field.abs().powi(2) / active;
            let af_db = if af_power > 0.0 {
                10.0 * af_power.log10()
            } else {
                -60.0
            };
            el.gain_dbi(theta) + af_db.max(-60.0) + rows_gain_db
        })
    }

    /// Quantized steering weights towards local azimuth `steer`.
    pub fn steering_weights(&self, steer: Angle) -> Vec<Complex> {
        self.ideal_phases(steer)
            .iter()
            .map(|&p| Complex::polar(1.0, self.config.shifter.quantize(p)))
            .collect()
    }

    /// The directional pattern obtained by steering towards `steer`
    /// (with quantized phases — the realistic pattern).
    pub fn steered_pattern(&self, steer: Angle) -> AntennaPattern {
        self.pattern_from_weights(&self.steering_weights(steer))
    }

    /// The pattern with *ideal* (unquantized) phases — the textbook pattern,
    /// used as the baseline in the phase-resolution ablation.
    pub fn ideal_steered_pattern(&self, steer: Angle) -> AntennaPattern {
        let weights: Vec<Complex> = self
            .ideal_phases(steer)
            .iter()
            .map(|&p| Complex::polar(1.0, p))
            .collect();
        self.pattern_from_weights(&weights)
    }

    /// The weight vector of a quasi-omni entry: only the elements listed in
    /// `active` radiate, with the given (quantized) phases.
    pub fn quasi_omni_weights(&self, active: &[(usize, f64)]) -> Vec<Complex> {
        assert!(!active.is_empty());
        let mut weights = vec![Complex::default(); self.config.columns];
        for &(idx, phase) in active {
            assert!(idx < self.config.columns, "element index out of range");
            weights[idx] = Complex::polar(1.0, self.config.shifter.quantize(phase));
        }
        weights
    }

    /// A quasi-omni pattern: only the elements listed in `active` radiate,
    /// with the given (quantized) phases. Few active elements → wide beam;
    /// their interference produces the characteristic gaps of Fig. 16.
    pub fn quasi_omni_pattern(&self, active: &[(usize, f64)]) -> AntennaPattern {
        self.pattern_from_weights(&self.quasi_omni_weights(active))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::{ArrayConfig, ElementPattern, PhaseShifter};

    /// An idealized array: fine shifters, no errors — matches textbook math.
    /// The element is flat over the front hemisphere but suppresses the
    /// rear, because a ULA's array factor depends only on sin θ and would
    /// otherwise produce an equal mirror lobe behind the array.
    fn ideal_array(columns: usize) -> PhasedArray {
        PhasedArray::new(ArrayConfig {
            columns,
            rows: 1,
            spacing_wl: 0.5,
            element: ElementPattern {
                q: 0.0,
                boresight_gain_dbi: 0.0,
                back_floor_db: -30.0,
            },
            shifter: PhaseShifter::new(8),
            amp_error_db: 0.0,
            phase_error_rad: 0.0,
            error_seed: 0,
            placement_jitter_wl: 0.0,
        })
    }

    #[test]
    fn complex_ops() {
        let a = Complex::polar(2.0, 0.0);
        let b = Complex::polar(3.0, std::f64::consts::FRAC_PI_2);
        let p = a.mul(b);
        assert!((p.abs() - 6.0).abs() < 1e-12);
        assert!((p.re).abs() < 1e-9 && (p.im - 6.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_boresight_gain_is_10logn() {
        let arr = ideal_array(8);
        let p = arr.steered_pattern(Angle::ZERO);
        let peak = p.peak();
        assert!(peak.direction.distance(Angle::ZERO) < 0.02);
        // 10·log10(8) ≈ 9.03 dB over the (isotropic) element.
        assert!((peak.gain_dbi - 9.03).abs() < 0.1, "peak {}", peak.gain_dbi);
    }

    #[test]
    fn ideal_8_element_hpbw() {
        // Textbook ULA: HPBW ≈ 0.886·λ/(N·d) rad ≈ 12.7° for N=8, d=λ/2.
        let arr = ideal_array(8);
        let hpbw = arr.steered_pattern(Angle::ZERO).hpbw().to_degrees();
        assert!((hpbw - 12.7).abs() < 2.0, "hpbw {hpbw}");
    }

    #[test]
    fn ideal_sll_is_minus_13db() {
        // Uniform ULA first side lobe: −13.2 dB (sinc pattern). The azimuth
        // cut of our synthesis must reproduce it within sampling error.
        let arr = ideal_array(8);
        let sll = arr
            .steered_pattern(Angle::ZERO)
            .side_lobe_level_db()
            .expect("side lobes exist");
        assert!((sll + 12.8).abs() < 1.0, "sll {sll}");
    }

    #[test]
    fn steering_moves_the_main_lobe() {
        let arr = ideal_array(8);
        for deg in [-40.0, -15.0, 20.0, 45.0] {
            let p = arr.steered_pattern(Angle::from_degrees(deg));
            let peak = p.peak();
            assert!(
                peak.direction.distance(Angle::from_degrees(deg)) < 0.06,
                "steer {deg}: peak at {}",
                peak.direction
            );
        }
    }

    #[test]
    fn quantization_raises_side_lobes() {
        let mut cfg = ArrayConfig::wigig_2x8(7);
        cfg.amp_error_db = 0.0;
        cfg.phase_error_rad = 0.0;
        let coarse = PhasedArray::new(cfg.clone());
        cfg.shifter = PhaseShifter::new(8);
        let fine = PhasedArray::new(cfg);
        // Average over steering angles where quantization actually bites.
        let mut worse = 0;
        let mut total = 0;
        for deg in [-35.0, -25.0, -17.0, 13.0, 23.0, 37.0] {
            let s = Angle::from_degrees(deg);
            let sll_coarse = coarse
                .steered_pattern(s)
                .side_lobe_level_db()
                .unwrap_or(-60.0);
            let sll_fine = fine
                .steered_pattern(s)
                .side_lobe_level_db()
                .unwrap_or(-60.0);
            total += 1;
            if sll_coarse > sll_fine + 0.5 {
                worse += 1;
            }
        }
        assert!(
            worse * 2 >= total,
            "2-bit shifters should raise SLL ({worse}/{total})"
        );
    }

    #[test]
    fn errors_are_frozen_per_seed() {
        let a = PhasedArray::new(ArrayConfig::wigig_2x8(42));
        let b = PhasedArray::new(ArrayConfig::wigig_2x8(42));
        let c = PhasedArray::new(ArrayConfig::wigig_2x8(43));
        let pa = a.steered_pattern(Angle::ZERO);
        let pb = b.steered_pattern(Angle::ZERO);
        let pc = c.steered_pattern(Angle::ZERO);
        assert_eq!(pa.samples(), pb.samples());
        assert_ne!(pa.samples(), pc.samples());
    }

    #[test]
    fn quasi_omni_is_wider_than_directional() {
        let arr = PhasedArray::new(ArrayConfig::wigig_2x8(1));
        let dir = arr.steered_pattern(Angle::ZERO);
        let qo = arr.quasi_omni_pattern(&[(3, 0.0), (4, 0.8)]);
        assert!(
            qo.hpbw() > dir.hpbw() * 1.5,
            "qo {} dir {}",
            qo.hpbw(),
            dir.hpbw()
        );
        assert!(qo.peak().gain_dbi < dir.peak().gain_dbi);
    }

    #[test]
    #[should_panic(expected = "all elements off")]
    fn all_zero_weights_panics() {
        let arr = ideal_array(4);
        let w = vec![Complex::default(); 4];
        arr.pattern_from_weights(&w);
    }

    #[test]
    fn rows_add_constant_gain() {
        let mut cfg = ArrayConfig::wigig_2x8(5);
        cfg.rows = 1;
        let one_row = PhasedArray::new(cfg.clone()).steered_pattern(Angle::ZERO);
        cfg.rows = 2;
        let two_rows = PhasedArray::new(cfg).steered_pattern(Angle::ZERO);
        let diff = two_rows.peak().gain_dbi - one_row.peak().gain_dbi;
        assert!((diff - 3.01).abs() < 0.05, "row gain {diff}");
    }
}
