//! # mmwave-phy — physical-layer models for consumer 60 GHz devices
//!
//! The paper's central observation is that *cost-effective* millimetre-wave
//! hardware deviates from the textbook pencil-beam picture: quasi-omni
//! discovery patterns have deep gaps, directional patterns carry −4…−6 dB
//! side lobes, and steering towards the boundary of the array's coverage
//! raises side lobes to −1 dB while losing ~10 dB of gain (§4.2). This crate
//! produces those imperfections *from first principles* rather than by
//! drawing them:
//!
//! * [`antenna`] — radiating elements (cos^q patterns) and coarse, quantized
//!   phase shifters.
//! * [`array`] — phased-array factor synthesis with per-element amplitude
//!   and phase errors; this is where the side lobes are born.
//! * [`pattern`] — sampled azimuth gain patterns with lobe analysis
//!   (HPBW, side-lobe level, gap detection).
//! * [`codebook`] — the directional sector codebook and the 32-entry
//!   quasi-omni discovery codebook of the D5000, plus the wide irregular
//!   24-element WiHD patterns.
//! * [`horn`] — the measurement equipment: 25 dBi horn and open waveguide.
//! * [`propagation`] — free-space + oxygen loss, and per-path link budget.
//! * [`mcs`] — the 802.11ad single-carrier MCS table with sensitivities.
//! * [`rate_adapt`] — SNR/loss-driven rate selection (joint with beam
//!   realignment at the MAC layer), including the "never the highest MCS"
//!   cap observed on the real device.
//!
//! ## Conventions
//!
//! Gains are in dBi, powers in dBm, losses in positive dB. Azimuths use
//! [`mmwave_geom::Angle`]; a device's *orientation* maps world azimuths to
//! array-local azimuths, with 0° = array boresight.

pub mod antenna;
pub mod array;
pub mod calib;
pub mod codebook;
pub mod fastmath;
pub mod horn;
pub mod mcs;
pub mod pattern;
pub mod propagation;
pub mod rate_adapt;

pub use antenna::{ArrayConfig, ElementPattern, PhaseShifter};
pub use array::{ArrayFingerprint, Complex, PhasedArray, SynthScratch};
pub use codebook::{Codebook, CodebookKind, CodebookPrebuild, Sector};
pub use horn::{horn_25dbi, open_waveguide};
pub use mcs::{Mcs, McsTable, Modulation};
pub use pattern::{AntennaPattern, Lobe};
pub use propagation::{
    fspl_db, oxygen_loss_db, path_loss_db, LinkBudget, BANDWIDTH_HZ, FREQ_CH2_HZ, FREQ_CH3_HZ,
};
pub use rate_adapt::{RateAdapter, RateAdapterConfig};

/// Convert dB to linear power ratio.
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert a linear power ratio to dB. Clamps at −300 dB for zero input.
pub fn lin_to_db(lin: f64) -> f64 {
    if lin <= 0.0 {
        -300.0
    } else {
        10.0 * lin.log10()
    }
}

/// Sum powers given in dBm, returning dBm.
pub fn sum_dbm(levels: impl IntoIterator<Item = f64>) -> f64 {
    lin_to_db(levels.into_iter().map(db_to_lin).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for db in [-40.0, -3.0, 0.0, 10.0, 23.5] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_power_is_floor() {
        assert_eq!(lin_to_db(0.0), -300.0);
    }

    #[test]
    fn sum_dbm_doubles_equal_powers() {
        // Two equal powers add 3.01 dB.
        let s = sum_dbm([-50.0, -50.0]);
        assert!((s - (-50.0 + 3.0103)).abs() < 1e-3, "{s}");
    }

    #[test]
    fn sum_dbm_dominated_by_strongest() {
        let s = sum_dbm([-40.0, -80.0]);
        assert!((s - -40.0).abs() < 0.01);
    }
}
