//! Canonical device seeds: the calibrated identities of the paper's
//! hardware.
//!
//! An [`crate::ArrayConfig`] `error_seed` pins one particular manufactured
//! device — the per-element gain/phase errors are drawn deterministically
//! from it. The constants here are the seeds whose *emergent* pattern
//! metrics match what §4.2 of the paper measured on the real equipment
//! (directional HPBW < 20°, boresight side lobes −4…−6 dB, ≈10 dB scan
//! loss with ≈−1 dB side lobes at the 70° coverage boundary, quasi-omni
//! HPBW up to 60° with deep gaps).
//!
//! They are pinned by `tests/calibration.rs` and shared by the device
//! models in `mmwave-mac` and the scenario library in `mmwave-core`.
//!
//! **Recalibration:** the same numeric seed describes a *different* device
//! whenever the synthesis pipeline or the RNG stream changes. When that
//! happens, re-pick the seeds with the sweep helper
//! (`cargo test -p mmwave-phy --test seed_sweep -- --ignored --nocapture`)
//! and update the pinned side-lobe levels in `tests/calibration.rs`.

/// The docking station under test (Dell D5000; Dock A in two-link rigs).
pub const DOCK_SEED: u64 = 16;
/// The laptop under test (Laptop A in two-link rigs).
pub const LAPTOP_SEED: u64 = 111;
/// Dock B — the second link's dock (Fig. 6). Only needs to be a
/// *plausible* device, not a measured one.
pub const DOCK_B_SEED: u64 = 4;
/// Laptop B — the second link's laptop.
pub const LAPTOP_B_SEED: u64 = 5;
/// The WiHD video source (DVDO Air-3c HDMI TX).
pub const WIHD_TX_SEED: u64 = 9;
/// The WiHD video sink (DVDO Air-3c HDMI RX).
pub const WIHD_RX_SEED: u64 = 22;
