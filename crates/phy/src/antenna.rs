//! Radiating elements and phase shifters — the cheap parts that make
//! consumer 60 GHz beams imperfect.

use mmwave_geom::Angle;
use std::f64::consts::TAU;

/// Speed of light in m/s.
pub const C: f64 = 299_792_458.0;

/// A single radiating element with a `cos^q` power pattern.
///
/// `q` controls the element beamwidth: patch antennas on consumer modules
/// have q ≈ 2 (≈ 7.8 dBi 3-D directivity), which also produces the ~10 dB
/// scan loss the paper observes when steering 70° off boresight.
#[derive(Clone, Copy, Debug)]
pub struct ElementPattern {
    /// Power-pattern exponent.
    pub q: f64,
    /// Boresight gain in dBi.
    pub boresight_gain_dbi: f64,
    /// Back-lobe floor relative to boresight, in dB (elements leak a bit of
    /// energy behind the ground plane; −15…−25 dB is typical).
    pub back_floor_db: f64,
}

impl ElementPattern {
    /// A consumer-grade patch element. The exponent is calibrated so the
    /// 70°-steered link of Figs. 17/22 loses ≈ 8–10 dB yet stays usable,
    /// as the paper observes.
    pub fn patch() -> ElementPattern {
        ElementPattern {
            q: 1.6,
            boresight_gain_dbi: 5.0,
            back_floor_db: -18.0,
        }
    }

    /// A wider, lower-gain element (the irregular WiHD array).
    pub fn wide() -> ElementPattern {
        ElementPattern {
            q: 1.0,
            boresight_gain_dbi: 3.0,
            back_floor_db: -14.0,
        }
    }

    /// Element power gain in dBi at local azimuth `theta` (0 = boresight).
    pub fn gain_dbi(&self, theta: Angle) -> f64 {
        let c = theta.radians().cos();
        let front = if c > 0.0 {
            self.boresight_gain_dbi + 10.0 * self.q * c.log10().max(-30.0)
        } else {
            f64::NEG_INFINITY
        };
        // The back floor keeps the pattern finite everywhere.
        front.max(self.boresight_gain_dbi + self.back_floor_db)
    }

    /// Linear *amplitude* (field) gain at local azimuth `theta`.
    pub fn amplitude(&self, theta: Angle) -> f64 {
        10f64.powf(self.gain_dbi(theta) / 20.0)
    }
}

/// A digital phase shifter with `bits` of resolution.
///
/// 2-bit shifters (0°/90°/180°/270°) are the classic consumer-grade choice;
/// their coarse quantization is the dominant source of the strong side
/// lobes measured in §4.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseShifter {
    /// Resolution in bits (1–8).
    pub bits: u8,
}

impl PhaseShifter {
    /// Construct; panics outside 1..=8 bits.
    pub fn new(bits: u8) -> PhaseShifter {
        assert!((1..=8).contains(&bits), "unrealistic phase shifter");
        PhaseShifter { bits }
    }

    /// Number of realizable phase states.
    pub fn states(&self) -> u32 {
        1u32 << self.bits
    }

    /// Quantize an ideal phase (radians) to the nearest realizable state.
    pub fn quantize(&self, phase: f64) -> f64 {
        let step = TAU / self.states() as f64;
        (phase / step).round() * step
    }

    /// Worst-case quantization error in radians (half a step).
    pub fn max_error(&self) -> f64 {
        TAU / self.states() as f64 / 2.0
    }
}

/// Geometry + imperfection description of a phased array.
///
/// The array is a uniform grid along the device's local y-axis (azimuth
/// plane); `rows` stacks identical rows in elevation, which in the azimuth
/// cut contributes a constant gain factor. Per-element gain/phase errors
/// model manufacturing spread; they are drawn deterministically from
/// `error_seed` so a given "device" always has the same pattern.
#[derive(Clone, Debug)]
pub struct ArrayConfig {
    /// Elements along the azimuth axis.
    pub columns: usize,
    /// Rows stacked in elevation (gain only in the azimuth cut).
    pub rows: usize,
    /// Element spacing in wavelengths (0.5 = λ/2).
    pub spacing_wl: f64,
    /// The radiating element.
    pub element: ElementPattern,
    /// Phase shifter resolution.
    pub shifter: PhaseShifter,
    /// 1-σ per-element amplitude error in dB.
    pub amp_error_db: f64,
    /// 1-σ per-element phase error in radians (feed-line mismatch).
    pub phase_error_rad: f64,
    /// Seed fixing this particular device's manufacturing errors.
    pub error_seed: u64,
    /// Irregular element placement jitter in wavelengths (the WiHD module's
    /// "irregular alignment"); 0 for a regular grid.
    pub placement_jitter_wl: f64,
}

impl ArrayConfig {
    /// The D5000 / laptop WiGig module: 2×8 patch array, λ/2 spacing,
    /// 2-bit shifters, moderate manufacturing spread.
    pub fn wigig_2x8(error_seed: u64) -> ArrayConfig {
        ArrayConfig {
            columns: 8,
            rows: 2,
            spacing_wl: 0.5,
            element: ElementPattern::patch(),
            shifter: PhaseShifter::new(2),
            amp_error_db: 2.5,
            phase_error_rad: 0.55,
            error_seed,
            placement_jitter_wl: 0.0,
        }
    }

    /// The DVDO Air-3c WiHD module: 24 elements with irregular placement,
    /// wider elements, similar cheap shifters. Produces the visibly wider
    /// patterns of Fig. 19.
    pub fn wihd_24(error_seed: u64) -> ArrayConfig {
        ArrayConfig {
            columns: 6,
            rows: 4,
            spacing_wl: 0.58,
            element: ElementPattern::wide(),
            shifter: PhaseShifter::new(2),
            amp_error_db: 2.0,
            phase_error_rad: 0.45,
            error_seed,
            placement_jitter_wl: 0.12,
        }
    }

    /// Total element count.
    pub fn n_elements(&self) -> usize {
        self.columns * self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_boresight_gain() {
        let e = ElementPattern::patch();
        assert!((e.gain_dbi(Angle::ZERO) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn element_rolls_off_with_angle() {
        let e = ElementPattern::patch();
        let g0 = e.gain_dbi(Angle::ZERO);
        let g45 = e.gain_dbi(Angle::from_degrees(45.0));
        let g70 = e.gain_dbi(Angle::from_degrees(70.0));
        assert!(g45 < g0 && g70 < g45);
        // q = 1.6 gives 16·log10(cos 70°) ≈ −7.5 dB element roll-off at 70°.
        assert!((g0 - g70 - 7.46).abs() < 0.2, "scan loss {}", g0 - g70);
    }

    #[test]
    fn element_back_floor_is_finite() {
        let e = ElementPattern::patch();
        let g = e.gain_dbi(Angle::from_degrees(180.0));
        assert!((g - (5.0 - 18.0)).abs() < 1e-9);
        assert!(e.amplitude(Angle::from_degrees(180.0)) > 0.0);
    }

    #[test]
    fn quantizer_hits_exact_states() {
        let ps = PhaseShifter::new(2);
        assert_eq!(ps.states(), 4);
        for k in 0..4 {
            let phase = k as f64 * TAU / 4.0;
            assert!((ps.quantize(phase) - phase).abs() < 1e-12);
        }
    }

    #[test]
    fn quantizer_error_bounded() {
        let ps = PhaseShifter::new(2);
        for i in 0..1000 {
            let phase = i as f64 * 0.0123;
            let err = (ps.quantize(phase) - phase).abs();
            assert!(err <= ps.max_error() + 1e-12);
        }
    }

    #[test]
    fn more_bits_less_error() {
        assert!(PhaseShifter::new(6).max_error() < PhaseShifter::new(2).max_error());
    }

    #[test]
    fn device_configs() {
        assert_eq!(ArrayConfig::wigig_2x8(0).n_elements(), 16);
        assert_eq!(ArrayConfig::wihd_24(0).n_elements(), 24);
        assert!(ArrayConfig::wihd_24(0).placement_jitter_wl > 0.0);
    }
}
