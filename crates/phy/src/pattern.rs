//! Sampled azimuth antenna patterns and their analysis.
//!
//! Every antenna in the workspace — synthesized array patterns, horns,
//! quasi-omni discovery patterns — is ultimately evaluated as an
//! [`AntennaPattern`]: power gain (dBi) sampled uniformly over the full
//! circle. The analysis helpers (peak, HPBW, lobe finding, side-lobe level,
//! gap detection) implement the metrics §4.2 of the paper reports.

use mmwave_geom::Angle;
use std::f64::consts::TAU;
use std::sync::OnceLock;

/// A power-gain pattern sampled uniformly over [0, 2π).
#[derive(Clone, Debug)]
pub struct AntennaPattern {
    /// Gain samples in dBi; sample `i` is at azimuth `i · 2π/n` in
    /// *array-local* coordinates (0 = boresight).
    samples: Vec<f64>,
    /// Lazily computed linear-power mirror of `samples` (10^(dBi/10)),
    /// filled on first [`AntennaPattern::samples_lin`] call. Keeps the
    /// radiometric cache's hot loop free of `powf` without taxing the
    /// synthesizers that build thousands of throwaway patterns.
    samples_lin: OnceLock<Vec<f64>>,
}

/// A detected pattern lobe.
#[derive(Clone, Copy, Debug)]
pub struct Lobe {
    /// Lobe peak direction (array-local).
    pub direction: Angle,
    /// Lobe peak gain in dBi.
    pub gain_dbi: f64,
}

impl AntennaPattern {
    /// Default angular resolution used by the synthesizers (0.5°).
    pub const DEFAULT_SAMPLES: usize = 720;

    /// Build from a gain function evaluated at `n` uniform azimuths.
    pub fn from_fn(n: usize, f: impl Fn(Angle) -> f64) -> AntennaPattern {
        assert!(n >= 8, "pattern too coarse");
        let samples = (0..n)
            .map(|i| {
                let g = f(Angle::from_radians(TAU * i as f64 / n as f64));
                debug_assert!(g.is_finite(), "non-finite gain");
                g
            })
            .collect();
        AntennaPattern {
            samples,
            samples_lin: OnceLock::new(),
        }
    }

    /// Build from precomputed gain samples; sample `i` is at azimuth
    /// `i · 2π/n`. The synthesizers' steering-basis path assembles whole
    /// sample vectors at once instead of evaluating a closure per angle.
    pub fn from_samples(samples: Vec<f64>) -> AntennaPattern {
        assert!(samples.len() >= 8, "pattern too coarse");
        debug_assert!(samples.iter().all(|g| g.is_finite()), "non-finite gain");
        AntennaPattern {
            samples,
            samples_lin: OnceLock::new(),
        }
    }

    /// An isotropic pattern of the given gain (used for idealized tests).
    pub fn isotropic(gain_dbi: f64) -> AntennaPattern {
        AntennaPattern {
            samples: vec![gain_dbi; Self::DEFAULT_SAMPLES],
            samples_lin: OnceLock::new(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the pattern has no samples (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples (dBi), sample `i` at azimuth `i · 2π/n`.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Gain in dBi at `theta` (array-local), circularly interpolated.
    pub fn gain_dbi(&self, theta: Angle) -> f64 {
        let (i0, i1, frac) = self.sample_pos(theta);
        self.samples[i0] * (1.0 - frac) + self.samples[i1] * frac
    }

    /// Resolve `theta` (array-local) to the circular interpolation triple
    /// `(i0, i1, frac)`: the value at `theta` is
    /// `samples[i0]·(1−frac) + samples[i1]·frac`. The triple depends only
    /// on the sample count, so a caller can resolve once and evaluate the
    /// same direction against both the dB and linear sample arrays.
    pub fn sample_pos(&self, theta: Angle) -> (usize, usize, f64) {
        let n = self.samples.len();
        let pos = theta.radians().rem_euclid(TAU) / TAU * n as f64;
        let floor = pos.floor();
        // `rem_euclid` may return TAU itself on rounding, so `floor` can
        // land exactly on `n`; the single `% n` folds that back to 0.
        let i0 = floor as usize % n;
        let i1 = if i0 + 1 == n { 0 } else { i0 + 1 };
        (i0, i1, pos - floor)
    }

    /// Linear-power samples (10^(dBi/10)), computed on first use.
    pub fn samples_lin(&self) -> &[f64] {
        self.samples_lin
            .get_or_init(|| self.samples.iter().map(|g| 10f64.powf(g / 10.0)).collect())
    }

    /// Linear power gain at `theta` (array-local): exactly
    /// `10^(gain_dbi(theta)/10)` for every angle. Interpolation stays in
    /// the dB domain — interpolating the *linear* samples instead would
    /// overshoot by several dB inside deep pattern nulls, precisely where
    /// side-lobe interference results are decided.
    pub fn gain_lin(&self, theta: Angle) -> f64 {
        let (i0, i1, frac) = self.sample_pos(theta);
        self.gain_lin_at(i0, i1, frac)
    }

    /// Linear power gain for a triple previously resolved by
    /// [`AntennaPattern::sample_pos`] (the radiometric cache's miss path:
    /// the triple is resolved once per propagation path and replayed per
    /// sector). Bit-identical to `10^(gain_dbi/10)`; on-sample lookups
    /// (`frac == 0`) come from the precomputed linear table without a
    /// `powf`.
    pub fn gain_lin_at(&self, i0: usize, i1: usize, frac: f64) -> f64 {
        if frac == 0.0 {
            return self.samples_lin()[i0];
        }
        10f64.powf((self.samples[i0] * (1.0 - frac) + self.samples[i1] * frac) / 10.0)
    }

    /// Peak gain (dBi) and its direction.
    pub fn peak(&self) -> Lobe {
        let (i, &g) = self
            .samples
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite gains"))
            .expect("non-empty pattern");
        Lobe {
            direction: self.direction_of(i),
            gain_dbi: g,
        }
    }

    fn direction_of(&self, i: usize) -> Angle {
        Angle::from_radians(TAU * i as f64 / self.samples.len() as f64)
    }

    /// Half-power beamwidth of the main lobe, in radians: the angular width
    /// around the peak where gain stays within 3 dB of the peak.
    pub fn hpbw(&self) -> f64 {
        let n = self.samples.len();
        let peak_idx = self
            .samples
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let limit = self.samples[peak_idx] - 3.0;
        let step = TAU / n as f64;
        let mut width = step; // the peak sample itself
                              // Walk right.
        for k in 1..n {
            if self.samples[(peak_idx + k) % n] >= limit {
                width += step;
            } else {
                break;
            }
        }
        // Walk left.
        for k in 1..n {
            if self.samples[(peak_idx + n - k) % n] >= limit {
                width += step;
            } else {
                break;
            }
        }
        width.min(TAU)
    }

    /// All local maxima at least `min_rel_db` above the pattern minimum and
    /// with at least `min_prominence_db` of prominence over the adjacent
    /// valleys, sorted by descending gain. The first entry is the main lobe.
    pub fn lobes(&self, min_prominence_db: f64) -> Vec<Lobe> {
        let n = self.samples.len();
        let mut lobes = Vec::new();
        for i in 0..n {
            let prev = self.samples[(i + n - 1) % n];
            let here = self.samples[i];
            let next = self.samples[(i + 1) % n];
            if here >= prev && here > next {
                // Walk out to the valleys on both sides to get prominence.
                let mut lo = here;
                let mut k = 1;
                while k < n {
                    let v = self.samples[(i + n - k) % n];
                    if v > here {
                        break;
                    }
                    lo = lo.min(v);
                    k += 1;
                }
                let mut hi_side = here;
                let mut k = 1;
                while k < n {
                    let v = self.samples[(i + k) % n];
                    if v > here {
                        break;
                    }
                    hi_side = hi_side.min(v);
                    k += 1;
                }
                let prominence = here - lo.max(hi_side);
                if prominence >= min_prominence_db {
                    lobes.push(Lobe {
                        direction: self.direction_of(i),
                        gain_dbi: here,
                    });
                }
            }
        }
        lobes.sort_by(|a, b| b.gain_dbi.partial_cmp(&a.gain_dbi).expect("finite"));
        lobes
    }

    /// Side-lobe level: gain of the strongest lobe other than the main one,
    /// relative to the main lobe, in dB (negative). `None` if the pattern
    /// has a single lobe. Lobes inside the main lobe's half-power width are
    /// not counted as side lobes.
    pub fn side_lobe_level_db(&self) -> Option<f64> {
        let lobes = self.lobes(1.0);
        let main = lobes.first()?;
        let hpbw = self.hpbw();
        lobes
            .iter()
            .skip(1)
            .find(|l| l.direction.distance(main.direction) > hpbw / 2.0)
            .map(|l| l.gain_dbi - main.gain_dbi)
    }

    /// Deep gaps: directions within ±`sector` of boresight where the gain
    /// falls more than `depth_db` below the pattern's peak. Returns the
    /// gap directions. Used to quantify the quasi-omni imperfections of
    /// Fig. 16.
    pub fn gaps(&self, sector: f64, depth_db: f64) -> Vec<Angle> {
        let peak = self.peak().gain_dbi;
        let n = self.samples.len();
        let mut out = Vec::new();
        for i in 0..n {
            let dir = self.direction_of(i);
            if dir.distance(Angle::ZERO) <= sector && self.samples[i] < peak - depth_db {
                // Only record local minima so a wide gap counts once.
                let prev = self.samples[(i + n - 1) % n];
                let next = self.samples[(i + 1) % n];
                if self.samples[i] <= prev && self.samples[i] < next {
                    out.push(dir);
                }
            }
        }
        out
    }

    /// A copy normalized so the peak is 0 dB (figure-style presentation).
    pub fn normalized(&self) -> AntennaPattern {
        let peak = self.peak().gain_dbi;
        AntennaPattern {
            samples: self.samples.iter().map(|g| g - peak).collect(),
            samples_lin: OnceLock::new(),
        }
    }

    /// Azimuthal directivity estimate: peak linear gain over the circular
    /// average of linear gain. For sanity checks on synthesized patterns.
    pub fn directivity_db(&self) -> f64 {
        let lin: Vec<f64> = self.samples.iter().map(|g| 10f64.powf(g / 10.0)).collect();
        let avg = lin.iter().sum::<f64>() / lin.len() as f64;
        let peak = lin.iter().cloned().fold(f64::MIN, f64::max);
        10.0 * (peak / avg).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic pattern: one main lobe at 0° and one side lobe at 90°.
    fn two_lobe_pattern(side_level_db: f64) -> AntennaPattern {
        AntennaPattern::from_fn(720, |a| {
            let main = 20.0 - (a.distance(Angle::ZERO).to_degrees() / 10.0).powi(2);
            let side = 20.0 + side_level_db
                - (a.distance(Angle::from_degrees(90.0)).to_degrees() / 8.0).powi(2);
            main.max(side).max(-30.0)
        })
    }

    #[test]
    fn isotropic_has_no_side_lobes() {
        let p = AntennaPattern::isotropic(3.0);
        assert_eq!(p.gain_dbi(Angle::from_degrees(123.0)), 3.0);
        assert!(p.lobes(1.0).is_empty());
        assert!(p.side_lobe_level_db().is_none());
    }

    #[test]
    fn peak_and_interpolation() {
        let p = two_lobe_pattern(-10.0);
        let peak = p.peak();
        assert!(peak.direction.distance(Angle::ZERO) < 0.02);
        assert!((peak.gain_dbi - 20.0).abs() < 0.01);
        // Interpolated lookup between samples is close to the function.
        let g = p.gain_dbi(Angle::from_degrees(0.25));
        assert!((g - 20.0).abs() < 0.1);
    }

    #[test]
    fn hpbw_of_gaussian_lobe() {
        // main = 20 − (θ°/10)²  →  −3 dB at θ = ±10·√3 ≈ ±17.3°, HPBW ≈ 34.6°.
        let p = two_lobe_pattern(-20.0);
        let hpbw_deg = p.hpbw().to_degrees();
        assert!((hpbw_deg - 34.6).abs() < 1.5, "hpbw {hpbw_deg}");
    }

    #[test]
    fn lobe_detection_finds_both() {
        let p = two_lobe_pattern(-6.0);
        let lobes = p.lobes(2.0);
        assert_eq!(lobes.len(), 2, "lobes: {lobes:?}");
        assert!(lobes[0].direction.distance(Angle::ZERO) < 0.02);
        assert!(lobes[1].direction.distance(Angle::from_degrees(90.0)) < 0.02);
    }

    #[test]
    fn side_lobe_level() {
        for sll in [-1.0, -4.0, -6.0, -12.0] {
            let p = two_lobe_pattern(sll);
            let measured = p.side_lobe_level_db().expect("side lobe");
            assert!(
                (measured - sll).abs() < 0.1,
                "target {sll} measured {measured}"
            );
        }
    }

    #[test]
    fn normalized_peak_is_zero() {
        let p = two_lobe_pattern(-5.0).normalized();
        assert!(p.peak().gain_dbi.abs() < 1e-9);
    }

    #[test]
    fn gaps_detected_in_sector() {
        // A pattern with a sharp notch at +20°.
        let p = AntennaPattern::from_fn(720, |a| {
            if a.distance(Angle::from_degrees(20.0)).to_degrees() < 3.0 {
                -15.0
            } else {
                0.0
            }
        });
        let gaps = p.gaps(60f64.to_radians(), 8.0);
        assert!(!gaps.is_empty());
        assert!(gaps
            .iter()
            .any(|g| g.distance(Angle::from_degrees(20.0)) < 0.1));
        // Nothing outside the sector.
        assert!(p.gaps(10f64.to_radians(), 8.0).is_empty());
    }

    #[test]
    fn linear_samples_mirror_db_samples() {
        let p = two_lobe_pattern(-6.0);
        for (g_db, g_lin) in p.samples().iter().zip(p.samples_lin()) {
            assert!((10f64.powf(g_db / 10.0) - g_lin).abs() < 1e-12);
        }
        // At an exact sample point the dB and linear lookups agree.
        let theta = Angle::from_degrees(90.0);
        assert!((p.gain_lin(theta) - 10f64.powf(p.gain_dbi(theta) / 10.0)).abs() < 1e-12);
        // A pre-resolved triple replays to the same value as a direct lookup.
        let theta = Angle::from_degrees(17.3);
        let (i0, i1, frac) = p.sample_pos(theta);
        assert_eq!(p.gain_lin_at(i0, i1, frac), p.gain_lin(theta));
        assert_eq!(
            p.samples()[i0] * (1.0 - frac) + p.samples()[i1] * frac,
            p.gain_dbi(theta)
        );
    }

    #[test]
    fn sample_pos_wraps_cleanly() {
        let p = AntennaPattern::isotropic(0.0);
        for deg in [-180.0, -0.25, 0.0, 0.25, 179.75, 359.9] {
            let (i0, i1, frac) = p.sample_pos(Angle::from_degrees(deg));
            assert!(i0 < p.len() && i1 < p.len(), "indices in range for {deg}");
            assert!((0.0..1.0 + 1e-12).contains(&frac), "frac {frac} for {deg}");
        }
    }

    #[test]
    fn directivity_increases_with_focus() {
        let wide =
            AntennaPattern::from_fn(720, |a| 10.0 - a.distance(Angle::ZERO).to_degrees() / 10.0);
        let narrow = AntennaPattern::from_fn(720, |a| 10.0 - a.distance(Angle::ZERO).to_degrees());
        assert!(narrow.directivity_db() > wide.directivity_db());
    }
}
