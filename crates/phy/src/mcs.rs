//! The IEEE 802.11ad single-carrier MCS table.
//!
//! The D5000's driver reports PHY rates that match the standard's
//! single-carrier MCS set exactly (§4.1, Fig. 12), so the model uses the
//! real table: MCS 1–12 data rates, modulation/coding labels, receiver
//! sensitivities from the standard, and the SNR thresholds they imply.
//! The control PHY (MCS 0) carries beacons, discovery and RTS/CTS frames
//! at 27.5 Mb/s with much higher robustness.

use std::fmt;

/// Modulation of an MCS.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Modulation {
    /// Differential BPSK (control PHY).
    Dbpsk,
    /// π/2-BPSK.
    Bpsk,
    /// π/2-QPSK.
    Qpsk,
    /// π/2-16-QAM.
    Qam16,
}

impl fmt::Display for Modulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Modulation::Dbpsk => "DBPSK",
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16-QAM",
        };
        f.write_str(s)
    }
}

/// One modulation-and-coding scheme.
#[derive(Clone, Copy, Debug)]
pub struct Mcs {
    /// Index in the standard (0 = control PHY).
    pub index: u8,
    /// Modulation.
    pub modulation: Modulation,
    /// Code rate as (numerator, denominator).
    pub code_rate: (u8, u8),
    /// PHY data rate in bits per second.
    pub rate_bps: u64,
    /// Receiver sensitivity from the standard, in dBm.
    pub sensitivity_dbm: f64,
}

impl Mcs {
    /// Human-readable "QPSK, 5/8" style label (as used in Fig. 12).
    pub fn label(&self) -> String {
        format!(
            "{}, {}/{}",
            self.modulation, self.code_rate.0, self.code_rate.1
        )
    }

    /// Data rate in Gb/s (as reported by the D5000 application).
    pub fn rate_gbps(&self) -> f64 {
        self.rate_bps as f64 / 1e9
    }

    /// Minimum SNR for reliable reception given `noise_floor_dbm`
    /// (sensitivity − noise floor).
    pub fn snr_threshold_db(&self, noise_floor_dbm: f64) -> f64 {
        self.sensitivity_dbm - noise_floor_dbm
    }

    /// Packet error probability at the given SINR, for a packet of
    /// `bits` bits.
    ///
    /// A logistic waterfall centred `0.5 dB` above threshold with a 0.25 dB
    /// slope approximates the steep coded-PER curves of the standard (LDPC
    /// waterfalls drop several decades per dB); the per-bit extrapolation
    /// makes longer (aggregated) frames slightly more fragile, as in
    /// reality.
    pub fn per(&self, sinr_db: f64, bits: u64, noise_floor_dbm: f64) -> f64 {
        let thr = self.snr_threshold_db(noise_floor_dbm) + 0.5;
        let p_ref = 1.0 / (1.0 + ((sinr_db - thr) / 0.25).exp());
        // p_ref is calibrated for a 1500-byte MPDU; scale with length.
        let scale = bits as f64 / 12_000.0;
        let ok = (1.0 - p_ref).powf(scale.max(1e-6));
        (1.0 - ok).clamp(0.0, 1.0)
    }
}

/// The full single-carrier table (plus control PHY).
#[derive(Clone, Debug)]
pub struct McsTable {
    entries: Vec<Mcs>,
}

impl McsTable {
    /// The 802.11ad control + SC MCS set.
    pub fn ieee_802_11ad() -> McsTable {
        let e = |index, modulation, code_rate, mbps: f64, sensitivity_dbm| Mcs {
            index,
            modulation,
            code_rate,
            rate_bps: (mbps * 1e6) as u64,
            sensitivity_dbm,
        };
        use Modulation::*;
        McsTable {
            entries: vec![
                e(0, Dbpsk, (1, 2), 27.5, -78.0),
                e(1, Bpsk, (1, 2), 385.0, -68.0),
                e(2, Bpsk, (1, 2), 770.0, -66.0),
                e(3, Bpsk, (5, 8), 962.5, -65.0),
                e(4, Bpsk, (3, 4), 1155.0, -64.0),
                e(5, Bpsk, (13, 16), 1251.25, -62.0),
                e(6, Qpsk, (1, 2), 1540.0, -63.0),
                e(7, Qpsk, (5, 8), 1925.0, -62.0),
                e(8, Qpsk, (3, 4), 2310.0, -61.0),
                e(9, Qpsk, (13, 16), 2502.5, -59.0),
                e(10, Qam16, (1, 2), 3080.0, -55.0),
                e(11, Qam16, (5, 8), 3850.0, -54.0),
                e(12, Qam16, (3, 4), 4620.0, -53.0),
            ],
        }
    }

    /// Entry by index. Panics on an index outside the table.
    pub fn get(&self, index: u8) -> &Mcs {
        &self.entries[index as usize]
    }

    /// The control PHY (MCS 0).
    pub fn control(&self) -> &Mcs {
        self.get(0)
    }

    /// Highest data MCS index.
    pub fn max_index(&self) -> u8 {
        (self.entries.len() - 1) as u8
    }

    /// All data-phy entries (MCS ≥ 1).
    pub fn data_entries(&self) -> &[Mcs] {
        &self.entries[1..]
    }

    /// Highest MCS (≤ `cap`) whose SNR threshold plus `margin_db` is met at
    /// `snr_db`; falls back to MCS 1 if even that is not workable.
    pub fn best_for_snr(&self, snr_db: f64, noise_floor_dbm: f64, margin_db: f64, cap: u8) -> &Mcs {
        self.entries[1..=cap.min(self.max_index()) as usize]
            .iter()
            .rev()
            .find(|m| snr_db >= m.snr_threshold_db(noise_floor_dbm) + margin_db)
            .unwrap_or(self.get(1))
    }
}

impl Default for McsTable {
    fn default() -> Self {
        McsTable::ieee_802_11ad()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOISE: f64 = -71.5; // 1.76 GHz BW, NF 10 dB

    #[test]
    fn table_matches_standard_rates() {
        let t = McsTable::ieee_802_11ad();
        assert_eq!(t.get(1).rate_bps, 385_000_000);
        assert_eq!(t.get(6).rate_bps, 1_540_000_000);
        assert_eq!(t.get(11).rate_bps, 3_850_000_000);
        assert_eq!(t.get(12).rate_bps, 4_620_000_000);
        assert_eq!(t.max_index(), 12);
    }

    #[test]
    fn labels_match_fig12() {
        let t = McsTable::ieee_802_11ad();
        assert_eq!(t.get(11).label(), "16-QAM, 5/8");
        assert_eq!(t.get(8).label(), "QPSK, 3/4");
        assert_eq!(t.get(7).label(), "QPSK, 5/8");
        assert_eq!(t.get(6).label(), "QPSK, 1/2");
        assert_eq!(t.get(4).label(), "BPSK, 3/4");
    }

    #[test]
    fn rates_monotone_in_index() {
        let t = McsTable::ieee_802_11ad();
        for w in t.data_entries().windows(2) {
            assert!(w[1].rate_bps > w[0].rate_bps);
        }
    }

    #[test]
    fn higher_rate_needs_higher_snr_within_modulation() {
        let t = McsTable::ieee_802_11ad();
        // Sensitivities are monotone within each modulation family.
        for fam in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16] {
            let sens: Vec<f64> = t
                .data_entries()
                .iter()
                .filter(|m| m.modulation == fam)
                .map(|m| m.sensitivity_dbm)
                .collect();
            for w in sens.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }

    #[test]
    fn control_phy_is_most_robust() {
        let t = McsTable::ieee_802_11ad();
        for m in t.data_entries() {
            assert!(t.control().sensitivity_dbm < m.sensitivity_dbm);
        }
    }

    #[test]
    fn best_for_snr_selects_correctly() {
        let t = McsTable::ieee_802_11ad();
        // Very high SNR, uncapped: MCS 12.
        assert_eq!(t.best_for_snr(40.0, NOISE, 2.0, 12).index, 12);
        // Very high SNR but capped at 11 (the D5000 never uses MCS 12).
        assert_eq!(t.best_for_snr(40.0, NOISE, 2.0, 11).index, 11);
        // Hopeless SNR falls back to MCS 1.
        assert_eq!(t.best_for_snr(-10.0, NOISE, 2.0, 12).index, 1);
        // Threshold arithmetic: MCS 6 needs −63 − (−71.5) = 8.5 dB.
        assert!((t.get(6).snr_threshold_db(NOISE) - 8.5).abs() < 1e-9);
        let m = t.best_for_snr(8.5 + 2.0, NOISE, 2.0, 12);
        assert!(m.index >= 6, "got MCS {}", m.index);
    }

    #[test]
    fn per_waterfall_shape() {
        let t = McsTable::ieee_802_11ad();
        let m = t.get(8);
        let thr = m.snr_threshold_db(NOISE);
        // Well below threshold: certain loss. Well above: reliable.
        assert!(m.per(thr - 5.0, 12_000, NOISE) > 0.99);
        assert!(m.per(thr + 5.0, 12_000, NOISE) < 1e-3);
        // Monotone decreasing in SINR.
        let mut prev = 1.0;
        for k in 0..40 {
            let p = m.per(thr - 4.0 + k as f64 * 0.25, 12_000, NOISE);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn longer_frames_are_more_fragile() {
        let t = McsTable::ieee_802_11ad();
        let m = t.get(11);
        let s = m.snr_threshold_db(NOISE) + 1.5;
        assert!(m.per(s, 96_000, NOISE) > m.per(s, 12_000, NOISE));
    }
}
