//! Rate adaptation as observed on the D5000.
//!
//! Three behaviours from §4.1 shape this module:
//!
//! * the reported rate tracks SNR, **not** offered load (Fig. 12 shows the
//!   highest workable MCS even at kb/s traffic);
//! * the device **never** uses the standard's highest MCS — the adapter is
//!   capped at MCS 11 (16-QAM 5/8);
//! * under interference the rate drops with loss statistics, producing the
//!   inverse rate/utilization correlation of Fig. 22.

use crate::mcs::{Mcs, McsTable};

/// Tuning knobs of the rate adapter.
#[derive(Clone, Copy, Debug)]
pub struct RateAdapterConfig {
    /// Highest MCS index the implementation will select (11 on the D5000).
    pub max_mcs: u8,
    /// Extra SNR (dB) required *above* an MCS threshold before upgrading
    /// into it (hysteresis against flapping).
    pub up_margin_db: f64,
    /// SNR margin (dB) below which the current MCS is abandoned.
    pub down_margin_db: f64,
    /// Number of recent data frames considered for loss-driven fallback.
    pub loss_window: usize,
    /// Loss ratio in the window that forces a one-step downgrade.
    pub loss_down_ratio: f64,
    /// Consecutive clean windows required before releasing one backoff
    /// step. High enough that a link facing *recurring* interference
    /// (e.g. a WiHD neighbour) stays backed off instead of oscillating
    /// into the interferer every few windows.
    pub clean_windows_for_up: u32,
}

impl Default for RateAdapterConfig {
    fn default() -> Self {
        RateAdapterConfig {
            max_mcs: 11,
            up_margin_db: 3.0,
            down_margin_db: 1.0,
            loss_window: 24,
            loss_down_ratio: 0.15,
            clean_windows_for_up: 8,
        }
    }
}

/// SNR- and loss-driven MCS selection with hysteresis.
///
/// Two independent components: `base` follows SNR with hysteresis, and
/// `loss_backoff` subtracts levels while recent frames keep failing.
/// The effective MCS is `max(1, base − backoff)`, so the two never
/// compound (a bug class this structure rules out: repeatedly applying
/// the backoff to an already-backed-off value).
#[derive(Clone, Debug)]
pub struct RateAdapter {
    cfg: RateAdapterConfig,
    table: McsTable,
    /// Pure SNR-driven selection (with hysteresis).
    base: u8,
    /// Ring of recent frame outcomes (true = acked).
    window: Vec<bool>,
    window_pos: usize,
    window_filled: bool,
    clean_streak: u32,
    /// Loss-driven penalty: while > 0, the SNR-selected MCS is reduced.
    loss_backoff: u8,
}

impl RateAdapter {
    /// Create an adapter starting at the most robust data MCS.
    pub fn new(cfg: RateAdapterConfig) -> RateAdapter {
        assert!(cfg.max_mcs >= 1);
        assert!(cfg.loss_window >= 4);
        RateAdapter {
            window: vec![true; cfg.loss_window],
            cfg,
            table: McsTable::ieee_802_11ad(),
            base: 1,
            window_pos: 0,
            window_filled: false,
            clean_streak: 0,
            loss_backoff: 0,
        }
    }

    fn effective(&self) -> u8 {
        self.base
            .saturating_sub(self.loss_backoff)
            .clamp(1, self.cfg.max_mcs)
    }

    /// The currently selected MCS.
    pub fn current(&self) -> &Mcs {
        self.table.get(self.effective())
    }

    /// The MCS table in use.
    pub fn table(&self) -> &McsTable {
        &self.table
    }

    /// Loss ratio over the current window.
    pub fn loss_ratio(&self) -> f64 {
        let n = if self.window_filled {
            self.window.len()
        } else {
            self.window_pos.max(1)
        };
        let losses = self.window[..n].iter().filter(|&&ok| !ok).count();
        losses as f64 / n as f64
    }

    /// Feed an SNR estimate (from beacon/training measurements). Selects
    /// the best sustainable MCS with hysteresis, minus any loss backoff.
    /// Returns the selected MCS index.
    pub fn on_snr(&mut self, snr_db: f64, noise_floor_dbm: f64) -> u8 {
        let cur_thr = self.table.get(self.base).snr_threshold_db(noise_floor_dbm);
        let ideal = self
            .table
            .best_for_snr(
                snr_db,
                noise_floor_dbm,
                self.cfg.up_margin_db,
                self.cfg.max_mcs,
            )
            .index;
        if snr_db < cur_thr + self.cfg.down_margin_db {
            // Current rate no longer sustainable: drop straight to ideal.
            self.base = ideal.min(self.base);
        } else if ideal > self.base {
            self.base = ideal;
        }
        self.effective()
    }

    /// Feed a data-frame outcome (acked or lost). May trigger a loss-driven
    /// downgrade or decay an earlier one. Returns the selected MCS index.
    pub fn on_frame_result(&mut self, acked: bool) -> u8 {
        self.window[self.window_pos] = acked;
        self.window_pos += 1;
        if self.window_pos == self.window.len() {
            self.window_pos = 0;
            self.window_filled = true;
            let ratio = self.loss_ratio();
            if ratio >= self.cfg.loss_down_ratio {
                self.loss_backoff = (self.loss_backoff + 1).min(6);
                self.clean_streak = 0;
            } else if ratio == 0.0 {
                self.clean_streak += 1;
                if self.clean_streak >= self.cfg.clean_windows_for_up && self.loss_backoff > 0 {
                    self.loss_backoff -= 1;
                    self.clean_streak = 0;
                }
            } else {
                self.clean_streak = 0;
            }
        }
        self.effective()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOISE: f64 = -71.5;

    fn adapter() -> RateAdapter {
        RateAdapter::new(RateAdapterConfig::default())
    }

    #[test]
    fn high_snr_caps_at_mcs11() {
        let mut a = adapter();
        let idx = a.on_snr(40.0, NOISE);
        assert_eq!(idx, 11, "the D5000 never reaches MCS 12");
    }

    #[test]
    fn snr_ladder() {
        // Rising SNR climbs the ladder; each step is a valid selection.
        let mut a = adapter();
        let mut last = 1;
        for snr in 0..35 {
            let idx = a.on_snr(snr as f64, NOISE);
            assert!(idx >= last, "rate went down on rising SNR");
            last = idx;
        }
        assert_eq!(last, 11);
    }

    #[test]
    fn falling_snr_downgrades() {
        let mut a = adapter();
        a.on_snr(40.0, NOISE);
        assert_eq!(a.current().index, 11);
        let idx = a.on_snr(8.0, NOISE);
        assert!(idx < 11);
        // And the selected rate is sustainable at 8 dB.
        let thr = a.current().snr_threshold_db(NOISE);
        assert!(8.0 >= thr, "selected unsustainable MCS");
    }

    #[test]
    fn hysteresis_resists_small_wobble() {
        let mut a = adapter();
        // SNR right at the MCS 11 threshold + up margin: selects 11.
        let thr11 = a.table().get(11).snr_threshold_db(NOISE);
        a.on_snr(thr11 + 3.5, NOISE);
        assert_eq!(a.current().index, 11);
        // A 1 dB dip (still above thr + down_margin) must NOT downgrade.
        a.on_snr(thr11 + 2.5, NOISE);
        assert_eq!(a.current().index, 11);
        // A dip below thr + down margin does.
        a.on_snr(thr11 + 0.5, NOISE);
        assert!(a.current().index < 11);
    }

    #[test]
    fn heavy_loss_forces_downgrade() {
        let mut a = adapter();
        a.on_snr(40.0, NOISE);
        assert_eq!(a.current().index, 11);
        // 50 % loss for a full window.
        for i in 0..24 {
            a.on_frame_result(i % 2 == 0);
        }
        assert!(a.current().index < 11, "loss should back the rate off");
    }

    #[test]
    fn clean_windows_recover_backoff() {
        let mut a = adapter();
        a.on_snr(40.0, NOISE);
        for i in 0..24 {
            a.on_frame_result(i % 2 == 0);
        }
        let degraded = a.current().index;
        assert!(degraded < 11);
        // Eight fully clean windows restore one step; SNR re-selects upward.
        for _ in 0..(8 * 24) {
            a.on_frame_result(true);
        }
        a.on_snr(40.0, NOISE);
        assert!(a.current().index > degraded);
    }

    #[test]
    fn loss_ratio_reflects_window() {
        let mut a = adapter();
        for _ in 0..8 {
            a.on_frame_result(false);
        }
        assert!(a.loss_ratio() > 0.9);
        for _ in 0..24 {
            a.on_frame_result(true);
        }
        assert!(a.loss_ratio() < 0.3);
    }

    #[test]
    fn never_selects_mcs0_for_data() {
        let mut a = adapter();
        a.on_snr(-20.0, NOISE);
        assert_eq!(a.current().index, 1);
        for _ in 0..128 {
            a.on_frame_result(false);
        }
        assert_eq!(a.current().index, 1);
    }
}
