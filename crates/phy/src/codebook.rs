//! Beam codebooks: the predefined pattern sets consumer devices sweep.
//!
//! Millimetre-wave transceivers avoid per-packet beam computation by
//! selecting from a *codebook* of predefined antenna configurations (§2,
//! "Beam Steering"). The paper observes two codebooks on the D5000:
//!
//! * a **directional** codebook used during data transmission — highly
//!   directional sectors fanned across the serviced cone;
//! * a **quasi-omni** codebook of exactly **32 wide patterns** swept by the
//!   device-discovery frame (Fig. 3), each imperfect, with deep gaps
//!   (Fig. 16).
//!
//! Both are built here from a [`PhasedArray`], so every imperfection in the
//! pattern (side lobes, gaps, scan loss at the sector fan's edge) comes from
//! the array model, not from hand-drawn shapes.

use crate::array::{ArrayFingerprint, Complex, PhasedArray, SynthScratch};
use mmwave_geom::Angle;
use mmwave_sim::ctx::SimCtx;
use std::cell::RefCell;
use std::f64::consts::PI;
use std::sync::Arc;

/// What a codebook is for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodebookKind {
    /// Narrow sectors for data transmission.
    Directional,
    /// Wide patterns for device discovery / beam training.
    QuasiOmni,
}

/// One codebook entry: a nominal steering direction and its realized
/// (imperfect) pattern.
#[derive(Clone, Debug)]
pub struct Sector {
    /// Index within the codebook.
    pub id: usize,
    /// Nominal steering azimuth (array-local).
    pub steer: Angle,
    /// The realized gain pattern.
    pub pattern: crate::pattern::AntennaPattern,
}

/// An ordered set of sectors.
///
/// The sector vector sits behind an `Arc`: cloning a codebook (and hitting
/// the memoization cache below) shares the synthesized patterns instead of
/// copying 32 × 720 samples. Codebooks are immutable after construction, so
/// sharing is unobservable apart from pointer identity.
#[derive(Clone, Debug)]
pub struct Codebook {
    kind: CodebookKind,
    sectors: Arc<Vec<Sector>>,
}

/// Identity of a memoized codebook: the array's exact configuration
/// fingerprint plus the codebook kind and parameters, all bit-exact. Equal
/// keys guarantee bit-identical sector patterns (see [`ArrayFingerprint`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct CacheKey {
    array: ArrayFingerprint,
    kind: CodebookKind,
    n: usize,
    half_span_bits: u64,
}

/// Memoized codebooks of one simulation context, installed in the
/// context's extension slot on first use. Linear-scanned (the working set
/// is a handful of entries; scanning short keys beats hashing them).
///
/// Per-context rather than per-thread: two `Net`s interleaved on one
/// thread keep independent codebook caches, and a campaign task's hit/miss
/// counters are a pure function of the task — its context is born empty —
/// rather than of which tasks ran earlier on the worker thread.
#[derive(Default)]
struct CodebookStore {
    entries: RefCell<Vec<(CacheKey, Codebook)>>,
}

/// Upper bound on memoized codebooks per context. Seed sweeps construct
/// hundreds of distinct arrays; evicting the oldest entry keeps that
/// bounded while leaving the steady-state working set (a few devices ×
/// two codebooks) untouched.
const CACHE_CAP: usize = 64;

/// Read-only pool of pre-synthesized codebooks, shareable across contexts
/// and threads.
///
/// A campaign of N tasks otherwise pays the cold sector synthesis once
/// *per task* — each task's context is born with an empty codebook cache
/// by design (per-task counters must not depend on worker scheduling).
/// The pool keeps that determinism contract: it is built **once, before
/// any task runs**, is immutable afterwards (`Arc` of a frozen entry
/// list), and is installed into every task's context. A task's cache then
/// resolves a miss from the pool — recorded as a *prebuilt hit*, a pure
/// function of the task itself — instead of synthesizing.
///
/// Everything inside is plain data behind `Arc`s, so the pool is `Send +
/// Sync` and workers share one copy.
#[derive(Clone, Default)]
pub struct CodebookPrebuild {
    entries: Arc<Vec<(CacheKey, Codebook)>>,
}

/// Per-context slot holding the installed prebuilt pool (empty until
/// [`CodebookPrebuild::install`]).
#[derive(Default)]
struct PrebuiltSlot(std::cell::OnceCell<CodebookPrebuild>);

/// Per-context pattern-synthesis scratch, shared by every codebook build in
/// the context so cold synthesis allocates no per-call accumulators.
#[derive(Default)]
struct SynthSlot(RefCell<SynthScratch>);

/// Synthesize one sector batch through the context's shared scratch.
fn synth_batch(
    ctx: &SimCtx,
    array: &PhasedArray,
    rows: &[Vec<Complex>],
) -> Vec<crate::pattern::AntennaPattern> {
    let row_views: Vec<&[Complex]> = rows.iter().map(|r| r.as_slice()).collect();
    let slot = ctx.ext_or_insert_with(SynthSlot::default);
    let mut scratch = slot.0.borrow_mut();
    array.patterns_from_weight_rows(&mut scratch, &row_views)
}

impl CodebookPrebuild {
    /// Synthesize the standard device codebooks for `arrays` — the
    /// directional data codebook for every array, plus the 32-entry
    /// quasi-omni discovery codebook where the geometry supports it —
    /// into a frozen pool. This is the campaign's single cold synthesis.
    pub fn standard(arrays: &[PhasedArray]) -> CodebookPrebuild {
        let scratch = SimCtx::new();
        for a in arrays {
            Codebook::directional_default(&scratch, a);
            // The 32-entry discovery sweep needs 28 adjacent-pair
            // patterns, i.e. ≥ 8 columns (4 phases × 7 pairs). WiGig
            // devices build it; the 6-column WiHD arrays never do.
            if a.config().columns >= 8 {
                Codebook::quasi_omni_32(&scratch, a);
            }
        }
        let store = scratch.ext_or_insert_with(CodebookStore::default);
        let entries = store.entries.borrow().clone();
        CodebookPrebuild {
            entries: Arc::new(entries),
        }
    }

    /// [`Self::standard`] over the canonical calibration arrays every
    /// stock experiment's devices are built from (dock/laptop pairs A and
    /// B, WiHD source and sink). Tasks that vary array seeds simply miss
    /// the pool and synthesize privately, exactly as before.
    pub fn standard_devices() -> CodebookPrebuild {
        use crate::calib;
        let arrays = [
            PhasedArray::new(crate::antenna::ArrayConfig::wigig_2x8(calib::DOCK_SEED)),
            PhasedArray::new(crate::antenna::ArrayConfig::wigig_2x8(calib::LAPTOP_SEED)),
            PhasedArray::new(crate::antenna::ArrayConfig::wigig_2x8(calib::DOCK_B_SEED)),
            PhasedArray::new(crate::antenna::ArrayConfig::wigig_2x8(calib::LAPTOP_B_SEED)),
            PhasedArray::new(crate::antenna::ArrayConfig::wihd_24(calib::WIHD_TX_SEED)),
            PhasedArray::new(crate::antenna::ArrayConfig::wihd_24(calib::WIHD_RX_SEED)),
        ];
        CodebookPrebuild::standard(&arrays)
    }

    /// Number of codebooks in the pool.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the pool holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Install the pool into `ctx`: subsequent codebook-cache misses in
    /// that context consult the pool before synthesizing. First install
    /// wins; later installs on the same context are ignored (contexts are
    /// normally born, installed into, and discarded per task).
    pub fn install(&self, ctx: &SimCtx) {
        let slot = ctx.ext_or_insert_with(PrebuiltSlot::default);
        let _ = slot.0.set(self.clone());
    }
}

/// Number of codebooks currently memoized in `ctx` (for tests).
pub fn cache_len(ctx: &SimCtx) -> usize {
    ctx.ext_or_insert_with(CodebookStore::default)
        .entries
        .borrow()
        .len()
}

impl Codebook {
    /// Look `key` up in `ctx`'s codebook store, synthesizing via `build`
    /// on a miss. Hit/miss counts flow into the context's counters.
    fn cached(ctx: &SimCtx, key: CacheKey, build: impl FnOnce() -> Vec<Sector>) -> Codebook {
        let store = ctx.ext_or_insert_with(CodebookStore::default);
        let hit = store
            .entries
            .borrow()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, cb)| cb.clone());
        if let Some(cb) = hit {
            ctx.record_codebook_hit();
            return cb;
        }
        // Not in this context's cache: an installed prebuilt pool answers
        // before we synthesize. The entry is copied into the per-context
        // store (sharing the `Arc`ed sectors), so each pool resolution is
        // counted exactly once per context and later requests are plain
        // hits — steady state is indistinguishable from a cold synthesis.
        let slot = ctx.ext_or_insert_with(PrebuiltSlot::default);
        if let Some(pool) = slot.0.get() {
            if let Some((_, cb)) = pool.entries.iter().find(|(k, _)| *k == key) {
                ctx.record_codebook_prebuilt_hit();
                let cb = cb.clone();
                let mut cache = store.entries.borrow_mut();
                if cache.len() == CACHE_CAP {
                    cache.remove(0);
                }
                cache.push((key, cb.clone()));
                return cb;
            }
        }
        ctx.record_codebook_miss();
        let cb = Codebook {
            kind: key.kind,
            sectors: Arc::new(build()),
        };
        let mut cache = store.entries.borrow_mut();
        if cache.len() == CACHE_CAP {
            cache.remove(0);
        }
        cache.push((key, cb.clone()));
        cb
    }
    /// Build a directional codebook: `n` sectors with steering azimuths
    /// fanned uniformly over ±`half_span`. The D5000's serviced area is a
    /// 120°-wide cone, but the paper finds it operating over a wider range
    /// indoors, so the default fan reaches ±77.5°.
    pub fn directional(ctx: &SimCtx, array: &PhasedArray, n: usize, half_span: f64) -> Codebook {
        assert!(n >= 2 && half_span > 0.0 && half_span < PI);
        let key = CacheKey {
            array: array.fingerprint(),
            kind: CodebookKind::Directional,
            n,
            half_span_bits: half_span.to_bits(),
        };
        Codebook::cached(ctx, key, || {
            // Batched synthesis: all sector weight rows in one pass over
            // the angle grid (bit-identical to per-sector synthesis).
            let steers: Vec<Angle> = (0..n)
                .map(|i| {
                    let frac = i as f64 / (n - 1) as f64;
                    Angle::from_radians(-half_span + 2.0 * half_span * frac)
                })
                .collect();
            let rows: Vec<Vec<Complex>> =
                steers.iter().map(|&s| array.steering_weights(s)).collect();
            let patterns = synth_batch(ctx, array, &rows);
            steers
                .into_iter()
                .zip(patterns)
                .enumerate()
                .map(|(id, (steer, pattern))| Sector { id, steer, pattern })
                .collect()
        })
    }

    /// The default directional codebook used by the WiGig device models:
    /// 32 sectors over ±77.5°.
    pub fn directional_default(ctx: &SimCtx, array: &PhasedArray) -> Codebook {
        Codebook::directional(ctx, array, 32, 77.5f64.to_radians())
    }

    /// Build the 32-entry quasi-omni discovery codebook.
    ///
    /// Each entry activates a small subset of columns:
    /// * entries 0–27: adjacent pairs `(i, i+1)` with one of four phase
    ///   offsets — a 2-element interferometer whose wide (≈ 60° HPBW) beam
    ///   squints with the phase offset;
    /// * entries 28–31: pairs spaced two columns apart, whose grating lobes
    ///   carve the deep gaps seen in Fig. 16.
    ///
    /// The sweep order is fixed, matching the D5000's repeatable
    /// sub-element sequence (§3.2 relies on this to average patterns
    /// across discovery frames).
    pub fn quasi_omni_32(ctx: &SimCtx, array: &PhasedArray) -> Codebook {
        let cols = array.config().columns;
        assert!(cols >= 4, "quasi-omni codebook needs at least 4 columns");
        let key = CacheKey {
            array: array.fingerprint(),
            kind: CodebookKind::QuasiOmni,
            n: 32,
            half_span_bits: 0,
        };
        Codebook::cached(ctx, key, || {
            let phases = [0.0, PI / 2.0, PI, -PI / 2.0];
            let mut steers = Vec::with_capacity(32);
            let mut rows = Vec::with_capacity(32);
            'outer: for &dp in &phases {
                for i in 0..cols - 1 {
                    // Nominal direction of a 2-element pair with phase
                    // difference dp at λ/2 spacing: sinθ = dp/π.
                    steers.push(Angle::from_radians((dp / PI).clamp(-1.0, 1.0).asin()));
                    rows.push(array.quasi_omni_weights(&[(i, 0.0), (i + 1, dp)]));
                    if rows.len() == 28 {
                        break 'outer;
                    }
                }
            }
            // Spaced pairs: grating-lobed wide patterns.
            for k in 0..4 {
                let i = k % (cols - 2);
                let dp = phases[k % 4];
                steers.push(Angle::ZERO);
                rows.push(array.quasi_omni_weights(&[(i, 0.0), (i + 2, dp)]));
            }
            debug_assert_eq!(rows.len(), 32);
            // One batched pass synthesizes the whole discovery sweep.
            let patterns = synth_batch(ctx, array, &rows);
            steers
                .into_iter()
                .zip(patterns)
                .enumerate()
                .map(|(id, (steer, pattern))| Sector { id, steer, pattern })
                .collect()
        })
    }

    /// Codebook kind.
    pub fn kind(&self) -> CodebookKind {
        self.kind
    }

    /// Number of sectors.
    pub fn len(&self) -> usize {
        self.sectors.len()
    }

    /// True if the codebook is empty (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.sectors.is_empty()
    }

    /// Sector by index; panics on out-of-range.
    pub fn sector(&self, id: usize) -> &Sector {
        &self.sectors[id]
    }

    /// All sectors in sweep order.
    pub fn sectors(&self) -> &[Sector] {
        &self.sectors
    }

    /// The sector whose realized pattern has the highest gain towards
    /// `toward` (array-local azimuth) — what an exhaustive sector sweep
    /// against an omni peer would select.
    pub fn best_toward(&self, toward: Angle) -> &Sector {
        self.sectors
            .iter()
            .max_by(|a, b| {
                a.pattern
                    .gain_dbi(toward)
                    .partial_cmp(&b.pattern.gain_dbi(toward))
                    .expect("finite gains")
            })
            .expect("non-empty codebook")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::ArrayConfig;

    fn wigig_array() -> PhasedArray {
        PhasedArray::new(ArrayConfig::wigig_2x8(11))
    }

    fn ctx() -> SimCtx {
        SimCtx::new()
    }

    #[test]
    fn directional_codebook_spans_fan() {
        let cb = Codebook::directional_default(&ctx(), &wigig_array());
        assert_eq!(cb.len(), 32);
        assert_eq!(cb.kind(), CodebookKind::Directional);
        assert!((cb.sector(0).steer.degrees() + 77.5).abs() < 1e-9);
        assert!((cb.sector(31).steer.degrees() - 77.5).abs() < 1e-9);
        // Steering azimuths are strictly increasing.
        for w in cb.sectors().windows(2) {
            assert!(w[1].steer.degrees() > w[0].steer.degrees());
        }
    }

    #[test]
    fn directional_sectors_point_roughly_at_their_steer() {
        // With 2-bit shifters and manufacturing errors an occasional sector
        // squints badly (that is the paper's point!), but the large
        // majority of inner sectors must still point near their nominal
        // steering azimuth.
        let cb = Codebook::directional_default(&ctx(), &wigig_array());
        let inner: Vec<_> = cb
            .sectors()
            .iter()
            .filter(|s| s.steer.degrees().abs() < 50.0)
            .collect();
        let good = inner
            .iter()
            .filter(|s| s.pattern.peak().direction.distance(s.steer) < 12f64.to_radians())
            .count();
        assert!(
            good * 10 >= inner.len() * 8,
            "only {good}/{} inner sectors point at their steer",
            inner.len()
        );
    }

    #[test]
    fn best_toward_picks_matching_sector() {
        let cb = Codebook::directional_default(&ctx(), &wigig_array());
        let target = Angle::from_degrees(30.0);
        let best = cb.best_toward(target);
        // The chosen sector's gain towards the target beats the average
        // sector by a clear margin.
        let avg: f64 = cb
            .sectors()
            .iter()
            .map(|s| s.pattern.gain_dbi(target))
            .sum::<f64>()
            / cb.len() as f64;
        assert!(best.pattern.gain_dbi(target) > avg + 3.0);
    }

    #[test]
    fn quasi_omni_has_32_entries() {
        let cb = Codebook::quasi_omni_32(&ctx(), &wigig_array());
        assert_eq!(cb.len(), 32);
        assert_eq!(cb.kind(), CodebookKind::QuasiOmni);
        for (i, s) in cb.sectors().iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn quasi_omni_wider_than_directional() {
        let arr = wigig_array();
        let ctx = ctx();
        let qo = Codebook::quasi_omni_32(&ctx, &arr);
        let dir = Codebook::directional_default(&ctx, &arr);
        let qo_hpbw: f64 =
            qo.sectors().iter().map(|s| s.pattern.hpbw()).sum::<f64>() / qo.len() as f64;
        let dir_hpbw: f64 =
            dir.sectors().iter().map(|s| s.pattern.hpbw()).sum::<f64>() / dir.len() as f64;
        assert!(qo_hpbw > 2.0 * dir_hpbw, "qo {qo_hpbw} dir {dir_hpbw}");
    }

    #[test]
    fn quasi_omni_sweep_order_is_deterministic() {
        let arr = wigig_array();
        // Distinct contexts: the second build synthesizes from scratch.
        let a = Codebook::quasi_omni_32(&ctx(), &arr);
        let b = Codebook::quasi_omni_32(&ctx(), &arr);
        for (sa, sb) in a.sectors().iter().zip(b.sectors()) {
            assert_eq!(sa.pattern.samples(), sb.pattern.samples());
        }
    }

    #[test]
    fn cache_hits_share_sectors_and_count() {
        let ctx = ctx();
        let arr = wigig_array();
        let a = Codebook::directional_default(&ctx, &arr);
        let b = Codebook::directional_default(&ctx, &arr);
        assert!(
            Arc::ptr_eq(&a.sectors, &b.sectors),
            "hit must share the synthesized sectors"
        );
        // A different error seed is a different fingerprint: no sharing.
        let c = Codebook::directional_default(&ctx, &PhasedArray::new(ArrayConfig::wigig_2x8(12)));
        assert!(!Arc::ptr_eq(&a.sectors, &c.sectors));
        // Same array, different kind/params: distinct entries.
        let q = Codebook::quasi_omni_32(&ctx, &arr);
        assert!(!Arc::ptr_eq(&a.sectors, &q.sectors));
        let s = ctx.counters();
        assert_eq!(s.codebook_hits, 1);
        assert_eq!(s.codebook_misses, 3);
        assert_eq!(cache_len(&ctx), 3);
    }

    #[test]
    fn distinct_contexts_keep_distinct_caches() {
        let arr = wigig_array();
        let ctx_a = ctx();
        let ctx_b = ctx();
        let a = Codebook::directional_default(&ctx_a, &arr);
        let b = Codebook::directional_default(&ctx_b, &arr);
        assert!(
            !Arc::ptr_eq(&a.sectors, &b.sectors),
            "separate contexts must not share cache entries"
        );
        assert_eq!(ctx_a.counters().codebook_misses, 1);
        assert_eq!(ctx_b.counters().codebook_misses, 1);
        assert_eq!(ctx_b.counters().codebook_hits, 0);
    }

    #[test]
    fn cached_codebook_equals_fresh_synthesis() {
        let ctx = ctx();
        let arr = wigig_array();
        let first = Codebook::directional_default(&ctx, &arr);
        let hit = Codebook::directional_default(&ctx, &arr);
        // A fresh context has an empty cache: full synthesis.
        let fresh = Codebook::directional_default(&SimCtx::new(), &arr);
        for ((a, b), c) in first
            .sectors()
            .iter()
            .zip(hit.sectors())
            .zip(fresh.sectors())
        {
            assert_eq!(a.pattern.samples(), b.pattern.samples());
            assert_eq!(a.pattern.samples(), c.pattern.samples());
        }
    }

    #[test]
    fn cache_evicts_oldest_beyond_cap() {
        let ctx = ctx();
        // Distinct error seeds → distinct fingerprints; overflow the cap
        // (tiny 2-sector codebooks keep this fast).
        for seed in 0..(CACHE_CAP as u64 + 4) {
            Codebook::directional(
                &ctx,
                &PhasedArray::new(ArrayConfig::wigig_2x8(seed)),
                2,
                0.5,
            );
        }
        assert_eq!(cache_len(&ctx), CACHE_CAP);
    }

    #[test]
    fn prebuilt_pool_resolves_canonical_arrays_without_synthesis() {
        let pool = CodebookPrebuild::standard_devices();
        // 6 canonical arrays × directional + 4 wigig arrays × quasi-omni.
        assert_eq!(pool.len(), 10);

        let ctx = ctx();
        pool.install(&ctx);
        let dock = PhasedArray::new(ArrayConfig::wigig_2x8(crate::calib::DOCK_SEED));
        let a = Codebook::directional_default(&ctx, &dock);
        let s = ctx.counters();
        assert_eq!(s.codebook_prebuilt_hits, 1, "pool answers the cold miss");
        assert_eq!(s.codebook_misses, 0, "no synthesis for a canonical array");
        // Second request is a plain per-context hit sharing the pool's
        // sectors — steady state is indistinguishable from cold synthesis.
        let b = Codebook::directional_default(&ctx, &dock);
        assert!(Arc::ptr_eq(&a.sectors, &b.sectors));
        let s = ctx.counters();
        assert_eq!(s.codebook_prebuilt_hits, 1);
        assert_eq!(s.codebook_hits, 1);

        // Pool contents are byte-identical to a private synthesis.
        let fresh = Codebook::directional_default(&SimCtx::new(), &dock);
        for (pa, pf) in a.sectors().iter().zip(fresh.sectors()) {
            assert_eq!(pa.pattern.samples(), pf.pattern.samples());
        }

        // A non-canonical seed misses the pool and synthesizes privately.
        Codebook::directional_default(&ctx, &wigig_array());
        let s = ctx.counters();
        assert_eq!(s.codebook_misses, 1);
        assert_eq!(s.codebook_prebuilt_hits, 1);
    }

    #[test]
    fn prebuilt_pool_is_shareable_across_threads() {
        let pool = CodebookPrebuild::standard_devices();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let p = pool.clone();
                std::thread::spawn(move || {
                    let ctx = SimCtx::new();
                    p.install(&ctx);
                    let dock = PhasedArray::new(ArrayConfig::wigig_2x8(crate::calib::DOCK_SEED));
                    Codebook::directional_default(&ctx, &dock);
                    ctx.counters().codebook_prebuilt_hits
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1);
        }
    }

    #[test]
    fn quasi_omni_union_covers_front_hemisphere() {
        // Together the 32 patterns must reach a pairing device anywhere in
        // the serviced cone (the D5000's spec is a 120°-wide cone, i.e.
        // ±60°): max-over-patterns gain within 12 dB of the best direction.
        // Outside the cone, element roll-off makes holes physical.
        let cb = Codebook::quasi_omni_32(&ctx(), &wigig_array());
        let best_of = |a: Angle| -> f64 {
            cb.sectors()
                .iter()
                .map(|s| s.pattern.gain_dbi(a))
                .fold(f64::MIN, f64::max)
        };
        let overall_best = (-60..=60)
            .map(|d| best_of(Angle::from_degrees(d as f64)))
            .fold(f64::MIN, f64::max);
        for d in (-60..=60).step_by(5) {
            let g = best_of(Angle::from_degrees(d as f64));
            assert!(
                g > overall_best - 12.0,
                "coverage hole at {d}°: {g} vs {overall_best}"
            );
        }
    }
}
