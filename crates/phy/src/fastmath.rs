//! Bit-exact, inlinable clones of the two libm calls on the pattern
//! synthesis hot path: `f64::log10` and `f64::hypot`.
//!
//! # Why
//!
//! Every synthesized pattern sample ends in `field.abs()` (= `hypot`) and
//! `10·log10(af_power)`. Through std these are PLT calls into glibc — they
//! cannot inline, they serialize the surrounding loop, and they cost
//! ~6.4 ns / ~13.4 ns each. The clones below compute the *same bits* while
//! inlining into the chunked SoA loops of [`crate::array`], which restores
//! instruction-level parallelism across independent angle samples.
//!
//! # Why the bits match
//!
//! These are faithful transcriptions of the exact code paths glibc executes
//! on the build machines we target:
//!
//! * `log10` (sysdeps/ieee754/dbl-64/e_log10.c): mantissa/exponent split,
//!   then `__log`'s table-driven core — glibc's ifunc resolves `__log` to
//!   its FMA variant on any AVX2/FMA machine, and [`log_inner`] transcribes
//!   that variant's instruction stream (including every fused
//!   multiply-add, via `f64::mul_add`, which is exact by IEEE-754).
//! * `hypot` (sysdeps/ieee754/dbl-64/e_hypot.c, glibc ≥ 2.35): a single
//!   non-ifunc implementation; the rare extreme-magnitude scaling paths are
//!   delegated straight to std.
//!
//! Transcription fidelity is *verified at runtime*, not assumed: the first
//! call to [`enabled`] sweeps several million representative and random
//! inputs comparing clone vs std via `to_bits`. If even one bit differs
//! (e.g. a libc whose ifunc resolves differently), the clones are disabled
//! and every call falls back to std — slower, still correct. Differential
//! tests in this module and `tests/soa_equivalence.rs` re-check the same
//! property in CI.

use std::sync::OnceLock;

// Coefficients and breakpoint table of glibc's FMA `__log` variant, captured
// bit-exactly from libm's .rodata. `A` is the polynomial of the table path,
// `B` the higher-order polynomial of the |x−1| < 0x1.09p-5 path.
const LN2HI: f64 = f64::from_bits(0x3FE62E42FEFA3800);
const LN2LO: f64 = f64::from_bits(0x3D2EF35793C76730);
const A: [f64; 5] = [
    f64::from_bits(0xBFE0000000000001),
    f64::from_bits(0x3FD555555551305B),
    f64::from_bits(0xBFCFFFFFFFEB4590),
    f64::from_bits(0x3FC999B324F10111),
    f64::from_bits(0xBFC55575E506C89F),
];
const B: [f64; 11] = [
    f64::from_bits(0xBFE0000000000000),
    f64::from_bits(0x3FD5555555555577),
    f64::from_bits(0xBFCFFFFFFFFFFDCB),
    f64::from_bits(0x3FC999999995DD0C),
    f64::from_bits(0xBFC55555556745A7),
    f64::from_bits(0x3FC24924A344DE30),
    f64::from_bits(0xBFBFFFFFA4423D65),
    f64::from_bits(0x3FBC7184282AD6CA),
    f64::from_bits(0xBFB999EB43B068FF),
    f64::from_bits(0x3FB78182F7AFD085),
    f64::from_bits(0xBFB5521375D145CD),
];
const IVLN10: f64 = f64::from_bits(0x3FDBCB7B1526E50E);
const LOG10_2HI: f64 = f64::from_bits(0x3FD34413509F6000);
const LOG10_2LO: f64 = f64::from_bits(0x3D59FEF311F12B36);
const TWO54: f64 = f64::from_bits(0x4350000000000000);
const OFF: u64 = 0x3fe6000000000000;

// (invc, logc) breakpoint pairs of glibc __log, captured bit-exactly.
const LOG_TAB: [(u64, u64); 128] = [
    (0x3FF734F0C3E0DE9F, 0xBFD7CC7F79E69000),
    (0x3FF713786A2CE91F, 0xBFD76FEEC20D0000),
    (0x3FF6F26008FAB5A0, 0xBFD713E31351E000),
    (0x3FF6D1A61F138C7D, 0xBFD6B85B38287800),
    (0x3FF6B1490BC5B4D1, 0xBFD65D5590807800),
    (0x3FF69147332F0CBA, 0xBFD602D076180000),
    (0x3FF6719F18224223, 0xBFD5A8CA86909000),
    (0x3FF6524F99A51ED9, 0xBFD54F4356035000),
    (0x3FF63356AA8F24C4, 0xBFD4F637C36B4000),
    (0x3FF614B36B9DDC14, 0xBFD49DA7FDA85000),
    (0x3FF5F66452C65C4C, 0xBFD445923989A800),
    (0x3FF5D867B5912C4F, 0xBFD3EDF439B0B800),
    (0x3FF5BABCCB5B90DE, 0xBFD396CE448F7000),
    (0x3FF59D61F2D91A78, 0xBFD3401E17BDA000),
    (0x3FF5805612465687, 0xBFD2E9E2EF468000),
    (0x3FF56397CEE76BD3, 0xBFD2941B3830E000),
    (0x3FF54725E2A77F93, 0xBFD23EC58CDA8800),
    (0x3FF52AFF42064583, 0xBFD1E9E129279000),
    (0x3FF50F22DBB2BDDF, 0xBFD1956D2B48F800),
    (0x3FF4F38F4734DED7, 0xBFD141679AB9F800),
    (0x3FF4D843CFDE2840, 0xBFD0EDD094EF9800),
    (0x3FF4BD3EC078A3C8, 0xBFD09AA518DB1000),
    (0x3FF4A27FC3E0258A, 0xBFD047E65263B800),
    (0x3FF4880524D48434, 0xBFCFEB224586F000),
    (0x3FF46DCE1B192D0B, 0xBFCF474A7517B000),
    (0x3FF453D9D3391854, 0xBFCEA4443D103000),
    (0x3FF43A2744B4845A, 0xBFCE020D44E9B000),
    (0x3FF420B54115F8FB, 0xBFCD60A22977F000),
    (0x3FF40782DA3EF4B1, 0xBFCCC00104959000),
    (0x3FF3EE8F5D57FE8F, 0xBFCC202956891000),
    (0x3FF3D5D9A00B4CE9, 0xBFCB81178D811000),
    (0x3FF3BD60C010C12B, 0xBFCAE2C9CCD3D000),
    (0x3FF3A5242B75DAB8, 0xBFCA45402E129000),
    (0x3FF38D22CD9FD002, 0xBFC9A877681DF000),
    (0x3FF3755BC5847A1C, 0xBFC90C6D69483000),
    (0x3FF35DCE49AD36E2, 0xBFC87120A645C000),
    (0x3FF34679984DD440, 0xBFC7D68FB4143000),
    (0x3FF32F5CCEFFCB24, 0xBFC73CB83C627000),
    (0x3FF3187775A10D49, 0xBFC6A39A9B376000),
    (0x3FF301C8373E3990, 0xBFC60B3154B7A000),
    (0x3FF2EB4EBB95F841, 0xBFC5737D76243000),
    (0x3FF2D50A0219A9D1, 0xBFC4DC7B8FC23000),
    (0x3FF2BEF9A8B7FD2A, 0xBFC4462C51D20000),
    (0x3FF2A91C7A0C1BAB, 0xBFC3B08ABC830000),
    (0x3FF293726014B530, 0xBFC31B996B490000),
    (0x3FF27DFA5757A1F5, 0xBFC2875490A44000),
    (0x3FF268B39B1D3BBF, 0xBFC1F3B9F879A000),
    (0x3FF2539D838FF5BD, 0xBFC160C8252CA000),
    (0x3FF23EB7AAC9083B, 0xBFC0CE7F57F72000),
    (0x3FF22A012BA940B6, 0xBFC03CDC49FEA000),
    (0x3FF2157996CC4132, 0xBFBF57BDBC4B8000),
    (0x3FF201201DD2FC9B, 0xBFBE370896404000),
    (0x3FF1ECF4494D480B, 0xBFBD17983EF94000),
    (0x3FF1D8F5528F6569, 0xBFBBF9674ED8A000),
    (0x3FF1C52311577E7C, 0xBFBADC79202F6000),
    (0x3FF1B17C74CB26E9, 0xBFB9C0C3E7288000),
    (0x3FF19E010C2C1AB6, 0xBFB8A646B372C000),
    (0x3FF18AB07BB670BD, 0xBFB78D01B3AC0000),
    (0x3FF1778A25EFBCB6, 0xBFB674F145380000),
    (0x3FF1648D354C31DA, 0xBFB55E0E6D878000),
    (0x3FF151B990275FDD, 0xBFB4485CDEA1E000),
    (0x3FF13F0EA432D24C, 0xBFB333D94D6AA000),
    (0x3FF12C8B7210F9DA, 0xBFB22079F8C56000),
    (0x3FF11A3028ECB531, 0xBFB10E4698622000),
    (0x3FF107FBDA8434AF, 0xBFAFFA6C6AD20000),
    (0x3FF0F5EE0F4E6BB3, 0xBFADDA8D4A774000),
    (0x3FF0E4065D2A9FCE, 0xBFABBCECE4850000),
    (0x3FF0D244632CA521, 0xBFA9A1894012C000),
    (0x3FF0C0A77CE2981A, 0xBFA788583302C000),
    (0x3FF0AF2F83C636D1, 0xBFA5715E67D68000),
    (0x3FF09DDB98A01339, 0xBFA35C8A49658000),
    (0x3FF08CABAF52E7DF, 0xBFA149E364154000),
    (0x3FF07B9F2F4E28FB, 0xBF9E72C082EB8000),
    (0x3FF06AB58C358F19, 0xBF9A55F152528000),
    (0x3FF059EEA5ECF92C, 0xBF963D62CF818000),
    (0x3FF04949CDD12C90, 0xBF9228FB8CAA0000),
    (0x3FF038C6C6F0ADA9, 0xBF8C317B20F90000),
    (0x3FF02865137932A9, 0xBF8419355DAA0000),
    (0x3FF0182427EA7348, 0xBF781203C2EC0000),
    (0x3FF008040614B195, 0xBF60040979240000),
    (0x3FEFE01FF726FA1A, 0x3F6FEFF384900000),
    (0x3FEFA11CC261EA74, 0x3F87DC41353D0000),
    (0x3FEF6310B081992E, 0x3F93CEA3C4C28000),
    (0x3FEF25F63CEEADCD, 0x3F9B9FC114890000),
    (0x3FEEE9C8039113E7, 0x3FA1B0D8CE110000),
    (0x3FEEAE8078CBB1AB, 0x3FA58A5BD001C000),
    (0x3FEE741AA29D0C9B, 0x3FA95C8340D88000),
    (0x3FEE3A91830A99B5, 0x3FAD276AEF578000),
    (0x3FEE01E009609A56, 0x3FB07598E598C000),
    (0x3FEDCA01E577BB98, 0x3FB253F5E30D2000),
    (0x3FED92F20B7C9103, 0x3FB42EDD8B380000),
    (0x3FED5CAC66FB5CCE, 0x3FB606598757C000),
    (0x3FED272CAA5EDE9D, 0x3FB7DA76356A0000),
    (0x3FECF26E3E6B2CCD, 0x3FB9AB434E1C6000),
    (0x3FECBE6DA2A77902, 0x3FBB78C7BB0D6000),
    (0x3FEC8B266D37086D, 0x3FBD431332E72000),
    (0x3FEC5894BD5D5804, 0x3FBF0A3171DE6000),
    (0x3FEC26B533BB9F8C, 0x3FC067152B914000),
    (0x3FEBF583EEECE73F, 0x3FC147858292B000),
    (0x3FEBC4FD75DB96C1, 0x3FC2266ECDCA3000),
    (0x3FEB951E0C864A28, 0x3FC303D7A6C55000),
    (0x3FEB65E2C5EF3E2C, 0x3FC3DFC33C331000),
    (0x3FEB374867C9888B, 0x3FC4BA366B7A8000),
    (0x3FEB094B211D304A, 0x3FC5933928D1F000),
    (0x3FEADBE885F2EF7E, 0x3FC66ACD2418F000),
    (0x3FEAAF1D31603DA2, 0x3FC740F8EC669000),
    (0x3FEA82E63FD358A7, 0x3FC815C0F51AF000),
    (0x3FEA5740EF09738B, 0x3FC8E92954F68000),
    (0x3FEA2C2A90AB4B27, 0x3FC9BB3602F84000),
    (0x3FEA01A01393F2D1, 0x3FCA8BED1C2C0000),
    (0x3FE9D79F24DB3C1B, 0x3FCB5B515C01D000),
    (0x3FE9AE2505C7B190, 0x3FCC2967CCBCC000),
    (0x3FE9852EF297CE2F, 0x3FCCF635D5486000),
    (0x3FE95CBAEEA44B75, 0x3FCDC1BD3446C000),
    (0x3FE934C69DE74838, 0x3FCE8C01B8CFE000),
    (0x3FE90D4F2F6752E6, 0x3FCF5509C0179000),
    (0x3FE8E6528EFFD79D, 0x3FD00E6C121FB800),
    (0x3FE8BFCE9FCC007C, 0x3FD071B80E93D000),
    (0x3FE899C0DABEC30E, 0x3FD0D46B9E867000),
    (0x3FE87427AA2317FB, 0x3FD13687334BD000),
    (0x3FE84F00ACB39A08, 0x3FD1980D67234800),
    (0x3FE82A49E8653E55, 0x3FD1F8FFE0CC8000),
    (0x3FE8060195F40260, 0x3FD2595FD7636800),
    (0x3FE7E22563E0A329, 0x3FD2B9300914A800),
    (0x3FE7BEB377DCB5AD, 0x3FD3187210436000),
    (0x3FE79BAA679725C2, 0x3FD377266DEC1800),
    (0x3FE77907F2170657, 0x3FD3D54FFBAF3000),
    (0x3FE756CADBD6130C, 0x3FD432EEE32FE000),
];

/// Core of glibc's `__log` (FMA variant): natural log of a mantissa-range
/// input. Private — callers go through [`log10`].
#[inline(always)]
fn log_inner(x: f64) -> f64 {
    let ix = x.to_bits();
    if ix.wrapping_sub(0x3fee000000000000) < 0x3090000000000 {
        // |x − 1| < 0x1.09p-5: dedicated near-1 path.
        if ix == 0x3ff0000000000000 {
            return 0.0;
        }
        let r = x - 1.0;
        let r2 = r * r;
        let r3 = r * r2;
        let p1 = r2.mul_add(B[3], B[2].mul_add(r, B[1]));
        let p2 = r2.mul_add(B[6], B[5].mul_add(r, B[4]));
        let p3 = r3.mul_add(B[10], r2.mul_add(B[9], B[8].mul_add(r, B[7])));
        let u = p3.mul_add(r3, p2).mul_add(r3, p1);
        // Split r into rhi + rlo (Dekker) so r² gets an exact correction.
        let c27 = f64::from_bits(0x41A0000000000000); // 0x1p27
        let t = r.mul_add(c27, r);
        let rhi = (-c27).mul_add(r, t);
        let rlo = r - rhi;
        let rhi2 = rhi * rhi;
        let hi = rhi2.mul_add(B[0], r);
        let lo = rhi2.mul_add(B[0], r - hi);
        let lo2 = (B[0] * rlo).mul_add(r + rhi, lo);
        return hi + u.mul_add(r3, lo2);
    }
    // Table path: x = 2^k · z, z ≈ c_i, log x = k·ln2 + log c_i + log(z/c_i).
    let tmp = ix.wrapping_sub(OFF);
    let i = ((tmp >> 45) & 127) as usize;
    let k = (tmp as i64) >> 52;
    let iz = ix.wrapping_sub(tmp & (0xfffu64 << 52));
    let z = f64::from_bits(iz);
    let (invc_b, logc_b) = LOG_TAB[i];
    let (invc, logc) = (f64::from_bits(invc_b), f64::from_bits(logc_b));
    let kd = k as f64;
    let r = z.mul_add(invc, -1.0);
    let w = kd.mul_add(LN2HI, logc);
    let hi = r + w;
    let lo = kd.mul_add(LN2LO, (w - hi) + r);
    let r2 = r * r;
    let r3 = r * r2;
    let q = A[2].mul_add(r, A[1]);
    let s = A[4].mul_add(r, A[3]);
    let lo2 = r2.mul_add(A[0], lo);
    let p = s.mul_add(r2, q);
    r3.mul_add(p, lo2) + hi
}

/// Clone of glibc `log10`, unconditionally (not gated by the self-test).
/// Non-positive, infinite and NaN inputs are delegated to std, which is
/// trivially bit-identical.
#[inline(always)]
pub fn log10_raw(x: f64) -> f64 {
    let ix = x.to_bits();
    if !(x > 0.0) || ix >= 0x7ff0000000000000 {
        return x.log10();
    }
    let mut k: i64 = 0;
    let mut hx = ix as i64;
    let mut x = x;
    if hx < 0x0010000000000000 {
        // Subnormal: renormalize via an exact power-of-two scale.
        k -= 54;
        x *= TWO54;
        hx = x.to_bits() as i64;
    }
    k += (hx >> 52) - 1023;
    let i = ((k as u64) >> 63) as i64;
    let mant = (hx as u64 & 0x000fffffffffffff) | (((0x3ff - i) as u64) << 52);
    let y = (k + i) as f64;
    let xr = f64::from_bits(mant);
    (IVLN10 * log_inner(xr) + y * LOG10_2LO) + y * LOG10_2HI
}

/// Clone of glibc `hypot` (≥ 2.35, Wilco Dijkstra's algorithm),
/// unconditionally. Non-finite inputs and the extreme-magnitude scaling
/// branches are delegated to std.
#[inline(always)]
pub fn hypot_raw(x: f64, y: f64) -> f64 {
    if !x.is_finite() || !y.is_finite() {
        return x.hypot(y);
    }
    let mut ax = x.abs();
    let mut ay = y.abs();
    if ax < ay {
        std::mem::swap(&mut ax, &mut ay);
    }
    // |x| > 0x1p511 or 0 < |y| < 0x1p-459: glibc rescales; delegate.
    if ax > f64::from_bits(0x5FE0000000000000)
        || (ay < f64::from_bits(0x2340000000000000) && ay != 0.0)
    {
        return x.hypot(y);
    }
    // ay ≪ ax: the sum is just ax correctly rounded.
    if ax * f64::from_bits(0x3C90000000000000) >= ay {
        return ax + ay;
    }
    let h = (ax * ax + ay * ay).sqrt();
    // One correction step recovers the exactly-rounded result from the
    // naively computed square root.
    let (t1, t2);
    if h <= 2.0 * ay {
        let delta = h - ay;
        t1 = ((delta + delta) - ax) * ax;
        t2 = (delta - ((ax - ay) + (ax - ay))) * delta;
    } else {
        let delta = h - ax;
        t1 = (delta + delta) * (ax - (ay + ay));
        t2 = ((4.0 * delta) - ay) * ay + delta * delta;
    }
    h - (t1 + t2) / (h + h)
}

/// Whether the clones reproduce this machine's libm bit-for-bit.
///
/// Computed once per process by sweeping random bit patterns plus dense
/// sweeps of the domains the synthesis loops actually hit (near-1 log
/// arguments, small af_power values, mid-range field magnitudes). On any
/// mismatch the fast path is permanently disabled for this process.
pub fn enabled() -> bool {
    static OK: OnceLock<bool> = OnceLock::new();
    *OK.get_or_init(self_test)
}

fn self_test() -> bool {
    let mut s: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    // Random positive bit patterns for log10; random pairs for hypot.
    for _ in 0..200_000u32 {
        let v = f64::from_bits(next() & 0x7fff_ffff_ffff_ffff);
        if log10_raw(v).to_bits() != v.log10().to_bits() {
            return false;
        }
        let a = f64::from_bits(next() & 0x7fff_ffff_ffff_ffff);
        let b = f64::from_bits(next() & 0x7fff_ffff_ffff_ffff);
        if hypot_raw(a, b).to_bits() != a.hypot(b).to_bits() {
            return false;
        }
    }
    // Dense sweep across the near-1 boundary (0.9 … 1.15) and the small
    // af_power domain (0, 4], plus mid-range hypot magnitudes.
    for j in 0..200_000u32 {
        let v = 0.9 + f64::from(j) * 1.25e-6;
        if log10_raw(v).to_bits() != v.log10().to_bits() {
            return false;
        }
        let w = f64::from(j + 1) * 2e-5;
        if log10_raw(w).to_bits() != w.log10().to_bits() {
            return false;
        }
        let a = (f64::from(j) * 0.37).sin() * 4.0;
        let b = (f64::from(j) * 0.53).cos() * 4.0;
        if hypot_raw(a, b).to_bits() != a.hypot(b).to_bits() {
            return false;
        }
    }
    true
}

/// `log10(x)` selected by a caller-hoisted gate: `fast` must be the result
/// of [`enabled`]. Branching on a register bool lets LLVM unswitch the
/// surrounding loop instead of re-checking the `OnceLock` per sample.
#[inline(always)]
pub fn log10_sel(fast: bool, x: f64) -> f64 {
    if fast {
        log10_raw(x)
    } else {
        x.log10()
    }
}

/// `hypot(x, y)` selected by a caller-hoisted gate (see [`log10_sel`]).
#[inline(always)]
pub fn hypot_sel(fast: bool, x: f64, y: f64) -> f64 {
    if fast {
        hypot_raw(x, y)
    } else {
        x.hypot(y)
    }
}

/// Gated `log10`: bit-identical to `x.log10()` on every input.
#[inline(always)]
pub fn log10(x: f64) -> f64 {
    log10_sel(enabled(), x)
}

/// Gated `hypot`: bit-identical to `x.hypot(y)` on every input.
#[inline(always)]
pub fn hypot(x: f64, y: f64) -> f64 {
    hypot_sel(enabled(), x, y)
}

/// Lane width of the chunked slice kernels. Eight f64s = two AVX2 vectors;
/// wide enough to amortize the per-chunk fallback scan, small enough that
/// an extreme lane only de-vectorizes a short run.
const LANES: usize = 8;

/// `out[k] = re[k].hypot(im[k])` for every `k`, bit-identical to std.
///
/// The common case (all lanes mid-magnitude) runs branchless — both
/// correction arms of the hypot algorithm are evaluated and selected per
/// lane, which is exact because each arm is plain finite arithmetic and
/// the untaken value is discarded — so the loop autovectorizes, including
/// the square root (`vsqrtpd`). Chunks containing an extreme lane
/// (overflow-scale, subnormal-scale, or non-finite) fall back to the
/// scalar path for that chunk.
#[inline]
pub fn hypot_slice(re: &[f64], im: &[f64], out: &mut [f64]) {
    assert!(re.len() == im.len() && re.len() == out.len());
    let fast = enabled();
    if !fast {
        for k in 0..re.len() {
            out[k] = re[k].hypot(im[k]);
        }
        return;
    }
    let n = re.len();
    let mut k = 0;
    while k + LANES <= n {
        let r = &re[k..k + LANES];
        let m = &im[k..k + LANES];
        // Fallback scan: a NaN lane fails the `<=` compare and lands in
        // the scalar path too.
        let mut fb = false;
        for j in 0..LANES {
            let ax = r[j].abs();
            let ay = m[j].abs();
            let hi = if ax < ay { ay } else { ax };
            let lo = if ax < ay { ax } else { ay };
            let ok = (hi <= f64::from_bits(0x5FE0000000000000))
                & ((lo >= f64::from_bits(0x2340000000000000)) | (lo == 0.0));
            fb |= !ok;
        }
        let o = &mut out[k..k + LANES];
        if fb {
            for j in 0..LANES {
                o[j] = hypot_raw(r[j], m[j]);
            }
        } else {
            for j in 0..LANES {
                let ax0 = r[j].abs();
                let ay0 = m[j].abs();
                let ax = if ax0 < ay0 { ay0 } else { ax0 };
                let ay = if ax0 < ay0 { ax0 } else { ay0 };
                let exitc = ax * f64::from_bits(0x3C90000000000000) >= ay;
                let h = (ax * ax + ay * ay).sqrt();
                let cond = h <= 2.0 * ay;
                let d1 = h - ay;
                let t1a = ((d1 + d1) - ax) * ax;
                let t2a = (d1 - ((ax - ay) + (ax - ay))) * d1;
                let d2 = h - ax;
                let t1b = (d2 + d2) * (ax - (ay + ay));
                let t2b = ((4.0 * d2) - ay) * ay + d2 * d2;
                let t1 = if cond { t1a } else { t1b };
                let t2 = if cond { t2a } else { t2b };
                let corr = h - (t1 + t2) / (h + h);
                o[j] = if exitc { ax + ay } else { corr };
            }
        }
        k += LANES;
    }
    while k < n {
        out[k] = hypot_raw(re[k], im[k]);
        k += 1;
    }
}

/// `out[k] = xs[k].log10()` for every `k`, bit-identical to std
/// (`0 → -inf`, negatives → NaN via the scalar fallback).
///
/// Normal-range chunks run in three phases: an integer phase splitting
/// exponent/mantissa and loading the `__log` breakpoint table, a pure-f64
/// phase evaluating the table-path polynomial (autovectorized, all fmas),
/// and a rare scalar patch-up for lanes whose mantissa falls in the
/// near-1 window of `__log`. Chunks with a subnormal, non-finite or
/// negative lane take the scalar clone for the whole chunk.
#[inline]
pub fn log10_slice(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len());
    let fast = enabled();
    if !fast {
        for k in 0..xs.len() {
            out[k] = xs[k].log10();
        }
        return;
    }
    let n = xs.len();
    let mut k = 0;
    while k + LANES <= n {
        let x = &xs[k..k + LANES];
        let mut fb = false;
        for j in 0..LANES {
            let v = x[j];
            let ok = (v >= f64::from_bits(0x0010000000000000)) & (v < f64::INFINITY);
            fb |= !(ok | (v == 0.0));
        }
        let o = &mut out[k..k + LANES];
        if fb {
            for j in 0..LANES {
                o[j] = log10_raw(x[j]);
            }
        } else {
            let mut zz = [0.0f64; LANES];
            let mut kd = [0.0f64; LANES];
            let mut yy = [0.0f64; LANES];
            let mut invc = [0.0f64; LANES];
            let mut logc = [0.0f64; LANES];
            let mut near_any = false;
            // Phase 1: exponent/mantissa split + breakpoint lookup.
            for j in 0..LANES {
                let ix = x[j].to_bits();
                let hx = ix as i64;
                let ke = (hx >> 52) - 1023;
                let i_neg = ((ke as u64) >> 63) as i64;
                let mant = (ix & 0x000fffffffffffff) | (((0x3ff - i_neg) as u64) << 52);
                yy[j] = (ke + i_neg) as f64;
                near_any |= mant.wrapping_sub(0x3fee000000000000) < 0x3090000000000;
                let tmp = mant.wrapping_sub(OFF);
                let ti = ((tmp >> 45) & 127) as usize;
                kd[j] = ((tmp as i64) >> 52) as f64;
                zz[j] = f64::from_bits(mant.wrapping_sub(tmp & (0xfffu64 << 52)));
                let (ib, lb) = LOG_TAB[ti];
                invc[j] = f64::from_bits(ib);
                logc[j] = f64::from_bits(lb);
            }
            // Phase 2: table-arm polynomial (pure f64, vectorizes).
            for j in 0..LANES {
                let r = zz[j].mul_add(invc[j], -1.0);
                let w = kd[j].mul_add(LN2HI, logc[j]);
                let hi = r + w;
                let lo = kd[j].mul_add(LN2LO, (w - hi) + r);
                let r2 = r * r;
                let r3 = r * r2;
                let q = A[2].mul_add(r, A[1]);
                let s = A[4].mul_add(r, A[3]);
                let lo2 = r2.mul_add(A[0], lo);
                let p = s.mul_add(r2, q);
                let linner = r3.mul_add(p, lo2) + hi;
                let y = yy[j];
                let res = (IVLN10 * linner + y * LOG10_2LO) + y * LOG10_2HI;
                o[j] = if x[j] == 0.0 { f64::NEG_INFINITY } else { res };
            }
            // Phase 3: near-1 mantissas re-run through the scalar clone
            // (its dedicated near-1 path computes different — more
            // accurate — bits than the table path).
            if near_any {
                for j in 0..LANES {
                    let ix = x[j].to_bits();
                    let hx = ix as i64;
                    let ke = (hx >> 52) - 1023;
                    let i_neg = ((ke as u64) >> 63) as i64;
                    let mant = (ix & 0x000fffffffffffff) | (((0x3ff - i_neg) as u64) << 52);
                    if mant.wrapping_sub(0x3fee000000000000) < 0x3090000000000 {
                        o[j] = log10_raw(x[j]);
                    }
                }
            }
        }
        k += LANES;
    }
    while k < n {
        out[k] = log10_raw(xs[k]);
        k += 1;
    }
}

/// Fused pattern-synthesis tail. For every `k`:
///
/// ```text
/// af    = hypot(re[k], im[k])
/// out[k] = edb[k] + (10·log10(af² / active)).max(-60) + gain
/// ```
///
/// bit-identical to running `hypot_slice`, the square/normalize pass,
/// `log10_slice` and the dB combine separately (a zero field maps to −60
/// through `10·log10(0) = −inf`), but in one pass: the field magnitude and
/// power never round-trip through memory, and there is no per-stage scan
/// overhead. This is the hot tail of [`crate::array`]'s chunked synthesis.
#[inline]
pub fn pattern_db_slice(
    re: &[f64],
    im: &[f64],
    active: f64,
    edb: &[f64],
    gain: f64,
    out: &mut [f64],
) {
    assert!(re.len() == im.len() && re.len() == edb.len() && re.len() == out.len());
    #[inline(always)]
    fn tail_scalar(fast: bool, rj: f64, ij: f64, active: f64, e: f64, gain: f64) -> f64 {
        let af = hypot_sel(fast, rj, ij);
        let p = af * af / active;
        let af_db = 10.0 * log10_sel(fast, p);
        e + af_db.max(-60.0) + gain
    }
    let n = re.len();
    let fast = enabled();
    if !fast {
        for k in 0..n {
            out[k] = tail_scalar(false, re[k], im[k], active, edb[k], gain);
        }
        return;
    }
    let mut k = 0;
    while k + LANES <= n {
        let r = &re[k..k + LANES];
        let m = &im[k..k + LANES];
        let e = &edb[k..k + LANES];
        let o = &mut out[k..k + LANES];
        // Branchless hypot and power, kept in lane-local registers. The
        // domain check rides along in the same pass (a NaN lane fails the
        // compares and flags the fallback); extreme lanes compute garbage
        // here — finite-arithmetic, trap-free garbage — and the whole
        // chunk is then redone through the scalar path.
        let mut pw = [0.0f64; LANES];
        let mut ok = true;
        for j in 0..LANES {
            let ax0 = r[j].abs();
            let ay0 = m[j].abs();
            let ax = if ax0 < ay0 { ay0 } else { ax0 };
            let ay = if ax0 < ay0 { ax0 } else { ay0 };
            ok &= (ax <= f64::from_bits(0x5FE0000000000000))
                & ((ay >= f64::from_bits(0x2340000000000000)) | (ay == 0.0));
            let exitc = ax * f64::from_bits(0x3C90000000000000) >= ay;
            let h = (ax * ax + ay * ay).sqrt();
            let cond = h <= 2.0 * ay;
            let d1 = h - ay;
            let t1a = ((d1 + d1) - ax) * ax;
            let t2a = (d1 - ((ax - ay) + (ax - ay))) * d1;
            let d2 = h - ax;
            let t1b = (d2 + d2) * (ax - (ay + ay));
            let t2b = ((4.0 * d2) - ay) * ay + d2 * d2;
            let t1 = if cond { t1a } else { t1b };
            let t2 = if cond { t2a } else { t2b };
            let corr = h - (t1 + t2) / (h + h);
            let af = if exitc { ax + ay } else { corr };
            pw[j] = af * af / active;
        }
        if !ok {
            for j in 0..LANES {
                o[j] = tail_scalar(true, r[j], m[j], active, e[j], gain);
            }
            k += LANES;
            continue;
        }
        // Log10 fallback scan over the normalized powers.
        let mut lfb = false;
        for j in 0..LANES {
            let v = pw[j];
            let ok = (v >= f64::from_bits(0x0010000000000000)) & (v < f64::INFINITY);
            lfb |= !(ok | (v == 0.0));
        }
        if lfb {
            for j in 0..LANES {
                let af_db = 10.0 * log10_raw(pw[j]);
                o[j] = e[j] + af_db.max(-60.0) + gain;
            }
            k += LANES;
            continue;
        }
        let mut zz = [0.0f64; LANES];
        let mut kd = [0.0f64; LANES];
        let mut yy = [0.0f64; LANES];
        let mut invc = [0.0f64; LANES];
        let mut logc = [0.0f64; LANES];
        let mut near_any = false;
        // Phase 1: exponent/mantissa split + breakpoint lookup.
        for j in 0..LANES {
            let ix = pw[j].to_bits();
            let hx = ix as i64;
            let ke = (hx >> 52) - 1023;
            let i_neg = ((ke as u64) >> 63) as i64;
            let mant = (ix & 0x000fffffffffffff) | (((0x3ff - i_neg) as u64) << 52);
            yy[j] = (ke + i_neg) as f64;
            near_any |= mant.wrapping_sub(0x3fee000000000000) < 0x3090000000000;
            let tmp = mant.wrapping_sub(OFF);
            let ti = ((tmp >> 45) & 127) as usize;
            kd[j] = ((tmp as i64) >> 52) as f64;
            zz[j] = f64::from_bits(mant.wrapping_sub(tmp & (0xfffu64 << 52)));
            let (ib, lb) = LOG_TAB[ti];
            invc[j] = f64::from_bits(ib);
            logc[j] = f64::from_bits(lb);
        }
        // Phase 2: table-arm polynomial plus dB combine (pure f64,
        // vectorizes; `10·(−inf) = −inf` so a zero power clamps to −60).
        for j in 0..LANES {
            let rr = zz[j].mul_add(invc[j], -1.0);
            let w = kd[j].mul_add(LN2HI, logc[j]);
            let hi = rr + w;
            let lo = kd[j].mul_add(LN2LO, (w - hi) + rr);
            let r2 = rr * rr;
            let r3 = rr * r2;
            let q = A[2].mul_add(rr, A[1]);
            let s = A[4].mul_add(rr, A[3]);
            let lo2 = r2.mul_add(A[0], lo);
            let p = s.mul_add(r2, q);
            let linner = r3.mul_add(p, lo2) + hi;
            let y = yy[j];
            let res = (IVLN10 * linner + y * LOG10_2LO) + y * LOG10_2HI;
            let lg = if pw[j] == 0.0 { f64::NEG_INFINITY } else { res };
            let af_db = 10.0 * lg;
            o[j] = e[j] + af_db.max(-60.0) + gain;
        }
        // Phase 3: rare near-1 powers re-run through the scalar clone.
        if near_any {
            for j in 0..LANES {
                let ix = pw[j].to_bits();
                let hx = ix as i64;
                let ke = (hx >> 52) - 1023;
                let i_neg = ((ke as u64) >> 63) as i64;
                let mant = (ix & 0x000fffffffffffff) | (((0x3ff - i_neg) as u64) << 52);
                if mant.wrapping_sub(0x3fee000000000000) < 0x3090000000000 {
                    let af_db = 10.0 * log10_raw(pw[j]);
                    o[j] = e[j] + af_db.max(-60.0) + gain;
                }
            }
        }
        k += LANES;
    }
    while k < n {
        out[k] = tail_scalar(true, re[k], im[k], active, edb[k], gain);
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes_on_this_machine() {
        // Informational on foreign libms (the gate would fall back to std),
        // but on the pinned CI image the clones must match.
        assert!(enabled(), "fastmath clones disagree with this libm");
    }

    #[test]
    fn log10_matches_std_on_random_bits() {
        let mut s: u64 = 0xD1B5_4A32_D192_ED03;
        for _ in 0..2_000_000u32 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let v = f64::from_bits(s & 0x7fff_ffff_ffff_ffff);
            assert_eq!(
                log10(v).to_bits(),
                v.log10().to_bits(),
                "log10 mismatch at {v:e} ({:#x})",
                v.to_bits()
            );
        }
    }

    #[test]
    fn hypot_matches_std_on_random_bits() {
        let mut s: u64 = 0xA076_1D64_78BD_642F;
        for _ in 0..1_000_000u32 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let a = f64::from_bits(s & 0x7fff_ffff_ffff_ffff);
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let b = f64::from_bits(s & 0x7fff_ffff_ffff_ffff);
            assert_eq!(
                hypot(a, b).to_bits(),
                a.hypot(b).to_bits(),
                "hypot mismatch at ({a:e}, {b:e})"
            );
        }
    }

    #[test]
    fn slice_kernels_match_std() {
        let mut s: u64 = 0x1234_5678_9ABC_DEF1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // Odd length exercises the scalar remainder tail.
        let n = 1021usize;
        let mut a = vec![0.0f64; n];
        let mut b = vec![0.0f64; n];
        let mut o = vec![0.0f64; n];
        for round in 0..400 {
            for j in 0..n {
                if round % 3 == 0 {
                    // Synthesis-like mid-range magnitudes.
                    a[j] = f64::from_bits(next()).sin() * 4.0;
                    b[j] = f64::from_bits(next()).cos() * 4.0;
                } else {
                    // Arbitrary bit patterns, extremes included.
                    a[j] = f64::from_bits(next() & 0x7fff_ffff_ffff_ffff);
                    b[j] = f64::from_bits(next() & 0x7fff_ffff_ffff_ffff);
                }
            }
            hypot_slice(&a, &b, &mut o);
            for j in 0..n {
                assert_eq!(
                    o[j].to_bits(),
                    a[j].hypot(b[j]).to_bits(),
                    "hypot_slice({}, {})",
                    a[j],
                    b[j]
                );
            }
            for j in 0..n {
                a[j] = match round % 3 {
                    // af_power domain including exact zeros.
                    0 => (next() & 0xffff) as f64 * 1.25e-4,
                    // Dense near-1 (both __log paths).
                    1 => 0.9 + (next() & 0xfffff) as f64 * 2.5e-7,
                    _ => f64::from_bits(next() & 0x7fff_ffff_ffff_ffff),
                };
            }
            log10_slice(&a, &mut o);
            for j in 0..n {
                let want = a[j].log10();
                assert!(
                    o[j].to_bits() == want.to_bits() || (o[j].is_nan() && want.is_nan()),
                    "log10_slice({:e}): {} vs {}",
                    a[j],
                    o[j],
                    want
                );
            }
        }
    }

    #[test]
    fn fused_pattern_db_matches_composed_std() {
        let mut s: u64 = 0xFEED_FACE_CAFE_BEEF;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let n = 733usize; // odd: exercises the scalar remainder tail
        let mut re = vec![0.0f64; n];
        let mut im = vec![0.0f64; n];
        let mut edb = vec![0.0f64; n];
        let mut o = vec![0.0f64; n];
        for round in 0..300 {
            let active = 1.0 + (round % 13) as f64;
            for j in 0..n {
                match round % 4 {
                    0 => {
                        // Synthesis-like mid-range fields.
                        re[j] = f64::from_bits(next()).sin() * 4.0;
                        im[j] = f64::from_bits(next()).cos() * 4.0;
                    }
                    1 => {
                        // Tiny and exactly-zero fields (the −60 clamp path).
                        re[j] = if next() % 5 == 0 {
                            0.0
                        } else {
                            (next() & 0xff) as f64 * 1e-12
                        };
                        im[j] = if next() % 5 == 0 {
                            0.0
                        } else {
                            (next() & 0xff) as f64 * 1e-12
                        };
                    }
                    2 => {
                        // Near unit power: |field| ≈ sqrt(active).
                        let m = active.sqrt() * (1.0 + (next() & 0xffff) as f64 * 1e-9);
                        re[j] = m;
                        im[j] = (next() & 0xff) as f64 * 1e-6;
                    }
                    _ => {
                        // Arbitrary bit patterns, extremes included.
                        re[j] = f64::from_bits(next() & 0x7fff_ffff_ffff_ffff);
                        im[j] = f64::from_bits(next() & 0x7fff_ffff_ffff_ffff);
                    }
                }
                edb[j] = ((next() & 0xffff) as f64) * 1e-3 - 30.0;
            }
            pattern_db_slice(&re, &im, active, &edb, 11.0, &mut o);
            for j in 0..n {
                let af = re[j].hypot(im[j]);
                let p = af * af / active;
                let af_db = 10.0 * p.log10();
                let want = edb[j] + af_db.max(-60.0) + 11.0;
                assert!(
                    o[j].to_bits() == want.to_bits() || (o[j].is_nan() && want.is_nan()),
                    "pattern_db_slice(re={:e}, im={:e}, active={}): {} vs {}",
                    re[j],
                    im[j],
                    active,
                    o[j],
                    want
                );
            }
        }
    }

    #[test]
    fn edge_cases_delegate() {
        for v in [0.0, -1.0, f64::INFINITY, f64::NAN, f64::MIN_POSITIVE / 2.0] {
            assert_eq!(log10(v).to_bits(), v.log10().to_bits());
        }
        for (a, b) in [
            (0.0, 0.0),
            (f64::INFINITY, f64::NAN),
            (1e308, 1e308),
            (1e-300, 1e-300),
            (3.0, 4.0),
        ] {
            assert_eq!(hypot(a, b).to_bits(), a.hypot(b).to_bits());
        }
    }
}
