//! Path loss and link budgets at 60 GHz.
//!
//! Free-space loss at these frequencies is what forces directional
//! antennas in the first place: ~68 dB in the *first metre*. On top of
//! Friis, the 60 GHz band sits in the oxygen absorption peak
//! (≈ 16 dB/km — negligible indoors but part of a faithful model), and the
//! paper's range experiments (Fig. 13) show day-to-day atmospheric spread,
//! which enters as a per-run loss offset in the channel crate.

use crate::antenna::C;

/// Centre frequency of channel 2 (both devices' default), Hz.
pub const FREQ_CH2_HZ: f64 = 60.48e9;
/// Centre frequency of channel 3, Hz.
pub const FREQ_CH3_HZ: f64 = 62.64e9;
/// Modulated bandwidth of the devices under test, Hz (1.76 GHz for the
/// 802.11ad SC PHY; the paper quotes 1.7 GHz for both devices).
pub const BANDWIDTH_HZ: f64 = 1.76e9;

/// Free-space path loss in dB at distance `dist_m` and frequency `freq_hz`.
pub fn fspl_db(freq_hz: f64, dist_m: f64) -> f64 {
    assert!(freq_hz > 0.0);
    // Below ~1 wavelength Friis diverges; clamp to a sane near-field floor.
    let d = dist_m.max(0.05);
    20.0 * (4.0 * std::f64::consts::PI * d * freq_hz / C).log10()
}

/// Oxygen (and minor water-vapour) absorption over `dist_m`, in dB.
/// The 60 GHz O₂ line contributes ≈ 16 dB/km.
pub fn oxygen_loss_db(dist_m: f64) -> f64 {
    0.016 * dist_m.max(0.0)
}

/// Total propagation loss of a traced path: Friis over the unfolded length,
/// oxygen absorption, and the accumulated reflection losses.
pub fn path_loss_db(freq_hz: f64, path: &mmwave_geom::PropPath) -> f64 {
    fspl_db(freq_hz, path.length_m) + oxygen_loss_db(path.length_m) + path.reflection_loss_db
}

/// Transmit/receive chain parameters for a link-budget computation.
#[derive(Clone, Copy, Debug)]
pub struct LinkBudget {
    /// Conducted transmit power in dBm (consumer modules: ~10 dBm).
    pub tx_power_dbm: f64,
    /// Carrier frequency in Hz.
    pub freq_hz: f64,
    /// Receiver noise figure in dB.
    pub noise_figure_db: f64,
    /// Implementation loss (filters, synchronization) in dB.
    pub implementation_loss_db: f64,
}

impl LinkBudget {
    /// A consumer-grade 60 GHz chain on channel 2.
    ///
    /// 7 dBm conducted power keeps the EIRP with a ~16 dBi trained array
    /// near the ~23 dBm consumer-module reality. The 9.5 dB implementation
    /// loss bundles filter/sync losses with the elevation-plane
    /// misalignment and polarization mismatch that a 2-D azimuth model
    /// cannot represent explicitly; it is calibrated jointly with the
    /// link-sustainability floor so that Fig. 12's MCS-versus-distance
    /// mapping (16-QAM 5/8 at 2 m, QPSK levels at 8 m, instability at
    /// 14 m) and Fig. 13's break-range spread (~10–18 m, abrupt per run)
    /// both hold.
    pub fn consumer_60ghz() -> LinkBudget {
        LinkBudget {
            tx_power_dbm: 7.0,
            freq_hz: FREQ_CH2_HZ,
            noise_figure_db: 10.0,
            implementation_loss_db: 9.5,
        }
    }

    /// Thermal noise floor over the SC bandwidth, in dBm:
    /// −174 dBm/Hz + 10·log10(B) + NF.
    pub fn noise_floor_dbm(&self) -> f64 {
        -174.0 + 10.0 * BANDWIDTH_HZ.log10() + self.noise_figure_db
    }

    /// Received power over one path, in dBm, given the antenna gains the
    /// two patterns contribute along the path's departure/arrival azimuths.
    pub fn rx_power_dbm(
        &self,
        tx_gain_dbi: f64,
        rx_gain_dbi: f64,
        path: &mmwave_geom::PropPath,
    ) -> f64 {
        self.tx_power_dbm + tx_gain_dbi + rx_gain_dbi
            - path_loss_db(self.freq_hz, path)
            - self.implementation_loss_db
    }

    /// SNR in dB for a given received power.
    pub fn snr_db(&self, rx_power_dbm: f64) -> f64 {
        rx_power_dbm - self.noise_floor_dbm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_geom::{trace_paths, Point, Room, TraceConfig};

    #[test]
    fn fspl_one_metre_60ghz() {
        let l = fspl_db(FREQ_CH2_HZ, 1.0);
        assert!((l - 68.1).abs() < 0.2, "{l}");
    }

    #[test]
    fn fspl_doubles_distance_adds_6db() {
        let l1 = fspl_db(FREQ_CH2_HZ, 5.0);
        let l2 = fspl_db(FREQ_CH2_HZ, 10.0);
        assert!((l2 - l1 - 6.02).abs() < 0.01);
    }

    #[test]
    fn fspl_near_field_clamped() {
        assert_eq!(fspl_db(FREQ_CH2_HZ, 0.0), fspl_db(FREQ_CH2_HZ, 0.05));
    }

    #[test]
    fn oxygen_is_small_indoors() {
        assert!(oxygen_loss_db(20.0) < 0.5);
        assert!((oxygen_loss_db(1000.0) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn noise_floor_value() {
        let lb = LinkBudget::consumer_60ghz();
        // −174 + 92.46 + 10 ≈ −71.5 dBm.
        assert!(
            (lb.noise_floor_dbm() + 71.5).abs() < 0.1,
            "{}",
            lb.noise_floor_dbm()
        );
    }

    #[test]
    fn short_link_supports_high_mcs() {
        // A 2 m boresight link with ~15 dBi arrays on both ends must have
        // enough SNR for 16-QAM 5/8 (the paper's short-link observation).
        let lb = LinkBudget::consumer_60ghz();
        let paths = trace_paths(
            &Room::open_space(),
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            &TraceConfig::default(),
        );
        let rx = lb.rx_power_dbm(16.5, 16.5, &paths[0]);
        let snr = lb.snr_db(rx);
        let table = crate::mcs::McsTable::ieee_802_11ad();
        let needed = table.get(11).snr_threshold_db(lb.noise_floor_dbm());
        assert!(snr > needed + 3.0, "snr {snr} needed {needed}");
    }

    #[test]
    fn fourteen_metre_link_drops_mcs() {
        // At 14 m the same link must fall below the 16-QAM thresholds but
        // stay above BPSK — matching Fig. 12's 14 m trace.
        let lb = LinkBudget::consumer_60ghz();
        let paths = trace_paths(
            &Room::open_space(),
            Point::new(0.0, 0.0),
            Point::new(14.0, 0.0),
            &TraceConfig::default(),
        );
        let snr = lb.snr_db(lb.rx_power_dbm(16.5, 16.5, &paths[0]));
        let table = crate::mcs::McsTable::ieee_802_11ad();
        let nf = lb.noise_floor_dbm();
        assert!(
            snr < table.get(10).snr_threshold_db(nf),
            "snr {snr} too high"
        );
        assert!(snr > table.get(1).snr_threshold_db(nf), "snr {snr} too low");
    }

    #[test]
    fn reflection_path_loses_more() {
        use mmwave_geom::{Material, Segment, Wall};
        let room = Room::open_space().with_wall(Wall::new(
            Segment::new(Point::new(-5.0, 1.0), Point::new(5.0, 1.0)),
            Material::Metal,
            "wall",
        ));
        let paths = trace_paths(
            &room,
            Point::new(-2.0, 0.0),
            Point::new(2.0, 0.0),
            &TraceConfig::default(),
        );
        assert!(paths.len() >= 2);
        let los = path_loss_db(FREQ_CH2_HZ, &paths[0]);
        let refl = path_loss_db(FREQ_CH2_HZ, &paths[1]);
        assert!(refl > los + 1.0);
    }
}
