//! Measurement antennas: the Vubiq front-end options.
//!
//! The paper attaches either a **25 dBi gain horn** (beam-pattern and
//! angular-profile measurements — its high directivity isolates the device
//! under test) or the bare **open waveguide** (frame-level protocol
//! analysis — its wide pattern overhears both link directions) to the
//! down-converter's WR-15 flange. Both are modelled as analytic patterns.

use crate::pattern::AntennaPattern;
use mmwave_geom::Angle;

/// A Gaussian-main-lobe horn pattern: `gain − 12·(θ/HPBW)²` dB with a flat
/// side/back floor `floor_db` below the peak.
pub fn gaussian_horn(gain_dbi: f64, hpbw_deg: f64, floor_db: f64) -> AntennaPattern {
    assert!(hpbw_deg > 0.0 && floor_db > 0.0);
    AntennaPattern::from_fn(AntennaPattern::DEFAULT_SAMPLES, move |theta: Angle| {
        let off = theta.distance(Angle::ZERO).to_degrees();
        let roll = 12.0 * (off / hpbw_deg).powi(2);
        (gain_dbi - roll).max(gain_dbi - floor_db)
    })
}

/// The 25 dBi standard-gain horn used for beam-pattern measurements:
/// ≈ 10° half-power beamwidth, ≈ 35 dB side/back floor.
pub fn horn_25dbi() -> AntennaPattern {
    gaussian_horn(25.0, 10.0, 35.0)
}

/// The open WR-15 waveguide used for frame-level protocol analysis:
/// ≈ 6.5 dBi gain with a very wide (≈ 90°) beam that overhears both ends
/// of a link.
pub fn open_waveguide() -> AntennaPattern {
    gaussian_horn(6.5, 90.0, 15.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horn_peak_gain() {
        let h = horn_25dbi();
        assert!((h.peak().gain_dbi - 25.0).abs() < 1e-9);
        assert!(h.peak().direction.distance(Angle::ZERO) < 0.01);
    }

    #[test]
    fn horn_hpbw_matches_spec() {
        let hpbw = horn_25dbi().hpbw().to_degrees();
        assert!((hpbw - 10.0).abs() < 1.5, "hpbw {hpbw}");
    }

    #[test]
    fn horn_rejects_off_axis() {
        let h = horn_25dbi();
        // 60° off axis the horn is at its floor, 35 dB down.
        let g = h.gain_dbi(Angle::from_degrees(60.0));
        assert!((g - (25.0 - 35.0)).abs() < 0.5, "{g}");
    }

    #[test]
    fn waveguide_much_wider_than_horn() {
        let wg = open_waveguide();
        let horn = horn_25dbi();
        assert!(wg.hpbw() > 6.0 * horn.hpbw());
        assert!(wg.peak().gain_dbi < horn.peak().gain_dbi - 15.0);
    }

    #[test]
    fn waveguide_hears_sideways() {
        // The open waveguide must still pick up signal 90° off axis —
        // that's how it overhears both the dock and the laptop.
        let wg = open_waveguide();
        let g = wg.gain_dbi(Angle::from_degrees(90.0));
        assert!(g > 6.5 - 15.0 - 0.5, "{g}");
    }
}
