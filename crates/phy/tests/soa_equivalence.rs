//! The SoA synthesis entry points must be **bit-identical** to the
//! reference closure path.
//!
//! `tests/basis_equivalence.rs` pins the basis-vs-closure equivalence for
//! the allocating `pattern_from_weights` wrapper. This suite pins the
//! remaining SoA surface added for the zero-alloc hot loops:
//!
//! * [`PhasedArray::pattern_samples_into`] — synthesis into a caller-owned
//!   buffer with reused [`SynthScratch`], the steady-state kernel form;
//! * [`PhasedArray::patterns_from_weight_rows`] — batched multi-row
//!   synthesis, the cold-codebook form.
//!
//! Every comparison is `to_bits` equality per sample, never a tolerance:
//! buffer reuse across calls and row batching must not change a single
//! bit of any pattern, or the calibration seeds and golden campaign
//! artifacts drift.

use mmwave_geom::Angle;
use mmwave_phy::{calib, AntennaPattern, ArrayConfig, Complex, PhasedArray, SynthScratch};
use mmwave_sim::rng::SimRng;

/// Every canonical device of the paper's measurement rigs.
fn canonical_arrays() -> Vec<(String, PhasedArray)> {
    let wigig = [
        ("dock", calib::DOCK_SEED),
        ("laptop", calib::LAPTOP_SEED),
        ("dock_b", calib::DOCK_B_SEED),
        ("laptop_b", calib::LAPTOP_B_SEED),
    ];
    let wihd = [
        ("wihd_tx", calib::WIHD_TX_SEED),
        ("wihd_rx", calib::WIHD_RX_SEED),
    ];
    let mut arrays = Vec::new();
    for (name, seed) in wigig {
        arrays.push((
            format!("{name}({seed})"),
            PhasedArray::new(ArrayConfig::wigig_2x8(seed)),
        ));
    }
    for (name, seed) in wihd {
        arrays.push((
            format!("{name}({seed})"),
            PhasedArray::new(ArrayConfig::wihd_24(seed)),
        ));
    }
    arrays
}

fn assert_samples_bit_identical(name: &str, fast: &[f64], reference: &AntennaPattern) {
    assert_eq!(fast.len(), reference.len(), "{name}: sample count");
    for (k, (a, b)) in fast.iter().zip(reference.samples()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name}: sample {k} differs ({a:?} vs {b:?})"
        );
    }
}

/// Deterministic weight vectors exercising magnitudes off the unit circle,
/// arbitrary phases, and occasional switched-off columns.
fn random_weight_rows(cols: usize, rows: usize, stream: &str) -> Vec<Vec<Complex>> {
    let mut rng = SimRng::root(0x50ae).stream(stream);
    (0..rows)
        .map(|_| {
            loop {
                let w: Vec<Complex> = (0..cols)
                    .map(|_| {
                        if rng.uniform(0.0, 1.0) < 0.15 {
                            Complex::default() // switched-off column
                        } else {
                            Complex::polar(
                                rng.uniform(0.1, 1.0),
                                rng.uniform(-std::f64::consts::PI, std::f64::consts::PI),
                            )
                        }
                    })
                    .collect();
                if w.iter().any(|c| c.abs() > 0.0) {
                    return w;
                }
            }
        })
        .collect()
}

/// `pattern_samples_into` with ONE scratch and ONE output buffer reused
/// across every canonical device and a dense sweep of steering angles:
/// stale buffer contents from previous calls must never leak into the
/// next synthesis.
#[test]
fn samples_into_bit_identical_with_reused_buffers() {
    let mut scratch = SynthScratch::default();
    let mut out: Vec<f64> = Vec::new();
    for (name, arr) in canonical_arrays() {
        let mut deg = -80.0;
        while deg <= 80.0 {
            let w = arr.steering_weights(Angle::from_degrees(deg));
            arr.pattern_samples_into(&mut scratch, &w, &mut out);
            assert_samples_bit_identical(
                &format!("{name} steered {deg}°"),
                &out,
                &arr.pattern_from_weights_reference(&w),
            );
            deg += 7.5;
        }
    }
}

/// Quasi-omni (sparse) weights through the buffer-reuse path: the
/// zero-weight skip must match the reference closure's skip exactly even
/// when the scratch was last used by a dense weight vector.
#[test]
fn samples_into_bit_identical_for_sparse_weights() {
    let mut scratch = SynthScratch::default();
    let mut out: Vec<f64> = Vec::new();
    for (name, arr) in canonical_arrays() {
        let cols = arr.config().columns;
        // Dense call first so the sparse call truly reuses warm buffers.
        let dense = arr.steering_weights(Angle::from_degrees(13.0));
        arr.pattern_samples_into(&mut scratch, &dense, &mut out);
        for i in 0..cols - 1 {
            for dp in [0.0, std::f64::consts::FRAC_PI_2, std::f64::consts::PI] {
                let w = arr.quasi_omni_weights(&[(i, 0.0), (i + 1, dp)]);
                arr.pattern_samples_into(&mut scratch, &w, &mut out);
                assert_samples_bit_identical(
                    &format!("{name} qo pair {i} dp {dp}"),
                    &out,
                    &arr.pattern_from_weights_reference(&w),
                );
            }
        }
    }
}

/// Randomized weight vectors (deterministic seeds): magnitudes off the
/// unit circle and arbitrary unquantized phases, through both the
/// buffer-reuse path and the batched path.
#[test]
fn randomized_weights_bit_identical() {
    let mut scratch = SynthScratch::default();
    let mut out: Vec<f64> = Vec::new();
    for (name, arr) in canonical_arrays() {
        let rows = random_weight_rows(arr.config().columns, 12, &name);
        for (r, w) in rows.iter().enumerate() {
            arr.pattern_samples_into(&mut scratch, w, &mut out);
            assert_samples_bit_identical(
                &format!("{name} random row {r}"),
                &out,
                &arr.pattern_from_weights_reference(w),
            );
        }
        // The same rows as one batch must reproduce the same bits.
        let views: Vec<&[Complex]> = rows.iter().map(|w| w.as_slice()).collect();
        let batched = arr.patterns_from_weight_rows(&mut scratch, &views);
        assert_eq!(batched.len(), rows.len(), "{name}: batch size");
        for (r, (pat, w)) in batched.iter().zip(&rows).enumerate() {
            assert_samples_bit_identical(
                &format!("{name} batched random row {r}"),
                pat.samples(),
                &arr.pattern_from_weights_reference(w),
            );
        }
    }
}

/// Batched synthesis over every directional codebook steering vector of a
/// device, in one `patterns_from_weight_rows` call — the exact shape the
/// cold codebook build uses — against per-row reference synthesis.
#[test]
fn batched_codebook_rows_bit_identical() {
    let mut scratch = SynthScratch::default();
    for (name, arr) in canonical_arrays() {
        let weights: Vec<Vec<Complex>> = (0..32)
            .map(|s| {
                let deg = -77.5 + 5.0 * s as f64;
                arr.steering_weights(Angle::from_degrees(deg))
            })
            .collect();
        let views: Vec<&[Complex]> = weights.iter().map(|w| w.as_slice()).collect();
        let batched = arr.patterns_from_weight_rows(&mut scratch, &views);
        for (s, (pat, w)) in batched.iter().zip(&weights).enumerate() {
            assert_samples_bit_identical(
                &format!("{name} batched sector {s}"),
                pat.samples(),
                &arr.pattern_from_weights_reference(w),
            );
        }
    }
}

/// Mixed-length batches (1, 2, then the remainder) must match the
/// all-at-once batch and the reference: chunk boundaries inside
/// `synth_rows_into` cannot depend on how rows are grouped.
#[test]
fn batch_partitioning_does_not_change_bits() {
    let mut scratch = SynthScratch::default();
    for (name, arr) in canonical_arrays() {
        let rows = random_weight_rows(arr.config().columns, 7, &format!("part-{name}"));
        let views: Vec<&[Complex]> = rows.iter().map(|w| w.as_slice()).collect();
        let whole = arr.patterns_from_weight_rows(&mut scratch, &views);
        let mut pieced = Vec::new();
        pieced.extend(arr.patterns_from_weight_rows(&mut scratch, &views[..1]));
        pieced.extend(arr.patterns_from_weight_rows(&mut scratch, &views[1..3]));
        pieced.extend(arr.patterns_from_weight_rows(&mut scratch, &views[3..]));
        assert_eq!(whole.len(), pieced.len(), "{name}: partition size");
        for (r, (a, b)) in whole.iter().zip(&pieced).enumerate() {
            assert_samples_bit_identical(&format!("{name} partition row {r}"), a.samples(), b);
        }
    }
}
