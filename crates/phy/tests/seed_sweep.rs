//! Recalibration helper: sweep candidate `error_seed` values for the
//! canonical WiGig devices and print those whose *emergent* pattern
//! metrics land in the paper's measured bands (§4.2).
//!
//! The canonical seeds (see `mmwave_phy::calib`) pin "this particular
//! manufactured device". Whenever the pattern-synthesis pipeline or the
//! RNG stream changes, the same numeric seed describes a different
//! device, and the seeds must be re-picked. Run:
//!
//! ```text
//! cargo test -p mmwave-phy --test seed_sweep -- --ignored --nocapture
//! ```
//!
//! and copy suitable seeds into `mmwave_phy::calib` (then re-pin the
//! exact SLLs in `tests/calibration.rs` and update DESIGN.md).

use mmwave_geom::Angle;
use mmwave_phy::{AntennaPattern, ArrayConfig, Codebook, PhasedArray};
use mmwave_sim::ctx::SimCtx;

struct Metrics {
    hpbw_deg: f64,
    sll_db: f64,
    scan_loss_db: f64,
    /// Aligned peak minus the 70°-trained pattern's own peak (the Fig. 17
    /// "+10 dB receiver gain" number).
    peak_drop_db: f64,
    edge_sll_db: f64,
    aligned_strong: usize,
    edge_strong: usize,
    qo_widest_deg: f64,
    qo_with_gaps: usize,
    qo_total: usize,
}

fn strong_lobes(p: &AntennaPattern) -> usize {
    let peak = p.peak().gain_dbi;
    p.lobes(1.0)
        .iter()
        .filter(|l| l.gain_dbi >= peak - 3.0)
        .count()
}

fn measure(seed: u64) -> Option<Metrics> {
    let arr = PhasedArray::new(ArrayConfig::wigig_2x8(seed));
    let cb = Codebook::directional_default(&SimCtx::new(), &arr);
    let aligned = cb.best_toward(Angle::ZERO);
    let sll_db = aligned.pattern.side_lobe_level_db()?;
    let target = Angle::from_degrees(70.0);
    let edge = cb.best_toward(target);
    let qo = Codebook::quasi_omni_32(&SimCtx::new(), &arr);
    Some(Metrics {
        hpbw_deg: aligned.pattern.hpbw().to_degrees(),
        sll_db,
        scan_loss_db: aligned.pattern.peak().gain_dbi - edge.pattern.gain_dbi(target),
        peak_drop_db: aligned.pattern.peak().gain_dbi - edge.pattern.peak().gain_dbi,
        edge_sll_db: edge.pattern.side_lobe_level_db()?,
        aligned_strong: strong_lobes(&aligned.pattern),
        edge_strong: strong_lobes(&edge.pattern),
        qo_widest_deg: qo
            .sectors()
            .iter()
            .map(|s| s.pattern.hpbw().to_degrees())
            .fold(f64::MIN, f64::max),
        qo_with_gaps: qo
            .sectors()
            .iter()
            .filter(|s| !s.pattern.gaps(90f64.to_radians(), 6.0).is_empty())
            .count(),
        qo_total: qo.len(),
    })
}

/// All the bands `tests/calibration.rs` asserts for a canonical device.
fn in_paper_bands(m: &Metrics) -> bool {
    (8.0..20.0).contains(&m.hpbw_deg)
        && (-8.0..=-3.5).contains(&m.sll_db)
        && (7.0..=14.0).contains(&m.scan_loss_db)
        && m.edge_sll_db >= -3.0
        && m.edge_strong > m.aligned_strong
        && (45.0..=80.0).contains(&m.qo_widest_deg)
        && m.qo_with_gaps * 2 > m.qo_total
}

#[test]
#[ignore = "recalibration tool, not a regression test"]
fn sweep_canonical_candidates() {
    println!("seed  hpbw   sll    scan   drop  edge_sll  strong(a/e)  qo(widest/gaps)");
    for seed in 1..1200u64 {
        let Some(m) = measure(seed) else { continue };
        if in_paper_bands(&m) {
            println!(
                "{seed:>4}  {:>5.1}  {:>5.2}  {:>5.1}  {:>5.1}  {:>7.2}  {:>4}/{:<4}  {:>5.1}/{:<2}",
                m.hpbw_deg,
                m.sll_db,
                m.scan_loss_db,
                m.peak_drop_db,
                m.edge_sll_db,
                m.aligned_strong,
                m.edge_strong,
                m.qo_widest_deg,
                m.qo_with_gaps
            );
        }
    }
}
