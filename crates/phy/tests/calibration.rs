//! Calibration tests: the beam-pattern imperfections measured in §4.2 of
//! the paper must *emerge* from the array model for the canonical device
//! seeds used throughout the workspace. If a refactor of the synthesis
//! breaks any of these, every downstream interference experiment loses its
//! physical justification — so the paper's numbers are pinned here.
//!
//! Canonical seeds live in [`mmwave_phy::calib`] and are shared with the
//! device models in `mmwave-mac` and the scenario library in `mmwave-core`.

use mmwave_geom::Angle;
use mmwave_phy::{ArrayConfig, Codebook, PhasedArray};
use mmwave_sim::ctx::SimCtx;

/// The dock's array (canonical seed).
fn dock_array() -> PhasedArray {
    PhasedArray::new(ArrayConfig::wigig_2x8(mmwave_phy::calib::DOCK_SEED))
}

/// The laptop's array (canonical seed).
fn laptop_array() -> PhasedArray {
    PhasedArray::new(ArrayConfig::wigig_2x8(mmwave_phy::calib::LAPTOP_SEED))
}

#[test]
fn directional_hpbw_below_20_degrees() {
    // §4.2: "patterns are of highly directional nature with a HPBW below
    // 20 degree".
    for arr in [dock_array(), laptop_array()] {
        let cb = Codebook::directional_default(&SimCtx::new(), &arr);
        let trained = cb.best_toward(Angle::ZERO);
        let hpbw = trained.pattern.hpbw().to_degrees();
        assert!(hpbw < 20.0, "hpbw {hpbw}");
        assert!(
            hpbw > 8.0,
            "implausibly narrow for a 8-column array: {hpbw}"
        );
    }
}

#[test]
fn boresight_side_lobes_minus_4_to_6_db() {
    // §4.2: "side lobes can have a transmit power in the range of −4 to
    // −6 dB compared to the main lobe". Allow the physically-derived
    // patterns a little slack around that band.
    for (name, arr) in [("dock", dock_array()), ("laptop", laptop_array())] {
        let cb = Codebook::directional_default(&SimCtx::new(), &arr);
        let sll = cb
            .best_toward(Angle::ZERO)
            .pattern
            .side_lobe_level_db()
            .expect("side lobes exist");
        assert!(
            (-8.0..=-3.5).contains(&sll),
            "{name} SLL {sll} outside −4…−6 dB band"
        );
    }
}

#[test]
fn boundary_steering_loses_about_10_db() {
    // §4.2: measuring the 70°-rotated pattern required "+10 dB receiver
    // gain" — i.e. ~10 dB less link gain at the array's coverage boundary.
    for arr in [dock_array(), laptop_array()] {
        let cb = Codebook::directional_default(&SimCtx::new(), &arr);
        let boresight_peak = cb.best_toward(Angle::ZERO).pattern.peak().gain_dbi;
        let target = Angle::from_degrees(70.0);
        let edge_gain = cb.best_toward(target).pattern.gain_dbi(target);
        let loss = boresight_peak - edge_gain;
        assert!((7.0..=14.0).contains(&loss), "scan loss {loss} not ≈10 dB");
    }
}

#[test]
fn boundary_steering_has_near_0db_side_lobes() {
    // §4.2: at 70° misalignment, "a much higher number of side lobes as
    // strong as −1 dB with respect to the main lobe".
    for (name, arr) in [("dock", dock_array()), ("laptop", laptop_array())] {
        let cb = Codebook::directional_default(&SimCtx::new(), &arr);
        let target = Angle::from_degrees(70.0);
        let edge = &cb.best_toward(target).pattern;
        let sll = edge.side_lobe_level_db().expect("side lobes exist");
        assert!(sll >= -3.0, "{name} boundary SLL {sll}, expected ≈ −1 dB");
        // And clearly more *strong* lobes (within 3 dB of the peak) than
        // the aligned pattern — the paper's "much higher number of side
        // lobes as strong as −1 dB".
        let strong = |p: &mmwave_phy::AntennaPattern| {
            let peak = p.peak().gain_dbi;
            p.lobes(1.0)
                .iter()
                .filter(|l| l.gain_dbi >= peak - 3.0)
                .count()
        };
        let aligned_strong = strong(&cb.best_toward(Angle::ZERO).pattern);
        let edge_strong = strong(edge);
        assert!(
            edge_strong > aligned_strong,
            "{name}: {edge_strong} strong edge lobes vs {aligned_strong} aligned"
        );
    }
}

#[test]
fn quasi_omni_hpbw_up_to_60_degrees_with_gaps() {
    // §4.2: "the half power beam width (HPBW) can be as wide as 60
    // degrees, each pattern contains several deep gaps".
    let arr = dock_array();
    let qo = Codebook::quasi_omni_32(&SimCtx::new(), &arr);
    let widest = qo
        .sectors()
        .iter()
        .map(|s| s.pattern.hpbw().to_degrees())
        .fold(f64::MIN, f64::max);
    assert!(
        (45.0..=80.0).contains(&widest),
        "widest quasi-omni HPBW {widest}"
    );
    // Most patterns show at least one deep (>6 dB) gap in the front sector.
    let with_gaps = qo
        .sectors()
        .iter()
        .filter(|s| !s.pattern.gaps(90f64.to_radians(), 6.0).is_empty())
        .count();
    assert!(
        with_gaps * 2 > qo.len(),
        "only {with_gaps}/32 patterns have deep gaps"
    );
}

#[test]
fn wihd_patterns_wider_than_wigig() {
    // §4.3: "the WiHD system transmits with a much wider antenna pattern
    // than the D5000" — the premise of the interference analysis.
    let wigig = dock_array();
    let wihd = PhasedArray::new(ArrayConfig::wihd_24(mmwave_phy::calib::WIHD_TX_SEED));
    let wigig_cb = Codebook::directional_default(&SimCtx::new(), &wigig);
    let wihd_cb = Codebook::directional_default(&SimCtx::new(), &wihd);
    let avg = |cb: &Codebook| {
        cb.sectors().iter().map(|s| s.pattern.hpbw()).sum::<f64>() / cb.len() as f64
    };
    assert!(avg(&wihd_cb) > 1.2 * avg(&wigig_cb), "WiHD not wider");
}

#[test]
fn canonical_seeds_are_stable() {
    // The exact SLL values the experiments were calibrated against.
    // These change only if the synthesis algorithm changes — in which case
    // all calibration must be revisited (update DESIGN.md too).
    let dock_sll = Codebook::directional_default(&SimCtx::new(), &dock_array())
        .best_toward(Angle::ZERO)
        .pattern
        .side_lobe_level_db()
        .expect("sll");
    let laptop_sll = Codebook::directional_default(&SimCtx::new(), &laptop_array())
        .best_toward(Angle::ZERO)
        .pattern
        .side_lobe_level_db()
        .expect("sll");
    assert!(
        (dock_sll - -5.8).abs() < 0.5,
        "dock SLL drifted: {dock_sll}"
    );
    assert!(
        (laptop_sll - -5.4).abs() < 0.5,
        "laptop SLL drifted: {laptop_sll}"
    );
}
