//! The steering-basis synthesis path must be **bit-identical** to the
//! reference closure path.
//!
//! `PhasedArray::pattern_from_weights` runs on precomputed steering
//! phasors; `pattern_from_weights_reference` evaluates the original
//! closed-form expression with fresh trig per element per angle. The whole
//! calibration story (pinned seeds, golden campaign artifacts, cache
//! equivalence) rests on the two producing the *same f64 bits*, not merely
//! close values — so these tests compare with `assert_eq!` on raw samples,
//! never with a tolerance.

use mmwave_geom::Angle;
use mmwave_phy::{calib, ArrayConfig, Codebook, Complex, PhasedArray};
use mmwave_sim::ctx::SimCtx;

/// Every canonical device of the paper's measurement rigs.
fn canonical_arrays() -> Vec<(String, PhasedArray)> {
    let wigig = [
        ("dock", calib::DOCK_SEED),
        ("laptop", calib::LAPTOP_SEED),
        ("dock_b", calib::DOCK_B_SEED),
        ("laptop_b", calib::LAPTOP_B_SEED),
    ];
    let wihd = [
        ("wihd_tx", calib::WIHD_TX_SEED),
        ("wihd_rx", calib::WIHD_RX_SEED),
    ];
    let mut arrays = Vec::new();
    for (name, seed) in wigig {
        arrays.push((
            format!("{name}({seed})"),
            PhasedArray::new(ArrayConfig::wigig_2x8(seed)),
        ));
    }
    for (name, seed) in wihd {
        arrays.push((
            format!("{name}({seed})"),
            PhasedArray::new(ArrayConfig::wihd_24(seed)),
        ));
    }
    arrays
}

fn assert_bit_identical(
    name: &str,
    fast: &mmwave_phy::AntennaPattern,
    reference: &mmwave_phy::AntennaPattern,
) {
    assert_eq!(fast.len(), reference.len(), "{name}: sample count");
    for (k, (a, b)) in fast.samples().iter().zip(reference.samples()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name}: sample {k} differs ({a:?} vs {b:?})"
        );
    }
}

#[test]
fn steered_patterns_bit_identical_across_canonical_devices() {
    for (name, arr) in canonical_arrays() {
        for deg in [-77.5, -70.0, -45.0, -12.5, 0.0, 5.0, 30.0, 60.0, 77.5] {
            let steer = Angle::from_degrees(deg);
            let w = arr.steering_weights(steer);
            assert_bit_identical(
                &format!("{name} steered {deg}°"),
                &arr.pattern_from_weights(&w),
                &arr.pattern_from_weights_reference(&w),
            );
        }
    }
}

#[test]
fn ideal_steered_patterns_bit_identical() {
    // Unquantized phases exercise weight values off the shifter grid.
    for (name, arr) in canonical_arrays() {
        for deg in [-70.0, -33.3, 0.0, 21.7, 70.0] {
            let steer = Angle::from_degrees(deg);
            let fast = arr.ideal_steered_pattern(steer);
            // Rebuild the exact ideal weights the helper uses.
            let s = steer.radians().sin();
            let w: Vec<Complex> = arr
                .positions_wl()
                .iter()
                .map(|&y| Complex::polar(1.0, -std::f64::consts::TAU * y * s))
                .collect();
            assert_bit_identical(
                &format!("{name} ideal {deg}°"),
                &fast,
                &arr.pattern_from_weights_reference(&w),
            );
        }
    }
}

#[test]
fn quasi_omni_patterns_bit_identical() {
    // Sparse weight vectors exercise the zero-weight skip path: only the
    // active pair contributes, in the same summation order as the closure.
    for (name, arr) in canonical_arrays() {
        let cols = arr.config().columns;
        for i in 0..cols - 1 {
            for dp in [0.0, std::f64::consts::FRAC_PI_2, std::f64::consts::PI] {
                let mut w = vec![Complex::default(); cols];
                w[i] = Complex::polar(1.0, arr.config().shifter.quantize(0.0));
                w[i + 1] = Complex::polar(1.0, arr.config().shifter.quantize(dp));
                assert_bit_identical(
                    &format!("{name} qo pair {i} dp {dp}"),
                    &arr.pattern_from_weights(&w),
                    &arr.pattern_from_weights_reference(&w),
                );
            }
        }
    }
}

#[test]
fn whole_codebooks_bit_identical_to_reference_synthesis() {
    for (name, arr) in canonical_arrays() {
        // A fresh context per array keeps every synthesis cold.
        let dir = Codebook::directional_default(&SimCtx::new(), &arr);
        for s in dir.sectors() {
            let w = arr.steering_weights(s.steer);
            assert_bit_identical(
                &format!("{name} dir sector {}", s.id),
                &s.pattern,
                &arr.pattern_from_weights_reference(&w),
            );
        }
        // The 32-entry quasi-omni layout exists only on the 8-column WiGig
        // modules. Its sectors are validated pairwise above; here pin that
        // a cached codebook reproduces a fresh (separate-context) synthesis
        // exactly.
        if arr.config().columns >= 8 {
            let ctx = SimCtx::new();
            let qo = Codebook::quasi_omni_32(&ctx, &arr);
            let qo_hit = Codebook::quasi_omni_32(&ctx, &arr);
            let qo2 = Codebook::quasi_omni_32(&SimCtx::new(), &arr);
            for ((a, h), b) in qo.sectors().iter().zip(qo_hit.sectors()).zip(qo2.sectors()) {
                assert_eq!(
                    a.pattern.samples(),
                    h.pattern.samples(),
                    "{name} qo {}",
                    a.id
                );
                assert_eq!(
                    a.pattern.samples(),
                    b.pattern.samples(),
                    "{name} qo {}",
                    a.id
                );
            }
        }
    }
}
