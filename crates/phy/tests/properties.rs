//! Property tests for the PHY: pattern synthesis, quantization, link
//! budget and MCS invariants.

use mmwave_geom::Angle;
use mmwave_phy::{
    db_to_lin, lin_to_db, sum_dbm, ArrayConfig, McsTable, PhaseShifter, PhasedArray,
};
use proptest::prelude::*;

proptest! {
    /// Interpolated pattern lookups never leave the sample range.
    #[test]
    fn pattern_lookup_bounded(seed in 0u64..50, steer_deg in -75.0..75.0f64, query_deg in -180.0..180.0f64) {
        let arr = PhasedArray::new(ArrayConfig::wigig_2x8(seed));
        let p = arr.steered_pattern(Angle::from_degrees(steer_deg));
        let lo = p.samples().iter().cloned().fold(f64::MAX, f64::min);
        let hi = p.samples().iter().cloned().fold(f64::MIN, f64::max);
        let g = p.gain_dbi(Angle::from_degrees(query_deg));
        prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
    }

    /// Quantization is idempotent and never moves a phase by more than
    /// half a step.
    #[test]
    fn quantization_idempotent(bits in 1u8..=8, phase in -20.0..20.0f64) {
        let ps = PhaseShifter::new(bits);
        let q = ps.quantize(phase);
        prop_assert!((ps.quantize(q) - q).abs() < 1e-9);
        prop_assert!((q - phase).abs() <= ps.max_error() + 1e-9);
    }

    /// Power summation dominates its strongest term and is no more than
    /// 10·log10(n) above it.
    #[test]
    fn sum_dbm_bounds(levels in proptest::collection::vec(-120.0..0.0f64, 1..20)) {
        let max = levels.iter().cloned().fold(f64::MIN, f64::max);
        let total = sum_dbm(levels.iter().cloned());
        prop_assert!(total >= max - 1e-9);
        prop_assert!(total <= max + 10.0 * (levels.len() as f64).log10() + 1e-9);
    }

    /// dB↔linear conversions are inverse of each other.
    #[test]
    fn db_lin_roundtrip(db in -200.0..100.0f64) {
        prop_assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9);
    }

    /// PER is a probability, monotone non-increasing in SINR and
    /// non-decreasing in frame length.
    #[test]
    fn per_is_sane(mcs in 1u8..=12, sinr in -20.0..40.0f64, bits in 1_000u64..200_000) {
        let t = McsTable::ieee_802_11ad();
        let m = t.get(mcs);
        let p = m.per(sinr, bits, -71.5);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(m.per(sinr + 1.0, bits, -71.5) <= p + 1e-12);
        prop_assert!(m.per(sinr, bits * 2, -71.5) >= p - 1e-12);
    }

    /// best_for_snr returns an entry whose threshold is met when any is,
    /// and respects the cap.
    #[test]
    fn best_for_snr_valid(snr in -10.0..45.0f64, cap in 1u8..=12) {
        let t = McsTable::ieee_802_11ad();
        let m = t.best_for_snr(snr, -71.5, 2.0, cap);
        prop_assert!(m.index >= 1 && m.index <= cap);
        if m.index > 1 {
            prop_assert!(snr >= m.snr_threshold_db(-71.5) + 2.0);
            // And the next one up (within the cap) would not fit.
            if m.index < cap {
                let next = t.get(m.index + 1);
                prop_assert!(snr < next.snr_threshold_db(-71.5) + 2.0);
            }
        }
    }

    /// Steering never raises the peak above the boresight-steered peak by
    /// more than a dB (beam-forming can't create energy).
    #[test]
    fn steering_cannot_gain_energy(seed in 0u64..30, steer_deg in -77.0..77.0f64) {
        let arr = PhasedArray::new(ArrayConfig::wigig_2x8(seed));
        let bore = arr.steered_pattern(Angle::ZERO).peak().gain_dbi;
        let steered = arr.steered_pattern(Angle::from_degrees(steer_deg)).peak().gain_dbi;
        prop_assert!(steered <= bore + 1.5, "steered {steered} vs boresight {bore}");
    }
}
