//! Property tests for the PHY: pattern synthesis, quantization, link
//! budget and MCS invariants.
//!
//! Std-only: cases are drawn from deterministic `SimRng` streams with
//! fixed seeds (no proptest — the workspace builds offline). Failures
//! print the case number, which reproduces the exact inputs.

use mmwave_geom::Angle;
use mmwave_phy::{db_to_lin, lin_to_db, sum_dbm, ArrayConfig, McsTable, PhaseShifter, PhasedArray};
use mmwave_sim::rng::SimRng;

const CASES: u64 = 96;

/// Interpolated pattern lookups never leave the sample range.
#[test]
fn pattern_lookup_bounded() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("phy-pattern");
        let seed = r.next_u64() % 50;
        let steer_deg = r.uniform(-75.0, 75.0);
        let query_deg = r.uniform(-180.0, 180.0);
        let arr = PhasedArray::new(ArrayConfig::wigig_2x8(seed));
        let p = arr.steered_pattern(Angle::from_degrees(steer_deg));
        let lo = p.samples().iter().cloned().fold(f64::MAX, f64::min);
        let hi = p.samples().iter().cloned().fold(f64::MIN, f64::max);
        let g = p.gain_dbi(Angle::from_degrees(query_deg));
        assert!(g >= lo - 1e-9 && g <= hi + 1e-9, "case {case}");
    }
}

/// Quantization is idempotent and never moves a phase by more than
/// half a step.
#[test]
fn quantization_idempotent() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("phy-quant");
        let bits = 1 + (r.next_u64() % 8) as u8;
        let phase = r.uniform(-20.0, 20.0);
        let ps = PhaseShifter::new(bits);
        let q = ps.quantize(phase);
        assert!((ps.quantize(q) - q).abs() < 1e-9, "case {case}");
        assert!((q - phase).abs() <= ps.max_error() + 1e-9, "case {case}");
    }
}

/// Power summation dominates its strongest term and is no more than
/// 10·log10(n) above it.
#[test]
fn sum_dbm_bounds() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("phy-sum");
        let n = 1 + (r.next_u64() % 19) as usize;
        let levels: Vec<f64> = (0..n).map(|_| r.uniform(-120.0, 0.0)).collect();
        let max = levels.iter().cloned().fold(f64::MIN, f64::max);
        let total = sum_dbm(levels.iter().cloned());
        assert!(total >= max - 1e-9, "case {case}");
        assert!(
            total <= max + 10.0 * (levels.len() as f64).log10() + 1e-9,
            "case {case}"
        );
    }
}

/// dB↔linear conversions are inverse of each other.
#[test]
fn db_lin_roundtrip() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("phy-db");
        let db = r.uniform(-200.0, 100.0);
        assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9, "case {case}");
    }
}

/// PER is a probability, monotone non-increasing in SINR and
/// non-decreasing in frame length.
#[test]
fn per_is_sane() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("phy-per");
        let mcs = 1 + (r.next_u64() % 12) as u8;
        let sinr = r.uniform(-20.0, 40.0);
        let bits = 1_000 + r.next_u64() % 199_000;
        let t = McsTable::ieee_802_11ad();
        let m = t.get(mcs);
        let p = m.per(sinr, bits, -71.5);
        assert!((0.0..=1.0).contains(&p), "case {case}");
        assert!(m.per(sinr + 1.0, bits, -71.5) <= p + 1e-12, "case {case}");
        assert!(m.per(sinr, bits * 2, -71.5) >= p - 1e-12, "case {case}");
    }
}

/// best_for_snr returns an entry whose threshold is met when any is,
/// and respects the cap.
#[test]
fn best_for_snr_valid() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("phy-best");
        let snr = r.uniform(-10.0, 45.0);
        let cap = 1 + (r.next_u64() % 12) as u8;
        let t = McsTable::ieee_802_11ad();
        let m = t.best_for_snr(snr, -71.5, 2.0, cap);
        assert!(m.index >= 1 && m.index <= cap, "case {case}");
        if m.index > 1 {
            assert!(snr >= m.snr_threshold_db(-71.5) + 2.0, "case {case}");
            // And the next one up (within the cap) would not fit.
            if m.index < cap {
                let next = t.get(m.index + 1);
                assert!(snr < next.snr_threshold_db(-71.5) + 2.0, "case {case}");
            }
        }
    }
}

/// Steering never raises the peak above the boresight-steered peak by
/// more than a dB (beam-forming can't create energy).
#[test]
fn steering_cannot_gain_energy() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("phy-steer");
        let seed = r.next_u64() % 30;
        let steer_deg = r.uniform(-77.0, 77.0);
        let arr = PhasedArray::new(ArrayConfig::wigig_2x8(seed));
        let bore = arr.steered_pattern(Angle::ZERO).peak().gain_dbi;
        let steered = arr
            .steered_pattern(Angle::from_degrees(steer_deg))
            .peak()
            .gain_dbi;
        assert!(
            steered <= bore + 1.5,
            "case {case}: steered {steered} vs boresight {bore}"
        );
    }
}
