//! Mechanical scan procedures.
//!
//! Two measurement rituals recur throughout the paper:
//!
//! * the **semicircle beam-pattern scan** (Fig. 2): the Vubiq + scope are
//!   moved across 100 equally spaced positions on a 3.2 m-radius
//!   semicircle around the device under test, the horn always pointing at
//!   it; average data-frame power per position gives the beam pattern;
//! * the **rotation scan** (Figs. 4, 18–20): the Vubiq sits on a
//!   programmable rotation stage at a fixed position and sweeps its horn
//!   through the full circle; incident power per look direction gives the
//!   angular profile.
//!
//! Both are generic over a *measurement closure* so they run against any
//! channel/MAC composition (the closure typically runs a short simulated
//! capture and averages detected data-frame power).

use mmwave_geom::{arc, full_circle, Angle, Point};
use mmwave_phy::AntennaPattern;

/// One scan sample: where we looked (or stood) and what we measured.
#[derive(Clone, Copy, Debug)]
pub struct ScanPoint {
    /// Scan angle: the look direction (rotation scan) or the angular
    /// position on the semicircle (pattern scan).
    pub angle: Angle,
    /// Average measured power, dBm.
    pub power_dbm: f64,
}

/// An assembled angular profile (rotation-scan output).
#[derive(Clone, Debug)]
pub struct AngularProfile {
    points: Vec<ScanPoint>,
}

impl AngularProfile {
    /// Number of scan points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the profile holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw scan points in sweep order.
    pub fn points(&self) -> &[ScanPoint] {
        &self.points
    }

    /// Peak power (dBm) over the profile.
    pub fn peak_dbm(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.power_dbm)
            .fold(f64::MIN, f64::max)
    }

    /// Points normalized to the peak (dB ≤ 0) — the Figs. 18–20 plot form.
    pub fn normalized_db(&self) -> Vec<(Angle, f64)> {
        let peak = self.peak_dbm();
        self.points
            .iter()
            .map(|p| (p.angle, p.power_dbm - peak))
            .collect()
    }

    /// Convert into an [`AntennaPattern`] (uniform full-circle sampling is
    /// required) so the lobe-analysis machinery applies to measured
    /// profiles exactly as to synthesized patterns.
    pub fn as_pattern(&self) -> AntennaPattern {
        let n = self.points.len();
        let first = self.points[0].angle;
        AntennaPattern::from_fn(n, |theta| {
            // Nearest measured direction.
            let rel = theta.diff(Angle::ZERO).radians();
            let base = first.radians();
            let step = std::f64::consts::TAU / n as f64;
            let idx = (((rel - base) / step).round() as i64).rem_euclid(n as i64) as usize;
            self.points[idx].power_dbm
        })
    }

    /// Directions of lobes at least `min_prominence_db` prominent,
    /// strongest first — "where does energy come from" for the reflection
    /// analysis.
    pub fn lobe_directions(&self, min_prominence_db: f64) -> Vec<Angle> {
        self.as_pattern()
            .lobes(min_prominence_db)
            .into_iter()
            .map(|l| l.direction)
            .collect()
    }

    /// True if some lobe (with ≥ `min_prominence_db` prominence and within
    /// `max_below_peak_db` of the peak) points within `tolerance` of
    /// `target`. Used to assert "a lobe points at the window".
    pub fn has_lobe_toward(
        &self,
        target: Angle,
        tolerance: f64,
        min_prominence_db: f64,
        max_below_peak_db: f64,
    ) -> bool {
        let pattern = self.as_pattern();
        let peak = pattern.peak().gain_dbi;
        pattern
            .lobes(min_prominence_db)
            .iter()
            .filter(|l| l.gain_dbi >= peak - max_below_peak_db)
            .any(|l| l.direction.distance(target) <= tolerance)
    }
}

/// Run a rotation scan: measure incident power for `n` uniformly spaced
/// look directions. `measure(look_dir)` returns the average power in dBm
/// the horn captures when pointed at `look_dir`.
pub fn angular_profile(n: usize, measure: impl Fn(Angle) -> f64) -> AngularProfile {
    let points = full_circle(n, Angle::ZERO)
        .into_iter()
        .map(|angle| ScanPoint {
            angle,
            power_dbm: measure(angle),
        })
        .collect();
    AngularProfile { points }
}

/// Run the paper's semicircle beam-pattern scan: `n` positions on a
/// semicircle of `radius` around `dut`, spanning the half-circle centred
/// on the DUT's `facing` azimuth. At every position the horn points back
/// at the DUT; `measure(position)` returns the average data-frame power
/// in dBm. Output angles are positions relative to `facing`.
pub fn semicircle_scan(
    n: usize,
    dut: Point,
    facing: Angle,
    radius: f64,
    measure: impl Fn(Point) -> f64,
) -> Vec<ScanPoint> {
    assert!(n >= 2 && radius > 0.0);
    arc(n, Angle::from_degrees(-90.0), Angle::from_degrees(90.0))
        .into_iter()
        .map(|rel| {
            let world = facing + rel;
            let pos = dut + world.unit() * radius;
            ScanPoint {
                angle: rel,
                power_dbm: measure(pos),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angular_profile_finds_source_direction() {
        // Synthetic: energy arrives from 40° with a 20°-wide lobe.
        let profile = angular_profile(360, |look| {
            -50.0
                - (look.distance(Angle::from_degrees(40.0)).to_degrees() / 10.0)
                    .powi(2)
                    .min(40.0)
        });
        assert_eq!(profile.len(), 360);
        assert!((profile.peak_dbm() + 50.0).abs() < 0.1);
        let lobes = profile.lobe_directions(3.0);
        assert_eq!(lobes.len(), 1);
        assert!(lobes[0].distance(Angle::from_degrees(40.0)) < 0.05);
        assert!(profile.has_lobe_toward(Angle::from_degrees(40.0), 0.1, 3.0, 3.0));
        assert!(!profile.has_lobe_toward(Angle::from_degrees(-90.0), 0.2, 3.0, 3.0));
    }

    #[test]
    fn normalized_profile_peaks_at_zero() {
        let profile = angular_profile(90, |look| -60.0 + look.radians().cos());
        let norm = profile.normalized_db();
        let max = norm.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
        assert!(max.abs() < 1e-12);
        assert_eq!(norm.len(), 90);
    }

    #[test]
    fn two_lobe_profile() {
        let profile = angular_profile(360, |look| {
            let a = -40.0 - (look.distance(Angle::ZERO).to_degrees() / 8.0).powi(2);
            let b = -44.0 - (look.distance(Angle::from_degrees(180.0)).to_degrees() / 8.0).powi(2);
            a.max(b).max(-80.0)
        });
        let lobes = profile.lobe_directions(3.0);
        assert_eq!(lobes.len(), 2);
        // Strongest first.
        assert!(lobes[0].distance(Angle::ZERO) < 0.05);
        assert!(lobes[1].distance(Angle::from_degrees(180.0)) < 0.05);
    }

    #[test]
    fn semicircle_positions_and_pointing() {
        let dut = Point::new(2.0, 3.0);
        let facing = Angle::from_degrees(90.0);
        let seen = std::cell::RefCell::new(Vec::new());
        let pts = semicircle_scan(100, dut, facing, 3.2, |pos| {
            seen.borrow_mut().push(pos);
            -50.0
        });
        let seen = seen.into_inner();
        assert_eq!(pts.len(), 100);
        assert_eq!(seen.len(), 100);
        for pos in &seen {
            assert!((dut.distance(*pos) - 3.2).abs() < 1e-9);
        }
        // End positions are at ±90° of the facing direction: along ±x.
        assert!((seen[0].x - (2.0 + 3.2)).abs() < 1e-9, "{:?}", seen[0]);
        assert!((seen[99].x - (2.0 - 3.2)).abs() < 1e-9);
        // Midpoint is straight ahead (+y).
        let mid = seen[49];
        assert!(mid.y > 3.0 + 3.1, "{mid:?}");
        // Scan angles span [-90°, +90°].
        assert!((pts[0].angle.degrees() + 90.0).abs() < 1e-9);
        assert!((pts[99].angle.degrees() - 90.0).abs() < 1e-9);
    }
}
