//! # mmwave-capture — the measurement methodology, reimplemented
//!
//! The paper's central methodological contribution is extracting protocol-,
//! beam- and interference-level insight from devices that expose *nothing*:
//! a Vubiq 60 GHz down-converter feeds an oscilloscope, the captured
//! amplitude traces are undersampled (no decoding possible!), and all
//! analysis works on **timing and amplitude alone** (§3.1). This crate
//! reimplements that pipeline:
//!
//! * [`trace`] — signal traces in two forms: exact segment lists (what the
//!   simulation knows) and sampled waveforms (what the oscilloscope sees).
//! * [`vubiq`] — the receiver front-end: dBm→volts mapping, noise floor,
//!   and the two antenna options (25 dBi horn / open waveguide).
//! * [`detect`] — the threshold-based frame detector and the busy/idle
//!   link-utilization estimator used for Figs. 11, 21 and 22.
//! * [`classify`] — amplitude clustering that separates the two link
//!   directions (the notebook-lid reflection trick of §3.2) and the
//!   short/long frame split of Figs. 9 and 10.
//! * [`scan`] — the mechanical procedures: the 100-position semicircle
//!   beam-pattern scan (Fig. 2) and the rotating angular-profile scan
//!   (Figs. 18–20), both generic over a "measure power here, looking
//!   there" closure so they run against any channel model.

//! ## Example
//!
//! ```
//! use mmwave_capture::{detect_frames, DetectorConfig, SignalTrace, VubiqReceiver};
//! use mmwave_capture::trace::SegmentTag;
//! use mmwave_sim::rng::SimRng;
//! use mmwave_sim::time::SimTime;
//!
//! // Record one frame with the open waveguide, undersample it, detect it.
//! let rx = VubiqReceiver::with_waveguide();
//! let mut trace = rx.begin_capture(SimTime::ZERO, SimTime::from_millis(1));
//! rx.record(&mut trace, SimTime::from_micros(100), SimTime::from_micros(120),
//!           -50.0, SegmentTag { source: 0, class: 3 });
//! let (period, samples) = trace.sample(1e8, &mut SimRng::root(1).stream("scope"));
//! let frames = detect_frames(&samples, period, SimTime::ZERO, trace.noise_rms_v,
//!                            &DetectorConfig::default());
//! assert_eq!(frames.len(), 1);
//! ```

pub mod classify;
pub mod detect;
pub mod scan;
pub mod trace;
pub mod vubiq;

pub use classify::{split_by_amplitude, AmplitudeClass};
pub use detect::{
    detect_frames, detect_frames_reference, utilization, DetectedFrame, DetectorConfig,
};
pub use scan::{angular_profile, semicircle_scan, AngularProfile, ScanPoint};
pub use trace::{SampleScratch, SignalTrace, TraceSegment};
pub use vubiq::VubiqReceiver;
