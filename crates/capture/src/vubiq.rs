//! The Vubiq V60WGD03 down-converter front end.
//!
//! The front end maps incident RF power to the analog I/Q amplitude the
//! oscilloscope records. The mapping is logarithmic-linear in our model:
//! a reference power maps to a reference voltage, and every +20 dB of
//! input doubles the voltage twice (amplitude ∝ √power) until the output
//! saturates — the traces in the paper's Figs. 3, 8, 15 and 21 peak around
//! ±0.5–1 V. A configurable front-end gain models the "+10 dB receiver
//! gain" adjustment the authors needed for the rotated-dock measurement.

use crate::trace::{SegmentTag, SignalTrace, TraceSegment};
use mmwave_phy::AntennaPattern;
use mmwave_sim::time::SimTime;

/// Receiver front-end configuration.
#[derive(Clone, Debug)]
pub struct VubiqReceiver {
    /// The antenna attached to the WR-15 flange.
    pub antenna: AntennaPattern,
    /// Extra LNA / baseband gain in dB (0 = the paper's default setting).
    pub gain_db: f64,
    /// Input power that produces `ref_volts` at the scope, dBm.
    pub ref_power_dbm: f64,
    /// Output amplitude at the reference power, volts.
    pub ref_volts: f64,
    /// Output saturation, volts.
    pub max_volts: f64,
    /// Noise floor RMS at the scope input, volts.
    pub noise_rms_v: f64,
}

impl VubiqReceiver {
    /// The beam-pattern measurement configuration: 25 dBi horn.
    pub fn with_horn() -> VubiqReceiver {
        VubiqReceiver {
            antenna: mmwave_phy::horn_25dbi(),
            gain_db: 0.0,
            ref_power_dbm: -45.0,
            ref_volts: 0.5,
            max_volts: 1.2,
            noise_rms_v: 0.012,
        }
    }

    /// The protocol-analysis configuration: open waveguide.
    pub fn with_waveguide() -> VubiqReceiver {
        VubiqReceiver {
            antenna: mmwave_phy::open_waveguide(),
            ..VubiqReceiver::with_horn()
        }
    }

    /// Convert incident power (dBm, already antenna-weighted) to scope
    /// amplitude (volts): amplitude ∝ 10^(P/20), clipped at saturation.
    pub fn power_to_volts(&self, incident_dbm: f64) -> f64 {
        let db_over_ref = incident_dbm + self.gain_db - self.ref_power_dbm;
        (self.ref_volts * 10f64.powf(db_over_ref / 20.0)).min(self.max_volts)
    }

    /// Inverse mapping for unsaturated amplitudes (used by analysis code
    /// that wants dB-relative lobe strengths back out of a trace).
    pub fn volts_to_power_dbm(&self, volts: f64) -> f64 {
        assert!(volts > 0.0);
        self.ref_power_dbm - self.gain_db + 20.0 * (volts / self.ref_volts).log10()
    }

    /// Start an empty capture over `[start, end)` with this front end's
    /// noise floor.
    pub fn begin_capture(&self, start: SimTime, end: SimTime) -> SignalTrace {
        SignalTrace::new(start, end, self.noise_rms_v)
    }

    /// Record one frame's worth of incident power into a capture.
    pub fn record(
        &self,
        trace: &mut SignalTrace,
        start: SimTime,
        end: SimTime,
        incident_dbm: f64,
        tag: SegmentTag,
    ) {
        // Below ~6 dB over the noise floor the segment drowns; record it
        // anyway — the detector is the judge of visibility, not the
        // front end.
        let amplitude_v = self.power_to_volts(incident_dbm);
        trace.push(TraceSegment {
            start,
            end,
            amplitude_v,
            tag,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_sim::time::SimTime;

    #[test]
    fn mapping_is_square_root_of_power() {
        let rx = VubiqReceiver::with_horn();
        let v0 = rx.power_to_volts(-45.0);
        let v6 = rx.power_to_volts(-39.0);
        assert!((v0 - 0.5).abs() < 1e-12);
        // +6 dB power = ×2 in amplitude.
        assert!((v6 / v0 - 1.995).abs() < 0.01, "{}", v6 / v0);
    }

    #[test]
    fn saturation_clips() {
        let rx = VubiqReceiver::with_horn();
        assert_eq!(rx.power_to_volts(0.0), rx.max_volts);
    }

    #[test]
    fn gain_shifts_mapping() {
        let mut rx = VubiqReceiver::with_horn();
        let low = rx.power_to_volts(-60.0);
        rx.gain_db = 10.0;
        let boosted = rx.power_to_volts(-60.0);
        assert!((boosted / low - 10f64.powf(0.5)).abs() < 0.01);
    }

    #[test]
    fn volts_roundtrip() {
        let rx = VubiqReceiver::with_horn();
        for dbm in [-70.0, -55.0, -48.0] {
            let v = rx.power_to_volts(dbm);
            assert!((rx.volts_to_power_dbm(v) - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn record_into_capture() {
        let rx = VubiqReceiver::with_waveguide();
        let mut tr = rx.begin_capture(SimTime::ZERO, SimTime::from_millis(1));
        rx.record(
            &mut tr,
            SimTime::from_micros(10),
            SimTime::from_micros(20),
            -45.0,
            SegmentTag {
                source: 3,
                class: 1,
            },
        );
        assert_eq!(tr.segments().len(), 1);
        assert!((tr.segments()[0].amplitude_v - 0.5).abs() < 1e-12);
        assert_eq!(tr.noise_rms_v, rx.noise_rms_v);
    }

    #[test]
    fn horn_and_waveguide_differ_only_in_antenna() {
        let h = VubiqReceiver::with_horn();
        let w = VubiqReceiver::with_waveguide();
        assert_eq!(h.ref_power_dbm, w.ref_power_dbm);
        assert!(h.antenna.peak().gain_dbi > w.antenna.peak().gain_dbi + 15.0);
    }
}
