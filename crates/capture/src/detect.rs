//! Threshold-based frame detection and link-utilization estimation.
//!
//! §3.2: *"we collect seven minutes of channel traces and use a threshold
//! based detection approach to calculate the ratio of idle channel time"*.
//! Two implementations are provided, matching how the experiments use them:
//!
//! * [`detect_frames`] works on **sampled waveforms** — rectified envelope,
//!   hysteresis thresholds, minimum-gap merging. This is the
//!   faithful-to-the-paper path, used on millisecond-scale scope captures
//!   (Figs. 3, 8, 15, 21) and validated against ground truth in tests.
//! * [`utilization`] works on **segment lists** — exact busy-time
//!   accounting above an amplitude threshold. Long campaigns (the 7-minute
//!   utilization traces of Fig. 22) use this path; the detector tests pin
//!   the two paths to agree.

use crate::trace::SignalTrace;
use mmwave_sim::stats::BusyTracker;
use mmwave_sim::time::{SimDuration, SimTime};

/// Frame-detector tuning.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// Envelope must exceed `noise_rms · on_factor` to open a frame.
    pub on_factor: f64,
    /// Frame closes when the envelope stays below `noise_rms · off_factor`…
    pub off_factor: f64,
    /// …for at least this long (bridges the nulls of the random-phase
    /// envelope inside one frame).
    pub min_gap: SimDuration,
    /// Detected frames shorter than this are discarded as noise spikes.
    pub min_frame: SimDuration,
    /// Envelope smoothing window (rectified moving average).
    pub smooth: SimDuration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            on_factor: 5.0,
            off_factor: 3.0,
            min_gap: SimDuration::from_nanos(600),
            min_frame: SimDuration::from_nanos(500),
            smooth: SimDuration::from_nanos(200),
        }
    }
}

/// One frame found by the detector.
#[derive(Clone, Copy, Debug)]
pub struct DetectedFrame {
    /// Detected start.
    pub start: SimTime,
    /// Detected end.
    pub end: SimTime,
    /// Mean envelope amplitude over the frame, volts.
    pub mean_amplitude_v: f64,
}

impl DetectedFrame {
    /// Frame duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Samples per chunk of the fused detector pass. Also the ceiling on the
/// smoothing window the chunked path supports (wider windows fall back to
/// the reference path); the carry + abs + envelope stack buffers total
/// 16 KiB.
const DETECT_CHUNK: usize = 512;

/// Detect frames in a sampled waveform (`samples` at spacing `period`,
/// starting at `t0`, front-end noise RMS `noise_rms_v`).
///
/// Returns exactly what [`detect_frames_reference`] returns (a
/// differential test pins them sample-for-sample) without materializing
/// the envelope vector: samples are processed in chunks — a vectorizable
/// rectify/widen pass, the serial moving-average accumulation (whose adds
/// keep the reference's exact order and pairing), a vectorizable
/// normalize pass, and the hysteresis state machine over the chunk's
/// envelope values.
pub fn detect_frames(
    samples: &[f32],
    period: SimDuration,
    t0: SimTime,
    noise_rms_v: f64,
    cfg: &DetectorConfig,
) -> Vec<DetectedFrame> {
    if samples.is_empty() {
        return Vec::new();
    }
    // Rectified moving-average envelope. A rectified sine has mean 2/π of
    // its peak; correct for that so thresholds compare against amplitude.
    let win = (cfg.smooth.as_nanos() / period.as_nanos()).max(1) as usize;
    if win > DETECT_CHUNK {
        return detect_frames_reference(samples, period, t0, noise_rms_v, cfg);
    }
    let correction = std::f64::consts::PI / 2.0;
    let on_thr = noise_rms_v * cfg.on_factor;
    let off_thr = noise_rms_v * cfg.off_factor;
    let gap_samples = (cfg.min_gap.as_nanos() / period.as_nanos()).max(1) as usize;

    let n = samples.len();
    let mut frames = Vec::new();
    let mut open: Option<(usize, f64, usize)> = None; // (start idx, amp sum, count)
    let mut below_run = 0usize;
    let mut acc = 0.0f64;
    // `buf[..win]` carries the previous chunk's trailing rectified
    // samples (the values the moving average drops as the window slides);
    // `buf[win..win + len]` is the current chunk.
    let mut buf = [0.0f64; 2 * DETECT_CHUNK];
    let mut env = [0.0f64; DETECT_CHUNK];
    let mut i0 = 0usize;
    while i0 < n {
        let len = DETECT_CHUNK.min(n - i0);
        // Rectify and widen (vectorizes; no loop-carried state).
        for (b, &s) in buf[win..win + len].iter_mut().zip(&samples[i0..i0 + len]) {
            *b = s.abs() as f64;
        }
        // Serial accumulation — the only loop-carried dependency, kept to
        // two adds per sample in the reference's exact order.
        if i0 >= win {
            for k in 0..len {
                acc += buf[win + k];
                acc -= buf[k];
                env[k] = acc;
            }
        } else {
            for k in 0..len {
                acc += buf[win + k];
                if i0 + k >= win {
                    // `buf[k]` is `a[i0 + k − win]` in either buffer region.
                    acc -= buf[k];
                }
                env[k] = acc;
            }
        }
        // Normalize (vectorizes once the window is saturated).
        if i0 >= win {
            let denominator = win as f64;
            for e in env[..len].iter_mut() {
                *e = *e / denominator * correction;
            }
        } else {
            for (k, e) in env[..len].iter_mut().enumerate() {
                let denominator = win.min(i0 + k + 1) as f64;
                *e = *e / denominator * correction;
            }
        }
        // Hysteresis state machine over the chunk.
        for (k, &e) in env[..len].iter().enumerate() {
            let i = i0 + k;
            match open {
                None => {
                    if e > on_thr {
                        open = Some((i, e, 1));
                        below_run = 0;
                    }
                }
                Some((start, sum, count)) => {
                    if e < off_thr {
                        below_run += 1;
                        if below_run >= gap_samples {
                            let end = i - below_run + 1;
                            push_frame(&mut frames, start, end, sum, count, t0, period, cfg);
                            open = None;
                        }
                    } else {
                        below_run = 0;
                        open = Some((start, sum + e, count + 1));
                    }
                }
            }
        }
        // Slide the carry: the next chunk's moving average drops these.
        buf.copy_within(len..len + win, 0);
        i0 += len;
    }
    if let Some((start, sum, count)) = open {
        push_frame(&mut frames, start, n, sum, count, t0, period, cfg);
    }
    frames
}

/// The pre-SoA detector, kept verbatim as the bit-level specification of
/// [`detect_frames`] — the differential suite and the same-phase reference
/// benches run both over identical waveforms.
pub fn detect_frames_reference(
    samples: &[f32],
    period: SimDuration,
    t0: SimTime,
    noise_rms_v: f64,
    cfg: &DetectorConfig,
) -> Vec<DetectedFrame> {
    if samples.is_empty() {
        return Vec::new();
    }
    let win = (cfg.smooth.as_nanos() / period.as_nanos()).max(1) as usize;
    let correction = std::f64::consts::PI / 2.0;
    let mut envelope = Vec::with_capacity(samples.len());
    let mut acc = 0.0f64;
    for (i, &s) in samples.iter().enumerate() {
        acc += s.abs() as f64;
        if i >= win {
            acc -= samples[i - win].abs() as f64;
        }
        let denominator = win.min(i + 1) as f64;
        envelope.push(acc / denominator * correction);
    }

    let on_thr = noise_rms_v * cfg.on_factor;
    let off_thr = noise_rms_v * cfg.off_factor;
    let gap_samples = (cfg.min_gap.as_nanos() / period.as_nanos()).max(1) as usize;

    let mut frames = Vec::new();
    let mut open: Option<(usize, f64, usize)> = None; // (start idx, amp sum, count)
    let mut below_run = 0usize;
    for (i, &e) in envelope.iter().enumerate() {
        match open {
            None => {
                if e > on_thr {
                    open = Some((i, e, 1));
                    below_run = 0;
                }
            }
            Some((start, sum, count)) => {
                if e < off_thr {
                    below_run += 1;
                    if below_run >= gap_samples {
                        let end = i - below_run + 1;
                        push_frame(&mut frames, start, end, sum, count, t0, period, cfg);
                        open = None;
                    } else {
                        open = Some((start, sum, count));
                    }
                } else {
                    below_run = 0;
                    open = Some((start, sum + e, count + 1));
                }
            }
        }
    }
    if let Some((start, sum, count)) = open {
        push_frame(
            &mut frames,
            start,
            envelope.len(),
            sum,
            count,
            t0,
            period,
            cfg,
        );
    }
    frames
}

#[allow(clippy::too_many_arguments)]
fn push_frame(
    frames: &mut Vec<DetectedFrame>,
    start_idx: usize,
    end_idx: usize,
    amp_sum: f64,
    count: usize,
    t0: SimTime,
    period: SimDuration,
    cfg: &DetectorConfig,
) {
    let start = t0 + period * start_idx as u32;
    let end = t0 + period * end_idx as u32;
    if end - start >= cfg.min_frame && count > 0 {
        frames.push(DetectedFrame {
            start,
            end,
            mean_amplitude_v: amp_sum / count as f64,
        });
    }
}

/// Segment-level utilization: the fraction of the observation window where
/// at least one segment with amplitude ≥ `threshold_v` is present. The
/// exact-arithmetic twin of running [`detect_frames`] over the full trace.
pub fn utilization(trace: &SignalTrace, threshold_v: f64) -> f64 {
    let mut busy = BusyTracker::new();
    for s in trace
        .segments()
        .iter()
        .filter(|s| s.amplitude_v >= threshold_v)
    {
        busy.add(s.start, s.end);
    }
    busy.utilization(trace.window_start, trace.window_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SegmentTag, TraceSegment};
    use mmwave_sim::rng::SimRng;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn tag() -> SegmentTag {
        SegmentTag {
            source: 0,
            class: 1,
        }
    }

    fn make_trace(frames: &[(u64, u64, f64)]) -> SignalTrace {
        let mut tr = SignalTrace::new(t(0), t(1000), 0.01);
        for &(s, e, a) in frames {
            tr.push(TraceSegment {
                start: t(s),
                end: t(e),
                amplitude_v: a,
                tag: tag(),
            });
        }
        tr
    }

    fn detect(tr: &SignalTrace) -> Vec<DetectedFrame> {
        let mut rng = SimRng::root(3).stream("detector");
        let (period, samples) = tr.sample(1e8, &mut rng);
        detect_frames(
            &samples,
            period,
            tr.window_start,
            tr.noise_rms_v,
            &DetectorConfig::default(),
        )
    }

    #[test]
    fn detects_isolated_frames() {
        let tr = make_trace(&[(100, 120, 0.4), (300, 305, 0.3), (600, 625, 0.5)]);
        let frames = detect(&tr);
        assert_eq!(frames.len(), 3, "{frames:?}");
        // Boundaries within 1 µs of truth.
        let truth = [(100.0, 120.0), (300.0, 305.0), (600.0, 625.0)];
        for (f, (ts, te)) in frames.iter().zip(truth) {
            assert!((f.start.as_micros_f64() - ts).abs() < 1.0, "{f:?}");
            assert!((f.end.as_micros_f64() - te).abs() < 1.0, "{f:?}");
        }
    }

    #[test]
    fn amplitude_estimates_are_faithful() {
        let tr = make_trace(&[(100, 200, 0.4)]);
        let frames = detect(&tr);
        assert_eq!(frames.len(), 1);
        // The rectified-corrected envelope mean recovers the amplitude.
        assert!(
            (frames[0].mean_amplitude_v - 0.4).abs() < 0.05,
            "{}",
            frames[0].mean_amplitude_v
        );
    }

    #[test]
    fn empty_trace_detects_nothing() {
        let tr = make_trace(&[]);
        assert!(detect(&tr).is_empty());
    }

    #[test]
    fn weak_frames_below_threshold_are_missed() {
        // A frame at 2× noise RMS is below the 5× on-threshold: invisible,
        // exactly like a distant device in the paper's traces.
        let tr = make_trace(&[(100, 200, 0.02)]);
        assert!(detect(&tr).is_empty());
    }

    #[test]
    fn close_frames_merge_only_within_min_gap() {
        // 0.3 µs gap: merged. 3 µs gap: separate.
        let tr = make_trace(&[(100, 110, 0.4), (113, 120, 0.4)]);
        // Use raw nanosecond positions for the small gap case.
        let mut tr2 = SignalTrace::new(t(0), t(1000), 0.01);
        tr2.push(TraceSegment {
            start: SimTime::from_nanos(100_000),
            end: SimTime::from_nanos(110_000),
            amplitude_v: 0.4,
            tag: tag(),
        });
        tr2.push(TraceSegment {
            start: SimTime::from_nanos(110_300),
            end: SimTime::from_nanos(120_000),
            amplitude_v: 0.4,
            tag: tag(),
        });
        let merged = detect(&tr2);
        assert_eq!(merged.len(), 1, "{merged:?}");
        let apart = detect(&tr);
        assert_eq!(apart.len(), 2);
    }

    #[test]
    fn detector_utilization_matches_ground_truth() {
        let tr = make_trace(&[(0, 120, 0.4), (300, 380, 0.35), (500, 780, 0.45)]);
        let frames = detect(&tr);
        let detected_busy: f64 = frames
            .iter()
            .map(|f| f.duration().as_secs_f64())
            .sum::<f64>();
        let truth = tr
            .ground_truth_busy()
            .busy_within(t(0), t(1000))
            .as_secs_f64();
        assert!(
            (detected_busy - truth).abs() / truth < 0.03,
            "{detected_busy} vs {truth}"
        );
    }

    #[test]
    fn segment_utilization_threshold() {
        let tr = make_trace(&[(0, 250, 0.4), (500, 750, 0.02)]);
        // Both segments counted with a low threshold…
        assert!((utilization(&tr, 0.01) - 0.5).abs() < 1e-9);
        // …only the strong one above 0.1 V.
        assert!((utilization(&tr, 0.1) - 0.25).abs() < 1e-9);
        // Threshold above everything: idle channel.
        assert_eq!(utilization(&tr, 1.0), 0.0);
    }

    #[test]
    fn overlapping_segments_do_not_double_count() {
        let tr = make_trace(&[(100, 300, 0.4), (200, 400, 0.4)]);
        assert!((utilization(&tr, 0.1) - 0.3).abs() < 1e-9);
    }
}
