//! Signal traces: segment lists and sampled waveforms.
//!
//! The simulation knows frame boundaries exactly, so the native trace form
//! is a list of [`TraceSegment`]s — each one frame's worth of received
//! envelope at the capture antenna, tagged with its source for ground-truth
//! checks. Rendering to a *sampled waveform* (what the MSO-X records)
//! happens on demand: segments become noisy I-channel samples at a chosen
//! rate, and all detection then works on samples only, exactly as the
//! paper's Matlab pipeline worked on scope exports.

use mmwave_sim::rng::SimRng;
use mmwave_sim::time::{SimDuration, SimTime};
use std::sync::OnceLock;

/// Size of the sampler's noise/phase lookup tables (must be a power of 2;
/// 4096 × 8 B keeps each table comfortably inside L1).
const TABLE_BITS: u32 = 12;
const TABLE_LEN: usize = 1 << TABLE_BITS;

/// Process-wide sampling tables, built once:
///
/// * `noise` — 4096 standard-normal draws from a *fixed internal* stream,
///   re-centred and re-scaled to exactly zero mean / unit RMS, so
///   table-indexed noise reproduces `noise_rms_v` precisely;
/// * `cos` — `cos(2π·k/4096)`, the I-projection of a uniformly random
///   carrier phase at 0.09° resolution.
///
/// Indexing both with bits of a single `next_u64` replaces the old
/// per-sample Box–Muller transform (two uniforms, `ln`, `sqrt`, `cos`)
/// plus a fresh `cos` for the phase — the sampler's entire per-sample
/// transcendental budget — with two L1 loads. The sampled waveform is
/// still deterministic per RNG stream, just a *different* (and cheaper)
/// stream than before; no experiment artifact consumes these samples, and
/// the detector contract over them is statistical.
fn sampling_tables() -> &'static (Vec<f64>, Vec<f64>) {
    static TABLES: OnceLock<(Vec<f64>, Vec<f64>)> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut rng = SimRng::root(0x5c09e).stream("scope-noise-table");
        let mut noise: Vec<f64> = (0..TABLE_LEN).map(|_| rng.gauss()).collect();
        let mean = noise.iter().sum::<f64>() / TABLE_LEN as f64;
        let rms =
            (noise.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / TABLE_LEN as f64).sqrt();
        for x in &mut noise {
            *x = (*x - mean) / rms;
        }
        let cos = (0..TABLE_LEN)
            .map(|k| (std::f64::consts::TAU * k as f64 / TABLE_LEN as f64).cos())
            .collect();
        (noise, cos)
    })
}

/// Samples rendered per inner chunk of [`SignalTrace::sample_into`]: the
/// bits buffer (4 KiB) stays L1-resident and the stage-2 loop is long
/// enough to amortize its vector prologue.
const SAMPLE_CHUNK: usize = 512;

/// Reusable sweep state for [`SignalTrace::sample_into`]: segment indices
/// sorted by start time and the currently-active set. Once grown to the
/// trace's segment count, sampling performs no allocations (the output
/// vector is caller-owned and likewise reused).
#[derive(Clone, Debug, Default)]
pub struct SampleScratch {
    /// Segment indices sorted by `(start, index)`.
    by_start: Vec<u32>,
    /// Indices of segments overlapping the current sample instant.
    active: Vec<u32>,
}

/// Ground-truth tag carried by a segment (never used by the detectors —
/// only by tests validating them).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct SegmentTag {
    /// Transmitting device id.
    pub source: usize,
    /// Coarse frame class for ground truth (e.g. 0 = control, 1 = data…).
    pub class: u8,
}

/// One contiguous span of received signal with (approximately) constant
/// envelope — one frame, or one sub-element of a sweep frame.
#[derive(Clone, Copy, Debug)]
pub struct TraceSegment {
    /// Start of the span.
    pub start: SimTime,
    /// End of the span (exclusive).
    pub end: SimTime,
    /// Envelope amplitude at the scope input, volts (≥ 0).
    pub amplitude_v: f64,
    /// Ground-truth tag.
    pub tag: SegmentTag,
}

impl TraceSegment {
    /// Segment duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A capture: segments over an observation window, plus the front-end
/// noise amplitude.
#[derive(Clone, Debug, Default)]
pub struct SignalTrace {
    segments: Vec<TraceSegment>,
    /// RMS noise amplitude of the front end, volts.
    pub noise_rms_v: f64,
    /// Observation window start.
    pub window_start: SimTime,
    /// Observation window end.
    pub window_end: SimTime,
}

impl SignalTrace {
    /// An empty trace over `[start, end)` with the given noise floor.
    pub fn new(window_start: SimTime, window_end: SimTime, noise_rms_v: f64) -> SignalTrace {
        assert!(window_end > window_start);
        assert!(noise_rms_v >= 0.0);
        SignalTrace {
            segments: Vec::new(),
            noise_rms_v,
            window_start,
            window_end,
        }
    }

    /// Append a segment. Segments may overlap (concurrent transmissions);
    /// they must fall at least partially inside the window.
    pub fn push(&mut self, seg: TraceSegment) {
        debug_assert!(seg.end > seg.start, "empty segment");
        if seg.end <= self.window_start || seg.start >= self.window_end {
            return; // outside the observation window
        }
        let clipped = TraceSegment {
            start: seg.start.max(self.window_start),
            end: seg.end.min(self.window_end),
            ..seg
        };
        self.segments.push(clipped);
    }

    /// All recorded segments.
    pub fn segments(&self) -> &[TraceSegment] {
        &self.segments
    }

    /// Observation window length.
    pub fn window(&self) -> SimDuration {
        self.window_end - self.window_start
    }

    /// Envelope amplitude at instant `t`: power-sum of overlapping segments
    /// (amplitudes add in quadrature — incoherent sources).
    pub fn envelope_at(&self, t: SimTime) -> f64 {
        let sum_sq: f64 = self
            .segments
            .iter()
            .filter(|s| s.start <= t && t < s.end)
            .map(|s| s.amplitude_v * s.amplitude_v)
            .sum();
        sum_sq.sqrt()
    }

    /// Render to oscilloscope samples: the I-channel of the undersampled
    /// down-converted signal. Each sample is
    /// `envelope · cos(phase) + noise`, with `phase` random per sample —
    /// exactly the effect of undersampling a 60 GHz carrier at 10⁸ S/s:
    /// the carrier phase is effectively random sample to sample, so only
    /// the envelope is recoverable (the paper's "this prevents decoding").
    /// Returns `(sample_period, samples)`.
    ///
    /// Convenience wrapper over [`SignalTrace::sample_into`] with fresh
    /// buffers; hot callers (campaign loops, benches) should hold a
    /// [`SampleScratch`] and reuse an output vector instead.
    pub fn sample(&self, rate_hz: f64, rng: &mut SimRng) -> (SimDuration, Vec<f32>) {
        let mut out = Vec::new();
        let period = self.sample_into(rate_hz, rng, &mut SampleScratch::default(), &mut out);
        (period, out)
    }

    /// [`SignalTrace::sample`] into caller-owned buffers: `out` is cleared
    /// and refilled, `scratch` holds the segment sweep state. Performs no
    /// allocations once the buffers have grown to the trace's size.
    ///
    /// The waveform is bit-identical to [`SignalTrace::sample_reference`]
    /// for the same RNG stream (verified by a differential test): samples
    /// draw exactly one `next_u64` each, in emission order, and the
    /// per-sample float expression is unchanged. Speed comes from the
    /// *structure*: the envelope is piecewise constant, so segments are
    /// scanned only at boundaries, and each run of constant-envelope
    /// samples is rendered in two stages — a serial RNG fill of a bits
    /// chunk, then a table-lookup/multiply/convert loop over the chunk
    /// with no loop-carried state, which autovectorizes (AVX2 gathers for
    /// the table loads).
    pub fn sample_into(
        &self,
        rate_hz: f64,
        rng: &mut SimRng,
        scratch: &mut SampleScratch,
        out: &mut Vec<f32>,
    ) -> SimDuration {
        assert!(rate_hz > 0.0);
        let period = SimDuration::from_secs_f64(1.0 / rate_hz);
        assert!(!period.is_zero(), "sample rate above 1 GS/s tick limit");
        let n = (self.window().as_secs_f64() * rate_hz).floor() as usize;
        let (noise_tab, cos_tab) = sampling_tables();
        let noise_rms = self.noise_rms_v;
        let mask = (TABLE_LEN - 1) as u64;
        let segs = &self.segments;
        // Sort segment starts for an O(n + m) sweep instead of O(n·m).
        // The (start, index) key reproduces the reference's *stable* sort
        // with the allocation-free unstable one — tie order decides the
        // f64 summation order of overlapping envelopes, so it must match.
        let by_start = &mut scratch.by_start;
        by_start.clear();
        by_start.extend(0..segs.len() as u32);
        by_start.sort_unstable_by_key(|&i| (segs[i as usize].start, i));
        let active = &mut scratch.active;
        active.clear();
        let mut next_seg = 0;
        out.clear();
        out.resize(n, 0.0);
        let mut t = self.window_start;
        let mut emitted = 0usize;
        while emitted < n {
            // Reconcile the active set at the current sample instant
            // (starts are inclusive, ends exclusive, as before).
            while next_seg < by_start.len() && segs[by_start[next_seg] as usize].start <= t {
                active.push(by_start[next_seg]);
                next_seg += 1;
            }
            active.retain(|&s| segs[s as usize].end > t);
            let env_sq: f64 = active
                .iter()
                .map(|&s| {
                    let a = segs[s as usize].amplitude_v;
                    a * a
                })
                .sum();
            let env = env_sq.sqrt();
            // The envelope holds until the next segment boundary: emit the
            // whole run of samples without touching the segment list.
            let mut boundary = active
                .iter()
                .map(|&s| segs[s as usize].end)
                .min()
                .unwrap_or(SimTime::MAX);
            if next_seg < by_start.len() {
                boundary = boundary.min(segs[by_start[next_seg] as usize].start);
            }
            let run = if boundary == SimTime::MAX {
                n - emitted
            } else {
                // Samples at t, t+p, … strictly before the boundary.
                let span = boundary.since(t).as_nanos();
                let p = period.as_nanos();
                (span.div_ceil(p) as usize).min(n - emitted)
            };
            // Two-stage chunked render of the run.
            let mut bits = [0u64; SAMPLE_CHUNK];
            let mut done = 0usize;
            while done < run {
                let b = (run - done).min(SAMPLE_CHUNK);
                // Stage 1: serial RNG fill — one draw per sample, in
                // emission order (the loop-carried part, nothing else).
                for w in bits[..b].iter_mut() {
                    *w = rng.next_u64();
                }
                // Stage 2: independent per-sample table/math/convert.
                let o = &mut out[emitted + done..emitted + done + b];
                for (y, &w) in o.iter_mut().zip(bits[..b].iter()) {
                    let noise = noise_tab[(w & mask) as usize] * noise_rms;
                    let c = cos_tab[((w >> TABLE_BITS) & mask) as usize];
                    *y = (env * c + noise) as f32;
                }
                done += b;
            }
            emitted += run;
            t = t + SimDuration::from_nanos(period.as_nanos() * run as u64);
        }
        period
    }

    /// The pre-SoA scalar sampler, kept verbatim as the bit-level
    /// specification of [`SignalTrace::sample_into`] — differential tests
    /// and the same-phase reference benches run it against the chunked
    /// path on identical RNG streams.
    pub fn sample_reference(&self, rate_hz: f64, rng: &mut SimRng) -> (SimDuration, Vec<f32>) {
        assert!(rate_hz > 0.0);
        let period = SimDuration::from_secs_f64(1.0 / rate_hz);
        assert!(!period.is_zero(), "sample rate above 1 GS/s tick limit");
        let n = (self.window().as_secs_f64() * rate_hz).floor() as usize;
        let (noise_tab, cos_tab) = sampling_tables();
        let noise_rms = self.noise_rms_v;
        let mask = (TABLE_LEN - 1) as u64;
        let mut by_start: Vec<&TraceSegment> = self.segments.iter().collect();
        by_start.sort_by_key(|s| s.start);
        let mut active: Vec<&TraceSegment> = Vec::new();
        let mut next_seg = 0;
        let mut out = Vec::with_capacity(n);
        let mut t = self.window_start;
        let mut emitted = 0usize;
        while emitted < n {
            while next_seg < by_start.len() && by_start[next_seg].start <= t {
                active.push(by_start[next_seg]);
                next_seg += 1;
            }
            active.retain(|s| s.end > t);
            let env_sq: f64 = active.iter().map(|s| s.amplitude_v * s.amplitude_v).sum();
            let env = env_sq.sqrt();
            let mut boundary = active.iter().map(|s| s.end).min().unwrap_or(SimTime::MAX);
            if next_seg < by_start.len() {
                boundary = boundary.min(by_start[next_seg].start);
            }
            let run = if boundary == SimTime::MAX {
                n - emitted
            } else {
                let span = boundary.since(t).as_nanos();
                let p = period.as_nanos();
                (span.div_ceil(p) as usize).min(n - emitted)
            };
            for _ in 0..run {
                let bits = rng.next_u64();
                let noise = noise_tab[(bits & mask) as usize] * noise_rms;
                let c = cos_tab[((bits >> TABLE_BITS) & mask) as usize];
                out.push((env * c + noise) as f32);
            }
            emitted += run;
            t = t + SimDuration::from_nanos(period.as_nanos() * run as u64);
        }
        (period, out)
    }

    /// Ground-truth busy intervals (union of all segments) — used to
    /// validate the threshold detector against exact knowledge.
    pub fn ground_truth_busy(&self) -> mmwave_sim::stats::BusyTracker {
        let mut b = mmwave_sim::stats::BusyTracker::new();
        for s in &self.segments {
            b.add(s.start, s.end);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn tag(src: usize) -> SegmentTag {
        SegmentTag {
            source: src,
            class: 1,
        }
    }

    #[test]
    fn push_clips_to_window() {
        let mut tr = SignalTrace::new(t(100), t(200), 0.01);
        tr.push(TraceSegment {
            start: t(50),
            end: t(150),
            amplitude_v: 0.5,
            tag: tag(0),
        });
        tr.push(TraceSegment {
            start: t(300),
            end: t(400),
            amplitude_v: 0.5,
            tag: tag(0),
        });
        assert_eq!(tr.segments().len(), 1);
        assert_eq!(tr.segments()[0].start, t(100));
        assert_eq!(tr.segments()[0].end, t(150));
    }

    #[test]
    fn envelope_adds_in_quadrature() {
        let mut tr = SignalTrace::new(t(0), t(100), 0.0);
        tr.push(TraceSegment {
            start: t(10),
            end: t(50),
            amplitude_v: 0.3,
            tag: tag(0),
        });
        tr.push(TraceSegment {
            start: t(30),
            end: t(80),
            amplitude_v: 0.4,
            tag: tag(1),
        });
        assert_eq!(tr.envelope_at(t(20)), 0.3);
        assert!((tr.envelope_at(t(40)) - 0.5).abs() < 1e-12); // sqrt(0.09+0.16)
        assert_eq!(tr.envelope_at(t(60)), 0.4);
        assert_eq!(tr.envelope_at(t(90)), 0.0);
    }

    #[test]
    fn sampling_produces_expected_count_and_bounds() {
        let mut tr = SignalTrace::new(t(0), t(1000), 0.005);
        tr.push(TraceSegment {
            start: t(100),
            end: t(300),
            amplitude_v: 0.5,
            tag: tag(0),
        });
        let mut rng = SimRng::root(1).stream("sample");
        let (period, samples) = tr.sample(1e8, &mut rng);
        assert_eq!(samples.len(), 100_000); // 1 ms at 100 MS/s
        assert_eq!(period, SimDuration::from_nanos(10));
        // Samples inside the frame reach near ±0.5; outside only noise.
        let in_frame: Vec<f32> = samples[10_000..30_000].to_vec();
        let outside: Vec<f32> = samples[50_000..70_000].to_vec();
        let max_in = in_frame.iter().fold(0f32, |a, &b| a.max(b.abs()));
        let max_out = outside.iter().fold(0f32, |a, &b| a.max(b.abs()));
        assert!(max_in > 0.4, "{max_in}");
        assert!(max_out < 0.05, "{max_out}");
    }

    #[test]
    fn sampling_is_reproducible() {
        let mut tr = SignalTrace::new(t(0), t(100), 0.01);
        tr.push(TraceSegment {
            start: t(10),
            end: t(90),
            amplitude_v: 0.2,
            tag: tag(0),
        });
        let (_, a) = tr.sample(1e7, &mut SimRng::root(5).stream("s"));
        let (_, b) = tr.sample(1e7, &mut SimRng::root(5).stream("s"));
        assert_eq!(a, b);
    }

    #[test]
    fn ground_truth_busy_merges() {
        let mut tr = SignalTrace::new(t(0), t(100), 0.0);
        tr.push(TraceSegment {
            start: t(10),
            end: t(30),
            amplitude_v: 0.1,
            tag: tag(0),
        });
        tr.push(TraceSegment {
            start: t(20),
            end: t(40),
            amplitude_v: 0.1,
            tag: tag(1),
        });
        let busy = tr.ground_truth_busy();
        assert!((busy.utilization(t(0), t(100)) - 0.3).abs() < 1e-9);
    }
}
