//! Amplitude- and duration-based frame classification.
//!
//! The paper separates the two ends of a link purely by received amplitude
//! (§3.2): the Vubiq is placed so the notebook's frames arrive directly and
//! the dock's frames arrive via the lid reflection, giving two distinct
//! amplitude populations. [`split_by_amplitude`] reimplements that
//! separation as a 1-D 2-means clustering. The short/long frame split of
//! Figs. 9/10 (5 µs boundary) is a plain duration threshold.

use crate::detect::DetectedFrame;
use mmwave_sim::time::SimDuration;

/// Which amplitude cluster a frame fell into.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AmplitudeClass {
    /// The weaker population (e.g. dock frames via the lid reflection).
    Low,
    /// The stronger population (e.g. notebook frames on the direct path).
    High,
}

/// Split frames into two amplitude populations with 1-D 2-means.
///
/// Returns `(assignments, low_centroid, high_centroid)`. With fewer than
/// two frames, everything is `High` and the centroids collapse.
pub fn split_by_amplitude(frames: &[DetectedFrame]) -> (Vec<AmplitudeClass>, f64, f64) {
    if frames.len() < 2 {
        let c = frames.first().map(|f| f.mean_amplitude_v).unwrap_or(0.0);
        return (vec![AmplitudeClass::High; frames.len()], c, c);
    }
    let amps: Vec<f64> = frames.iter().map(|f| f.mean_amplitude_v).collect();
    let min = amps.iter().cloned().fold(f64::MAX, f64::min);
    let max = amps.iter().cloned().fold(f64::MIN, f64::max);
    let mut lo = min;
    let mut hi = max;
    // Lloyd iterations; 1-D with two centroids converges in a handful.
    for _ in 0..32 {
        let mid = (lo + hi) / 2.0;
        let (mut lo_sum, mut lo_n, mut hi_sum, mut hi_n) = (0.0, 0usize, 0.0, 0usize);
        for &a in &amps {
            if a <= mid {
                lo_sum += a;
                lo_n += 1;
            } else {
                hi_sum += a;
                hi_n += 1;
            }
        }
        let new_lo = if lo_n > 0 { lo_sum / lo_n as f64 } else { lo };
        let new_hi = if hi_n > 0 { hi_sum / hi_n as f64 } else { hi };
        if (new_lo - lo).abs() < 1e-12 && (new_hi - hi).abs() < 1e-12 {
            break;
        }
        lo = new_lo;
        hi = new_hi;
    }
    let mid = (lo + hi) / 2.0;
    let classes = amps
        .iter()
        .map(|&a| {
            if a <= mid {
                AmplitudeClass::Low
            } else {
                AmplitudeClass::High
            }
        })
        .collect();
    (classes, lo, hi)
}

/// The paper's Fig. 10 metric: the fraction of frames longer than
/// `boundary` (≈ 5 µs separates single-MPDU from aggregated frames).
pub fn long_frame_fraction(frames: &[DetectedFrame], boundary: SimDuration) -> f64 {
    if frames.is_empty() {
        return 0.0;
    }
    let long = frames.iter().filter(|f| f.duration() > boundary).count();
    long as f64 / frames.len() as f64
}

/// Durations of all frames, in microseconds — the Fig. 9 CDF input.
pub fn durations_us(frames: &[DetectedFrame]) -> Vec<f64> {
    frames
        .iter()
        .map(|f| f.duration().as_micros_f64())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_sim::time::SimTime;

    fn frame(start_us: u64, dur_us: u64, amp: f64) -> DetectedFrame {
        DetectedFrame {
            start: SimTime::from_micros(start_us),
            end: SimTime::from_micros(start_us + dur_us),
            mean_amplitude_v: amp,
        }
    }

    #[test]
    fn two_clear_populations_split() {
        let mut frames = Vec::new();
        for i in 0..20 {
            frames.push(frame(i * 100, 10, 0.2 + 0.01 * (i % 3) as f64));
            frames.push(frame(i * 100 + 50, 10, 0.6 + 0.01 * (i % 3) as f64));
        }
        let (classes, lo, hi) = split_by_amplitude(&frames);
        assert!(lo < 0.25 && hi > 0.55, "centroids {lo} {hi}");
        for (f, c) in frames.iter().zip(&classes) {
            let expect = if f.mean_amplitude_v < 0.4 {
                AmplitudeClass::Low
            } else {
                AmplitudeClass::High
            };
            assert_eq!(*c, expect);
        }
    }

    #[test]
    fn single_frame_degenerates_gracefully() {
        let frames = [frame(0, 10, 0.3)];
        let (classes, lo, hi) = split_by_amplitude(&frames);
        assert_eq!(classes, vec![AmplitudeClass::High]);
        assert_eq!(lo, hi);
    }

    #[test]
    fn empty_input() {
        let (classes, _, _) = split_by_amplitude(&[]);
        assert!(classes.is_empty());
        assert_eq!(long_frame_fraction(&[], SimDuration::from_micros(5)), 0.0);
    }

    #[test]
    fn long_fraction() {
        let frames = [
            frame(0, 3, 0.4),
            frame(10, 4, 0.4),
            frame(20, 18, 0.4),
            frame(50, 22, 0.4),
        ];
        let frac = long_frame_fraction(&frames, SimDuration::from_micros(5));
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn durations_extraction() {
        let frames = [frame(0, 5, 0.1), frame(10, 25, 0.1)];
        assert_eq!(durations_us(&frames), vec![5.0, 25.0]);
    }
}
