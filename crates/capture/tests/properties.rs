//! Property tests for the capture pipeline: whatever the workload, the
//! detector and classifiers must obey their contracts.
//!
//! Std-only: cases are drawn from deterministic `SimRng` streams with
//! fixed seeds (no proptest — the workspace builds offline). Failures
//! print the case number, which reproduces the exact inputs.

use mmwave_capture::classify::{long_frame_fraction, split_by_amplitude};
use mmwave_capture::trace::{SegmentTag, TraceSegment};
use mmwave_capture::{detect_frames, utilization, DetectorConfig, SignalTrace};
use mmwave_sim::rng::SimRng;
use mmwave_sim::time::{SimDuration, SimTime};

const CASES: u64 = 64;

/// Random frame layout: (start µs, duration µs, amplitude).
fn gen_frames(r: &mut SimRng) -> Vec<(u64, u64, f64)> {
    let n = (r.next_u64() % 25) as usize;
    (0..n)
        .map(|_| {
            (
                r.next_u64() % 900,
                2 + r.next_u64() % 28,
                r.uniform(0.1, 0.6),
            )
        })
        .collect()
}

fn build_trace(frames: &[(u64, u64, f64)]) -> SignalTrace {
    let mut tr = SignalTrace::new(SimTime::ZERO, SimTime::from_millis(1), 0.01);
    for (i, &(s, d, a)) in frames.iter().enumerate() {
        tr.push(TraceSegment {
            start: SimTime::from_micros(s),
            end: SimTime::from_micros(s + d),
            amplitude_v: a,
            tag: SegmentTag {
                source: i % 3,
                class: 1,
            },
        });
    }
    tr
}

/// Detected frames are ordered, disjoint, inside the window, and their
/// total never exceeds the ground-truth busy time by more than the
/// detector's smoothing slack.
#[test]
fn detector_contract() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("cap-frames");
        let frames = gen_frames(&mut r);
        let seed = r.next_u64() % 20;
        let tr = build_trace(&frames);
        let mut rng = SimRng::root(seed).stream("prop");
        let (period, samples) = tr.sample(1e8, &mut rng);
        let det = detect_frames(
            &samples,
            period,
            SimTime::ZERO,
            tr.noise_rms_v,
            &DetectorConfig::default(),
        );
        for w in det.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "case {case}: overlapping detections"
            );
        }
        for f in &det {
            assert!(
                f.start >= SimTime::ZERO && f.end <= SimTime::from_millis(1),
                "case {case}"
            );
            assert!(f.end > f.start, "case {case}");
            assert!(f.mean_amplitude_v >= 0.0, "case {case}");
        }
        let truth = tr
            .ground_truth_busy()
            .busy_within(SimTime::ZERO, SimTime::from_millis(1));
        let detected: u64 = det.iter().map(|f| f.duration().as_nanos()).sum();
        // Slack: merging gaps ≤ 600 ns between frames plus edge smearing.
        let slack = 2_000 * (frames.len() as u64 + 1);
        assert!(
            detected <= truth.as_nanos() + slack,
            "case {case}: detected {detected} vs truth {}",
            truth.as_nanos()
        );
    }
}

/// Segment-level utilization is within [0, 1], monotone in threshold.
#[test]
fn utilization_monotone_in_threshold() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("cap-util");
        let frames = gen_frames(&mut r);
        let tr = build_trace(&frames);
        let mut last = 1.0;
        for thr in [0.0, 0.1, 0.2, 0.4, 0.7] {
            let u = utilization(&tr, thr);
            assert!((0.0..=1.0).contains(&u), "case {case}");
            assert!(
                u <= last + 1e-12,
                "case {case}: utilization rose with threshold"
            );
            last = u;
        }
    }
}

/// Amplitude clustering assigns every frame and splits around the
/// centroids' midpoint.
#[test]
fn amplitude_split_is_partition() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("cap-amp");
        let n = 2 + (r.next_u64() % 58) as usize;
        let amps: Vec<f64> = (0..n).map(|_| r.uniform(0.05, 0.8)).collect();
        let frames: Vec<_> = amps
            .iter()
            .enumerate()
            .map(|(i, &a)| mmwave_capture::DetectedFrame {
                start: SimTime::from_micros(i as u64 * 40),
                end: SimTime::from_micros(i as u64 * 40 + 10),
                mean_amplitude_v: a,
            })
            .collect();
        let (classes, lo, hi) = split_by_amplitude(&frames);
        assert_eq!(classes.len(), frames.len(), "case {case}");
        assert!(lo <= hi + 1e-12, "case {case}");
        let mid = (lo + hi) / 2.0;
        for (f, c) in frames.iter().zip(&classes) {
            match c {
                mmwave_capture::AmplitudeClass::Low => {
                    assert!(f.mean_amplitude_v <= mid + 1e-9, "case {case}")
                }
                mmwave_capture::AmplitudeClass::High => {
                    assert!(f.mean_amplitude_v >= mid - 1e-9, "case {case}")
                }
            }
        }
    }
}

/// The long-frame fraction is a fraction and increases as the boundary
/// decreases.
#[test]
fn long_fraction_monotone() {
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("cap-long");
        let frames = gen_frames(&mut r);
        let tr = build_trace(&frames);
        let mut rng = SimRng::root(1).stream("prop2");
        let (period, samples) = tr.sample(1e8, &mut rng);
        let det = detect_frames(
            &samples,
            period,
            SimTime::ZERO,
            tr.noise_rms_v,
            &DetectorConfig::default(),
        );
        let mut last = 0.0;
        for boundary_us in [30.0, 20.0, 10.0, 5.0, 1.0] {
            let frac = long_frame_fraction(&det, SimDuration::from_micros_f64(boundary_us));
            assert!((0.0..=1.0).contains(&frac), "case {case}");
            assert!(frac >= last - 1e-12, "case {case}");
            last = frac;
        }
    }
}

/// The chunked sampler reproduces the reference sampler bit-for-bit on the
/// same RNG stream, across random segment layouts (overlaps included) and
/// both the allocating and the scratch-reusing entry points.
#[test]
fn sample_matches_reference_bitwise() {
    use mmwave_capture::SampleScratch;
    let mut scratch = SampleScratch::default();
    let mut out = Vec::new();
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("soa-sample");
        let frames = gen_frames(&mut r);
        let tr = build_trace(&frames);
        for rate in [1e8, 2.5e7] {
            let (pa, a) = tr.sample_reference(rate, &mut SimRng::root(case).stream("s"));
            let (pb, b) = tr.sample(rate, &mut SimRng::root(case).stream("s"));
            let mut rng_c = SimRng::root(case).stream("s");
            let pc = tr.sample_into(rate, &mut rng_c, &mut scratch, &mut out);
            assert_eq!(pa, pb, "case {case}");
            assert_eq!(pa, pc, "case {case}");
            assert_eq!(a.len(), b.len(), "case {case}");
            assert_eq!(a.len(), out.len(), "case {case}");
            for k in 0..a.len() {
                assert_eq!(a[k].to_bits(), b[k].to_bits(), "case {case} sample {k}");
                assert_eq!(a[k].to_bits(), out[k].to_bits(), "case {case} sample {k}");
            }
        }
    }
}

/// The fused detector reproduces the reference detector exactly — same
/// frame list, same bit-exact boundaries and mean amplitudes — across
/// random layouts, sample rates (varying the smoothing window) and
/// detector tunings (including gap/window sizes around the chunk size).
#[test]
fn detect_matches_reference_exactly() {
    use mmwave_capture::detect_frames_reference;
    for case in 0..CASES {
        let mut r = SimRng::root(case).stream("soa-detect");
        let frames = gen_frames(&mut r);
        let tr = build_trace(&frames);
        let mut rng = SimRng::root(case ^ 0x5a5a).stream("det");
        let (period, samples) = tr.sample(1e8, &mut rng);
        let mut cfgs = vec![DetectorConfig::default()];
        cfgs.push(DetectorConfig {
            smooth: SimDuration::from_nanos(5_120), // win == DETECT_CHUNK
            ..DetectorConfig::default()
        });
        cfgs.push(DetectorConfig {
            smooth: SimDuration::from_nanos(10_000), // wide: reference fallback
            min_gap: SimDuration::from_nanos(50),
            ..DetectorConfig::default()
        });
        cfgs.push(DetectorConfig {
            on_factor: 2.0,
            off_factor: 1.5,
            min_gap: SimDuration::from_nanos(10),
            min_frame: SimDuration::from_nanos(0),
            smooth: SimDuration::from_nanos(10), // win == 1
        });
        for (ci, cfg) in cfgs.iter().enumerate() {
            let a = detect_frames_reference(&samples, period, tr.window_start, tr.noise_rms_v, cfg);
            let b = detect_frames(&samples, period, tr.window_start, tr.noise_rms_v, cfg);
            assert_eq!(a.len(), b.len(), "case {case} cfg {ci}");
            for (fa, fb) in a.iter().zip(&b) {
                assert_eq!(fa.start, fb.start, "case {case} cfg {ci}");
                assert_eq!(fa.end, fb.end, "case {case} cfg {ci}");
                assert_eq!(
                    fa.mean_amplitude_v.to_bits(),
                    fb.mean_amplitude_v.to_bits(),
                    "case {case} cfg {ci}"
                );
            }
        }
    }
}
