//! Microbenchmarks of the simulation kernels every experiment leans on:
//! the event queue, the image-method ray tracer, phased-array synthesis,
//! pattern lookups, the PER model, the frame detector and the TCP pump.

use mmwave_bench::{bench, black_box, CountingAlloc};
use mmwave_capture::trace::{SegmentTag, TraceSegment};
use mmwave_capture::{
    detect_frames, detect_frames_reference, DetectorConfig, SampleScratch, SignalTrace,
};
use mmwave_geom::{trace_paths, trace_paths_reference, Angle, Material, Point, Room, TraceConfig};
use mmwave_phy::{ArrayConfig, Codebook, McsTable, PhasedArray, SynthScratch};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::queue::EventQueue;
use mmwave_sim::rng::SimRng;
use mmwave_sim::time::{SimDuration, SimTime};

/// Count heap-allocation events per iteration — the zero-steady-state
/// assertions below depend on this (`allocs_per_iter` in the JSON).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn bench_event_queue() {
    bench("event_queue/schedule_pop_10k", || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
    // The MAC's timer churn: every third scheduled event is cancelled
    // before the drain, so the tombstone set is exercised on all three
    // paths (insert on cancel, membership probe and removal on pop).
    bench("event_queue/schedule_cancel_pop_10k", || {
        let mut q = EventQueue::new();
        let mut ids = Vec::with_capacity(10_000);
        for i in 0..10_000u64 {
            ids.push(q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i));
        }
        for id in ids.into_iter().step_by(3) {
            q.cancel(id);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
    // Dense interleaved timers across 64 flows. Each flow keeps three
    // events in flight at once — a short-period pacer, a long RTO that
    // every pacer fire cancels and pushes back, and a MAC slot boundary
    // — which is the steady-state shape the transport/MAC co-simulation
    // feeds the queue. Rescheduling happens at pop time, so the wheel's
    // near-future slots, cascade path and lazy-cancellation set all stay
    // hot together.
    bench("event_queue/dense_timers_64flows", || {
        const FLOWS: u64 = 64;
        let mut q = EventQueue::new();
        let mut rto: Vec<Option<mmwave_sim::queue::EventId>> = vec![None; FLOWS as usize];
        for f in 0..FLOWS {
            // Payload encodes (flow, kind): kind 0 pacer, 1 RTO, 2 MAC.
            q.schedule(SimTime::from_nanos(1_000 + f * 37), f * 3);
            rto[f as usize] = Some(q.schedule(SimTime::from_nanos(1_000_000 + f * 101), f * 3 + 1));
            q.schedule(SimTime::from_nanos(5_000 + f * 53), f * 3 + 2);
        }
        let mut acc = 0u64;
        for _ in 0..20_000u32 {
            let Some((t, v)) = q.pop() else { break };
            acc = acc.wrapping_add(v);
            let f = (v / 3) as usize;
            match v % 3 {
                0 => {
                    // Pacer: periodic, and progress resets the RTO.
                    q.schedule(t + SimDuration::from_nanos(2_357), v);
                    if let Some(id) = rto[f].take() {
                        q.cancel(id);
                    }
                    rto[f] = Some(q.schedule(t + SimDuration::from_nanos(1_000_000), v + 1));
                }
                1 => {
                    // RTO actually fired (idle flow): back off and rearm.
                    rto[f] = Some(q.schedule(t + SimDuration::from_nanos(2_000_000), v));
                }
                _ => {
                    // MAC slot boundary: fixed per-flow cadence.
                    q.schedule(t + SimDuration::from_nanos(4_096 + f as u64 * 17), v);
                }
            }
        }
        acc
    });
}

fn bench_raytrace() {
    let room = Room::rectangular(
        9.0,
        3.25,
        (
            Material::Wood,
            Material::Glass,
            Material::Brick,
            Material::Brick,
        ),
    );
    let cfg = TraceConfig::default();
    bench("raytrace/conference_room_order2", || {
        trace_paths(
            &room,
            black_box(Point::new(0.5, 1.3)),
            black_box(Point::new(8.5, 1.3)),
            &cfg,
        )
    });
    // Dense-deployment shape: 100 distinct links through one room. The
    // mirror expansion is shared — the image tree is built on the first
    // pair and every later pair only pays candidate walk + validation,
    // which is what makes multi-link floors affordable.
    bench("raytrace/shared_tree_100links", || {
        let mut acc = 0usize;
        for i in 0..100u32 {
            let t = 0.08 + (i as f64) * 0.084;
            let src = Point::new(0.3 + t, 0.4 + (i % 7) as f64 * 0.35);
            let dst = Point::new(8.7 - t, 2.8 - (i % 5) as f64 * 0.45);
            acc += trace_paths(&room, black_box(src), black_box(dst), &cfg).len();
        }
        acc
    });
    // Same-phase oracle row: the per-pair reference enumeration on the
    // identical 100 links. The shared_tree/reference median ratio within
    // one run is the phase-independent speedup evidence (absolute medians
    // swing with host performance phase; see DESIGN.md).
    bench("raytrace/reference_100links", || {
        let mut acc = 0usize;
        for i in 0..100u32 {
            let t = 0.08 + (i as f64) * 0.084;
            let src = Point::new(0.3 + t, 0.4 + (i % 7) as f64 * 0.35);
            let dst = Point::new(8.7 - t, 2.8 - (i % 5) as f64 * 0.45);
            acc += trace_paths_reference(&room, black_box(src), black_box(dst), &cfg).len();
        }
        acc
    });
}

fn bench_array_synthesis() {
    let array = PhasedArray::new(ArrayConfig::wigig_2x8(13));
    bench("phy/steered_pattern", || {
        array.steered_pattern(black_box(Angle::from_degrees(17.0)))
    });
    // Same-phase oracle row: the scalar reference synthesis on identical
    // weights. The steered_pattern/reference ratio within one run is the
    // phase-independent speedup evidence.
    let w = array.steering_weights(Angle::from_degrees(17.0));
    bench("phy/steered_pattern_reference", || {
        array.pattern_from_weights_reference(black_box(&w))
    });
    // Steady-state synthesis into reused scratch and output: after the
    // warm-up call every buffer has its final capacity, so the kernel must
    // never touch the allocator again.
    {
        let mut scratch = SynthScratch::default();
        let mut out = vec![0.0f64; mmwave_phy::AntennaPattern::DEFAULT_SAMPLES];
        array.pattern_samples_into(&mut scratch, &w, &mut out);
        let r = bench("phy/pattern_samples_into_warm", || {
            array.pattern_samples_into(&mut scratch, black_box(&w), &mut out);
            out[0]
        });
        assert_eq!(
            r.allocs_per_iter, 0.0,
            "pattern_samples_into allocated in steady state"
        );
    }
    // Hit path: after the first iteration every call is a cache lookup
    // plus an `Arc` clone of the sector table.
    let ctx = SimCtx::new();
    bench("phy/directional_codebook_32", || {
        Codebook::directional_default(&ctx, &array)
    });
    // Cold path: a fresh context each iteration has an empty codebook
    // cache, so this measures raw 32-sector synthesis through the
    // steering basis.
    bench("phy/directional_codebook_32_cold", || {
        Codebook::directional_default(&SimCtx::new(), &array)
    });
    let pattern = array.steered_pattern(Angle::ZERO);
    let mut deg = 0.0;
    bench("phy/pattern_gain_lookup", move || {
        deg += 0.37;
        pattern.gain_dbi(Angle::from_degrees(deg))
    });
}

fn bench_per() {
    let table = McsTable::ieee_802_11ad();
    let mut snr = 0.0;
    bench("phy/per_evaluation", move || {
        snr += 0.01;
        table.get(11).per(10.0 + (snr % 15.0), 86_352, -71.5)
    });
}

fn bench_detector() {
    // A 1 ms trace with 20 frames, sampled at 100 MS/s.
    let mut trace = SignalTrace::new(SimTime::ZERO, SimTime::from_millis(1), 0.01);
    for i in 0..20u64 {
        trace.push(TraceSegment {
            start: SimTime::from_micros(i * 50 + 5),
            end: SimTime::from_micros(i * 50 + 25),
            amplitude_v: 0.3,
            tag: SegmentTag {
                source: 0,
                class: 3,
            },
        });
    }
    let mut rng = SimRng::root(1).stream("bench");
    let (period, samples) = trace.sample(1e8, &mut rng);
    bench("capture/detect_100k_samples", || {
        detect_frames(
            black_box(&samples),
            period,
            SimTime::ZERO,
            0.01,
            &DetectorConfig::default(),
        )
    });
    // Same-phase oracle row for the chunked detector.
    bench("capture/detect_reference_100k_samples", || {
        detect_frames_reference(
            black_box(&samples),
            period,
            SimTime::ZERO,
            0.01,
            &DetectorConfig::default(),
        )
    });
    // Steady-state sampling into reused scratch and output buffers: must
    // stay allocation-free once the buffers reached their final capacity.
    {
        let mut rng3 = SimRng::root(3).stream("bench3");
        let mut scratch = SampleScratch::default();
        let mut out = Vec::new();
        trace.sample_into(1e8, &mut rng3, &mut scratch, &mut out);
        let r = bench("capture/sample_into_warm", || {
            trace.sample_into(1e8, &mut rng3, &mut scratch, &mut out);
            out.len()
        });
        assert_eq!(
            r.allocs_per_iter, 0.0,
            "SignalTrace::sample_into allocated in steady state"
        );
    }
    // Same-phase oracle row for the chunked sampler.
    let mut rng_ref = SimRng::root(2).stream("bench2");
    bench("capture/sample_1ms_trace_reference", || {
        trace.sample_reference(1e8, &mut rng_ref)
    });
    let mut rng2 = SimRng::root(2).stream("bench2");
    let r = bench("capture/sample_1ms_trace", move || {
        trace.sample(1e8, &mut rng2)
    });
    // The trace spans 1 ms of simulated time; a software scope that can't
    // synthesize samples at least as fast as the signal it models makes
    // capture experiments the campaign bottleneck. Hard-fail the bench
    // run rather than silently committing a below-real-time baseline.
    assert!(
        r.median_ns <= 1_000_000.0,
        "capture/sample_1ms_trace below real time: median {:.0} ns for 1 ms of trace",
        r.median_ns
    );
}

/// The radiometric link-gain cache around `Medium::begin_tx` and beam
/// training. Four `begin_tx` variants isolate the cache states: a cold
/// cache (fresh medium, paths untraced), a warm cache (every gain is one
/// table lookup), bypass mode (identical bookkeeping, gains recomputed
/// from the interned paths on every call — the uncached "before"
/// number), and the refill right after a full invalidation.
fn bench_link_cache() {
    use mmwave_channel::{CacheMode, Environment, LinkGainCache};
    use mmwave_mac::frame::{FrameKind, Mpdu};
    use mmwave_mac::medium::Medium;
    use mmwave_mac::{training, Device, Frame, PatKey};

    let room = Room::rectangular(
        9.0,
        3.25,
        (
            Material::Wood,
            Material::Glass,
            Material::Brick,
            Material::Brick,
        ),
    );
    let env = Environment::new(room);
    let ctx = SimCtx::new();
    let devices = vec![
        Device::wigig_dock(&ctx, "dock", Point::new(0.5, 1.0), Angle::ZERO, 13),
        Device::wigig_laptop(
            &ctx,
            "l1",
            Point::new(6.0, 1.5),
            Angle::from_degrees(180.0),
            11,
        ),
        Device::wigig_laptop(
            &ctx,
            "l2",
            Point::new(3.0, 2.5),
            Angle::from_degrees(-90.0),
            11,
        ),
        Device::wigig_laptop(
            &ctx,
            "l3",
            Point::new(8.0, 0.5),
            Angle::from_degrees(150.0),
            11,
        ),
    ];
    let offs = vec![0.0; devices.len()];
    let frame = || Frame {
        src: 0,
        dst: Some(1),
        kind: FrameKind::Data {
            mpdus: vec![Mpdu {
                bytes: 1500,
                tag: 0,
            }],
            mcs: 11,
            retry: 0,
        },
        seq: 1,
    };
    let one_tx = |m: &mut Medium| {
        let id = m.begin_tx(
            &env,
            &devices,
            frame(),
            PatKey::Dir(16),
            0.0,
            SimTime::ZERO,
            SimTime::from_micros(5),
            &offs,
        );
        m.finish_tx(id, -68.0).expect("tx exists").power_at[1]
    };

    bench("link/begin_tx_cold_fresh_medium", || {
        let mut m = Medium::new();
        one_tx(&mut m)
    });

    let mut warm = Medium::new();
    *warm.link_cache_mut() = LinkGainCache::with_mode(CacheMode::Cached);
    one_tx(&mut warm);
    bench("link/begin_tx_warm", move || one_tx(&mut warm));

    // The same warm cycle with every buffer recycled: the finished
    // transmission's power vector goes back to the medium's pool and the
    // MPDU vector shuttles between frame and bench, so a steady-state
    // begin_tx/finish_tx round trip never touches the allocator.
    {
        let (env_r, dev_r, offs_r) = (&env, &devices, &offs);
        let mut recycled = Medium::new();
        *recycled.link_cache_mut() = LinkGainCache::with_mode(CacheMode::Cached);
        one_tx(&mut recycled);
        let mut mpdus = vec![Mpdu {
            bytes: 1500,
            tag: 0,
        }];
        let r = bench("link/begin_tx_warm_recycled", move || {
            let id = recycled.begin_tx(
                env_r,
                dev_r,
                Frame {
                    src: 0,
                    dst: Some(1),
                    kind: FrameKind::Data {
                        mpdus: std::mem::take(&mut mpdus),
                        mcs: 11,
                        retry: 0,
                    },
                    seq: 1,
                },
                PatKey::Dir(16),
                0.0,
                SimTime::ZERO,
                SimTime::from_micros(5),
                offs_r,
            );
            let tx = recycled.finish_tx(id, -68.0).expect("tx exists");
            let p = tx.power_at[1];
            if let FrameKind::Data { mpdus: m, .. } = tx.frame.kind {
                mpdus = m;
            }
            recycled.recycle_power(tx.power_at);
            p
        });
        assert_eq!(
            r.allocs_per_iter, 0.0,
            "warm begin_tx/finish_tx cycle allocated in steady state"
        );
    }

    let mut bypass = Medium::new();
    *bypass.link_cache_mut() = LinkGainCache::with_mode(CacheMode::Bypass);
    one_tx(&mut bypass);
    bench("link/begin_tx_bypass", move || one_tx(&mut bypass));

    let mut inval = Medium::new();
    *inval.link_cache_mut() = LinkGainCache::with_mode(CacheMode::Cached);
    one_tx(&mut inval);
    bench("link/begin_tx_after_invalidate_all", move || {
        inval.link_cache_mut().invalidate_all();
        one_tx(&mut inval)
    });

    // Beam training: a warm retrain is one memoized sector-table lookup;
    // bypass rebuilds the full 32×32 table every sweep.
    let (env_ref, a, b) = (&env, &devices[0], &devices[1]);
    let mut cache = LinkGainCache::with_mode(CacheMode::Cached);
    training::best_pair_with(&mut cache, env_ref, a, 0, b, 1);
    bench("training/best_pair_warm", move || {
        training::best_pair_with(&mut cache, env_ref, a, 0, b, 1).rx_dbm
    });
    let mut scratch = LinkGainCache::with_mode(CacheMode::Bypass);
    bench("training/best_pair_bypass", move || {
        training::best_pair_with(&mut scratch, env_ref, a, 0, b, 1).rx_dbm
    });
}

/// The spatial interference graph under steady device motion: every
/// iteration moves one station (grid re-bucket + zone re-derivation) and
/// runs one `begin_tx` over a 32-station floor, where the grid walk
/// evaluates only the in-room neighborhood and bulk-prunes the rest.
fn bench_spatial() {
    use mmwave_channel::spatial::{PruneMode, SpatialConfig};
    use mmwave_channel::Environment;
    use mmwave_geom::Segment;
    use mmwave_mac::frame::{FrameKind, Mpdu};
    use mmwave_mac::medium::Medium;
    use mmwave_mac::{Device, Frame, PatKey};

    // Four closed brick offices in a row, eight stations each.
    let mut room = Room::open_space();
    for r in 0..4 {
        let x0 = r as f64 * 4.4;
        let (x1, y1) = (x0 + 4.0, 3.0);
        let corners = [
            (Point::new(x0, 0.0), Point::new(x1, 0.0)),
            (Point::new(x1, 0.0), Point::new(x1, y1)),
            (Point::new(x1, y1), Point::new(x0, y1)),
            (Point::new(x0, y1), Point::new(x0, 0.0)),
        ];
        for (i, (a, b)) in corners.into_iter().enumerate() {
            room.add_obstacle(Segment::new(a, b), Material::Brick, format!("o{r}-{i}"));
        }
        room.add_zone(Point::new(x0, 0.0), Point::new(x1, y1));
    }
    let env = Environment::new(room);
    let ctx = SimCtx::new();
    let mut devices = Vec::new();
    let mut positions = Vec::new();
    for r in 0..4 {
        let x0 = r as f64 * 4.4;
        for k in 0..8 {
            let p = Point::new(x0 + 0.5 + (k % 4) as f64 * 0.9, 0.6 + (k / 4) as f64 * 1.8);
            devices.push(Device::wigig_laptop(
                &ctx,
                &format!("s{r}-{k}"),
                p,
                Angle::ZERO,
                11,
            ));
            positions.push(p);
        }
    }
    let offs = vec![0.0; devices.len()];
    let mut medium = Medium::new();
    medium.enable_spatial(
        &env,
        &SpatialConfig::default(),
        PruneMode::Enforce,
        &positions,
    );
    let mut flip = false;
    bench("medium/interference_graph_update", move || {
        flip = !flip;
        let p = if flip {
            Point::new(1.1, 2.4)
        } else {
            Point::new(2.9, 0.6)
        };
        medium.note_device_position(&env, 0, p);
        let id = medium.begin_tx(
            &env,
            &devices,
            Frame {
                src: 0,
                dst: Some(1),
                kind: FrameKind::Data {
                    mpdus: vec![Mpdu {
                        bytes: 1500,
                        tag: 0,
                    }],
                    mcs: 11,
                    retry: 0,
                },
                seq: 1,
            },
            PatKey::Dir(16),
            0.0,
            SimTime::ZERO,
            SimTime::from_micros(5),
            &offs,
        );
        medium.finish_tx(id, -68.0).expect("tx exists").power_at[1]
    });
}

fn bench_mac_second() {
    use mmwave_channel::Environment;
    use mmwave_mac::{Device, Net, NetConfig};
    // One context across iterations: what we measure is the MAC idle
    // link, not codebook synthesis (bench_array_synthesis covers cold).
    let ctx = SimCtx::new();
    bench("mac/idle_link_100ms", move || {
        let mut net = Net::with_ctx(
            Environment::new(Room::open_space()),
            NetConfig {
                seed: 1,
                enable_fading: false,
                ..NetConfig::default()
            },
            &ctx,
        );
        let dock = net.add_device(Device::wigig_dock(
            net.ctx(),
            "d",
            Point::new(0.0, 0.0),
            Angle::ZERO,
            13,
        ));
        let laptop = net.add_device(Device::wigig_laptop(
            net.ctx(),
            "l",
            Point::new(2.0, 0.0),
            Angle::from_degrees(180.0),
            11,
        ));
        net.associate_instantly(dock, laptop);
        net.run_until(SimTime::from_millis(100));
        net.txlog().len()
    });
}

fn bench_tcp_second() {
    use mmwave_channel::Environment;
    use mmwave_mac::{Device, Net, NetConfig};
    use mmwave_transport::{CcKind, Stack, TcpConfig};
    // One kernel per congestion algorithm plus the historical default
    // (Reno via the config default). The default and the explicit Reno
    // kernel must track each other: any gap is trait-dispatch overhead.
    let variants: [(&'static str, Option<CcKind>); 4] = [
        ("transport/tcp_100ms_full_rate", None),
        ("transport/tcp_100ms_reno", Some(CcKind::Reno)),
        ("transport/tcp_100ms_cubic", Some(CcKind::Cubic)),
        ("transport/tcp_100ms_rate_probe", Some(CcKind::RateProbe)),
    ];
    for (name, cc) in variants {
        let ctx = SimCtx::new();
        bench(name, move || {
            let mut net = Net::with_ctx(
                Environment::new(Room::open_space()),
                NetConfig {
                    seed: 1,
                    enable_fading: false,
                    ..NetConfig::default()
                },
                &ctx,
            );
            net.txlog_mut().set_enabled(false);
            let dock = net.add_device(Device::wigig_dock(
                net.ctx(),
                "d",
                Point::new(0.0, 0.0),
                Angle::ZERO,
                13,
            ));
            let laptop = net.add_device(Device::wigig_laptop(
                net.ctx(),
                "l",
                Point::new(2.0, 0.0),
                Angle::from_degrees(180.0),
                11,
            ));
            net.associate_instantly(dock, laptop);
            let mut stack = Stack::new(net);
            let flow = stack.add_flow(TcpConfig {
                cc,
                ..TcpConfig::bulk(dock, laptop, 256 * 1024)
            });
            stack.run_until(SimTime::from_millis(100));
            stack.flow_stats(flow).bytes_acked
        });
    }
}

fn bench_campaign() {
    use mmwave_campaign::{artifact, manifest, RunRecord, RunStatus};
    use mmwave_sim::metrics::EngineCounters;
    // The control plane hashes every chunk twice per campaign task
    // (once on append, once per --resume verify), so the FNV-1a walk
    // over a representative chunk body is a real per-task cost. The
    // chunk is rendered once outside the timed loop: this measures the
    // hash, not the JSON encoder.
    let record = RunRecord {
        experiment: "fig23".into(),
        title: "TCP loss under reflected interference".into(),
        seed: 7,
        quick: false,
        scenario: "office-floor".into(),
        status: RunStatus::Pass,
        violations: Vec::new(),
        output: "series loss_pct: 19.7 18.9 21.2 20.4\n".repeat(40),
        panic_message: None,
        wall_ms: 1234.5,
        engine: EngineCounters {
            events_popped: 4_812_331,
            peak_queue_depth: 911,
            link_gain_hits: 88_104,
            ..EngineCounters::default()
        },
    };
    let chunk = artifact::run_to_json(&record).render();
    bench("campaign/manifest_hash_chunk", move || {
        manifest::fnv1a64(black_box(chunk.as_bytes()))
    });
}

fn main() {
    bench_event_queue();
    bench_raytrace();
    bench_array_synthesis();
    bench_per();
    bench_detector();
    bench_link_cache();
    bench_spatial();
    bench_mac_second();
    bench_tcp_second();
    bench_campaign();

    // Machine-readable trajectory at the repo root, committed alongside
    // the code so perf history travels with `git log`. `BENCH_OUT` lets
    // the regression gate write a scratch file without clobbering the
    // committed baseline it compares against.
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    match mmwave_bench::write_json(std::path::Path::new(&out)) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\nfailed to write {out}: {e}"),
    }
}
